"""Tests for the synthetic Helmholtz-like EOS table."""
import numpy as np
import pytest

from repro.core import FPFormat, RaptorRuntime, TruncatedContext
from repro.eos import HelmholtzTable


@pytest.fixture(scope="module")
def table():
    return HelmholtzTable()


class TestTableConstruction:
    def test_shapes(self, table):
        assert table.energy_table.shape == (table.n_rho, table.n_temp)
        assert table.pressure_table.shape == (table.n_rho, table.n_temp)

    def test_tables_positive(self, table):
        assert np.all(table.energy_table > 0)
        assert np.all(table.pressure_table > 0)

    def test_energy_monotone_in_temperature(self, table):
        assert np.all(np.diff(table.energy_table, axis=1) > 0)

    def test_pressure_monotone_in_density(self, table):
        assert np.all(np.diff(table.pressure_table, axis=0) > 0)


class TestInterpolation:
    def test_matches_analytic_model_inside_table(self, table):
        rng = np.random.default_rng(3)
        rho = 10.0 ** rng.uniform(4.5, 7.5, 50)
        temp = 10.0 ** rng.uniform(7.5, 9.5, 50)
        e_interp = table.energy(rho, temp)
        e_exact = table.analytic_energy(rho, temp)
        assert np.max(np.abs(e_interp - e_exact) / e_exact) < 5e-3

    def test_pressure_interpolation(self, table):
        rho = np.array([1e5, 1e6])
        temp = np.array([1e8, 1e9])
        p = table.pressure(rho, temp)
        p_exact = table.analytic_pressure(rho, temp)
        assert np.allclose(p, p_exact, rtol=5e-3)

    def test_exact_on_grid_nodes(self, table):
        rho = 10.0 ** table.log_rho[10]
        temp = 10.0 ** table.log_temp[20]
        e = table.energy(np.array([rho]), np.array([temp]))
        assert float(e[0]) == pytest.approx(table.energy_table[10, 20], rel=1e-12)

    def test_out_of_range_clamped(self, table):
        e = table.energy(np.array([1.0]), np.array([1.0]))
        assert np.isfinite(e).all()

    def test_energy_derivative_positive(self, table):
        rho = np.full(10, 1e6)
        temp = np.linspace(2e8, 5e9, 10)
        dedt = table.energy_derivative(rho, temp)
        assert np.all(dedt > 0)

    def test_derivative_matches_finite_difference_of_model(self, table):
        rho = np.array([1e6])
        temp = np.array([1e9])
        dedt = float(table.energy_derivative(rho, temp)[0])
        h = 1e3
        ref = (table.analytic_energy(rho, temp + h) - table.analytic_energy(rho, temp - h)) / (2 * h)
        assert dedt == pytest.approx(float(ref[0]), rel=5e-2)


class TestTruncatedInterpolation:
    def test_truncated_lookup_counts_ops(self, table):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(11, 20), runtime=rt, module="eos")
        table.energy(np.full(16, 1e6), np.full(16, 1e9), ctx)
        assert rt.module_ops()["eos"].truncated > 0

    def test_truncation_error_scales_with_mantissa(self, table):
        rho = np.full(32, 3e5)
        temp = np.linspace(5e8, 2e9, 32)
        exact = table.energy(rho, temp)

        def err(man):
            ctx = TruncatedContext(FPFormat(11, man), runtime=RaptorRuntime())
            approx = table.energy(rho, temp, ctx)
            return float(np.max(np.abs(approx - exact) / exact))

        assert err(40) < err(20) < err(8)
