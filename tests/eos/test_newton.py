"""Tests for the Newton-Raphson EOS inversion (the Hypothesis 2 mechanism)."""
import numpy as np
import pytest

from repro.core import FPFormat, RaptorRuntime, TruncatedContext
from repro.eos import HelmholtzTable, NewtonSolverConfig, invert_energy


@pytest.fixture(scope="module")
def table():
    return HelmholtzTable()


def make_problem(table, n=16, seed=0):
    rng = np.random.default_rng(seed)
    rho = 10.0 ** rng.uniform(5.0, 7.0, n)
    temp_true = 10.0 ** rng.uniform(8.2, 9.5, n)
    energy = np.asarray(table.energy(rho, temp_true))
    guess = temp_true * rng.uniform(0.6, 1.4, n)
    return rho, temp_true, energy, guess


class TestFullPrecisionConvergence:
    def test_converges_and_recovers_temperature(self, table):
        rho, temp_true, energy, guess = make_problem(table)
        result = invert_energy(table, rho, energy, guess, NewtonSolverConfig(tolerance=1e-10))
        assert result.converged
        assert result.iterations < 40
        assert np.max(np.abs(result.temperature - temp_true) / temp_true) < 1e-6

    def test_residual_history_decreases(self, table):
        rho, _, energy, guess = make_problem(table, seed=1)
        result = invert_energy(table, rho, energy, guess)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_poor_guess_still_converges(self, table):
        rho, temp_true, energy, _ = make_problem(table, seed=2)
        guess = np.full_like(temp_true, 2e8)
        result = invert_energy(table, rho, energy, guess, NewtonSolverConfig(max_iterations=60))
        assert result.converged

    def test_iteration_limit_enforced(self, table):
        rho, _, energy, guess = make_problem(table, seed=3)
        cfg = NewtonSolverConfig(tolerance=1e-30, max_iterations=5)
        result = invert_energy(table, rho, energy, guess, cfg)
        assert not result.converged
        assert result.iterations == 5
        assert result.failed


class TestTruncatedConvergence:
    """The core of Hypothesis 2: convergence collapses below a mantissa threshold."""

    def _run(self, table, man_bits, tolerance=1e-10, max_iterations=40):
        rho, _, energy, guess = make_problem(table, seed=4)
        ctx = TruncatedContext(FPFormat(11, man_bits), runtime=RaptorRuntime(), module="eos")
        cfg = NewtonSolverConfig(tolerance=tolerance, max_iterations=max_iterations)
        return invert_energy(table, rho, energy, guess, cfg, ctx)

    def test_converges_with_wide_mantissa(self, table):
        assert self._run(table, 52).converged
        assert self._run(table, 48).converged

    def test_fails_with_narrow_mantissa(self, table):
        assert not self._run(table, 16).converged
        assert not self._run(table, 8).converged

    def test_failure_threshold_is_monotone(self, table):
        """Once the iteration fails at some width, it fails for all narrower widths."""
        widths = [8, 16, 24, 32, 40, 48, 52]
        outcomes = [self._run(table, m).converged for m in widths]
        # monotone: no True followed later by False when moving to wider mantissas
        first_success = outcomes.index(True) if True in outcomes else len(outcomes)
        assert all(outcomes[first_success:])
        assert not any(outcomes[:first_success])
        # the threshold sits in the upper half of the mantissa range (paper: ~42 bits)
        assert 24 <= widths[first_success] <= 52

    def test_relaxing_tolerance_does_not_rescue_very_low_precision(self, table):
        """The paper tried decreasing the tolerance and raising the iteration
        count and still failed to converge; reproduce that for small mantissas."""
        result = self._run(table, 10, tolerance=1e-8, max_iterations=200)
        assert not result.converged

    def test_truncated_residual_stalls_above_tolerance(self, table):
        result = self._run(table, 16)
        assert result.max_residual > 1e-10
        assert np.all(np.isfinite(result.temperature))
