"""Shared pytest configuration for the test suite."""
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate the golden reference arrays under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def regen_golden(request) -> bool:
    return bool(request.config.getoption("--regen-golden"))
