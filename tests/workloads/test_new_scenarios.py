"""Sanity tests for the instability-suite workloads (KH, RT, double blast)."""
import numpy as np
import pytest

from repro.workloads import (
    DoubleBlastConfig,
    DoubleBlastWorkload,
    KelvinHelmholtzConfig,
    KelvinHelmholtzWorkload,
    RayleighTaylorConfig,
    RayleighTaylorWorkload,
)

FAST = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, rk_stages=1)


class TestKelvinHelmholtz:
    def test_initial_condition_shapes_and_shear(self):
        w = KelvinHelmholtzWorkload(KelvinHelmholtzConfig(**FAST))
        x, y = np.meshgrid(np.linspace(0, 1, 16), np.linspace(0, 1, 16), indexing="ij")
        ic = w.initial_condition(x, y)
        assert set(ic) == {"dens", "velx", "vely", "pres"}
        # counter-flowing band: both shear directions present
        assert ic["velx"].max() > 0 > ic["velx"].min()
        # perturbation is small compared to the shear
        assert np.abs(ic["vely"]).max() < 0.1 * np.abs(ic["velx"]).max()

    def test_run_conserves_mass_on_periodic_domain(self):
        w = KelvinHelmholtzWorkload(KelvinHelmholtzConfig(t_end=0.01, **FAST))
        run = w.reference()
        dens = run.checkpoint["dens"]
        x, yc = np.meshgrid(*run.grid.uniform_coordinates(2), indexing="ij")
        ic = w.initial_condition(x, yc)
        # fully periodic box: total mass is conserved to solver accuracy
        assert np.sum(dens) == pytest.approx(np.sum(ic["dens"]), rel=1e-10)
        assert run.info["steps"] > 0
        assert w.mixing_width(run) >= 0.0


class TestRayleighTaylor:
    def test_hydrostatic_pressure_is_continuous_and_decreasing(self):
        w = RayleighTaylorWorkload(RayleighTaylorConfig(**FAST))
        y = np.linspace(0, 1, 101)
        x = np.full_like(y, 0.25)
        ic = w.initial_condition(x, y)
        assert np.all(np.diff(ic["pres"]) < 0)  # pressure falls with height
        assert ic["pres"].min() > 0
        # heavy over light
        assert ic["dens"][-1] > ic["dens"][0]

    def test_gravity_is_wired_into_the_solver(self):
        w = RayleighTaylorWorkload(RayleighTaylorConfig(**FAST))
        solver = w.build_solver()
        assert solver.gravity == (0.0, -abs(w.config.gravity_magnitude))

    def test_unperturbed_column_stays_near_equilibrium(self):
        cfg = RayleighTaylorConfig(perturbation_amplitude=0.0, t_end=0.02, **FAST)
        run = RayleighTaylorWorkload(cfg).reference()
        # without a seed perturbation the hydrostatic state barely moves
        assert float(np.abs(run.checkpoint["vely"]).max()) < 5e-3

    def test_mixed_boundaries_on_the_grid(self):
        w = RayleighTaylorWorkload(RayleighTaylorConfig(**FAST))
        grid = w.build_grid()
        assert grid.boundary_x == "periodic" and grid.boundary_y == "reflect"


class TestDoubleBlast:
    def test_initial_pressure_reservoirs(self):
        w = DoubleBlastWorkload(DoubleBlastConfig(**FAST))
        x, y = np.meshgrid(np.linspace(0, 1, 64), np.linspace(0, 1, 8), indexing="ij")
        ic = w.initial_condition(x, y)
        assert ic["pres"].max() == 1000.0
        assert ic["pres"].min() == 0.01
        assert np.all(ic["velx"] == 0.0)

    def test_blasts_advance_toward_each_other(self):
        w = DoubleBlastWorkload(DoubleBlastConfig(t_end=0.004, **FAST))
        run = w.reference()
        left, right = w.front_positions(run)
        cfg = w.config
        # fronts have detached from the reservoir edges and face each other
        assert cfg.left_edge < left < right < cfg.right_edge
        assert np.isfinite(run.checkpoint["pres"]).all()
        assert run.checkpoint["dens"].min() > 0

    def test_reflecting_walls_keep_mass_in_the_tube(self):
        w = DoubleBlastWorkload(DoubleBlastConfig(t_end=0.002, **FAST))
        run = w.reference()
        dens = run.checkpoint["dens"]
        x, yc = np.meshgrid(*run.grid.uniform_coordinates(2), indexing="ij")
        ic = w.initial_condition(x, yc)
        assert np.sum(dens) == pytest.approx(np.sum(ic["dens"]), rel=1e-10)
