"""Integration tests for the Sedov and Sod workloads (fast configurations)."""
import numpy as np
import pytest

from repro.core import AMRCutoffPolicy, GlobalPolicy, RaptorRuntime, TruncationConfig
from repro.workloads import SedovConfig, SedovWorkload, SodConfig, SodWorkload


def fast_sedov(**kwargs):
    defaults = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.02, rk_stages=1)
    defaults.update(kwargs)
    return SedovWorkload(SedovConfig(**defaults))


def fast_sod(**kwargs):
    defaults = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.04, rk_stages=1)
    defaults.update(kwargs)
    return SodWorkload(SodConfig(**defaults))


class TestSedovReference:
    def test_initial_grid_refines_on_blast(self):
        grid = fast_sedov().build_grid()
        assert grid.finest_level == 2
        assert grid.n_leaves > 4

    def test_reference_run_produces_radial_shock(self):
        wl = fast_sedov()
        run = wl.reference()
        pres = run.checkpoint["pres"]
        assert np.all(np.isfinite(pres))
        # pressure spreads outward: the peak is no longer confined to the center cell
        assert wl.shock_radius(run) > wl.config.blast_radius
        # symmetric in x and y
        assert np.allclose(pres, pres[::-1, :], rtol=1e-6, atol=1e-8)
        assert np.allclose(pres, pres[:, ::-1], rtol=1e-6, atol=1e-8)

    def test_reference_counts_only_full_ops(self):
        run = fast_sedov().reference()
        assert run.runtime.ops.full > 0
        assert run.runtime.ops.truncated == 0
        assert run.truncated_fraction == 0.0

    def test_checkpoint_shape_matches_max_level(self):
        wl = fast_sedov()
        run = wl.reference()
        assert run.checkpoint["dens"].shape == wl.config.finest_cells


class TestSodReference:
    def test_shock_moves_right_and_rarefaction_left(self):
        wl = fast_sod()
        run = wl.reference()
        dens = run.checkpoint["dens"]
        x, _ = run.grid.uniform_coordinates(wl.config.max_level)
        profile = dens.mean(axis=1)
        # undisturbed far left and far right states
        assert profile[0] == pytest.approx(1.0, abs=0.05)
        assert profile[-1] == pytest.approx(0.125, abs=0.02)
        # shock has moved right of the interface
        assert wl.shock_position(run) > wl.config.interface_position
        velx = run.checkpoint["velx"].mean(axis=1)
        assert np.max(velx) > 0.1

    def test_solution_uniform_along_y(self):
        run = fast_sod().reference()
        dens = run.checkpoint["dens"]
        assert np.max(np.std(dens, axis=1)) < 1e-8


class TestTruncatedRuns:
    def test_global_truncation_increases_error_as_mantissa_shrinks(self):
        wl = fast_sedov()
        ref = wl.reference()
        errors = {}
        for man in (6, 20):
            rt = RaptorRuntime()
            policy = GlobalPolicy(TruncationConfig.mantissa(man, exp_bits=11), runtime=rt)
            run = wl.run(policy=policy, runtime=rt)
            errors[man] = run.l1_error(ref, "dens")
        assert errors[6] > errors[20] > 0.0

    def test_amr_cutoff_reduces_error_and_truncated_fraction(self):
        wl = fast_sedov(max_level=3, t_end=0.015)
        ref = wl.reference()

        def run_cutoff(cutoff):
            rt = RaptorRuntime()
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(8, exp_bits=11), cutoff=cutoff, modules=["hydro"], runtime=rt
            )
            run = wl.run(policy=policy, runtime=rt)
            return run.l1_error(ref, "dens"), run.truncated_fraction

        err_m0, frac_m0 = run_cutoff(0)
        err_m1, frac_m1 = run_cutoff(1)
        assert frac_m1 < frac_m0
        assert err_m1 <= err_m0 * 1.05  # excluding the finest level must not hurt

    def test_sod_truncated_run_reports_counts(self):
        wl = fast_sod()
        rt = RaptorRuntime()
        policy = GlobalPolicy(TruncationConfig.mantissa(10, exp_bits=8), runtime=rt)
        run = wl.run(policy=policy, runtime=rt)
        assert run.truncated_fraction > 0.5
        gf_trunc, gf_full = run.giga_flops()
        assert gf_trunc > 0
        errors = run.errors(wl.reference(), ("dens", "velx"))
        assert set(errors) == {"dens", "velx"}
