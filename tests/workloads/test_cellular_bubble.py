"""Integration tests for the Cellular and Bubble workloads (scenario API)."""
import numpy as np
import pytest

from repro.core import RaptorRuntime
from repro.experiments import PolicySpec
from repro.incomp import BubbleConfig
from repro.workloads import (
    BubbleExperimentConfig,
    BubbleWorkload,
    CellularConfig,
    CellularWorkload,
    Outcome,
    STRATEGIES,
    is_scenario,
)


@pytest.fixture(scope="module")
def cellular():
    return CellularWorkload(CellularConfig(n_cells=48, n_steps=15))


class TestCellular:
    def test_implements_scenario_protocol(self):
        assert is_scenario(CellularWorkload)

    def test_reference_run_converges_and_detonates(self, cellular):
        result = cellular.run()
        assert isinstance(result, Outcome)
        assert result.kind == "cellular"
        assert result.info["eos_converged"] == 1.0
        assert result.info["failed_newton_steps"] == 0
        assert result.info["total_newton_calls"] == 15
        assert result.info["final_burned_fraction"] > 0.01
        assert result.info["detonation_propagated"] == 1.0

    def test_front_positions_monotone(self, cellular):
        result = cellular.run()
        fronts = result.state["front_positions"]
        assert np.all(np.diff(fronts) >= -1e-9)

    def test_eos_truncation_narrow_mantissa_breaks_convergence(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(12, runtime=rt)
        result = cellular.run(policy=policy, runtime=rt, n_steps=6)
        assert result.info["eos_converged"] == 0.0
        assert result.info["failed_newton_steps"] > 0
        assert rt.ops.truncated > 0

    def test_eos_truncation_wide_mantissa_still_converges(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(50, runtime=rt)
        result = cellular.run(policy=policy, runtime=rt, n_steps=6)
        assert result.info["eos_converged"] == 1.0

    def test_only_eos_module_is_truncated(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(12, runtime=rt)
        cellular.run(policy=policy, runtime=rt, n_steps=4)
        mods = rt.module_ops()
        assert mods["eos"].truncated > 0
        assert mods["eos"].full == 0
        assert mods.get("burn") is None or mods["burn"].truncated == 0

    def test_error_metric_is_relative_front_deviation(self, cellular):
        ref = cellular.reference()
        assert cellular.error(ref, ref) == 0.0
        rt = RaptorRuntime()
        truncated = cellular.run(policy=cellular.eos_policy(12, runtime=rt), runtime=rt)
        assert cellular.error(truncated, ref) >= 0.0

    def test_acceptable_is_the_physics_invariant(self, cellular):
        ref = cellular.reference()
        assert cellular.acceptable(ref, ref)
        rt = RaptorRuntime()
        broken = cellular.run(policy=cellular.eos_policy(10, runtime=rt), runtime=rt, n_steps=6)
        assert not cellular.acceptable(broken, ref)


@pytest.fixture(scope="module")
def bubble_workload():
    cfg = BubbleExperimentConfig(
        solver=BubbleConfig(
            nx=20, ny=30, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
            reynolds=700.0, advection_scheme="upwind", reinit_interval=4,
        ),
        spin_up_time=0.05,
        truncation_time=0.08,
        snapshot_times=(0.04, 0.08),
        fixed_dt=0.004,
    )
    return BubbleWorkload(cfg)


class TestBubbleStrategies:
    def test_implements_scenario_protocol(self):
        assert is_scenario(BubbleWorkload)

    def test_unknown_strategy_rejected(self, bubble_workload):
        with pytest.raises(ValueError):
            bubble_workload.run_strategy("bogus", 12)

    def test_reference_run_produces_snapshots(self, bubble_workload):
        ref = bubble_workload.run_strategy("none", 52)
        assert isinstance(ref, Outcome)
        assert ref.kind == "bubble"
        assert len(ref.state["snapshot_times"]) >= 2
        assert ref.info["fragments"] >= 1
        assert ref.info["gas_volume"] > 0
        for i in range(len(ref.state["snapshot_times"])):
            assert np.all(np.isfinite(ref.state[f"phi_snap{i}"]))
        # "phi" is the final snapshot
        last = len(ref.state["snapshot_times"]) - 1
        np.testing.assert_array_equal(ref.state["phi"], ref.state[f"phi_snap{last}"])

    def test_spun_up_state_reused_between_runs(self, bubble_workload):
        a = bubble_workload.run_strategy("none", 52)
        b = bubble_workload.run_strategy("none", 52)
        assert np.array_equal(a.state["phi"], b.state["phi"])

    def test_truncation_everywhere_perturbs_interface(self, bubble_workload):
        ref = bubble_workload.run_strategy("none", 52)
        low = bubble_workload.run_strategy("everywhere", 4)
        assert low.runtime.ops.truncated > 0
        assert bubble_workload.error(low, ref) > 0.0

    def test_moderate_precision_closer_than_low_precision(self, bubble_workload):
        ref = bubble_workload.run_strategy("none", 52)
        low = bubble_workload.run_strategy("everywhere", 4)
        mid = bubble_workload.run_strategy("everywhere", 12)
        assert bubble_workload.error(mid, ref) <= bubble_workload.error(low, ref)

    def test_cutoff_strategy_closer_than_everywhere(self, bubble_workload):
        ref = bubble_workload.run_strategy("none", 52)
        everywhere = bubble_workload.run_strategy("everywhere", 4)
        cutoff = bubble_workload.run_strategy("cutoff-2", 4)
        assert bubble_workload.error(cutoff, ref) <= bubble_workload.error(everywhere, ref) + 1e-12

    def test_strategies_tuple_contents(self):
        assert STRATEGIES == ("none", "everywhere", "cutoff-1", "cutoff-2")


class TestBubblePolicyProtocol:
    """run(policy=...) maps truncation policies onto the Figure 1 strategies."""

    def test_none_policy_is_the_reference(self, bubble_workload):
        via_policy = bubble_workload.run()
        via_strategy = bubble_workload.run_strategy("none", 52)
        assert np.array_equal(via_policy.state["phi"], via_strategy.state["phi"])
        assert via_policy.metadata["strategy"] == "none"

    def test_global_policy_truncates_everywhere(self, bubble_workload):
        from repro.core.fpformat import FPFormat

        rt = RaptorRuntime()
        policy = PolicySpec.everywhere(modules=("advection", "diffusion")).build(
            FPFormat(8, 4), rt
        )
        via_policy = bubble_workload.run(policy=policy, runtime=rt)
        via_strategy = bubble_workload.run_strategy("everywhere", 4)
        assert via_policy.metadata["strategy"] == "everywhere"
        assert np.array_equal(via_policy.state["phi"], via_strategy.state["phi"])

    def test_amr_cutoff_policy_maps_to_interface_cutoff(self, bubble_workload):
        from repro.core.fpformat import FPFormat

        rt = RaptorRuntime()
        policy = PolicySpec.amr_cutoff(2, modules=("advection", "diffusion")).build(
            FPFormat(8, 4), rt
        )
        via_policy = bubble_workload.run(policy=policy, runtime=rt)
        via_strategy = bubble_workload.run_strategy("cutoff-2", 4)
        assert via_policy.metadata["strategy"] == "cutoff-2"
        assert np.array_equal(via_policy.state["phi"], via_strategy.state["phi"])

    def test_module_policy_not_covering_operators_runs_full_precision(self, bubble_workload):
        from repro.core.fpformat import FPFormat

        rt = RaptorRuntime()
        policy = PolicySpec.module("hydro").build(FPFormat(8, 4), rt)
        out = bubble_workload.run(policy=policy, runtime=rt)
        assert out.metadata["strategy"] == "none"
        ref = bubble_workload.run()
        assert np.array_equal(out.state["phi"], ref.state["phi"])

    def test_single_operator_policy_labelled_distinctly(self, bubble_workload):
        from repro.core.fpformat import FPFormat

        rt = RaptorRuntime()
        policy = PolicySpec.module("advection").build(FPFormat(8, 4), rt)
        out = bubble_workload.run(policy=policy, runtime=rt)
        # only one operator family truncated: not a Figure 1 strategy, so
        # the label records the actual coverage instead of "everywhere"
        assert out.metadata["strategy"] == "everywhere[advection]"
        mods = rt.module_ops()
        assert mods["advection"].truncated > 0
        assert mods.get("diffusion") is None or mods["diffusion"].truncated == 0
