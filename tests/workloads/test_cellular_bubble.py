"""Integration tests for the Cellular and Bubble workloads."""
import numpy as np
import pytest

from repro.core import RaptorRuntime
from repro.workloads import (
    BubbleExperimentConfig,
    BubbleWorkload,
    CellularConfig,
    CellularWorkload,
    STRATEGIES,
)
from repro.incomp import BubbleConfig


@pytest.fixture(scope="module")
def cellular():
    return CellularWorkload(CellularConfig(n_cells=48, n_steps=15))


class TestCellular:
    def test_reference_run_converges_and_detonates(self, cellular):
        result = cellular.run()
        assert result.eos_converged
        assert result.failed_newton_steps == 0
        assert result.total_newton_calls == 15
        assert result.final_burned_fraction > 0.01
        assert result.detonation_propagated

    def test_front_positions_monotone(self, cellular):
        result = cellular.run()
        fronts = np.array(result.front_positions)
        assert np.all(np.diff(fronts) >= -1e-9)

    def test_eos_truncation_narrow_mantissa_breaks_convergence(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(12, runtime=rt)
        result = cellular.run(policy=policy, runtime=rt, n_steps=6)
        assert not result.eos_converged
        assert result.failed_newton_steps > 0
        assert rt.ops.truncated > 0

    def test_eos_truncation_wide_mantissa_still_converges(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(50, runtime=rt)
        result = cellular.run(policy=policy, runtime=rt, n_steps=6)
        assert result.eos_converged

    def test_only_eos_module_is_truncated(self, cellular):
        rt = RaptorRuntime()
        policy = cellular.eos_policy(12, runtime=rt)
        cellular.run(policy=policy, runtime=rt, n_steps=4)
        mods = rt.module_ops()
        assert mods["eos"].truncated > 0
        assert mods["eos"].full == 0
        assert mods.get("burn") is None or mods["burn"].truncated == 0


@pytest.fixture(scope="module")
def bubble_workload():
    cfg = BubbleExperimentConfig(
        solver=BubbleConfig(
            nx=20, ny=30, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
            reynolds=700.0, advection_scheme="upwind", reinit_interval=4,
        ),
        spin_up_time=0.05,
        truncation_time=0.08,
        snapshot_times=(0.04, 0.08),
        fixed_dt=0.004,
    )
    return BubbleWorkload(cfg)


class TestBubble:
    def test_unknown_strategy_rejected(self, bubble_workload):
        with pytest.raises(ValueError):
            bubble_workload.run("bogus", 12)

    def test_reference_run_produces_snapshots(self, bubble_workload):
        ref = bubble_workload.run("none", 52)
        assert len(ref.snapshots) >= 2
        assert ref.fragments >= 1
        assert ref.gas_volume > 0
        assert all(np.all(np.isfinite(phi)) for phi in ref.snapshots.values())

    def test_spun_up_state_reused_between_runs(self, bubble_workload):
        a = bubble_workload.run("none", 52)
        b = bubble_workload.run("none", 52)
        t = max(a.snapshots)
        assert np.array_equal(a.snapshots[t], b.snapshots[t])

    def test_truncation_everywhere_perturbs_interface(self, bubble_workload):
        ref = bubble_workload.run("none", 52)
        low = bubble_workload.run("everywhere", 4)
        assert low.runtime.ops.truncated > 0
        assert low.interface_deviation(ref) > 0.0

    def test_moderate_precision_closer_than_low_precision(self, bubble_workload):
        ref = bubble_workload.run("none", 52)
        low = bubble_workload.run("everywhere", 4)
        mid = bubble_workload.run("everywhere", 12)
        assert mid.interface_deviation(ref) <= low.interface_deviation(ref)

    def test_cutoff_strategy_closer_than_everywhere(self, bubble_workload):
        ref = bubble_workload.run("none", 52)
        everywhere = bubble_workload.run("everywhere", 4)
        cutoff = bubble_workload.run("cutoff-2", 4)
        assert cutoff.interface_deviation(ref) <= everywhere.interface_deviation(ref) + 1e-12

    def test_strategies_tuple_contents(self):
        assert STRATEGIES == ("none", "everywhere", "cutoff-1", "cutoff-2")
