"""Tests for repro.core.fpformat."""
import pytest

from repro.core import FP16, FP32, FP64, BF16, FP8_E5M2, FPFormat, parse_truncation_spec


class TestFPFormat:
    def test_fp64_constants(self):
        assert FP64.exp_bits == 11
        assert FP64.man_bits == 52
        assert FP64.bias == 1023
        assert FP64.emax == 1023
        assert FP64.emin == -1022
        assert FP64.precision == 53
        assert FP64.is_fp64()

    def test_fp32_constants(self):
        assert FP32.bias == 127
        assert FP32.emin == -126
        assert FP32.eps == 2.0 ** -23
        assert FP32.max_value == pytest.approx(3.4028234663852886e38)
        assert FP32.min_normal == pytest.approx(1.1754943508222875e-38)
        assert not FP32.is_fp64()

    def test_fp16_constants(self):
        assert FP16.max_value == 65504.0
        assert FP16.min_normal == 2.0 ** -14
        assert FP16.min_subnormal == 2.0 ** -24
        assert FP16.total_bits == 16

    def test_bf16_and_fp8(self):
        assert BF16.exp_bits == 8 and BF16.man_bits == 7
        assert FP8_E5M2.total_bits == 8

    def test_spec_string(self):
        assert FPFormat(5, 14).spec() == "5_14"

    def test_invalid_exp_bits(self):
        with pytest.raises(ValueError):
            FPFormat(0, 10)
        with pytest.raises(ValueError):
            FPFormat(12, 10)

    def test_invalid_man_bits(self):
        with pytest.raises(ValueError):
            FPFormat(5, -1)
        with pytest.raises(ValueError):
            FPFormat(5, 53)

    def test_frozen(self):
        with pytest.raises(Exception):
            FP32.exp_bits = 9  # type: ignore[misc]


class TestParseTruncationSpec:
    def test_paper_example(self):
        spec = parse_truncation_spec("64_to_5_14;32_to_3_8")
        assert spec[64] == FPFormat(5, 14)
        assert spec[32] == FPFormat(3, 8)

    def test_single_entry(self):
        spec = parse_truncation_spec("64_to_8_23")
        assert list(spec) == [64]
        assert spec[64].man_bits == 23

    def test_whitespace_and_trailing_separator(self):
        spec = parse_truncation_spec(" 64_to_5_10 ; ")
        assert spec[64] == FPFormat(5, 10)

    @pytest.mark.parametrize(
        "bad",
        ["", "64_5_10", "48_to_5_10", "64_to_5", "64_to_a_b", "sixtyfour_to_5_10"],
    )
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_truncation_spec(bad)
