"""Tests for TruncationConfig (scope/mode/format configuration)."""
import pytest

from repro.core import FP64, FPFormat, Mode, Scope, TruncationConfig


class TestConstruction:
    def test_default_is_noop(self):
        cfg = TruncationConfig()
        assert cfg.is_noop()
        assert cfg.fmt == FP64

    def test_mantissa_constructor(self):
        cfg = TruncationConfig.mantissa(14, exp_bits=5)
        assert cfg.fmt == FPFormat(5, 14)
        assert not cfg.is_noop()

    def test_mantissa_constructor_for_fp32_operands(self):
        cfg = TruncationConfig.mantissa(8, exp_bits=3, from_width=32)
        assert cfg.target_for(32) == FPFormat(3, 8)
        assert cfg.target_for(64) is None
        # the 64-bit fallback format is FP64 when no 64-bit target is given
        assert cfg.fmt == FP64

    def test_from_spec_paper_flag(self):
        cfg = TruncationConfig.from_spec("64_to_5_14;32_to_3_8", mode="mem", scope="function")
        assert cfg.targets[64] == FPFormat(5, 14)
        assert cfg.targets[32] == FPFormat(3, 8)
        assert cfg.mode == Mode.MEM
        assert cfg.scope == Scope.FUNCTION

    def test_disabled_config_is_noop(self):
        cfg = TruncationConfig.mantissa(10, exp_bits=5, enabled=False)
        assert cfg.is_noop()


class TestDescribe:
    def test_describe_mentions_targets_and_mode(self):
        cfg = TruncationConfig.from_spec("64_to_5_14")
        text = cfg.describe()
        assert "e5m14" in text
        assert "op" in text
        assert "program" in text

    def test_enum_values(self):
        assert Mode("op") == Mode.OP
        assert Mode("mem") == Mode.MEM
        assert Scope("file") == Scope.FILE
        with pytest.raises(ValueError):
            Mode("bogus")


class TestDefaults:
    def test_counting_enabled_by_default(self):
        cfg = TruncationConfig.mantissa(10, exp_bits=5)
        assert cfg.count_ops and cfg.track_memory
        assert not cfg.track_errors
        assert cfg.optimized

    def test_mem_mode_threshold_default(self):
        cfg = TruncationConfig.mantissa(10, exp_bits=5, mode=Mode.MEM)
        assert cfg.deviation_threshold == 1e-6
