"""Tests for op-mode numerics contexts."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FP16,
    FP32,
    FPFormat,
    FullPrecisionContext,
    RaptorRuntime,
    TruncatedContext,
    TruncationConfig,
    make_context,
    quantize,
)


@pytest.fixture()
def runtime():
    return RaptorRuntime("test")


class TestFullPrecisionContext:
    def test_add_is_exact(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime)
        a = np.array([0.1, 0.2])
        b = np.array([0.3, 0.4])
        assert np.array_equal(ctx.add(a, b), a + b)

    def test_counts_full_ops(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime)
        ctx.mul(np.ones(10), 2.0)
        assert runtime.ops.full == 10
        assert runtime.ops.truncated == 0

    def test_counts_memory(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime)
        ctx.add(np.ones(4), np.ones(4))
        # 4 result + 4 + 4 operands = 12 doubles
        assert runtime.mem.full == 12 * 8

    def test_counting_can_be_disabled(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime, count_ops=False, track_memory=False)
        ctx.add(np.ones(10), 1.0)
        assert runtime.ops.total == 0
        assert runtime.mem.total == 0

    def test_reduction_counts_n_minus_1(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime)
        out = ctx.sum(np.ones(10))
        assert out == 10.0
        assert runtime.ops.full == 9

    def test_module_attribution(self, runtime):
        ctx = FullPrecisionContext(runtime=runtime, module="hydro")
        ctx.add(np.ones(3), 1.0)
        assert runtime.module_ops()["hydro"].full == 3


class TestTruncatedContext:
    def test_results_are_representable(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        out = ctx.add(np.array([0.1, 0.2, 0.3]), np.array([0.7, 0.11, 1e-9]))
        assert np.array_equal(out, quantize(out, FP16))

    def test_add_matches_manual_emulation(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        a, b = np.array([1.2345]), np.array([6.789e-3])
        expected = quantize(np.asarray(a) + np.asarray(b), FP16)
        assert np.array_equal(ctx.add(a, b), expected)

    def test_counts_truncated_ops(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime, module="hydro")
        ctx.mul(np.ones(7), 3.0)
        assert runtime.ops.truncated == 7
        assert runtime.module_ops()["hydro"].truncated == 7

    def test_sqrt_and_unary(self, runtime):
        ctx = TruncatedContext(FP32, runtime=runtime)
        out = ctx.sqrt(np.array([2.0]))
        assert float(out[0]) == float(np.float32(np.sqrt(2.0)))

    def test_div_by_zero_gives_inf(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        out = ctx.div(np.array([1.0]), np.array([0.0]))
        assert np.isinf(out).all()

    def test_naive_and_optimized_agree_on_representable_inputs(self, runtime):
        fmt = FPFormat(8, 6)
        a = quantize(np.linspace(-3, 3, 50), fmt)
        b = quantize(np.logspace(-3, 3, 50), fmt)
        naive = TruncatedContext(fmt, runtime=runtime, optimized=False)
        opt = TruncatedContext(fmt, runtime=runtime, optimized=True)
        assert np.array_equal(naive.mul(a, b), opt.mul(a, b))
        assert np.array_equal(naive.add(a, b), opt.add(a, b))

    def test_naive_quantizes_unrepresentable_inputs(self, runtime):
        fmt = FPFormat(8, 4)
        naive = TruncatedContext(fmt, runtime=runtime, optimized=False)
        # 1 + 2^-6 is not representable; the naive path rounds it before adding 0
        out = naive.add(np.array([1.0 + 2.0 ** -6]), np.array([0.0]))
        assert float(out[0]) == 1.0

    def test_track_errors_records_location_stats(self, runtime):
        ctx = TruncatedContext(FPFormat(8, 4), runtime=runtime, track_errors=True)
        ctx.add(np.full(5, 1.0), np.full(5, 2.0 ** -7), label="tiny-add")
        stats = runtime.location_stats()
        assert len(stats) == 1
        loc, st_ = stats[0]
        assert loc.label == "tiny-add"
        assert st_.count == 5
        assert st_.max_abs_err > 0

    def test_reduce_rounds_and_counts(self, runtime):
        ctx = TruncatedContext(FPFormat(8, 4), runtime=runtime)
        out = ctx.sum(np.full(16, 1.0 + 2.0 ** -6))
        assert runtime.ops.truncated == 15
        assert float(out) == float(quantize(np.sum(np.full(16, 1.0 + 2.0 ** -6)), FPFormat(8, 4)))

    def test_const_is_quantized(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        assert float(ctx.const(0.1)) == float(np.float16(0.1))

    def test_fma_and_axpy(self, runtime):
        ctx = TruncatedContext(FP32, runtime=runtime)
        out = ctx.fma(np.array([2.0]), np.array([3.0]), np.array([1.0]))
        assert float(out[0]) == 7.0
        out = ctx.axpy(2.0, np.array([1.0]), np.array([1.0]))
        assert float(out[0]) == 3.0

    def test_dot(self, runtime):
        ctx = TruncatedContext(FP32, runtime=runtime)
        assert float(ctx.dot(np.array([1.0, 2.0]), np.array([3.0, 4.0]))) == 11.0

    def test_structural_helpers_not_counted(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        before = runtime.ops.truncated
        ctx.where(np.array([True, False]), np.ones(2), np.zeros(2))
        ctx.stack([np.ones(2), np.zeros(2)])
        ctx.concatenate([np.ones(2), np.zeros(2)])
        ctx.zeros_like(np.ones(3))
        assert runtime.ops.truncated == before

    def test_minimum_maximum(self, runtime):
        ctx = TruncatedContext(FP16, runtime=runtime)
        assert float(ctx.maximum(np.array([1.0]), np.array([2.0]))[0]) == 2.0
        assert float(ctx.minimum(np.array([1.0]), np.array([2.0]))[0]) == 1.0


class TestMakeContext:
    def test_none_gives_full_precision(self):
        assert isinstance(make_context(None), FullPrecisionContext)

    def test_noop_config_gives_full_precision(self):
        cfg = TruncationConfig()  # default: 64 -> FP64
        assert isinstance(make_context(cfg), FullPrecisionContext)

    def test_disabled_config_gives_full_precision(self):
        cfg = TruncationConfig.mantissa(10, 5, enabled=False)
        assert isinstance(make_context(cfg), FullPrecisionContext)

    def test_truncating_config(self):
        cfg = TruncationConfig.mantissa(10, exp_bits=5)
        ctx = make_context(cfg)
        assert isinstance(ctx, TruncatedContext)
        assert ctx.fmt == FP16

    def test_from_spec(self):
        cfg = TruncationConfig.from_spec("64_to_5_14")
        ctx = make_context(cfg)
        assert ctx.fmt.man_bits == 14


# ---------------------------------------------------------------------------
# property tests: emulated arithmetic error bounds
# ---------------------------------------------------------------------------
@given(
    a=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    b=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_truncated_add_relative_error_bounded(a, b):
    fmt = FPFormat(8, 10)
    ctx = TruncatedContext(fmt, runtime=RaptorRuntime())
    exact = a + b
    out = float(ctx.add(np.float64(a), np.float64(b)))
    if exact != 0 and np.isfinite(out) and abs(exact) > fmt.min_normal:
        assert abs(out - exact) / abs(exact) <= 2.0 ** (-fmt.man_bits)


@given(
    a=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_truncated_sqrt_monotone(a):
    fmt = FPFormat(5, 8)
    ctx = TruncatedContext(fmt, runtime=RaptorRuntime())
    lo = float(ctx.sqrt(np.float64(a)))
    hi = float(ctx.sqrt(np.float64(a * 4.0)))
    assert hi >= lo
