"""Tests for selective / dynamic truncation policies."""
import numpy as np
import pytest

from repro.core import (
    AMRCutoffPolicy,
    FullPrecisionContext,
    GlobalPolicy,
    Mode,
    ModulePolicy,
    NoTruncationPolicy,
    PredicatePolicy,
    RaptorRuntime,
    ShadowContext,
    TruncatedContext,
    TruncationConfig,
)


@pytest.fixture()
def runtime():
    return RaptorRuntime("selective-test")


@pytest.fixture()
def cfg():
    return TruncationConfig.mantissa(8, exp_bits=8)


class TestNoTruncationPolicy:
    def test_always_full_precision(self, runtime):
        pol = NoTruncationPolicy(runtime=runtime)
        assert not pol.should_truncate(module="hydro", level=1, max_level=4)
        assert isinstance(pol.context_for(module="hydro"), FullPrecisionContext)


class TestGlobalPolicy:
    def test_truncates_everything(self, runtime, cfg):
        pol = GlobalPolicy(cfg, runtime=runtime)
        for level in (1, 2, 3, 4):
            assert pol.should_truncate(module="hydro", level=level, max_level=4)
        assert isinstance(pol.context_for(module="hydro", level=4, max_level=4), TruncatedContext)

    def test_noop_config_falls_back_to_full(self, runtime):
        pol = GlobalPolicy(TruncationConfig(), runtime=runtime)
        assert isinstance(pol.context_for(module="hydro"), FullPrecisionContext)

    def test_context_cache(self, runtime, cfg):
        pol = GlobalPolicy(cfg, runtime=runtime)
        assert pol.context_for(module="hydro") is pol.context_for(module="hydro")


class TestAMRCutoffPolicy:
    def test_m0_truncates_all_levels(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=0, runtime=runtime)
        assert all(pol.should_truncate(level=lv, max_level=4) for lv in range(1, 5))

    def test_m1_excludes_finest_level(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=1, runtime=runtime)
        assert pol.should_truncate(level=3, max_level=4)
        assert not pol.should_truncate(level=4, max_level=4)

    def test_m2_excludes_two_finest_levels(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=2, runtime=runtime)
        assert pol.should_truncate(level=2, max_level=4)
        assert not pol.should_truncate(level=3, max_level=4)
        assert not pol.should_truncate(level=4, max_level=4)

    def test_module_restriction(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=0, modules=["hydro"], runtime=runtime)
        assert pol.should_truncate(module="hydro", level=1, max_level=4)
        assert not pol.should_truncate(module="eos", level=1, max_level=4)

    def test_missing_amr_info_behaves_global(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=2, runtime=runtime)
        assert pol.should_truncate(module="hydro")

    def test_negative_cutoff_rejected(self, runtime, cfg):
        with pytest.raises(ValueError):
            AMRCutoffPolicy(cfg, cutoff=-1, runtime=runtime)

    def test_context_types_per_level(self, runtime, cfg):
        pol = AMRCutoffPolicy(cfg, cutoff=1, runtime=runtime)
        assert isinstance(pol.context_for(module="hydro", level=2, max_level=4), TruncatedContext)
        assert isinstance(pol.context_for(module="hydro", level=4, max_level=4), FullPrecisionContext)

    def test_describe(self, runtime, cfg):
        text = AMRCutoffPolicy(cfg, cutoff=2, modules=["hydro"], runtime=runtime).describe()
        assert "M-2" in text and "hydro" in text


class TestModulePolicy:
    def test_only_listed_modules_truncated(self, runtime, cfg):
        pol = ModulePolicy(cfg, modules=["eos"], runtime=runtime)
        assert pol.should_truncate(module="eos")
        assert not pol.should_truncate(module="hydro")
        assert not pol.should_truncate(module=None)

    def test_mem_mode_config_yields_shadow_context(self, runtime):
        cfg = TruncationConfig.mantissa(8, exp_bits=8, mode=Mode.MEM)
        pol = ModulePolicy(cfg, modules=["hydro"], runtime=runtime)
        assert isinstance(pol.context_for(module="hydro"), ShadowContext)


class TestPredicatePolicy:
    def test_state_dependent_truncation(self, runtime, cfg):
        # truncate only where the state reports a smooth solution
        pol = PredicatePolicy(
            cfg,
            lambda module, level, max_level, state: bool(state and state.get("smooth", False)),
            runtime=runtime,
        )
        assert pol.should_truncate(state={"smooth": True})
        assert not pol.should_truncate(state={"smooth": False})
        assert not pol.should_truncate(state=None)

    def test_time_dependent_truncation(self, runtime, cfg):
        pol = PredicatePolicy(
            cfg,
            lambda module, level, max_level, state: state is not None and state.get("t", 0.0) > 1.0,
            runtime=runtime,
        )
        assert not pol.should_truncate(state={"t": 0.5})
        assert pol.should_truncate(state={"t": 2.0})


class TestPolicyOpAccounting:
    def test_truncated_fraction_reflects_cutoff(self, runtime, cfg):
        """Coarser cutoffs must truncate a smaller share of the operations."""
        def run(cutoff):
            rt = RaptorRuntime()
            pol = AMRCutoffPolicy(TruncationConfig.mantissa(8, exp_bits=8), cutoff=cutoff, runtime=rt)
            # synthetic workload: blocks at levels 1..4, more blocks at finer levels
            for level, nblocks in ((1, 1), (2, 2), (3, 4), (4, 8)):
                for _ in range(nblocks):
                    ctx = pol.context_for(module="hydro", level=level, max_level=4)
                    ctx.add(np.ones(100), 1.0)
            return rt.ops.truncated_fraction

        fractions = [run(c) for c in (0, 1, 2, 3)]
        assert fractions[0] == 1.0
        assert all(fractions[i] > fractions[i + 1] for i in range(3))
