"""Tests for the profiling runtime and location registry."""
import numpy as np

from repro.core import (
    LocationRegistry,
    RaptorRuntime,
    SourceLocation,
    capture_location,
    get_runtime,
    set_runtime,
)


class TestSourceLocation:
    def test_short_format(self):
        loc = SourceLocation("/a/b/kernel.py", 42)
        assert loc.short() == "kernel.py:42"

    def test_short_with_label(self):
        loc = SourceLocation("/a/b/kernel.py", 42, "hydro:riemann")
        assert "hydro:riemann" in loc.short()

    def test_capture_location_points_here(self):
        loc = capture_location(depth=1)
        assert loc.filename.endswith("test_runtime.py")
        assert loc.lineno > 0


class TestLocationRegistry:
    def test_intern_is_stable(self):
        reg = LocationRegistry()
        loc = SourceLocation("f.py", 1)
        assert reg.intern(loc) == reg.intern(loc)
        assert len(reg) == 1

    def test_distinct_locations_get_distinct_ids(self):
        reg = LocationRegistry()
        i = reg.intern(SourceLocation("f.py", 1))
        j = reg.intern(SourceLocation("f.py", 2))
        assert i != j
        assert reg.lookup(i) == SourceLocation("f.py", 1)

    def test_clear(self):
        reg = LocationRegistry()
        reg.intern(SourceLocation("f.py", 1))
        reg.clear()
        assert len(reg) == 0


class TestRuntimeCounters:
    def test_op_counts_and_fraction(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(80)
        rt.record_full_ops(20)
        assert rt.ops.truncated == 80
        assert rt.ops.full == 20
        assert rt.ops.truncated_fraction == 0.8

    def test_zero_counts(self):
        rt = RaptorRuntime()
        assert rt.ops.truncated_fraction == 0.0
        assert rt.mem.truncated_fraction == 0.0

    def test_negative_and_zero_updates_ignored(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(0)
        rt.record_truncated_ops(-5)
        rt.record_full_ops(-1)
        rt.record_truncated_bytes(-1)
        assert rt.ops.total == 0
        assert rt.mem.total == 0

    def test_memory_counters(self):
        rt = RaptorRuntime()
        rt.record_truncated_bytes(100)
        rt.record_full_bytes(300)
        assert rt.mem.truncated_fraction == 0.25

    def test_per_module_accounting(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(10, module="hydro")
        rt.record_full_ops(30, module="hydro")
        rt.record_truncated_ops(5, module="eos")
        mods = rt.module_ops()
        assert mods["hydro"].truncated == 10
        assert mods["hydro"].full == 30
        assert mods["eos"].truncated == 5

    def test_giga_flops(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(2_000_000_000)
        t, f = rt.giga_flops()
        assert t == 2.0 and f == 0.0

    def test_reset(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(10, location=SourceLocation("f.py", 1), module="m")
        rt.record_full_bytes(8)
        rt.reset()
        assert rt.ops.total == 0
        assert rt.mem.total == 0
        assert rt.location_stats() == []
        assert rt.module_ops() == {}


class TestLocationStats:
    def test_error_statistics_accumulate(self):
        rt = RaptorRuntime()
        loc = SourceLocation("kernel.py", 10, "add")
        rt.record_truncated_ops(4, location=loc, abs_err=np.array([0.0, 1.0, 2.0, 1.0]))
        rt.record_truncated_ops(2, location=loc, abs_err=np.array([4.0, 0.0]))
        ((got_loc, stats),) = rt.location_stats()
        assert got_loc == loc
        assert stats.count == 6
        assert stats.sum_abs_err == 8.0
        assert stats.max_abs_err == 4.0
        assert stats.mean_abs_err == 8.0 / 6

    def test_flagged_ordering(self):
        rt = RaptorRuntime()
        a = SourceLocation("kernel.py", 1, "a")
        b = SourceLocation("kernel.py", 2, "b")
        rt.record_truncated_ops(10, location=a, flagged=1)
        rt.record_truncated_ops(10, location=b, flagged=7)
        stats = rt.location_stats()
        assert stats[0][0] == b

    def test_nonfinite_errors_ignored(self):
        rt = RaptorRuntime()
        loc = SourceLocation("kernel.py", 3)
        rt.record_truncated_ops(3, location=loc, abs_err=np.array([np.inf, np.nan, 1.0]))
        ((_, stats),) = rt.location_stats()
        assert stats.max_abs_err == 1.0

    def test_snapshot_roundtrip(self):
        rt = RaptorRuntime("exp1")
        rt.record_truncated_ops(5, location=SourceLocation("f.py", 1, "x"))
        rt.record_full_ops(5)
        snap = rt.snapshot()
        assert snap["name"] == "exp1"
        assert snap["ops"] == {"truncated": 5, "full": 5}
        assert len(snap["locations"]) == 1


class TestDefaultRuntime:
    def test_get_set_runtime(self):
        original = get_runtime()
        try:
            mine = RaptorRuntime("mine")
            previous = set_runtime(mine)
            assert previous is original
            assert get_runtime() is mine
        finally:
            set_runtime(original)
