"""Property-based tests of the IEEE semantics of core/quantize.py.

Hypothesis sweeps all STANDARD_FORMATS and every rounding mode, pinning the
contracts every downstream experiment relies on:

* round-trip idempotence: quantising a quantised value changes nothing,
* special values: NaN propagates, signed zeros survive, magnitudes beyond
  the format overflow to infinity under round-to-nearest,
* ulp is weakly monotone in |x| and consistent with the quantisation error.
"""
import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    STANDARD_FORMATS,
    RoundingMode,
    is_representable,
    quantization_error,
    quantize,
    ulp,
)

FORMATS = sorted(STANDARD_FORMATS.values(), key=lambda f: (f.exp_bits, f.man_bits))
FORMAT_IDS = [f.name for f in FORMATS]
ROUNDINGS = list(RoundingMode.ALL)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False, width=64)
format_st = st.sampled_from(FORMATS)
rounding_st = st.sampled_from(ROUNDINGS)


# ---------------------------------------------------------------------------
# round-trip idempotence
# ---------------------------------------------------------------------------
@given(x=finite_doubles, fmt=format_st, rounding=rounding_st)
@settings(max_examples=400, deadline=None)
def test_quantize_is_idempotent(x, fmt, rounding):
    once = quantize(x, fmt, rounding)
    twice = quantize(once, fmt, rounding)
    np.testing.assert_array_equal(once, twice)


@given(x=finite_doubles, fmt=format_st, rounding=rounding_st)
@settings(max_examples=200, deadline=None)
def test_quantized_value_is_representable(x, fmt, rounding):
    q = quantize(x, fmt, rounding)
    if np.isfinite(q):
        assert bool(is_representable(q, fmt))


# ---------------------------------------------------------------------------
# special values
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_nan_propagates(fmt, rounding):
    q = quantize(np.nan, fmt, rounding)
    assert np.isnan(q)
    arr = quantize(np.array([1.0, np.nan, -2.0]), fmt, rounding)
    assert np.isnan(arr[1]) and not np.isnan(arr[0]) and not np.isnan(arr[2])


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_signed_zeros_survive(fmt, rounding):
    plus = quantize(0.0, fmt, rounding)
    minus = quantize(-0.0, fmt, rounding)
    assert plus == 0.0 and not np.signbit(plus)
    assert minus == 0.0 and np.signbit(minus)


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
def test_infinities_pass_through(fmt):
    for rounding in ROUNDINGS:
        assert quantize(np.inf, fmt, rounding) == np.inf
        assert quantize(-np.inf, fmt, rounding) == -np.inf


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
def test_overflow_to_inf_nearest(fmt):
    big = fmt.max_value * 2.0
    assert quantize(big, fmt) == (np.inf if not fmt.is_fp64() else big)
    if not fmt.is_fp64():
        assert quantize(-big, fmt) == -np.inf


@pytest.mark.parametrize("fmt", [f for f in FORMATS if not f.is_fp64()], ids=[f.name for f in FORMATS if not f.is_fp64()])
def test_overflow_is_clamped_toward_zero(fmt):
    big = fmt.max_value * 2.0
    assert quantize(big, fmt, RoundingMode.TOWARD_ZERO) == fmt.max_value
    assert quantize(-big, fmt, RoundingMode.TOWARD_ZERO) == -fmt.max_value
    # directed modes clamp on the side they cannot cross
    assert quantize(big, fmt, RoundingMode.DOWN) == fmt.max_value
    assert quantize(-big, fmt, RoundingMode.UP) == -fmt.max_value
    assert quantize(big, fmt, RoundingMode.UP) == np.inf
    assert quantize(-big, fmt, RoundingMode.DOWN) == -np.inf


@given(x=finite_doubles, fmt=format_st)
@settings(max_examples=200, deadline=None)
def test_directed_rounding_brackets_nearest(x, fmt):
    down = quantize(x, fmt, RoundingMode.DOWN)
    up = quantize(x, fmt, RoundingMode.UP)
    assert down <= x or down == -np.inf
    assert up >= x or up == np.inf
    tz = quantize(x, fmt, RoundingMode.TOWARD_ZERO)
    assert abs(tz) <= abs(x)


# ---------------------------------------------------------------------------
# ulp monotonicity and error bound
# ---------------------------------------------------------------------------
@given(
    x=finite_doubles,
    y=finite_doubles,
    fmt=format_st,
)
@settings(max_examples=400, deadline=None)
def test_ulp_monotone_in_magnitude(x, y, fmt):
    lo, hi = sorted((abs(x), abs(y)))
    assert float(ulp(lo, fmt)) <= float(ulp(hi, fmt))


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
def test_ulp_at_one_is_machine_epsilon(fmt):
    assert float(ulp(1.0, fmt)) == fmt.eps


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
def test_ulp_of_zero_is_smallest_subnormal(fmt):
    assert float(ulp(0.0, fmt)) == fmt.min_subnormal
    assert math.isnan(float(ulp(np.inf, fmt)))


@given(x=finite_doubles, fmt=format_st)
@settings(max_examples=400, deadline=None)
def test_nearest_error_within_half_ulp(x, fmt):
    assume(abs(x) <= fmt.max_value)
    err = float(quantization_error(x, fmt))
    # half-ulp bound of round-to-nearest; ulp() uses the target's spacing at
    # |x|, which is exact for normals and the subnormal spacing below them
    assert err <= 0.5 * float(ulp(x, fmt)) * (1 + 1e-12)
