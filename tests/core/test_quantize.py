"""Tests for the quantiser, including hypothesis property tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FP16,
    FP32,
    FP64,
    FPFormat,
    RoundingMode,
    is_representable,
    quantization_error,
    quantize,
    ulp,
)

SMALL_FORMATS = [FPFormat(5, m) for m in (2, 4, 8, 10)] + [FPFormat(8, 7), FPFormat(8, 23)]


class TestAgainstNumpyCasts:
    """Quantisation to fp16/fp32 must agree exactly with IEEE casts."""

    def _samples(self):
        rng = np.random.default_rng(1234)
        x = rng.normal(size=5000) * np.logspace(-12, 12, 5000)
        return np.concatenate([x, -x, [0.0, 1.0, -1.0, 0.1, 1e30, 1e-30]])

    def test_fp32_matches_cast(self):
        x = self._samples()
        assert np.array_equal(quantize(x, FP32), x.astype(np.float32).astype(np.float64))

    def test_fp16_matches_cast(self):
        x = self._samples()
        with np.errstate(over="ignore"):
            ref = x.astype(np.float16).astype(np.float64)
        assert np.array_equal(quantize(x, FP16), ref)


class TestSpecialValues:
    def test_zero_preserved(self):
        assert float(quantize(0.0, FP16)) == 0.0
        q = quantize(-0.0, FP16)
        assert float(q) == 0.0 and np.signbit(q)

    def test_nan_propagates(self):
        assert np.isnan(quantize(np.nan, FP16))

    def test_inf_preserved(self):
        assert float(quantize(np.inf, FP16)) == np.inf
        assert float(quantize(-np.inf, FP16)) == -np.inf

    def test_overflow_to_inf(self):
        assert float(quantize(1e10, FP16)) == np.inf
        assert float(quantize(-1e10, FP16)) == -np.inf

    def test_max_value_is_finite(self):
        assert float(quantize(FP16.max_value, FP16)) == FP16.max_value

    def test_underflow_to_zero(self):
        # below half of the smallest subnormal
        assert float(quantize(FP16.min_subnormal * 0.49, FP16)) == 0.0

    def test_subnormal_preserved(self):
        assert float(quantize(FP16.min_subnormal, FP16)) == FP16.min_subnormal

    def test_fp64_identity(self):
        x = np.array([1.1, -2.7, 3e300, 5e-312, np.inf, np.nan])
        q = quantize(x, FP64)
        assert np.array_equal(q[:-1], x[:-1]) and np.isnan(q[-1])


class TestRoundingModes:
    def test_tie_to_even_down(self):
        fmt = FPFormat(8, 4)
        # 1 + 2^-5 is exactly halfway between 1.0 and 1 + 2^-4: round to even (1.0)
        assert float(quantize(1.0 + 2.0 ** -5, fmt)) == 1.0

    def test_tie_to_even_up(self):
        fmt = FPFormat(8, 4)
        # 1 + 3*2^-5 is halfway between 1+2^-4 and 1+2^-3: round to even (1.125)
        assert float(quantize(1.0 + 3 * 2.0 ** -5, fmt)) == 1.125

    def test_toward_zero(self):
        fmt = FPFormat(8, 4)
        x = 1.0 + 2.0 ** -5 + 2.0 ** -9
        assert float(quantize(x, fmt, RoundingMode.TOWARD_ZERO)) == 1.0
        assert float(quantize(-x, fmt, RoundingMode.TOWARD_ZERO)) == -1.0

    def test_up_down(self):
        fmt = FPFormat(8, 4)
        x = 1.0 + 2.0 ** -6
        assert float(quantize(x, fmt, RoundingMode.UP)) == 1.0625
        assert float(quantize(x, fmt, RoundingMode.DOWN)) == 1.0
        assert float(quantize(-x, fmt, RoundingMode.UP)) == -1.0
        assert float(quantize(-x, fmt, RoundingMode.DOWN)) == -1.0625

    def test_toward_zero_clamps_overflow(self):
        assert float(quantize(1e10, FP16, RoundingMode.TOWARD_ZERO)) == FP16.max_value

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            quantize(1.0, FP16, "bogus")


class TestShapes:
    def test_scalar_returns_zero_d(self):
        q = quantize(3.14159, FP16)
        assert q.shape == ()

    def test_preserves_shape(self):
        x = np.ones((3, 4, 5)) * 0.1
        assert quantize(x, FP16).shape == (3, 4, 5)

    def test_does_not_mutate_input(self):
        x = np.array([0.1, 0.2, 0.3])
        x0 = x.copy()
        quantize(x, FP16)
        assert np.array_equal(x, x0)


class TestHelpers:
    def test_is_representable(self):
        assert bool(is_representable(1.0, FP16))
        assert bool(is_representable(0.5, FP16))
        assert not bool(is_representable(0.1, FP16))
        assert bool(is_representable(np.nan, FP16))

    def test_ulp_at_one(self):
        assert float(ulp(1.0, FP32)) == 2.0 ** -23
        assert float(ulp(1.0, FP16)) == 2.0 ** -10

    def test_ulp_subnormal_and_zero(self):
        assert float(ulp(0.0, FP16)) == FP16.min_subnormal
        assert float(ulp(FP16.min_subnormal, FP16)) == FP16.min_subnormal

    def test_quantization_error_bounded_by_half_ulp(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1.0, 2.0, size=1000)
        err = quantization_error(x, FP16)
        assert np.all(err <= 0.5 * ulp(x, FP16) + 1e-300)

    def test_quantization_error_inf_on_overflow(self):
        assert float(quantization_error(1e30, FP16)) == np.inf


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------
finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e200, max_value=1e200
)
formats = st.sampled_from(SMALL_FORMATS)


@given(x=finite_doubles, fmt=formats)
@settings(max_examples=300, deadline=None)
def test_idempotent(x, fmt):
    """Quantising twice equals quantising once."""
    q1 = quantize(x, fmt)
    q2 = quantize(q1, fmt)
    assert np.array_equal(q1, q2, equal_nan=True)


@given(x=finite_doubles, fmt=formats)
@settings(max_examples=300, deadline=None)
def test_error_within_half_ulp_or_overflow(x, fmt):
    q = float(quantize(x, fmt))
    if np.isinf(q):
        assert abs(x) > fmt.max_value
    else:
        assert abs(q - x) <= 0.5 * float(ulp(x, fmt)) * (1 + 1e-12)


@given(
    a=finite_doubles,
    b=finite_doubles,
    fmt=formats,
)
@settings(max_examples=300, deadline=None)
def test_monotonic(a, b, fmt):
    """Quantisation preserves ordering (is monotone non-decreasing)."""
    lo, hi = (a, b) if a <= b else (b, a)
    qlo, qhi = float(quantize(lo, fmt)), float(quantize(hi, fmt))
    assert qlo <= qhi


@given(x=finite_doubles, fmt=formats)
@settings(max_examples=300, deadline=None)
def test_sign_symmetry(x, fmt):
    """quantize(-x) == -quantize(x) for round-to-nearest-even."""
    assert float(quantize(-x, fmt)) == -float(quantize(x, fmt))


@given(x=finite_doubles, fmt=formats)
@settings(max_examples=200, deadline=None)
def test_representable_fixed_point(x, fmt):
    q = float(quantize(x, fmt))
    if np.isfinite(q):
        assert bool(is_representable(q, fmt))


@given(x=finite_doubles)
@settings(max_examples=200, deadline=None)
def test_wider_format_is_more_accurate(x):
    narrow = FPFormat(8, 7)
    wide = FPFormat(8, 23)
    err_narrow = abs(float(quantize(x, narrow)) - x)
    err_wide = abs(float(quantize(x, wide)) - x)
    if np.isfinite(err_narrow) and np.isfinite(err_wide):
        assert err_wide <= err_narrow
