"""Tests for mem-mode shadow tracking."""
import numpy as np
import pytest

from repro.core import (
    FP16,
    FPFormat,
    RaptorRuntime,
    ShadowArray,
    ShadowContext,
    TruncationConfig,
    from_shadow,
    quantize,
    to_shadow,
)


@pytest.fixture()
def runtime():
    return RaptorRuntime("memmode-test")


@pytest.fixture()
def ctx(runtime):
    return ShadowContext(FPFormat(8, 8), runtime=runtime, module="hydro", threshold=1e-3)


class TestLiftLower:
    def test_lift_quantizes_value_keeps_shadow(self, ctx):
        x = np.array([0.1, 0.2, 0.3])
        s = ctx.lift(x)
        assert np.array_equal(s.shadow, x)
        assert np.array_equal(s.value, quantize(x, ctx.fmt))

    def test_lower_returns_truncated_payload(self, ctx):
        x = np.array([0.1])
        assert np.array_equal(ctx.lower(ctx.lift(x)), quantize(x, ctx.fmt))

    def test_module_level_helpers(self, ctx):
        s = to_shadow(np.array([1.0]), ctx)
        assert isinstance(s, ShadowArray)
        assert np.array_equal(from_shadow(s), s.value)
        assert np.array_equal(from_shadow(np.array([2.0])), np.array([2.0]))

    def test_lift_existing_shadow_is_rebound(self, ctx):
        s = ctx.lift(np.array([1.0]))
        s2 = ctx.lift(s)
        assert np.array_equal(s2.value, s.value)


class TestShadowArithmetic:
    def test_dual_trajectories(self, ctx):
        a = ctx.lift(np.array([0.1] * 4))
        b = ctx.lift(np.array([0.2] * 4))
        c = a + b
        assert np.allclose(c.shadow, 0.3)
        assert np.array_equal(c.value, quantize(quantize(0.1 * np.ones(4), ctx.fmt) + quantize(0.2 * np.ones(4), ctx.fmt), ctx.fmt))

    def test_operators_route_through_context(self, ctx, runtime):
        a = ctx.lift(np.ones(3))
        _ = a + 1.0
        _ = 1.0 - a
        _ = a * 2.0
        _ = a / 2.0
        _ = -a
        _ = abs(a)
        _ = a ** 2
        assert runtime.ops.truncated == 3 * 7

    def test_deviation_grows_with_computation(self, ctx):
        x = ctx.lift(np.array([1.0 / 3.0]))
        for _ in range(20):
            x = x * 1.0000123
        assert float(x.deviation()[0]) > 0
        assert float(x.relative_deviation()[0]) > 0

    def test_comparisons_use_truncated_payload(self, ctx):
        a = ctx.lift(np.array([1.0, 2.0]))
        assert np.array_equal(a > 1.5, np.array([False, True]))
        assert np.array_equal(a <= 1.0, np.array([True, False]))

    def test_indexing_and_assignment(self, ctx):
        a = ctx.lift(np.arange(6, dtype=float))
        b = a[2:4]
        assert isinstance(b, ShadowArray)
        assert b.shape == (2,)
        a[0] = 5.0
        assert float(a.value[0]) == 5.0
        a[1] = ctx.lift(np.array(7.0))
        assert float(a.shadow[1]) == 7.0

    def test_shape_mismatch_raises(self, ctx):
        with pytest.raises(ValueError):
            ShadowArray(np.zeros(3), np.zeros(4), ctx)

    def test_reduction(self, ctx):
        a = ctx.lift(np.full(10, 0.1))
        s = ctx.sum(a)
        assert s.shadow == pytest.approx(1.0)

    def test_where_stack_concatenate(self, ctx):
        a = ctx.lift(np.ones(4))
        b = ctx.lift(np.zeros(4))
        w = ctx.where(np.array([True, False, True, False]), a, b)
        assert np.array_equal(w.value, [1, 0, 1, 0])
        st_ = ctx.stack([a, b])
        assert st_.shape == (2, 4)
        cat = ctx.concatenate([a, b])
        assert cat.shape == (8,)

    def test_zeros_full_like_and_asplain(self, ctx):
        a = ctx.lift(np.ones((2, 3)))
        assert ctx.zeros_like(a).shape == (2, 3)
        f = ctx.full_like(a, 2.5)
        assert np.all(f.shadow == 2.5)
        assert ctx.asplain(a).shape == (2, 3)


class TestFlaggingAndExclusion:
    def test_flags_deviating_operations(self, runtime):
        ctx = ShadowContext(FPFormat(5, 4), runtime=runtime, module="hydro", threshold=1e-4)
        x = ctx.lift(np.array([1.0 / 3.0] * 8))
        y = x * (1.0 / 3.0)
        _ = y * 3.0
        report = ctx.report()
        assert any(flagged > 0 for _, flagged, _, _ in report.entries)

    def test_no_flags_at_full_precision_operations(self, runtime):
        ctx = ShadowContext(FPFormat(11, 52), runtime=runtime, threshold=1e-12)
        x = ctx.lift(np.array([1.0 / 3.0] * 8))
        _ = (x * 0.77) + 0.1
        report = ctx.report()
        assert all(flagged == 0 for _, flagged, _, _ in report.entries)

    def test_excluded_module_runs_full_precision(self, runtime):
        ctx = ShadowContext(FPFormat(5, 2), runtime=runtime, module="recon", threshold=1e-9)
        ctx.exclude("recon")
        a = ctx.lift(np.array([0.123456789]))
        out = a * 1.0
        # value trajectory not truncated because module is excluded
        assert float(out.value[0]) == pytest.approx(float(out.shadow[0]))
        assert runtime.ops.full >= 1
        ctx.include("recon")
        out2 = a * 1.0
        assert float(out2.value[0]) != pytest.approx(float(out2.shadow[0]), abs=0.0)

    def test_scoped_view_shares_flags_and_exclusions(self, runtime):
        base = ShadowContext(FPFormat(5, 2), runtime=runtime, module="hydro", threshold=1e-9)
        recon = base.scoped("recon")
        base.exclude("recon")
        assert recon.excluded_modules == base.excluded_modules
        a = recon.lift(np.array([0.1]))
        _ = a + 0.0
        # flag bookkeeping is shared
        assert base.report().entries == recon.report().entries

    def test_per_module_op_attribution(self, runtime):
        base = ShadowContext(FPFormat(5, 8), runtime=runtime, module="hydro")
        riemann = base.scoped("riemann")
        a = riemann.lift(np.ones(5))
        _ = a * 2.0
        assert runtime.module_ops()["riemann"].truncated == 5


class TestDeviationReport:
    def test_report_sorted_by_flag_count(self, runtime):
        ctx = ShadowContext(FPFormat(5, 2), runtime=runtime, threshold=1e-12)
        a = ctx.lift(np.full(16, 1.0 / 3.0))
        _ = a * (1.0 / 7.0)  # heavily flagged
        b = ctx.lift(np.ones(2))
        _ = b + 0.0  # exact, not flagged
        rep = ctx.report()
        flags = [flagged for _, flagged, _, _ in rep.entries]
        assert flags == sorted(flags, reverse=True)

    def test_report_text_and_labels(self, runtime):
        ctx = ShadowContext(FPFormat(5, 2), runtime=runtime, threshold=1e-12)
        a = ctx.lift(np.full(4, 1.0 / 3.0))
        ctx.mul(a, 1.0 / 7.0, label="recon:slope")
        rep = ctx.report()
        assert "recon:slope" in rep.to_text()
        assert "recon:slope" in rep.flagged_labels()
        assert len(rep.top(1)) == 1

    def test_reset_flags(self, runtime):
        ctx = ShadowContext(FPFormat(5, 2), runtime=runtime, threshold=1e-12)
        a = ctx.lift(np.full(4, 1.0 / 3.0))
        _ = a * 0.11
        ctx.reset_flags()
        assert ctx.report().entries == []


class TestFromConfig:
    def test_from_config(self, runtime):
        cfg = TruncationConfig.mantissa(8, exp_bits=8, mode="mem", deviation_threshold=1e-5)
        ctx = ShadowContext.from_config(cfg, runtime=runtime, module="spark")
        assert ctx.fmt.man_bits == 8
        assert ctx.threshold == 1e-5
        assert ctx.module == "spark"
