"""Directed-rounding audit of core/quantize at the underflow boundary.

:func:`repro.core.softfloat.exact_quantize` reconstructs the representable
grid of a format with exact :class:`~fractions.Fraction` arithmetic — no
binary64 intermediates — so it is an independent oracle for every rounding
decision the vectorised :func:`repro.core.quantize.quantize` makes.  These
tests pin the two implementations bitwise-equal exactly where the scaled
ldexp/rint chain is most delicate: the subnormal range around ``2**emin``,
the below-``min_subnormal`` regime where directed modes must snap to zero
or the smallest subnormal, and the overflow clamp at ``max_value``.
"""
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FPFormat, RoundingMode, quantize
from repro.core.softfloat import exact_quantize

# small formats put the underflow boundary within easy reach; e5m10/e8m7 are
# fp16/bf16, e4m3/e5m2 are the FP8 pair, e8m10 is the paper's sweep format
FORMATS = [
    FPFormat(exp_bits=4, man_bits=3),
    FPFormat(exp_bits=5, man_bits=2),
    FPFormat(exp_bits=5, man_bits=10),
    FPFormat(exp_bits=8, man_bits=7),
    FPFormat(exp_bits=8, man_bits=10),
]
FORMAT_IDS = [f"e{f.exp_bits}m{f.man_bits}" for f in FORMATS]
ROUNDINGS = list(RoundingMode.ALL)


def assert_same_bits(x, fmt, rounding):
    got = float(quantize(x, fmt, rounding))
    want = exact_quantize(x, fmt, rounding)
    # bitwise comparison: distinguishes +0.0 from -0.0 and catches any
    # one-ulp disagreement a value comparison with tolerance would mask
    assert math.copysign(1.0, got) == math.copysign(1.0, want) and (
        got == want or (math.isnan(got) and math.isnan(want))
    ), f"quantize({x!r}, {fmt.spec}, {rounding}) = {got!r}, oracle says {want!r}"


# ---------------------------------------------------------------------------
# dense deterministic sweep across the underflow boundary
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_subnormal_grid_and_midpoints(fmt, rounding):
    """Every multiple of the subnormal spacing up past min_normal, plus the
    halfway points between them where ties-to-even decides."""
    step = fmt.min_subnormal
    top = int(round(fmt.min_normal / step))
    for n in range(0, 4 * top + 1):
        for x in (n * step, (n + 0.5) * step, (n + 0.25) * step):
            assert_same_bits(x, fmt, rounding)
            assert_same_bits(-x, fmt, rounding)


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_below_min_subnormal(fmt, rounding):
    """Magnitudes strictly inside (0, min_subnormal): directed modes must
    snap to the correct side — UP to +min_subnormal, DOWN to -0.0 for
    positive inputs (and mirrored for negative) — with no double rounding."""
    tiny = fmt.min_subnormal
    for frac in (1e-6, 0.25, 0.5 * (1 - 1e-9), 0.5, 0.5 * (1 + 1e-9), 0.75, 1 - 1e-9):
        assert_same_bits(frac * tiny, fmt, rounding)
        assert_same_bits(-frac * tiny, fmt, rounding)


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_signed_zero_agreement(fmt, rounding):
    assert_same_bits(0.0, fmt, rounding)
    assert_same_bits(-0.0, fmt, rounding)


@pytest.mark.parametrize("fmt", FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("rounding", ROUNDINGS)
def test_overflow_boundary(fmt, rounding):
    """Just below, at, and beyond max_value: the oracle enforces the IEEE
    clamp rules (directed modes stop at max_value on the side they cannot
    cross, nearest overflows to infinity)."""
    top = fmt.max_value
    for x in (top * (1 - 1e-9), top, top * (1 + 1e-9), top * 2.0, np.nextafter(top, np.inf)):
        assert_same_bits(x, fmt, rounding)
        assert_same_bits(-x, fmt, rounding)


# ---------------------------------------------------------------------------
# hypothesis sweep concentrated at emin
# ---------------------------------------------------------------------------
@given(
    fmt=st.sampled_from(FORMATS),
    rounding=st.sampled_from(ROUNDINGS),
    mantissa=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    sign=st.sampled_from([1.0, -1.0]),
)
@settings(max_examples=600, deadline=None)
def test_random_values_near_emin_match_oracle(fmt, rounding, mantissa, sign):
    x = sign * mantissa * (2.0 ** fmt.emin)
    assert_same_bits(x, fmt, rounding)


@given(
    fmt=st.sampled_from(FORMATS),
    rounding=st.sampled_from(ROUNDINGS),
    x=st.floats(allow_nan=False, allow_infinity=False, width=64),
)
@settings(max_examples=400, deadline=None)
def test_arbitrary_doubles_match_oracle(fmt, rounding, x):
    assert_same_bits(x, fmt, rounding)


@given(
    fmt=st.sampled_from(FORMATS),
    rounding=st.sampled_from(ROUNDINGS),
    x=st.floats(allow_nan=False, allow_infinity=False, width=64),
)
@settings(max_examples=200, deadline=None)
def test_oracle_is_idempotent(fmt, rounding, x):
    once = exact_quantize(x, fmt, rounding)
    assert exact_quantize(once, fmt, rounding) == once or math.isnan(once)
