"""Tests for the scalar EmulatedFloat (MPFR-variable analogue)."""
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FP16, FP32, FPFormat, EmulatedFloat, emulated_math


class TestConstruction:
    def test_value_is_quantised_on_construction(self):
        e = EmulatedFloat(0.1, FP16)
        assert e.value == float(np.float16(0.1))

    def test_float_conversion(self):
        assert float(EmulatedFloat(1.5, FP16)) == 1.5

    def test_default_format_is_fp64(self):
        assert EmulatedFloat(0.1).value == 0.1


class TestArithmetic:
    def test_add_rounds_result(self):
        fmt = FPFormat(8, 4)
        a = EmulatedFloat(1.0, fmt)
        b = EmulatedFloat(2.0 ** -6, fmt)  # representable (subnormal exponent range is wide)
        c = a + b
        # 1 + 2^-6 rounds to 1.0 with 4 fraction bits (tie -> even)
        assert c.value == 1.0

    def test_operations_preserve_format(self):
        a = EmulatedFloat(1.5, FP16)
        assert (a * 2).fmt == FP16
        assert (2 * a).fmt == FP16
        assert (-a).fmt == FP16

    def test_mixed_operand_types(self):
        a = EmulatedFloat(2.0, FP32)
        assert (a + 1).value == 3.0
        assert (1 + a).value == 3.0
        assert (a - 0.5).value == 1.5
        assert (4.0 - a).value == 2.0
        assert (a * 3).value == 6.0
        assert (a / 2).value == 1.0
        assert (8.0 / a).value == 4.0

    def test_division_by_zero_gives_inf(self):
        a = EmulatedFloat(1.0, FP32)
        z = EmulatedFloat(0.0, FP32)
        assert math.isinf(float(a / z))

    def test_pow_and_abs_and_neg(self):
        a = EmulatedFloat(-3.0, FP32)
        assert abs(a).value == 3.0
        assert (-a).value == 3.0
        assert (a ** 2).value == 9.0

    def test_fma_single_rounding_into_target(self):
        fmt = FPFormat(8, 4)
        a = EmulatedFloat(1.0, fmt)
        out = a.fma(1.0, 2.0 ** -6)
        assert out.value == 1.0  # rounded once into e8m4


class TestComparisons:
    def test_compare_with_floats(self):
        a = EmulatedFloat(1.5, FP16)
        assert a == 1.5
        assert a != 1.0
        assert a < 2.0
        assert a <= 1.5
        assert a > 1.0
        assert a >= 1.5

    def test_compare_emulated(self):
        assert EmulatedFloat(1.0, FP16) < EmulatedFloat(2.0, FP16)

    def test_hashable(self):
        assert hash(EmulatedFloat(1.5, FP16)) == hash(1.5)


class TestElementaryFunctions:
    def test_sqrt(self):
        assert EmulatedFloat(4.0, FP16).sqrt().value == 2.0

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(EmulatedFloat(-1.0, FP16).sqrt().value)

    def test_log_of_zero(self):
        assert EmulatedFloat(0.0, FP32).log().value == -math.inf

    def test_exp_log_roundtrip_low_precision(self):
        a = EmulatedFloat(1.0, FP16)
        assert a.exp().log().value == pytest.approx(1.0, abs=2e-3)

    def test_trig(self):
        assert EmulatedFloat(0.0, FP16).sin().value == 0.0
        assert EmulatedFloat(0.0, FP16).cos().value == 1.0


class TestEmulatedMath:
    def test_namespace_functions_round(self):
        m = emulated_math(FP16)
        assert m.sqrt(2.0) == float(np.float16(np.sqrt(np.float16(2.0))))
        assert m.fabs(-1.25) == 1.25

    def test_namespace_exp(self):
        m = emulated_math(FPFormat(8, 8))
        assert m.exp(0.0) == 1.0


@given(
    a=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    b=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_add_commutative(a, b):
    fmt = FPFormat(8, 10)
    x = EmulatedFloat(a, fmt)
    y = EmulatedFloat(b, fmt)
    assert float(x + y) == float(y + x)


@given(a=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_value_always_representable(a):
    fmt = FPFormat(5, 7)
    x = EmulatedFloat(a, fmt)
    from repro.core import is_representable

    assert bool(is_representable(x.value, fmt)) or not math.isfinite(x.value)


class TestComparisonCoercion:
    """Regression tests: comparisons must coerce raw scalars through the
    same _coerce path as arithmetic (numpy scalars included), and must not
    accept operands arithmetic would reject (e.g. numeric strings)."""

    def test_eq_against_numpy_float32(self):
        x = EmulatedFloat(1.5, FP16)
        assert x == np.float32(1.5)
        assert not (x == np.float32(1.25))
        # the result is a plain bool, not a numpy array/bool_ from the
        # reflected numpy comparison that NotImplemented used to trigger
        assert isinstance(x == np.float32(1.5), bool)

    def test_ordering_against_numpy_ints(self):
        x = EmulatedFloat(2.0, FP16)
        assert x > np.int64(1)
        assert x >= np.int32(2)
        assert x < np.int64(3)
        assert x <= np.uint8(2)
        assert isinstance(x < np.int64(3), bool)

    def test_ne_matches_arithmetic_coercion(self):
        x = EmulatedFloat(0.1, FPFormat(8, 10))
        # 0.1 is rounded into the format, so it differs from the exact
        # double 0.1 in the same way (x - 0.1) is nonzero
        assert (x != 0.1) == (float(x - 0.1) != 0.0)

    def test_string_operands_are_not_numbers(self):
        x = EmulatedFloat(1.5, FP16)
        assert not (x == "1.5")
        assert x != "1.5"
        with pytest.raises(TypeError):
            x < "1.5"  # noqa: B015 - the comparison itself is the assertion

    def test_arithmetic_rejects_strings_too(self):
        x = EmulatedFloat(1.5, FP16)
        with pytest.raises(TypeError):
            x + "1"

    def test_bool_is_a_real_number(self):
        x = EmulatedFloat(1.0, FP16)
        assert x == True  # noqa: E712 - exercising the coercion explicitly
        assert x > False


class TestOperandCoercionRound2:
    """Arithmetic must accept __float__-bearing operands (0-d numpy arrays,
    Decimal) and defer via NotImplemented on the rest, like the comparisons."""

    def test_zero_dim_ndarray_operand(self):
        x = EmulatedFloat(1.5, FP16)
        assert float(x + np.array(2.0)) == 3.5
        assert float(np.array(2.0) + x) == 3.5
        assert x < np.array(2.0)

    def test_decimal_operand(self):
        from decimal import Decimal

        x = EmulatedFloat(1.5, FP16)
        assert float(x + Decimal("0.5")) == 2.0
        assert x == Decimal("1.5")

    def test_unsupported_operand_raises_standard_type_error(self):
        x = EmulatedFloat(1.5, FP16)
        with pytest.raises(TypeError):
            x + object()
        with pytest.raises(TypeError):
            x * "2"

    def test_reflected_delegation(self):
        class Wrapper:
            def __radd__(self, other):
                return "delegated"

        assert EmulatedFloat(1.0, FP16) + Wrapper() == "delegated"
