"""Tests for scope instrumentation and function-scope clones."""
import numpy as np
import pytest

from repro.core import (
    FP16,
    FPFormat,
    FullPrecisionContext,
    Mode,
    RaptorRuntime,
    ShadowContext,
    TruncatedContext,
    TruncationConfig,
    active_config,
    active_context,
    file_scope,
    program_scope,
    quantize,
    trunc_func,
    trunc_func_mem,
    trunc_func_op,
    truncate_region,
)


@pytest.fixture()
def runtime():
    return RaptorRuntime("instr-test")


class TestScopes:
    def test_no_scope_gives_full_precision(self):
        assert active_config() is None
        ctx = active_context("hydro")
        assert isinstance(ctx, FullPrecisionContext)

    def test_truncate_region_activates_config(self, runtime):
        cfg = TruncationConfig.mantissa(8, exp_bits=8)
        with truncate_region(cfg, runtime=runtime):
            assert active_config() is cfg
            ctx = active_context("hydro")
            assert isinstance(ctx, TruncatedContext)
            assert ctx.fmt.man_bits == 8
        assert active_config() is None

    def test_program_scope_applies_to_all_modules(self, runtime):
        cfg = TruncationConfig.mantissa(10, exp_bits=5)
        with program_scope(cfg, runtime=runtime):
            assert isinstance(active_context("hydro"), TruncatedContext)
            assert isinstance(active_context("eos"), TruncatedContext)
            assert isinstance(active_context(None), TruncatedContext)

    def test_file_scope_restricted_to_modules(self, runtime):
        cfg = TruncationConfig.mantissa(10, exp_bits=5)
        with file_scope(cfg, modules=["hydro"], runtime=runtime):
            assert isinstance(active_context("hydro"), TruncatedContext)
            assert isinstance(active_context("eos"), FullPrecisionContext)

    def test_nested_scopes_innermost_wins(self, runtime):
        outer = TruncationConfig.mantissa(20, exp_bits=8)
        inner = TruncationConfig.mantissa(4, exp_bits=8)
        with truncate_region(outer, runtime=runtime):
            with truncate_region(inner, runtime=runtime):
                assert active_context("x").fmt.man_bits == 4
            assert active_context("x").fmt.man_bits == 20

    def test_mem_mode_scope_gives_shadow_context(self, runtime):
        cfg = TruncationConfig.mantissa(8, exp_bits=8, mode=Mode.MEM)
        with truncate_region(cfg, runtime=runtime):
            assert isinstance(active_context("hydro"), ShadowContext)

    def test_context_cache_per_module(self, runtime):
        cfg = TruncationConfig.mantissa(8, exp_bits=8)
        with truncate_region(cfg, runtime=runtime):
            assert active_context("hydro") is active_context("hydro")
            assert active_context("hydro") is not active_context("eos")


class TestTruncFuncOp:
    def test_clone_preserves_signature_and_original(self, runtime):
        def kernel(a, b):
            return np.sqrt(a * a + b * b)

        clone = trunc_func_op(kernel, 64, 5, 10, runtime=runtime)
        a = np.linspace(0.1, 2.0, 64)
        b = np.linspace(1.0, 3.0, 64)
        exact = kernel(a, b)
        approx = clone(a, b)
        # original unaffected
        assert np.array_equal(kernel(a, b), exact)
        # clone result is representable in the target format and close to exact
        assert np.array_equal(approx, quantize(approx, FP16))
        assert np.max(np.abs(approx - exact)) < 1e-2
        assert type(approx) is np.ndarray

    def test_clone_counts_ops(self, runtime):
        def kernel(a):
            return a * 2.0 + 1.0

        clone = trunc_func_op(kernel, 64, 8, 23, runtime=runtime, module="kern")
        clone(np.ones(100))
        assert runtime.ops.truncated >= 200
        assert runtime.module_ops()["kern"].truncated >= 200

    def test_decorator_form(self, runtime):
        @trunc_func(64, 8, 7, runtime=runtime)
        def kernel(a):
            return a + a

        out = kernel(np.full(4, 0.1))
        assert np.array_equal(out, quantize(out, FPFormat(8, 7)))

    def test_scalar_and_non_array_args_passthrough(self, runtime):
        def kernel(a, factor, name):
            assert name == "ok"
            return a * factor

        clone = trunc_func_op(kernel, 64, 5, 10, runtime=runtime)
        out = clone(np.ones(4), 2.0, name="ok")
        assert np.all(out == 2.0)

    def test_nested_structure_results_unwrapped(self, runtime):
        def kernel(a):
            return {"x": a * 1.0, "y": [a + 1.0, (a - 1.0,)]}

        clone = trunc_func_op(kernel, 64, 5, 10, runtime=runtime)
        out = clone(np.ones(3))
        assert type(out["x"]) is np.ndarray
        assert type(out["y"][0]) is np.ndarray
        assert type(out["y"][1][0]) is np.ndarray

    def test_config_attached(self, runtime):
        clone = trunc_func_op(lambda a: a, 64, 5, 14, runtime=runtime)
        assert clone.__raptor_config__.fmt.man_bits == 14


class TestTruncFuncMem:
    def test_mem_clone_tracks_deviation(self, runtime):
        def kernel(a, b):
            ctx = active_context("kernel")
            return ctx.mul(ctx.add(a, b, label="kern:add"), 1.0 / 3.0, label="kern:mul")

        clone = trunc_func_mem(kernel, 64, 5, 4, threshold=1e-6, runtime=runtime, module="kernel")
        out = clone(np.full(32, 0.1), np.full(32, 0.7))
        assert type(out) is np.ndarray
        report = clone.context.report()
        assert any(flagged > 0 for _, flagged, _, _ in report.entries)
        assert runtime.ops.truncated > 0

    def test_mem_clone_shadow_operators(self, runtime):
        def kernel(a):
            return (a * (1.0 / 3.0)) + 0.25

        clone = trunc_func_mem(kernel, 64, 8, 6, runtime=runtime)
        out = clone(np.linspace(0, 1, 16))
        assert np.array_equal(out, quantize(out, FPFormat(8, 6)))

    def test_excluded_modules_start_excluded(self, runtime):
        def kernel(a):
            ctx = active_context("kernel").scoped("recon")
            return ctx.mul(a, 1.0 / 3.0)

        clone = trunc_func_mem(
            kernel, 64, 5, 2, runtime=runtime, module="kernel", excluded_modules=("recon",)
        )
        # 0.5 is exactly representable in e5m2, so the only rounding that could
        # occur is inside the excluded recon module - which must not truncate.
        out = clone(np.full(8, 0.5))
        assert np.allclose(out, 0.5 / 3.0, rtol=1e-12)
