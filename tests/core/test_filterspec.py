"""Tests for configuration-file-driven truncation filters (paper §7.3 extension)."""
import numpy as np
import pytest

from repro.core import FullPrecisionContext, Mode, RaptorRuntime, TruncatedContext
from repro.core.filterspec import (
    FilterSpec,
    load_filter_file,
    parse_filter_text,
    policy_from_filter,
)

EXAMPLE = """
# truncate FP64 to e5m14 in the hydro solver, but never in the EOS
truncate 64_to_5_14
mode op
threshold 1e-5
include hydro
include incomp.advection
exclude hydro.riemann
"""


class TestParsing:
    def test_example_round_trip(self):
        spec = parse_filter_text(EXAMPLE)
        assert spec.config.fmt.exp_bits == 5
        assert spec.config.fmt.man_bits == 14
        assert spec.config.mode == Mode.OP
        assert spec.config.deviation_threshold == 1e-5
        assert spec.includes == ["hydro", "incomp.advection"]
        assert spec.excludes == ["hydro.riemann"]

    def test_comments_and_blank_lines_ignored(self):
        spec = parse_filter_text("truncate 64_to_8_23\n\n# a comment\n")
        assert spec.config.fmt.man_bits == 23
        assert spec.includes == [] and spec.excludes == []

    def test_mem_mode(self):
        spec = parse_filter_text("truncate 64_to_5_8\nmode mem\n")
        assert spec.config.mode == Mode.MEM

    @pytest.mark.parametrize(
        "bad",
        [
            "mode op\n",                       # missing truncate
            "truncate 64_to_5_14 extra\n",     # too many args
            "truncate 64_to_5_14\nmode fancy\n",
            "truncate 64_to_5_14\nthreshold\n",
            "truncate 64_to_5_14\nfrobnicate hydro\n",
            "truncate 64_to_5_14\ninclude\n",
        ],
    )
    def test_malformed_inputs(self, bad):
        with pytest.raises(ValueError):
            parse_filter_text(bad)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "raptor.filter"
        path.write_text(EXAMPLE)
        spec = load_filter_file(path)
        assert spec.includes[0] == "hydro"


class TestMatching:
    @pytest.fixture()
    def spec(self) -> FilterSpec:
        return parse_filter_text(EXAMPLE)

    def test_included_modules_match(self, spec):
        assert spec.matches("hydro")
        assert spec.matches("hydro.recon")
        assert spec.matches("incomp.advection")

    def test_excluded_submodule_wins(self, spec):
        assert not spec.matches("hydro.riemann")

    def test_unlisted_modules_do_not_match(self, spec):
        assert not spec.matches("eos")
        assert not spec.matches(None)

    def test_no_includes_means_everything(self):
        spec = parse_filter_text("truncate 64_to_5_10\nexclude eos\n")
        assert spec.matches("hydro")
        assert spec.matches(None)
        assert not spec.matches("eos")


class TestPolicyIntegration:
    def test_policy_contexts_follow_filter(self):
        spec = parse_filter_text(EXAMPLE)
        rt = RaptorRuntime()
        policy = policy_from_filter(spec, runtime=rt)
        assert isinstance(policy.context_for(module="hydro"), TruncatedContext)
        assert isinstance(policy.context_for(module="hydro.riemann"), FullPrecisionContext)
        assert isinstance(policy.context_for(module="eos"), FullPrecisionContext)

    def test_policy_truncates_only_matching_modules(self):
        spec = parse_filter_text("truncate 64_to_8_6\ninclude kernel\n")
        rt = RaptorRuntime()
        policy = policy_from_filter(spec, runtime=rt)
        x = np.full(16, 0.1)
        policy.context_for(module="kernel").add(x, x)
        policy.context_for(module="other").add(x, x)
        mods = rt.module_ops()
        assert mods["kernel"].truncated == 16
        assert mods["other"].full == 16
