"""Tests for the transparent numpy-hook instrumentation (TruncatedArray)."""
import numpy as np
import pytest

from repro.core import (
    FP16,
    FP32,
    FPFormat,
    RaptorRuntime,
    TruncatedArray,
    quantize,
    truncate_array,
    untruncate,
)


@pytest.fixture()
def runtime():
    return RaptorRuntime("array-test")


class TestConstruction:
    def test_payload_quantized_on_wrap(self, runtime):
        x = np.array([0.1, 0.2, 0.3])
        t = truncate_array(x, FP16, runtime=runtime)
        assert isinstance(t, TruncatedArray)
        assert np.array_equal(np.asarray(t), quantize(x, FP16))
        assert t.fmt == FP16

    def test_untruncate_returns_plain_copy(self, runtime):
        t = truncate_array(np.ones(3), FP16, runtime=runtime)
        p = untruncate(t)
        assert type(p) is np.ndarray
        assert not isinstance(p, TruncatedArray)

    def test_untruncate_passthrough_for_plain(self):
        x = np.ones(3)
        assert np.array_equal(untruncate(x), x)


class TestUfuncInterception:
    def test_binary_op_rounds_result(self, runtime):
        a = truncate_array(np.full(4, 1.2), FP16, runtime=runtime)
        b = truncate_array(np.full(4, 3.4e-3), FP16, runtime=runtime)
        c = a + b
        assert isinstance(c, TruncatedArray)
        expected = quantize(np.asarray(a) + np.asarray(b), FP16)
        assert np.array_equal(np.asarray(c), expected)

    def test_mixed_with_plain_ndarray(self, runtime):
        a = truncate_array(np.full(4, 0.1), FP16, runtime=runtime)
        c = a * np.full(4, 0.2)
        assert isinstance(c, TruncatedArray)
        assert np.array_equal(np.asarray(c), quantize(np.asarray(a) * 0.2, FP16))

    def test_scalar_operand(self, runtime):
        a = truncate_array(np.ones(4), FP16, runtime=runtime)
        c = 2.0 * a + 1.0
        assert isinstance(c, TruncatedArray)
        assert np.all(np.asarray(c) == 3.0)

    def test_numpy_functions_are_hooked(self, runtime):
        a = truncate_array(np.array([2.0, 4.0]), FP16, runtime=runtime)
        s = np.sqrt(a)
        assert isinstance(s, TruncatedArray)
        assert np.array_equal(np.asarray(s), quantize(np.sqrt(np.asarray(a)), FP16))

    def test_comparisons_pass_through(self, runtime):
        a = truncate_array(np.array([1.0, 2.0]), FP16, runtime=runtime)
        mask = a > 1.5
        assert mask.dtype == bool
        assert list(np.asarray(mask)) == [False, True]

    def test_reduction(self, runtime):
        a = truncate_array(np.full(8, 0.1), FP16, runtime=runtime)
        total = a.sum()
        expected = quantize(np.sum(np.asarray(a)), FP16)
        assert float(total) == float(expected)

    def test_ops_counted(self, runtime):
        a = truncate_array(np.ones(10), FP16, runtime=runtime, module="kernel")
        _ = a + a
        assert runtime.ops.truncated == 10
        assert runtime.module_ops()["kernel"].truncated == 10
        assert runtime.mem.truncated > 0

    def test_views_keep_instrumentation(self, runtime):
        a = truncate_array(np.arange(10, dtype=float), FP16, runtime=runtime)
        b = a[2:5]
        assert isinstance(b, TruncatedArray)
        assert b.fmt == FP16
        c = b * 0.1
        assert isinstance(c, TruncatedArray)

    def test_chain_keeps_values_representable(self, runtime):
        fmt = FPFormat(8, 6)
        a = truncate_array(np.linspace(0.01, 3.0, 50), fmt, runtime=runtime)
        out = np.sqrt(a * a + 1.0) / (a + 0.5)
        arr = np.asarray(out)
        assert np.array_equal(arr, quantize(arr, fmt))

    def test_plain_numpy_unaffected(self, runtime):
        # operations with no TruncatedArray operand are untouched
        x = np.full(4, 0.1)
        y = x + x
        assert not isinstance(y, TruncatedArray)
        assert runtime.ops.total == 0


class TestErrorBehaviour:
    def test_truncation_changes_results_vs_fp64(self, runtime):
        x = np.linspace(0.1, 1.0, 100)
        exact = np.sqrt(x * 3.0 + 0.7)
        t = truncate_array(x, FPFormat(5, 4), runtime=runtime)
        approx = np.asarray(np.sqrt(t * 3.0 + 0.7))
        err = np.max(np.abs(approx - exact))
        assert 0 < err < 0.1

    def test_wider_format_smaller_error(self, runtime):
        x = np.linspace(0.1, 1.0, 100)
        exact = x * 1.1 + x * x

        def run(man):
            t = truncate_array(x, FPFormat(8, man), runtime=runtime)
            return np.max(np.abs(np.asarray(t * 1.1 + t * t) - exact))

        assert run(20) < run(8) < run(3)
