"""Tests for profile reports."""
import numpy as np

from repro.core import (
    FPFormat,
    RaptorRuntime,
    SourceLocation,
    TruncatedContext,
    feature_matrix,
    format_table,
    op_summary,
    profile_report,
)


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_ragged_rows_tolerated(self):
        text = format_table(["a", "b", "c"], [[1], [1, 2, 3]])
        assert "1" in text


class TestOpSummary:
    def test_summary_fields(self):
        rt = RaptorRuntime()
        rt.record_truncated_ops(30)
        rt.record_full_ops(70)
        rt.record_truncated_bytes(10)
        rt.record_full_bytes(30)
        s = op_summary(rt)
        assert s["total_ops"] == 100
        assert s["truncated_op_fraction"] == 0.3
        assert s["truncated_byte_fraction"] == 0.25


class TestProfileReport:
    def test_contains_counters_modules_and_locations(self):
        rt = RaptorRuntime("demo")
        ctx = TruncatedContext(FPFormat(5, 8), runtime=rt, module="hydro", track_errors=True)
        ctx.add(np.full(10, 0.1), np.full(10, 0.2), label="hydro:flux")
        rt.record_full_ops(10, module="driver")
        text = profile_report(rt)
        assert "RAPTOR profile: demo" in text
        assert "hydro" in text
        assert "driver" in text
        assert "hydro:flux" in text
        assert "truncated" in text

    def test_empty_runtime_report(self):
        text = profile_report(RaptorRuntime("empty"))
        assert "0" in text

    def test_max_locations_respected(self):
        rt = RaptorRuntime()
        for i in range(30):
            rt.record_truncated_ops(1, location=SourceLocation("f.py", i))
        text = profile_report(rt, max_locations=5)
        assert "Top 5" in text


class TestFeatureMatrix:
    def test_raptor_row_is_feature_complete(self):
        matrix = feature_matrix()
        raptor = matrix["RAPTOR"]
        assert set(raptor["categories"]) == {"B", "C", "E"}
        assert all(raptor["features"].values())
        assert "Fortran" in raptor["languages"]
