"""Tests for checkpoints and the sfocu comparison utility."""
import numpy as np
import pytest

from repro.amr import AMRGrid
from repro.io import Checkpoint, compare, l1_norm


def make_grid():
    g = AMRGrid(["dens", "pres"], nxb=8, nyb=8, n_root_x=2, n_root_y=1, max_level=2, ng=2)
    g.initialize(lambda x, y: {"dens": 1.0 + x * y, "pres": np.full_like(x, 0.5)})
    return g


class TestCheckpoint:
    def test_from_grid_shapes_and_metadata(self):
        g = make_grid()
        cp = Checkpoint.from_grid(g, time=0.25)
        assert cp.time == 0.25
        assert set(cp.variables()) == {"dens", "pres"}
        assert cp["dens"].shape == (16, 8)
        assert cp.metadata["n_leaves"] == 2

    def test_from_grid_at_max_level(self):
        g = make_grid()
        cp = Checkpoint.from_grid(g, level=2)
        assert cp["dens"].shape == (32, 16)

    def test_from_arrays_and_contains(self):
        cp = Checkpoint.from_arrays({"a": np.ones((4, 4))}, time=1.0)
        assert "a" in cp
        assert "b" not in cp

    def test_save_load_roundtrip(self, tmp_path):
        g = make_grid()
        cp = Checkpoint.from_grid(g, time=0.5, metadata={"policy": "none"})
        path = cp.save(tmp_path / "ckpt.npz")
        loaded = Checkpoint.load(path)
        assert loaded.time == 0.5
        assert loaded.metadata["policy"] == "none"
        for name in cp.variables():
            assert np.array_equal(loaded[name], cp[name])


class TestL1Norm:
    def test_zero_for_identical(self):
        a = np.random.default_rng(0).normal(size=(8, 8))
        assert l1_norm(a, a) == 0.0

    def test_relative_normalisation(self):
        ref = np.full((4, 4), 2.0)
        test = ref + 0.02
        assert l1_norm(test, ref) == pytest.approx(0.01)

    def test_zero_reference(self):
        assert l1_norm(np.ones(4), np.zeros(4)) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            l1_norm(np.ones((2, 2)), np.ones((3, 3)))


class TestCompare:
    def _pair(self, delta=0.0):
        base = {"dens": np.linspace(1, 2, 64).reshape(8, 8), "velx": np.zeros((8, 8))}
        test = {k: v + delta for k, v in base.items()}
        return Checkpoint.from_arrays(test, time=1.0), Checkpoint.from_arrays(base, time=1.0)

    def test_identical_checkpoints(self):
        t, r = self._pair(0.0)
        report = compare(t, r)
        assert report.identical
        assert report.max_l1 == 0.0
        assert "SUCCESS" in report.to_text()

    def test_differing_checkpoints(self):
        t, r = self._pair(1e-3)
        report = compare(t, r)
        assert not report.identical
        assert report.l1("dens") > 0
        assert report["dens"].linf == pytest.approx(1e-3)
        assert "FAILURE" in report.to_text()

    def test_variable_subset(self):
        t, r = self._pair(1e-3)
        report = compare(t, r, variables=["dens"])
        assert set(report.variables) == {"dens"}

    def test_mismatched_variables_raise(self):
        a = Checkpoint.from_arrays({"dens": np.ones((4, 4))})
        b = Checkpoint.from_arrays({"dens": np.ones((4, 4)), "pres": np.ones((4, 4))})
        with pytest.raises(ValueError):
            compare(a, b)

    def test_mismatched_shapes_raise(self):
        a = Checkpoint.from_arrays({"dens": np.ones((4, 4))})
        b = Checkpoint.from_arrays({"dens": np.ones((8, 8))})
        with pytest.raises(ValueError):
            compare(a, b)

    def test_l1_matches_module_function(self):
        t, r = self._pair(2e-2)
        report = compare(t, r)
        assert report.l1("dens") == pytest.approx(l1_norm(t["dens"], r["dens"]))
