"""Tests for refinement estimators and inter-level transfer operators."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.amr import Block, block_error, gradient_error, lohner_error, prolong, restrict


class TestLohnerError:
    def test_zero_for_constant_field(self):
        assert np.all(lohner_error(np.full((10, 10), 3.0)) == 0.0)

    def test_zero_for_linear_field(self):
        x = np.linspace(0, 1, 12)
        u = np.add.outer(2 * x, 3 * x)
        err = lohner_error(u)
        assert np.max(err) == pytest.approx(0.0, abs=1e-10)

    def test_large_at_discontinuity(self):
        u = np.ones((16, 16))
        u[8:, :] = 10.0
        err = lohner_error(u)
        assert np.max(err) > 0.5
        # error localised near the jump
        assert np.max(err[1:4, :]) < 1e-12

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        u = rng.uniform(-1, 1, (20, 20))
        assert np.max(lohner_error(u)) <= 1.0 + 1e-12

    def test_outer_ring_zero(self):
        u = np.random.default_rng(1).uniform(size=(10, 10))
        err = lohner_error(u)
        assert np.all(err[0, :] == 0) and np.all(err[:, 0] == 0)
        assert np.all(err[-1, :] == 0) and np.all(err[:, -1] == 0)

    def test_tiny_arrays(self):
        assert np.all(lohner_error(np.ones((2, 2))) == 0.0)


class TestGradientError:
    def test_zero_for_constant(self):
        assert np.all(gradient_error(np.full((8, 8), 5.0)) == 0.0)

    def test_positive_at_jump(self):
        u = np.ones((8, 8))
        u[4:, :] = 2.0
        assert np.max(gradient_error(u)) > 0.1


class TestBlockError:
    def _block(self, field):
        b = Block((1, 0, 0), 8, 8, 2, 0, 1, 0, 1)
        b.allocate(["dens"])
        b.data["dens"][...] = field
        return b

    def test_smooth_block_low_error(self):
        b = self._block(np.ones((12, 12)))
        assert block_error(b, ["dens"]) == 0.0

    def test_shock_block_high_error(self):
        field = np.ones((12, 12))
        field[6:, :] = 8.0
        b = self._block(field)
        assert block_error(b, ["dens"]) > 0.5

    def test_max_over_variables(self):
        b = Block((1, 0, 0), 8, 8, 2, 0, 1, 0, 1)
        b.allocate(["a", "b"])
        b.data["a"][...] = 1.0
        jump = np.ones((12, 12))
        jump[6:, :] = 5.0
        b.data["b"][...] = jump
        assert block_error(b, ["a"]) == 0.0
        assert block_error(b, ["a", "b"]) > 0.3


class TestProlongRestrict:
    def test_prolong_shape_and_values(self):
        c = np.array([[1.0, 2.0], [3.0, 4.0]])
        f = prolong(c)
        assert f.shape == (4, 4)
        assert np.all(f[0:2, 0:2] == 1.0)
        assert np.all(f[2:4, 2:4] == 4.0)

    def test_restrict_shape_and_values(self):
        f = np.arange(16, dtype=float).reshape(4, 4)
        c = restrict(f)
        assert c.shape == (2, 2)
        assert c[0, 0] == pytest.approx(np.mean(f[0:2, 0:2]))

    def test_restrict_requires_divisible_shape(self):
        with pytest.raises(ValueError):
            restrict(np.zeros((3, 4)))

    def test_prolong_factor_4(self):
        f = prolong(np.ones((2, 3)), factor=4)
        assert f.shape == (8, 12)

    @given(
        arr=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 6).map(lambda n: 2 * n), st.integers(1, 6).map(lambda n: 2 * n)),
            elements=st.floats(-1e6, 1e6),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_restrict_of_prolong_is_identity(self, arr):
        assert np.allclose(restrict(prolong(arr)), arr)

    @given(
        arr=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 6).map(lambda n: 2 * n), st.integers(1, 6).map(lambda n: 2 * n)),
            elements=st.floats(-1e6, 1e6),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_transfers_conserve_mean(self, arr):
        """Prolongation and restriction both preserve the mean (conservation)."""
        assert np.mean(prolong(arr)) == pytest.approx(np.mean(arr), rel=1e-12, abs=1e-9)
        assert np.mean(restrict(arr)) == pytest.approx(np.mean(arr), rel=1e-12, abs=1e-9)

    @given(
        arr=hnp.arrays(
            np.float64,
            shape=st.tuples(st.just(4), st.just(4)),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_prolong_does_not_create_extrema(self, arr):
        f = prolong(arr)
        assert f.max() <= arr.max() + 1e-12
        assert f.min() >= arr.min() - 1e-12
