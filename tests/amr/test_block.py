"""Tests for AMR blocks."""
import numpy as np
import pytest

from repro.amr import Block


@pytest.fixture()
def block():
    b = Block((2, 1, 3), nxb=8, nyb=8, ng=2, xlo=0.5, xhi=1.0, ylo=1.5, yhi=2.0)
    b.allocate(["dens", "pres"])
    return b


class TestGeometry:
    def test_level_and_indices(self, block):
        assert block.level == 2
        assert block.ix == 1
        assert block.iy == 3

    def test_spacing(self, block):
        assert block.dx == pytest.approx(0.5 / 8)
        assert block.dy == pytest.approx(0.5 / 8)
        assert block.cell_area == pytest.approx((0.5 / 8) ** 2)

    def test_shape_with_guards(self, block):
        assert block.shape_with_guards == (12, 12)
        assert block.data["dens"].shape == (12, 12)

    def test_cell_centers(self, block):
        x, y = block.cell_centers()
        assert len(x) == 8
        assert x[0] == pytest.approx(0.5 + 0.5 * block.dx)
        assert x[-1] == pytest.approx(1.0 - 0.5 * block.dx)
        xg, _ = block.cell_centers(include_guards=True)
        assert len(xg) == 12
        assert xg[0] == pytest.approx(0.5 - 1.5 * block.dx)

    def test_cell_mesh_shapes(self, block):
        X, Y = block.cell_mesh()
        assert X.shape == (8, 8)
        Xg, _ = block.cell_mesh(include_guards=True)
        assert Xg.shape == (12, 12)


class TestData:
    def test_interior_view_is_writable(self, block):
        block.interior_view("dens")[...] = 3.0
        assert np.all(block.data["dens"][2:-2, 2:-2] == 3.0)
        assert np.all(block.data["dens"][0, :] == 0.0)

    def test_set_interior_shape_check(self, block):
        with pytest.raises(ValueError):
            block.set_interior("dens", np.zeros((4, 4)))

    def test_allocate_is_idempotent(self, block):
        block.interior_view("dens")[...] = 1.0
        block.allocate(["dens"])
        assert np.all(block.interior_view("dens") == 1.0)

    def test_integral(self, block):
        block.set_interior("dens", np.full((8, 8), 2.0))
        assert block.integral("dens") == pytest.approx(2.0 * 0.5 * 0.5)


class TestTreeRelations:
    def test_child_keys(self, block):
        kids = block.child_keys()
        assert kids == ((3, 2, 6), (3, 3, 6), (3, 2, 7), (3, 3, 7))

    def test_parent_key(self, block):
        assert block.parent_key() == (1, 0, 1)

    def test_root_has_no_parent(self):
        root = Block((1, 0, 0), 8, 8, 2, 0, 1, 0, 1)
        with pytest.raises(ValueError):
            root.parent_key()

    def test_sibling_keys_include_self(self, block):
        sibs = block.sibling_keys()
        assert block.key in sibs
        assert len(set(sibs)) == 4
        assert all(k[0] == block.level for k in sibs)
