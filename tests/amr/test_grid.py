"""Tests for the AMR grid: topology, guard cells, refinement, covering grids."""
import numpy as np
import pytest

from repro.amr import AMRGrid


def make_grid(**kwargs):
    defaults = dict(
        variables=["dens", "velx", "vely"],
        xlim=(0.0, 1.0),
        ylim=(0.0, 1.0),
        nxb=8,
        nyb=8,
        n_root_x=1,
        n_root_y=1,
        max_level=3,
        ng=3,
        boundary="outflow",
    )
    defaults.update(kwargs)
    return AMRGrid(**defaults)


def gaussian_ic(x, y):
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
    return {"dens": 1.0 + 4.0 * np.exp(-r2 / 0.005), "velx": np.zeros_like(x), "vely": np.zeros_like(x)}


class TestConstruction:
    def test_root_blocks(self):
        g = make_grid(n_root_x=2, n_root_y=3)
        assert g.n_leaves == 6
        assert g.finest_level == 1
        assert g.leaf_levels() == {1: 6}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_grid(nxb=7)
        with pytest.raises(ValueError):
            make_grid(nxb=4, ng=3)
        with pytest.raises(ValueError):
            make_grid(max_level=0)
        with pytest.raises(ValueError):
            make_grid(boundary="bogus")

    def test_block_bounds_partition_domain(self):
        g = make_grid(n_root_x=2, n_root_y=2)
        blocks = g.blocks()
        assert min(b.xlo for b in blocks) == 0.0
        assert max(b.xhi for b in blocks) == 1.0
        total_area = sum((b.xhi - b.xlo) * (b.yhi - b.ylo) for b in blocks)
        assert total_area == pytest.approx(1.0)

    def test_initialize_sets_interiors(self):
        g = make_grid()
        g.initialize(gaussian_ic)
        b = g.blocks()[0]
        assert np.max(b.interior_view("dens")) > 1.0


class TestRefinementTopology:
    def test_refine_block_replaces_leaf_with_children(self):
        g = make_grid()
        g.initialize(gaussian_ic)
        children = g.refine_block((1, 0, 0))
        assert len(children) == 4
        assert (1, 0, 0) not in g.leaves
        assert g.n_leaves == 4
        assert g.finest_level == 2

    def test_refined_children_cover_parent_extent(self):
        g = make_grid()
        g.refine_block((1, 0, 0))
        xs = sorted({(g.leaves[k].xlo, g.leaves[k].xhi) for k in g.leaves})
        assert xs == [(0.0, 0.5), (0.5, 1.0)]

    def test_refinement_preserves_integral(self):
        g = make_grid()
        g.initialize(gaussian_ic)
        before = g.total_integral("dens")
        g.refine_block((1, 0, 0))
        assert g.total_integral("dens") == pytest.approx(before, rel=1e-12)

    def test_derefine_roundtrip_preserves_integral(self):
        g = make_grid()
        g.initialize(gaussian_ic)
        before = g.total_integral("dens")
        g.refine_block((1, 0, 0))
        g.derefine_siblings((1, 0, 0))
        assert g.n_leaves == 1
        assert g.total_integral("dens") == pytest.approx(before, rel=1e-12)

    def test_derefine_requires_all_children(self):
        g = make_grid()
        g.refine_block((1, 0, 0))
        g.refine_block((2, 0, 0))
        with pytest.raises(KeyError):
            g.derefine_siblings((1, 0, 0))

    def test_refine_non_leaf_raises(self):
        g = make_grid()
        with pytest.raises(KeyError):
            g.refine_block((2, 0, 0))


class TestRegrid:
    def test_regrid_refines_around_feature(self):
        g = make_grid(max_level=3)
        g.initialize_with_refinement(gaussian_ic, ["dens"], refine_cutoff=0.3, derefine_cutoff=0.05)
        assert g.finest_level == 3
        assert g.n_leaves > 4
        # proper nesting: every leaf's neighbours resolve without error
        for key in g.sorted_keys():
            for side in ("-x", "+x", "-y", "+y"):
                kind, _ = g.neighbor(key, side)
                assert kind in ("same", "coarse", "fine", "boundary")

    def test_regrid_respects_max_level(self):
        g = make_grid(max_level=2)
        g.initialize_with_refinement(gaussian_ic, ["dens"], refine_cutoff=0.2)
        assert g.finest_level <= 2

    def test_smooth_field_does_not_refine(self):
        g = make_grid()
        g.initialize(lambda x, y: {"dens": np.ones_like(x), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        summary = g.regrid(["dens"], refine_cutoff=0.5)
        assert summary.refined == 0
        assert g.n_leaves == 1

    def test_derefinement_after_feature_removed(self):
        g = make_grid(max_level=2)
        g.initialize_with_refinement(gaussian_ic, ["dens"], refine_cutoff=0.3)
        assert g.n_leaves > 1
        # flatten the solution -> everything should coarsen back
        for b in g.blocks():
            b.interior_view("dens")[...] = 1.0
        summary = g.regrid(["dens"], refine_cutoff=0.3, derefine_cutoff=0.1)
        assert summary.derefined > 0
        assert g.n_leaves < 8

    def test_regrid_summary_repr(self):
        g = make_grid()
        g.initialize(gaussian_ic)
        s = g.regrid(["dens"], refine_cutoff=0.3)
        assert "RegridSummary" in repr(s)


class TestGuardCells:
    def test_same_level_exchange_matches_neighbor_interior(self):
        g = make_grid(n_root_x=2, n_root_y=1, max_level=1)
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        g.fill_guard_cells(["dens"])
        left = g.leaves[(1, 0, 0)]
        right = g.leaves[(1, 1, 0)]
        ng, nxb, nyb = g.ng, g.nxb, g.nyb
        # left block's +x guards == right block's first interior columns
        assert np.allclose(
            left.data["dens"][ng + nxb:, ng:ng + nyb],
            right.data["dens"][ng:2 * ng, ng:ng + nyb],
        )

    def test_outflow_boundary_zero_gradient(self):
        g = make_grid(max_level=1)
        g.initialize(lambda x, y: {"dens": 1.0 + x, "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        g.fill_guard_cells(["dens"])
        b = g.blocks()[0]
        ng = g.ng
        edge = b.data["dens"][ng, ng:ng + g.nyb]
        for k in range(ng):
            assert np.allclose(b.data["dens"][k, ng:ng + g.nyb], edge)

    def test_periodic_boundary_wraps(self):
        g = make_grid(n_root_x=2, boundary="periodic", max_level=1)
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        g.fill_guard_cells(["dens"])
        left = g.leaves[(1, 0, 0)]
        right = g.leaves[(1, 1, 0)]
        ng, nxb, nyb = g.ng, g.nxb, g.nyb
        assert np.allclose(
            left.data["dens"][0:ng, ng:ng + nyb],
            right.data["dens"][nxb:nxb + ng, ng:ng + nyb],
        )

    def test_reflect_boundary_flips_normal_velocity(self):
        g = make_grid(boundary="reflect", max_level=1)
        g.initialize(lambda x, y: {"dens": np.ones_like(x), "velx": 1.0 + x, "vely": np.zeros_like(x)})
        g.fill_guard_cells()
        b = g.blocks()[0]
        ng, nyb = g.ng, g.nyb
        # velx mirrored with sign flip at the -x face
        assert np.allclose(
            b.data["velx"][ng - 1, ng:ng + nyb], -b.data["velx"][ng, ng:ng + nyb]
        )
        # dens mirrored without sign flip
        assert np.allclose(
            b.data["dens"][ng - 1, ng:ng + nyb], b.data["dens"][ng, ng:ng + nyb]
        )

    def test_fine_coarse_exchange_consistency(self):
        """Guard values across a fine-coarse interface approximate the
        neighbouring solution (exact for this linear-in-x field under
        piecewise-constant transfer within half a coarse cell)."""
        g = make_grid(max_level=2)
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        g.refine_block((1, 0, 0))
        # re-apply IC so children hold the analytic field, then fill guards
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        ng, nxb, nyb = g.ng, g.nxb, g.nyb
        # the fine leaves live alongside ... wait, refining the only root block
        # leaves no coarse neighbour; build a 2-root grid instead
        g = make_grid(n_root_x=2, max_level=2)
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        g.refine_block((1, 0, 0))
        g.initialize(lambda x, y: {"dens": x.copy(), "velx": np.zeros_like(x), "vely": np.zeros_like(x)})
        fine = g.leaves[(2, 1, 0)]  # fine block touching the coarse right root
        coarse = g.leaves[(1, 1, 0)]
        # fine block's +x guards prolonged from the coarse block: values must
        # lie within the coarse block's x-range near the interface
        strip = fine.data["dens"][ng + nxb:, ng:ng + nyb]
        assert np.all(strip >= 0.5 - 1e-12)
        assert np.all(strip <= 0.5 + 3 * coarse.dx)
        # coarse block's -x guards restricted from the two fine neighbours
        cstrip = coarse.data["dens"][0:ng, ng:ng + nyb]
        assert np.all(cstrip <= 0.5 + 1e-12)
        assert np.all(cstrip >= 0.5 - 3 * coarse.dx)


class TestCoveringGrid:
    def test_uniform_data_shape_and_values(self):
        g = make_grid(max_level=2)
        g.initialize(gaussian_ic)
        data = g.uniform_data("dens", level=1)
        assert data.shape == (8, 8)
        g.refine_block((1, 0, 0))
        data2 = g.uniform_data("dens")
        assert data2.shape == (16, 16)

    def test_uniform_data_errors_on_too_coarse_level(self):
        g = make_grid(max_level=2)
        g.initialize(gaussian_ic)
        g.refine_block((1, 0, 0))
        with pytest.raises(ValueError):
            g.uniform_data("dens", level=1)

    def test_uniform_coordinates(self):
        g = make_grid()
        x, y = g.uniform_coordinates(level=1)
        assert len(x) == 8 and len(y) == 8
        assert x[0] == pytest.approx(0.5 / 8)

    def test_level_map(self):
        g = make_grid(n_root_x=2, max_level=2)
        g.initialize(gaussian_ic)
        g.refine_block((1, 0, 0))
        lm = g.level_map()
        assert lm.shape == (32, 16)
        assert set(int(v) for v in np.unique(lm)) == {1, 2}

    def test_covering_grid_conserves_mean(self):
        g = make_grid(max_level=2)
        g.initialize(gaussian_ic)
        g.initialize_with_refinement(gaussian_ic, ["dens"], refine_cutoff=0.3)
        mean_from_blocks = g.total_integral("dens")
        data = g.uniform_data("dens")
        x, y = g.uniform_coordinates()
        cell_area = (x[1] - x[0]) * (y[1] - y[0])
        assert float(np.sum(data) * cell_area) == pytest.approx(mean_from_blocks, rel=1e-12)


class TestMixedBoundaries:
    """Per-axis boundary conditions: boundary={"x": ..., "y": ...}."""

    def test_string_boundary_applies_to_both_axes(self):
        g = make_grid(boundary="periodic")
        assert g.boundary_x == "periodic" and g.boundary_y == "periodic"

    def test_mapping_sets_each_axis(self):
        g = make_grid(boundary={"x": "periodic", "y": "reflect"})
        assert g.boundary_x == "periodic"
        assert g.boundary_y == "reflect"
        assert g.boundary == {"x": "periodic", "y": "reflect"}

    def test_invalid_mapping_raises(self):
        with pytest.raises(ValueError):
            make_grid(boundary={"x": "periodic"})  # missing y
        with pytest.raises(ValueError):
            make_grid(boundary={"x": "periodic", "y": "bogus"})

    def test_periodic_x_wraps_while_reflect_y_does_not(self):
        g = make_grid(boundary={"x": "periodic", "y": "reflect"}, n_root_x=2, n_root_y=2, max_level=1)
        # crossing the x edge wraps to the opposite block
        kind, info = g.neighbor((1, 0, 0), "-x")
        assert kind == "same" and info == (1, 1, 0)
        # crossing the y edge hits the wall
        kind, info = g.neighbor((1, 0, 0), "-y")
        assert kind == "boundary" and info is None

    def test_reflect_y_flips_normal_velocity_in_guards(self):
        g = make_grid(boundary={"x": "periodic", "y": "reflect"}, n_root_x=1, n_root_y=1, max_level=1)

        def ic(x, y):
            return {"dens": 1.0 + y, "velx": np.zeros_like(x), "vely": np.full_like(x, 0.25)}

        g.initialize(ic)
        block = g.blocks()[0]
        ng = g.ng
        vely = block.data["vely"]
        dens = block.data["dens"]
        # mirrored with flipped sign across the bottom wall
        np.testing.assert_allclose(vely[ng:-ng, ng - 1], -vely[ng:-ng, ng])
        # density mirrors without sign flip
        np.testing.assert_allclose(dens[ng:-ng, ng - 1], dens[ng:-ng, ng])
        # x stays periodic: left guards equal the right interior
        np.testing.assert_allclose(dens[0:ng, ng:-ng], dens[-2 * ng:-ng, ng:-ng])
