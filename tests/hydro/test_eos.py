"""Tests for the gamma-law EOS."""
import numpy as np
import pytest

from repro.core import FPFormat, RaptorRuntime, TruncatedContext, quantize
from repro.hydro import GammaLawEOS


@pytest.fixture()
def eos():
    return GammaLawEOS(gamma=1.4)


class TestBasics:
    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            GammaLawEOS(gamma=1.0)

    def test_pressure_from_internal_energy(self, eos):
        dens = np.array([1.0, 2.0])
        eint = np.array([2.5, 1.0])
        p = eos.pressure_from_internal_energy(dens, eint)
        assert np.allclose(p, 0.4 * dens * eint)

    def test_pressure_eint_roundtrip(self, eos):
        dens = np.array([0.5, 1.0, 3.0])
        pres = np.array([0.1, 1.0, 10.0])
        eint = eos.internal_energy_from_pressure(dens, pres)
        back = eos.pressure_from_internal_energy(dens, eint)
        assert np.allclose(back, pres)

    def test_sound_speed(self, eos):
        c = eos.sound_speed(np.array([1.0]), np.array([1.0]))
        assert float(c[0]) == pytest.approx(np.sqrt(1.4))

    def test_total_energy(self, eos):
        dens = np.array([2.0])
        velx = np.array([3.0])
        vely = np.array([4.0])
        pres = np.array([1.0])
        e = eos.total_energy(dens, velx, vely, pres)
        expected = 1.0 / 0.4 + 0.5 * 2.0 * 25.0
        assert float(e[0]) == pytest.approx(expected)

    def test_pressure_from_total_energy_roundtrip(self, eos):
        dens = np.array([1.3])
        velx = np.array([0.7])
        vely = np.array([-0.2])
        pres = np.array([2.1])
        ener = eos.total_energy(dens, velx, vely, pres)
        back = eos.pressure_from_total_energy(dens, dens * velx, dens * vely, ener)
        assert float(back[0]) == pytest.approx(2.1)

    def test_floors(self, eos):
        p = eos.pressure_from_total_energy(
            np.array([1.0]), np.array([0.0]), np.array([0.0]), np.array([-5.0])
        )
        assert float(p[0]) == eos.pressure_floor
        d, pr = eos.apply_floors(np.array([-1.0]), np.array([-1.0]))
        assert d[0] == eos.density_floor and pr[0] == eos.pressure_floor


class TestWithTruncation:
    def test_truncated_results_representable(self, eos):
        fmt = FPFormat(8, 8)
        ctx = TruncatedContext(fmt, runtime=RaptorRuntime())
        dens = np.linspace(0.5, 2.0, 16)
        pres = np.linspace(0.1, 3.0, 16)
        c = eos.sound_speed(dens, pres, ctx)
        assert np.array_equal(c, quantize(c, fmt))

    def test_truncation_error_small_for_wide_mantissa(self, eos):
        dens = np.linspace(0.5, 2.0, 64)
        pres = np.linspace(0.1, 3.0, 64)
        exact = eos.sound_speed(dens, pres)
        ctx = TruncatedContext(FPFormat(11, 40), runtime=RaptorRuntime())
        approx = eos.sound_speed(dens, pres, ctx)
        assert np.max(np.abs(approx - exact) / exact) < 1e-10

    def test_ops_counted(self, eos):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 10), runtime=rt, module="eos")
        eos.total_energy(np.ones(8), np.ones(8), np.ones(8), np.ones(8), ctx)
        assert rt.module_ops()["eos"].truncated > 0
