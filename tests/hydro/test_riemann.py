"""Tests for the approximate Riemann solvers."""
import numpy as np
import pytest

from repro.core import FPFormat, FullPrecisionContext, RaptorRuntime, TruncatedContext
from repro.hydro import GammaLawEOS, euler_flux, hll_flux, hllc_flux


@pytest.fixture()
def eos():
    return GammaLawEOS(gamma=1.4)


def ctx_full():
    return FullPrecisionContext(runtime=RaptorRuntime(), count_ops=False, track_memory=False)


def state(dens, velx, vely, pres, n=5):
    return {
        "dens": np.full(n, float(dens)),
        "velx": np.full(n, float(velx)),
        "vely": np.full(n, float(vely)),
        "pres": np.full(n, float(pres)),
    }


class TestEulerFlux:
    def test_static_state_flux(self, eos):
        s = state(1.0, 0.0, 0.0, 1.0)
        f = euler_flux(s, eos, ctx_full())
        assert np.allclose(f["dens"], 0.0)
        assert np.allclose(f["momn"], 1.0)  # pressure term only
        assert np.allclose(f["momt"], 0.0)
        assert np.allclose(f["ener"], 0.0)

    def test_moving_state_flux(self, eos):
        s = state(2.0, 3.0, 1.0, 5.0)
        f = euler_flux(s, eos, ctx_full())
        ener = 5.0 / 0.4 + 0.5 * 2.0 * (9.0 + 1.0)
        assert np.allclose(f["dens"], 6.0)
        assert np.allclose(f["momn"], 2.0 * 9.0 + 5.0)
        assert np.allclose(f["momt"], 2.0 * 3.0 * 1.0)
        assert np.allclose(f["ener"], (ener + 5.0) * 3.0)


@pytest.mark.parametrize("solver", [hll_flux, hllc_flux], ids=["hll", "hllc"])
class TestConsistency:
    def test_equal_states_give_physical_flux(self, solver, eos):
        s = state(1.4, 0.6, -0.3, 2.0)
        f_exact = euler_flux(s, eos, ctx_full())
        f = solver(s, s, eos, ctx_full())
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.allclose(f[comp], f_exact[comp], rtol=1e-12)

    def test_supersonic_right_moving_upwinds_left(self, solver, eos):
        left = state(1.0, 5.0, 0.0, 1.0)   # Mach ~4.2
        right = state(0.5, 5.0, 0.0, 0.5)
        f = solver(left, right, eos, ctx_full())
        f_left = euler_flux(left, eos, ctx_full())
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.allclose(f[comp], f_left[comp], rtol=1e-12)

    def test_supersonic_left_moving_upwinds_right(self, solver, eos):
        left = state(1.0, -5.0, 0.0, 1.0)
        right = state(0.5, -5.0, 0.0, 0.5)
        f = solver(left, right, eos, ctx_full())
        f_right = euler_flux(right, eos, ctx_full())
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.allclose(f[comp], f_right[comp], rtol=1e-12)

    def test_sod_interface_mass_flux_positive(self, solver, eos):
        """Sod initial discontinuity: mass must flow from the high-pressure
        side to the low-pressure side."""
        left = state(1.0, 0.0, 0.0, 1.0)
        right = state(0.125, 0.0, 0.0, 0.1)
        f = solver(left, right, eos, ctx_full())
        assert np.all(f["dens"] > 0.0)

    def test_symmetry_under_mirror(self, solver, eos):
        """Mirroring left/right and negating the normal velocity flips the
        sign of the mass and energy fluxes."""
        left = state(1.0, 0.3, 0.1, 1.0)
        right = state(0.6, -0.2, 0.0, 0.4)
        f = solver(left, right, eos, ctx_full())
        mirrored_left = state(0.6, 0.2, 0.0, 0.4)
        mirrored_right = state(1.0, -0.3, 0.1, 1.0)
        g = solver(mirrored_left, mirrored_right, eos, ctx_full())
        assert np.allclose(f["dens"], -g["dens"], atol=1e-12)
        assert np.allclose(f["ener"], -g["ener"], atol=1e-12)
        assert np.allclose(f["momn"], g["momn"], atol=1e-12)

    def test_finite_for_strong_shock(self, solver, eos):
        left = state(1.0, 0.0, 0.0, 1000.0)
        right = state(1.0, 0.0, 0.0, 0.01)
        f = solver(left, right, eos, ctx_full())
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.all(np.isfinite(f[comp]))


class TestHLLCvsHLL:
    def test_hllc_matches_hll_for_symmetric_problem(self, eos):
        left = state(1.0, 0.0, 0.0, 1.0)
        right = state(1.0, 0.0, 0.0, 1.0)
        f1 = hll_flux(left, right, eos, ctx_full())
        f2 = hllc_flux(left, right, eos, ctx_full())
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.allclose(f1[comp], f2[comp])

    def test_hllc_less_diffusive_on_contact(self, eos):
        """A stationary contact discontinuity (equal pressure/velocity,
        different density) is resolved exactly by HLLC but smeared by HLL."""
        left = state(1.0, 0.0, 0.0, 1.0)
        right = state(0.1, 0.0, 0.0, 1.0)
        f_hllc = hllc_flux(left, right, eos, ctx_full())
        f_hll = hll_flux(left, right, eos, ctx_full())
        assert np.allclose(f_hllc["dens"], 0.0, atol=1e-12)
        assert np.all(np.abs(f_hll["dens"]) > 1e-3)


class TestWithTruncation:
    def test_truncated_flux_counts_ops_and_stays_finite(self, eos):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(5, 8), runtime=rt, module="riemann")
        left = state(1.0, 0.0, 0.0, 1.0, n=32)
        right = state(0.125, 0.0, 0.0, 0.1, n=32)
        f = hllc_flux(left, right, eos, ctx)
        assert rt.module_ops()["riemann"].truncated > 0
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.all(np.isfinite(f[comp]))

    def test_truncated_flux_close_to_exact_for_wide_format(self, eos):
        left = state(1.0, 0.2, 0.0, 1.0, n=16)
        right = state(0.5, -0.1, 0.0, 0.3, n=16)
        exact = hllc_flux(left, right, eos, ctx_full())
        ctx = TruncatedContext(FPFormat(11, 45), runtime=RaptorRuntime())
        approx = hllc_flux(left, right, eos, ctx)
        for comp in ("dens", "momn", "momt", "ener"):
            assert np.allclose(approx[comp], exact[comp], rtol=1e-9)
