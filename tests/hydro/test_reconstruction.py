"""Tests for interface-state reconstruction."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FPFormat, FullPrecisionContext, RaptorRuntime, ShadowContext, TruncatedContext
from repro.hydro import reconstruct

NG = 3
N = 8  # interior cells along the sweep


def ctx_full():
    return FullPrecisionContext(runtime=RaptorRuntime(), count_ops=False, track_memory=False)


def make_field(profile_1d, transverse=4):
    """Build a (N + 2*NG, transverse) array from a 1-D profile along axis 0."""
    col = np.asarray(profile_1d, dtype=float)
    assert col.shape[0] == N + 2 * NG
    return np.tile(col[:, None], (1, transverse))


class TestShapes:
    @pytest.mark.parametrize("scheme", ["pcm", "plm", "weno5"])
    def test_face_count_axis0(self, scheme):
        u = make_field(np.linspace(0, 1, N + 2 * NG))
        left, right = reconstruct(u, 0, NG, N, ctx_full(), scheme)
        assert left.shape == (N + 1, 4)
        assert right.shape == (N + 1, 4)

    @pytest.mark.parametrize("scheme", ["pcm", "plm", "weno5"])
    def test_face_count_axis1(self, scheme):
        u = make_field(np.linspace(0, 1, N + 2 * NG)).T.copy()
        left, right = reconstruct(u, 1, NG, N, ctx_full(), scheme)
        assert left.shape == (4, N + 1)
        assert right.shape == (4, N + 1)

    def test_unknown_scheme(self):
        u = make_field(np.zeros(N + 2 * NG))
        with pytest.raises(ValueError):
            reconstruct(u, 0, NG, N, ctx_full(), "ppm")

    def test_insufficient_guards(self):
        u = np.zeros((N + 4, 4))
        with pytest.raises(ValueError):
            reconstruct(u, 0, 2, N, ctx_full(), "weno5")
        with pytest.raises(ValueError):
            reconstruct(u, 0, 1, N, ctx_full(), "plm")


class TestAccuracy:
    @pytest.mark.parametrize("scheme", ["pcm", "plm", "weno5"])
    def test_constant_field_exact(self, scheme):
        u = make_field(np.full(N + 2 * NG, 7.5))
        left, right = reconstruct(u, 0, NG, N, ctx_full(), scheme)
        assert np.allclose(left, 7.5)
        assert np.allclose(right, 7.5)

    @pytest.mark.parametrize("scheme", ["plm", "weno5"])
    def test_linear_field_reproduced(self, scheme):
        cells = np.arange(N + 2 * NG, dtype=float)
        u = make_field(2.0 * cells)
        left, right = reconstruct(u, 0, NG, N, ctx_full(), scheme)
        # interface value between cells i and i+1 of a linear profile is the midpoint
        faces = 2.0 * (np.arange(N + 1) + NG - 0.5)
        assert np.allclose(left[:, 0], faces, atol=1e-10)
        assert np.allclose(right[:, 0], faces, atol=1e-10)

    def test_pcm_first_order(self):
        cells = np.arange(N + 2 * NG, dtype=float)
        u = make_field(cells)
        left, right = reconstruct(u, 0, NG, N, ctx_full(), "pcm")
        assert np.allclose(left[:, 0], cells[NG - 1:NG + N])
        assert np.allclose(right[:, 0], cells[NG:NG + N + 1])

    @pytest.mark.parametrize("scheme,tol", [("plm", 1e-9), ("weno5", 0.5)])
    def test_no_large_overshoot_at_discontinuity(self, scheme, tol):
        """PLM is strictly bounded (minmod); WENO5 may overshoot a step by a
        small fraction of the jump but must stay essentially non-oscillatory."""
        profile = np.ones(N + 2 * NG)
        profile[N // 2 + NG:] = 10.0
        u = make_field(profile)
        left, right = reconstruct(u, 0, NG, N, ctx_full(), scheme)
        assert left.max() <= 10.0 + tol and left.min() >= 1.0 - tol
        assert right.max() <= 10.0 + tol and right.min() >= 1.0 - tol


class TestWithInstrumentation:
    def test_truncated_context_counts_ops(self):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 10), runtime=rt, module="recon")
        u = make_field(np.linspace(0, 1, N + 2 * NG))
        reconstruct(u, 0, NG, N, ctx, "weno5")
        assert rt.module_ops()["recon"].truncated > 0

    def test_shadow_context_produces_shadow_arrays(self):
        rt = RaptorRuntime()
        ctx = ShadowContext(FPFormat(8, 6), runtime=rt, module="recon")
        u = ctx.lift(make_field(np.linspace(0, 2, N + 2 * NG)))
        left, right = reconstruct(u, 0, NG, N, ctx, "plm")
        assert left.shape == (N + 1, 4)
        assert hasattr(left, "shadow")

    def test_truncated_close_to_exact_for_wide_format(self):
        u = make_field(np.sin(np.linspace(0, 3, N + 2 * NG)))
        exact_l, _ = reconstruct(u, 0, NG, N, ctx_full(), "weno5")
        ctx = TruncatedContext(FPFormat(11, 44), runtime=RaptorRuntime())
        approx_l, _ = reconstruct(u, 0, NG, N, ctx, "weno5")
        assert np.max(np.abs(approx_l - exact_l)) < 1e-9


@given(
    values=st.lists(st.floats(min_value=-100, max_value=100), min_size=N + 2 * NG, max_size=N + 2 * NG),
)
@settings(max_examples=60, deadline=None)
def test_plm_interface_states_bounded_by_neighbours(values):
    """PLM interface states stay within the range of the two adjacent cells'
    neighbourhood (TVD-like property of the minmod limiter)."""
    u = make_field(np.array(values))
    left, right = reconstruct(u, 0, NG, N, ctx_full(), "plm")
    # global bound is sufficient (and robust): no state outside the data range
    assert left.max() <= np.max(values) + 1e-9
    assert left.min() >= np.min(values) - 1e-9
    assert right.max() <= np.max(values) + 1e-9
    assert right.min() >= np.min(values) - 1e-9
