"""Tests for the grid-level hydro solver."""
import numpy as np
import pytest

from repro.amr import AMRGrid
from repro.core import (
    FPFormat,
    GlobalPolicy,
    Mode,
    NoTruncationPolicy,
    RaptorRuntime,
    TruncationConfig,
)
from repro.hydro import GammaLawEOS, HydroSolver

VARS = ["dens", "velx", "vely", "pres"]


def make_grid(boundary="periodic", nxb=8, n_root=2, max_level=1):
    return AMRGrid(
        VARS,
        nxb=nxb,
        nyb=nxb,
        n_root_x=n_root,
        n_root_y=n_root,
        max_level=max_level,
        ng=3,
        boundary=boundary,
    )


def uniform_ic(x, y):
    return {
        "dens": np.ones_like(x),
        "velx": np.zeros_like(x),
        "vely": np.zeros_like(x),
        "pres": np.ones_like(x),
    }


def sod_x_ic(x, y):
    dens = np.where(x < 0.5, 1.0, 0.125)
    pres = np.where(x < 0.5, 1.0, 0.1)
    return {"dens": dens, "velx": np.zeros_like(x), "vely": np.zeros_like(x), "pres": pres}


def blast_ic(x, y):
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
    pres = np.where(r2 < 0.01, 10.0, 0.1)
    return {"dens": np.ones_like(x), "velx": np.zeros_like(x), "vely": np.zeros_like(x), "pres": pres}


def policy_provider(policy, grid):
    def provider(module, level=None, max_level=None):
        return policy.context_for(module=module, level=level, max_level=max_level)

    return provider


class TestConstruction:
    def test_invalid_riemann(self):
        with pytest.raises(ValueError):
            HydroSolver(riemann="roe")

    def test_invalid_rk(self):
        with pytest.raises(ValueError):
            HydroSolver(rk_stages=3)


class TestTimestep:
    def test_dt_positive_and_cfl_scaled(self):
        grid = make_grid()
        grid.initialize(uniform_ic)
        s1 = HydroSolver(cfl=0.4)
        s2 = HydroSolver(cfl=0.2)
        dt1, dt2 = s1.compute_dt(grid), s2.compute_dt(grid)
        assert dt1 > 0
        assert dt2 == pytest.approx(dt1 / 2)

    def test_dt_decreases_with_refinement(self):
        grid = make_grid(max_level=2)
        grid.initialize(uniform_ic)
        solver = HydroSolver()
        dt_coarse = solver.compute_dt(grid)
        grid.refine_block((1, 0, 0))
        grid.initialize(uniform_ic)
        assert solver.compute_dt(grid) < dt_coarse


class TestUniformState:
    @pytest.mark.parametrize("scheme", ["plm", "weno5"])
    def test_uniform_state_is_preserved(self, scheme):
        grid = make_grid()
        grid.initialize(uniform_ic)
        solver = HydroSolver(reconstruction=scheme, rk_stages=1)
        dt = solver.compute_dt(grid)
        for _ in range(3):
            solver.step(grid, dt)
        for b in grid.blocks():
            assert np.allclose(b.interior_view("dens"), 1.0, atol=1e-12)
            assert np.allclose(b.interior_view("velx"), 0.0, atol=1e-12)
            assert np.allclose(b.interior_view("pres"), 1.0, atol=1e-12)


class TestConservation:
    @pytest.mark.parametrize("rk_stages", [1, 2])
    def test_mass_and_energy_conserved_on_periodic_grid(self, rk_stages):
        grid = make_grid(boundary="periodic")
        grid.initialize(blast_ic)
        solver = HydroSolver(rk_stages=rk_stages)
        eos = solver.eos

        def total_energy(g):
            tot = 0.0
            for b in g.blocks():
                dens = b.interior_view("dens")
                velx = b.interior_view("velx")
                vely = b.interior_view("vely")
                pres = b.interior_view("pres")
                ener = pres / (eos.gamma - 1) + 0.5 * dens * (velx ** 2 + vely ** 2)
                tot += float(np.sum(ener) * b.cell_area)
            return tot

        mass0 = grid.total_integral("dens")
        ener0 = total_energy(grid)
        dt = 0.5 * solver.compute_dt(grid)
        for _ in range(5):
            solver.step(grid, dt)
        assert grid.total_integral("dens") == pytest.approx(mass0, rel=1e-10)
        assert total_energy(grid) == pytest.approx(ener0, rel=1e-10)


class TestShockPropagation:
    def test_sod_shock_moves_right(self):
        grid = make_grid(boundary="outflow", nxb=16, n_root=2, max_level=1)
        grid.initialize(sod_x_ic)
        solver = HydroSolver(rk_stages=2, reconstruction="plm")
        result = solver.evolve(grid, t_end=0.1)
        assert result["steps"] > 0
        data = grid.uniform_data("dens")
        x, _ = grid.uniform_coordinates()
        # density just right of the initial interface must have risen (shock)
        right_zone = data[(x > 0.55) & (x < 0.7), :]
        assert np.mean(right_zone) > 0.15
        # far-right region still undisturbed
        assert np.allclose(data[x > 0.95, :], 0.125, atol=1e-3)
        # velocities point rightward in the expansion region
        velx = grid.uniform_data("velx")
        assert np.mean(velx[(x > 0.4) & (x < 0.7), :]) > 0.0

    def test_blast_wave_is_radially_symmetric(self):
        grid = make_grid(boundary="outflow", nxb=8, n_root=2, max_level=1)
        grid.initialize(blast_ic)
        solver = HydroSolver(rk_stages=1)
        solver.evolve(grid, t_end=0.05)
        pres = grid.uniform_data("pres")
        # symmetry across both axes (the IC and scheme are symmetric)
        assert np.allclose(pres, pres[::-1, :], rtol=1e-8, atol=1e-10)
        assert np.allclose(pres, pres[:, ::-1], rtol=1e-8, atol=1e-10)
        assert np.allclose(pres, pres.T, rtol=1e-8, atol=1e-10)


class TestEvolveDriver:
    def test_fixed_dt_and_callback_and_max_steps(self):
        grid = make_grid()
        grid.initialize(uniform_ic)
        solver = HydroSolver(rk_stages=1)
        seen = []
        out = solver.evolve(
            grid, t_end=1.0, fixed_dt=0.3, max_steps=2, callback=lambda n, t, g: seen.append((n, t))
        )
        assert out["steps"] == 2
        assert seen[0][0] == 1
        assert seen[-1][1] == pytest.approx(0.6)

    def test_evolve_with_regridding(self):
        grid = make_grid(boundary="outflow", max_level=2)
        grid.initialize_with_refinement(blast_ic, ["pres"], refine_cutoff=0.4)
        solver = HydroSolver(rk_stages=1)
        out = solver.evolve(grid, t_end=0.02, regrid_interval=2, refine_vars=("pres",))
        assert out["time"] == pytest.approx(0.02)
        assert grid.n_leaves >= 4


class TestTruncatedEvolution:
    def _run_sod(self, policy_factory, mantissa):
        grid = make_grid(boundary="outflow", nxb=8, n_root=2, max_level=1)
        grid.initialize(sod_x_ic)
        solver = HydroSolver(rk_stages=1, reconstruction="plm")
        runtime = RaptorRuntime()
        policy = policy_factory(mantissa, runtime)
        solver.evolve(grid, t_end=0.05, provider=policy_provider(policy, grid), fixed_dt=0.002)
        return grid.uniform_data("dens"), runtime

    def test_truncated_run_differs_but_stays_finite(self):
        def full_policy(m, rt):
            return NoTruncationPolicy(runtime=rt)

        def trunc_policy(m, rt):
            return GlobalPolicy(TruncationConfig.mantissa(m, exp_bits=8), runtime=rt)

        ref, _ = self._run_sod(full_policy, 52)
        low, rt = self._run_sod(trunc_policy, 6)
        assert np.all(np.isfinite(low))
        assert np.max(np.abs(low - ref)) > 1e-6
        assert rt.ops.truncated > 0

    def test_error_decreases_with_mantissa(self):
        def trunc_policy(m, rt):
            return GlobalPolicy(TruncationConfig.mantissa(m, exp_bits=11), runtime=rt)

        def full_policy(m, rt):
            return NoTruncationPolicy(runtime=rt)

        ref, _ = self._run_sod(full_policy, 52)
        err = {}
        for mantissa in (6, 40):
            low, _ = self._run_sod(trunc_policy, mantissa)
            err[mantissa] = float(np.mean(np.abs(low - ref)))
        assert err[40] < err[6]

    def test_mem_mode_run_flags_operations(self):
        grid = make_grid(boundary="outflow", nxb=8, n_root=2, max_level=1)
        grid.initialize(sod_x_ic)
        solver = HydroSolver(rk_stages=1, reconstruction="plm")
        runtime = RaptorRuntime()
        cfg = TruncationConfig.mantissa(6, exp_bits=8, mode=Mode.MEM, deviation_threshold=1e-4)
        policy = GlobalPolicy(cfg, runtime=runtime)
        provider = policy_provider(policy, grid)
        solver.evolve(grid, t_end=0.01, provider=provider, fixed_dt=0.002)
        ctx = policy.context_for(module="hydro")
        report = ctx.report()
        assert len(report.entries) > 0
        assert any(flagged > 0 for _, flagged, _, _ in report.entries)
        labels = " ".join(loc.label for loc, *_ in report.entries)
        assert "recon" in labels or "riemann" in labels or "update" in labels
        # stage attribution visible in the per-module op counters
        mods = runtime.module_ops()
        assert any(m in mods for m in ("recon", "riemann", "update"))
