"""Tests for the domain-decomposition substrate."""
import numpy as np
import pytest

from repro.amr import AMRGrid
from repro.parallel import BlockDistribution, SimulatedComm, morton_index


def make_grid(max_level=3):
    g = AMRGrid(["dens"], nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=max_level, ng=2)

    def ic(x, y):
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
        return {"dens": 1.0 + 5.0 * np.exp(-r2 / 0.01)}

    g.initialize_with_refinement(ic, ["dens"], refine_cutoff=0.3)
    return g


class TestMortonIndex:
    def test_deterministic_and_unique_per_level(self):
        keys = [(2, i, j) for i in range(4) for j in range(4)]
        codes = [morton_index(k) for k in keys]
        assert len(set(codes)) == len(codes)

    def test_spatial_locality(self):
        """Adjacent blocks should be closer in Morton order than far blocks."""
        near = abs(morton_index((3, 0, 0)) - morton_index((3, 1, 0)))
        far = abs(morton_index((3, 0, 0)) - morton_index((3, 7, 7)))
        assert near < far


class TestBlockDistribution:
    def test_every_leaf_assigned_exactly_once(self):
        grid = make_grid()
        dist = BlockDistribution.from_grid(grid, n_ranks=4)
        assert len(dist) == grid.n_leaves
        assert set(dist.assignment.keys()) == set(grid.leaves.keys())

    def test_single_rank_gets_everything(self):
        grid = make_grid()
        dist = BlockDistribution.from_grid(grid, n_ranks=1)
        assert dist.counts() == [grid.n_leaves]

    def test_balanced_within_one_block(self):
        grid = make_grid()
        for n_ranks in (2, 3, 4, 8):
            counts = BlockDistribution.from_grid(grid, n_ranks).counts()
            assert max(counts) - min(counts) <= 1

    def test_rank_of_and_blocks_for_consistent(self):
        grid = make_grid()
        dist = BlockDistribution.from_grid(grid, n_ranks=4)
        for rank in range(4):
            for key in dist.blocks_for(rank):
                assert dist.rank_of(key) == rank

    def test_imbalance_metric(self):
        grid = make_grid()
        dist = BlockDistribution.from_grid(grid, n_ranks=2)
        assert dist.imbalance >= 1.0
        assert dist.imbalance < 1.2

    def test_invalid_inputs(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            BlockDistribution.from_grid(grid, n_ranks=0)
        dist = BlockDistribution.from_grid(grid, n_ranks=2)
        with pytest.raises(ValueError):
            dist.blocks_for(5)

    def test_rank_count_does_not_change_global_sums(self):
        """The decomposition analogue of 'parallelisation does not affect the
        outcome': per-rank partial sums reduce to the same global integral
        regardless of the number of ranks."""
        grid = make_grid()
        global_integral = grid.total_integral("dens")
        for n_ranks in (1, 2, 4, 8):
            dist = BlockDistribution.from_grid(grid, n_ranks)
            comm = SimulatedComm(n_ranks)
            partials = []
            for rank in range(n_ranks):
                partials.append(sum(grid.leaves[k].integral("dens") for k in dist.blocks_for(rank)))
            total = comm.allreduce(partials, op="sum")
            assert float(total) == pytest.approx(global_integral, rel=1e-12)


class TestSimulatedComm:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)
        assert SimulatedComm(4).size == 4
        assert SimulatedComm(4).Get_size() == 4

    def test_allreduce_ops(self):
        comm = SimulatedComm(3)
        assert float(comm.allreduce([1.0, 2.0, 3.0], "sum")) == 6.0
        assert float(comm.allreduce([1.0, 2.0, 3.0], "max")) == 3.0
        assert float(comm.allreduce([1.0, 2.0, 3.0], "min")) == 1.0

    def test_allreduce_arrays(self):
        comm = SimulatedComm(2)
        out = comm.allreduce([np.ones(3), 2 * np.ones(3)], "sum")
        assert np.array_equal(out, 3 * np.ones(3))

    def test_wrong_contribution_count(self):
        with pytest.raises(ValueError):
            SimulatedComm(2).allreduce([1.0], "sum")

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            SimulatedComm(1).allreduce([1.0], "prod")

    def test_allgather_and_bcast(self):
        comm = SimulatedComm(2)
        assert comm.allgather([1, 2]) == [1, 2]
        assert comm.bcast("hello") == "hello"
        with pytest.raises(ValueError):
            comm.bcast(1, root=5)
