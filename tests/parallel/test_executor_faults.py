"""Executor fault paths, driven by the deterministic injector.

Everything the fault-tolerance layer promises at the executor level is
pinned here: transient worker kills salvage completed results and lose
nothing, deterministic crashers surface after exactly the granted rebuild
budget, hangs are bounded by ``timeout`` and attributed to the right task,
unpicklable payloads fall back to the serial path with identical results,
and the ``on_result`` callback fires exactly once per task through all of
it.
"""
import os
import pickle
import threading
import warnings

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.parallel.executor import (
    ProcessPoolBackend,
    SerialBackend,
    TaskFault,
    TaskTimeoutError,
    run_tasks,
)
from repro.testing import (
    Fault,
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    current_fault_plan,
    maybe_inject,
)


def _square(x):
    maybe_inject("task", x)
    return x * x


def _second_times_three(pair):
    return pair[1] * 3


def _raise_timeout(x):
    raise TimeoutError(f"task {x} raised its own TimeoutError")


# ---------------------------------------------------------------------------
# the injector itself
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_plan_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            faults=(
                Fault("point", 3, "raise", times=None, message="boom"),
                Fault("cell", "kh", "hang", times=2, seconds=1.5),
            ),
            marker_dir=str(tmp_path),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bounded_fault_requires_marker_dir(self):
        with pytest.raises(ValueError, match="marker_dir"):
            FaultPlan(faults=(Fault("point", 0, "raise", times=1),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault("point", 0, "explode")
        with pytest.raises(ValueError, match="times"):
            Fault("point", 0, "raise", times=0)

    def test_times_counts_firings_via_markers(self, tmp_path):
        plan = FaultPlan(
            faults=(Fault("site", 7, "raise", times=2),), marker_dir=str(tmp_path)
        )
        with plan.installed():
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    maybe_inject("site", 7)
            maybe_inject("site", 7)  # budget exhausted: no-op
        # one persistent marker per firing (that persistence is what lets a
        # SIGKILLed claimant still count)
        assert len(list(tmp_path.iterdir())) == 2

    def test_unbounded_fault_always_fires(self, tmp_path):
        plan = FaultPlan(faults=(Fault("site", "x", "raise", times=None),))
        with plan.installed():
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    maybe_inject("site", "x")

    def test_site_and_key_must_match(self, tmp_path):
        plan = FaultPlan(faults=(Fault("point", 1, "raise", times=None),))
        with plan.installed():
            maybe_inject("reference", 1)
            maybe_inject("point", 2)
            with pytest.raises(FaultInjected):
                maybe_inject("point", 1)

    def test_integer_and_string_keys_alias(self, tmp_path):
        plan = FaultPlan(faults=(Fault("point", "4", "raise", times=None),))
        with plan.installed():
            with pytest.raises(FaultInjected):
                maybe_inject("point", 4)

    def test_installed_restores_previous_plan(self):
        clear_fault_plan()
        outer = FaultPlan(faults=(Fault("a", 1, "raise", times=None),))
        inner = FaultPlan(faults=(Fault("b", 2, "raise", times=None),))
        with outer.installed():
            with inner.installed():
                assert current_fault_plan() == inner
            assert current_fault_plan() == outer
        assert current_fault_plan() is None

    def test_no_plan_is_a_cheap_noop(self):
        clear_fault_plan()
        assert current_fault_plan() is None
        maybe_inject("point", 0)  # must not raise


# ---------------------------------------------------------------------------
# process-backend fault paths
# ---------------------------------------------------------------------------
class TestProcessBackendFaults:
    def test_transient_kill_salvages_and_loses_nothing(self, tmp_path):
        """A worker SIGKILLed once mid-batch: the batch still completes,
        completed results are salvaged (not recomputed), and ``on_result``
        fires exactly once per task."""
        plan = FaultPlan(
            faults=(Fault("task", 2, "kill", times=1),), marker_dir=str(tmp_path)
        )
        seen = []
        with plan.installed(), warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = ProcessPoolBackend(max_workers=2).map(
                _square, list(range(6)), on_result=lambda pos, value: seen.append(pos)
            )
        assert out == [0, 1, 4, 9, 16, 25]
        assert sorted(seen) == list(range(6)), "on_result must fire exactly once per task"
        broke = [str(w.message) for w in caught if "process pool broke" in str(w.message)]
        assert len(broke) == 1 and "salvaged" in broke[0]

    def test_deterministic_kill_raises_after_two_zero_progress_rounds(self, tmp_path):
        plan = FaultPlan(faults=(Fault("task", 1, "kill", times=None),))
        with plan.installed(), warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(BrokenProcessPool):
                ProcessPoolBackend(max_workers=2).map(_square, [0, 1, 2])
        retries = [w for w in caught if "fresh pool" in str(w.message)]
        assert len(retries) == 1, "default budget is one rebuild, then surface the crash"

    def test_retries_budget_grants_extra_rebuilds(self, tmp_path):
        plan = FaultPlan(faults=(Fault("task", 0, "kill", times=None),))
        with plan.installed(), warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(BrokenProcessPool):
                ProcessPoolBackend(max_workers=2).map(_square, [0, 1], retries=3)
        retries = [w for w in caught if "fresh pool" in str(w.message)]
        assert len(retries) == 3

    def test_collect_mode_attributes_hang_and_crash_exactly(self, tmp_path):
        """The isolation endgame: with a hang and a killer sharing the pool,
        collect mode convicts each one individually instead of smearing the
        crash over the whole frontier."""
        plan = FaultPlan(
            faults=(
                Fault("task", 1, "hang", times=None, seconds=60.0),
                Fault("task", 2, "kill", times=None),
            )
        )
        with plan.installed(), warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            out = ProcessPoolBackend(max_workers=2).map(
                _square, [0, 1, 2, 3], timeout=3.0, collect=True
            )
        assert out[0] == 0 and out[3] == 9
        assert isinstance(out[1], TaskFault) and out[1].kind == "timeout"
        assert out[1].index == 1 and out[1].elapsed >= 3.0
        assert isinstance(out[2], TaskFault) and out[2].kind == "worker-crash"
        assert out[2].index == 2

    def test_timeout_raise_mode(self, tmp_path):
        plan = FaultPlan(faults=(Fault("task", 0, "hang", times=None, seconds=60.0),))
        with plan.installed(), warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            with pytest.raises(TaskTimeoutError) as excinfo:
                ProcessPoolBackend(max_workers=2).map(_square, [0, 1], timeout=2.0)
        assert excinfo.value.index == 0
        assert excinfo.value.timeout == 2.0

    def test_task_raised_timeouterror_is_not_a_hang(self):
        """A task *raising* TimeoutError is an ordinary task error; the
        deadline machinery must not kill workers or rebuild the pool."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(TimeoutError) as excinfo:
                ProcessPoolBackend(max_workers=2).map(
                    _raise_timeout, [0, 1], timeout=30.0
                )
        assert not isinstance(excinfo.value, TaskTimeoutError)
        assert "raised its own" in str(excinfo.value)
        assert not [w for w in caught if "hung worker" in str(w.message)]

    def test_unpicklable_payload_falls_back_to_serial_identically(self):
        tasks = [(threading.Lock(), 2), (None, 3)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = ProcessPoolBackend(max_workers=2).map(_second_times_three, tasks)
        assert out == SerialBackend().map(_second_times_three, tasks) == [6, 9]
        assert any("serially" in str(w.message) for w in caught)

    def test_task_fault_is_picklable(self):
        fault = TaskFault(kind="timeout", index=3, message="m", elapsed=1.0, retries=2)
        assert pickle.loads(pickle.dumps(fault)) == fault


# ---------------------------------------------------------------------------
# serial backend
# ---------------------------------------------------------------------------
class TestSerialBackendFaults:
    def test_serial_timeout_warns_and_runs_without_deadline(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = SerialBackend().map(_square, [0, 1, 2], timeout=5.0)
        assert out == [0, 1, 4]
        assert any("cannot enforce" in str(w.message) for w in caught)

    def test_serial_on_result_fires_in_order(self):
        seen = []
        out = run_tasks(
            _square, [3, 4], backend="serial",
            on_result=lambda pos, value: seen.append((pos, value)),
        )
        assert out == [9, 16]
        assert seen == [(0, 9), (1, 16)]
