"""Tests for the roofline model and the Figure 8 speedup estimates."""
import pytest

from repro.codesign import (
    FUGAKU_BANDWIDTH_GBS,
    RooflineModel,
    estimate_speedup,
    speedup_compute_bound,
    speedup_memory_bound,
)
from repro.core import FP16, FP32, FP64, FPFormat, RaptorRuntime


class TestRoofline:
    def test_ridge_point(self):
        m = RooflineModel(peak_gflops=512.0, bandwidth_gbs=1024.0)
        assert m.ridge_point == 0.5

    def test_classification(self):
        m = RooflineModel(peak_gflops=512.0, bandwidth_gbs=1024.0)
        assert m.classify(flops=1000.0, bytes_moved=10.0) == "compute"
        assert m.classify(flops=10.0, bytes_moved=1000.0) == "memory"

    def test_attainable_capped_by_peak(self):
        m = RooflineModel(peak_gflops=100.0, bandwidth_gbs=1000.0)
        assert m.attainable_gflops(1000.0) == 100.0
        assert m.attainable_gflops(0.01) == 10.0

    def test_zero_bytes_is_compute_bound(self):
        m = RooflineModel(peak_gflops=100.0)
        assert m.is_compute_bound(10.0, 0.0)

    def test_default_bandwidth_is_fugaku(self):
        assert RooflineModel(1.0).bandwidth_gbs == FUGAKU_BANDWIDTH_GBS == 1024.0


class TestComputeBoundSpeedup:
    def test_no_truncation_means_no_speedup(self):
        assert speedup_compute_bound(0, 1e9, FP16) == pytest.approx(1.0)

    def test_zero_ops(self):
        assert speedup_compute_bound(0, 0, FP16) == 1.0

    def test_full_truncation_to_fp16_in_paper_range(self):
        """Paper: ~3.7x for half precision at ~85% truncated operations."""
        s = speedup_compute_bound(0.85e9, 0.15e9, FP16)
        assert 2.5 < s < 5.0

    def test_full_truncation_to_fp32_in_paper_range(self):
        """Paper: ~2.2x for single precision."""
        s = speedup_compute_bound(0.85e9, 0.15e9, FP32)
        assert 1.7 < s < 2.8

    def test_speedup_decreases_with_mantissa_width(self):
        speedups = [
            speedup_compute_bound(0.8e9, 0.2e9, FPFormat(11, m)) for m in (4, 10, 23, 40, 52)
        ]
        assert all(speedups[i] >= speedups[i + 1] for i in range(len(speedups) - 1))

    def test_speedup_increases_with_truncated_fraction(self):
        total = 1e9
        fractions = [0.1, 0.3, 0.6, 0.9]
        speedups = [
            speedup_compute_bound(f * total, (1 - f) * total, FP16) for f in fractions
        ]
        assert all(speedups[i] < speedups[i + 1] for i in range(len(speedups) - 1))

    def test_fp64_target_cannot_speed_up_much(self):
        assert speedup_compute_bound(0.9e9, 0.1e9, FP64) == pytest.approx(1.0, abs=0.5)


class TestMemoryBoundSpeedup:
    def test_no_truncated_bytes(self):
        assert speedup_memory_bound(0, 1000, FP16) == 1.0

    def test_all_bytes_truncated_to_fp16(self):
        # 16/64 of the traffic remains -> 4x
        assert speedup_memory_bound(1000, 0, FP16) == pytest.approx(4.0)

    def test_all_bytes_truncated_to_fp32(self):
        assert speedup_memory_bound(1000, 0, FP32) == pytest.approx(2.0)

    def test_paper_value_for_sod_fp32(self):
        """Paper: 1.6x memory-bound for single precision at high truncation."""
        s = speedup_memory_bound(850, 150, FP32)
        assert 1.4 < s < 1.9

    def test_zero_traffic(self):
        assert speedup_memory_bound(0, 0, FP16) == 1.0


class TestEstimateSpeedup:
    def _runtime(self, trunc_ops, full_ops, trunc_bytes, full_bytes):
        rt = RaptorRuntime()
        rt.record_truncated_ops(trunc_ops)
        rt.record_full_ops(full_ops)
        rt.record_truncated_bytes(trunc_bytes)
        rt.record_full_bytes(full_bytes)
        return rt

    def test_compute_heavy_workload_classified_compute(self):
        rt = self._runtime(10_000_000, 1_000_000, 1_000, 100)
        est = estimate_speedup(rt, FP16)
        assert est.bound == "compute"
        assert est.predicted == est.compute_bound
        assert est.compute_bound > 1.0

    def test_memory_heavy_workload_classified_memory(self):
        rt = self._runtime(1_000, 100, 10_000_000, 1_000_000)
        est = estimate_speedup(rt, FP16)
        assert est.bound == "memory"
        assert est.predicted == est.memory_bound

    def test_estimate_fields_copied_from_runtime(self):
        rt = self._runtime(100, 50, 800, 400)
        est = estimate_speedup(rt, FP16)
        assert est.truncated_ops == 100
        assert est.full_ops == 50
        assert est.truncated_bytes == 800
        assert est.full_bytes == 400
        assert est.target_fmt == FP16

    def test_empty_runtime(self):
        est = estimate_speedup(RaptorRuntime(), FP16)
        assert est.compute_bound == 1.0
        assert est.memory_bound == 1.0
