"""Tests for the FPU performance-density model (Table 4)."""
import pytest

from repro.codesign import (
    FPNEW_TABLE,
    HybridFPUConfig,
    area_ratio,
    normalized_performance_density,
    performance_density,
    table4_rows,
)
from repro.core import FP16, FP32, FP64, FP8_E5M2, FPFormat


class TestTable4Data:
    def test_raw_densities(self):
        assert FPNEW_TABLE["fp64"].density == pytest.approx(3.17 / 53)
        assert FPNEW_TABLE["fp8"].density == pytest.approx(25.33 / 23)

    @pytest.mark.parametrize(
        "name,expected",
        [("fp64", 1.00), ("fp32", 2.65), ("fp16", 7.30), ("fp8", 18.41)],
    )
    def test_normalized_density_matches_paper(self, name, expected):
        fmt = FPNEW_TABLE[name].fmt
        assert normalized_performance_density(fmt) == pytest.approx(expected, rel=0.01)

    def test_table4_rows_structure(self):
        rows = table4_rows()
        assert len(rows) == 4
        by_type = {r["type"]: r for r in rows}
        assert by_type["fp64"]["perf_density_normalized"] == 1.0
        assert by_type["fp16"]["perf_density_normalized"] == pytest.approx(7.30, rel=0.01)
        assert by_type["fp32"]["gflops"] == 6.33


class TestExtrapolation:
    def test_known_points_reproduced_exactly(self):
        for spec in FPNEW_TABLE.values():
            assert performance_density(spec.fmt) == pytest.approx(spec.density)

    def test_density_monotonically_decreases_with_width(self):
        widths = [FPFormat(5, m) for m in (2, 6, 10, 20, 30, 40, 52)]
        densities = [performance_density(f) for f in widths]
        assert all(densities[i] >= densities[i + 1] for i in range(len(densities) - 1))

    def test_intermediate_format_between_neighbours(self):
        # a 24-bit format should fall between fp16 and fp32 densities
        d = performance_density(FPFormat(8, 15))
        assert performance_density(FP32) < d < performance_density(FP16)


class TestAreaRatio:
    def test_matches_paper_value(self):
        # paper: A_dbl : A_low = 1.39 for the FP64:FP32 = 1:2 reference machine
        assert area_ratio() == pytest.approx(1.39, rel=0.08)

    def test_equal_compute_means_larger_double_area(self):
        assert area_ratio(compute_ratio_low_to_dbl=1.0) > area_ratio(compute_ratio_low_to_dbl=2.0)


class TestHybridFPUConfig:
    def test_reference_configuration_compute_ratio(self):
        cfg = HybridFPUConfig.from_reference(FP32)
        assert cfg.peak_low / cfg.peak_dbl == pytest.approx(2.0, rel=1e-6)

    def test_retargeting_keeps_areas(self):
        ref = HybridFPUConfig.from_reference(FP32)
        half = HybridFPUConfig.from_reference(FP16)
        assert ref.area_dbl == pytest.approx(half.area_dbl)
        assert ref.area_low == pytest.approx(half.area_low)
        assert half.peak_low > ref.peak_low

    def test_time_model_additive(self):
        cfg = HybridFPUConfig.from_reference(FP16)
        t_dbl_only = cfg.time_for(100.0, 0.0)
        t_low_only = cfg.time_for(0.0, 100.0)
        assert cfg.time_for(100.0, 100.0) == pytest.approx(t_dbl_only + t_low_only)
        assert t_low_only < t_dbl_only

    def test_time_zero_ops(self):
        cfg = HybridFPUConfig.from_reference(FP8_E5M2)
        assert cfg.time_for(0.0, 0.0) == 0.0
