"""Tests for the adaptive precision-cliff search.

The load-bearing property: on any monotone pass/fail profile, bisection
finds exactly the cliff an exhaustive grid scan would find, in at most
``ceil(log2(n)) + 1`` runs (hypothesis-checked on a synthetic error model,
then pinned on the real cellular workload against a real exhaustive grid).
"""
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RaptorRuntime
from repro.core.selective import NoTruncationPolicy
from repro.experiments import (
    AdaptiveResult,
    AdaptiveSpec,
    PolicySpec,
    ReferenceCache,
    find_cliff,
    run_adaptive_sweep,
)
from repro.experiments.adaptive import bisect_cliff, max_bisection_runs
from repro.workloads import Outcome, Scenario

CELLULAR_FAST = dict(n_cells=32, n_steps=8)


# ---------------------------------------------------------------------------
# a synthetic scenario with an exactly known cliff
# ---------------------------------------------------------------------------
class SyntheticCliffWorkload(Scenario):
    """Error model ``error(m) = 2**-m``: monotone in the mantissa width, so
    a threshold ``2**-c`` puts the cliff exactly at ``ceil(c)`` bits."""

    name = "synthetic-cliff"
    config_class = None
    kind = "synthetic"
    error_variables = ("value",)
    default_error_variables = ("value",)
    cliff_threshold = 2.0 ** -10

    def __init__(self):
        self.runs = 0

    @staticmethod
    def _man_bits(policy) -> int:
        if policy is None or isinstance(policy, NoTruncationPolicy):
            return 53
        return policy.config.targets[64].man_bits

    def run(self, policy=None, runtime=None) -> Outcome:
        self.runs += 1
        man_bits = self._man_bits(policy)
        return Outcome(
            workload=self.name,
            state={"value": np.array([2.0 ** -man_bits])},
            time=0.0,
            info={"man_bits": float(man_bits)},
            kind=self.kind,
            runtime=runtime,
        )

    def error(self, outcome: Outcome, reference: Outcome) -> float:
        return float(abs(outcome.state["value"][0] - reference.state["value"][0]))


# ---------------------------------------------------------------------------
# the bisection core
# ---------------------------------------------------------------------------
class TestBisectCliff:
    @given(
        min_bits=st.integers(min_value=1, max_value=30),
        span=st.integers(min_value=0, max_value=60),
        cliff=st.integers(min_value=-5, max_value=70),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_exhaustive_scan_on_any_monotone_profile(self, min_bits, span, cliff):
        """Bisection == exhaustive scan for every monotone step profile,
        within the run bound."""
        max_bits = min_bits + span

        def make_eval(counter):
            def evaluate(bits):
                counter.append(bits)
                from repro.experiments.adaptive import CliffEvaluation

                return CliffEvaluation(
                    man_bits=bits, error=0.0, passed=bits >= cliff, truncated_fraction=0.0
                )
            return evaluate

        probes = []
        found, evaluations = bisect_cliff(make_eval(probes), min_bits, max_bits)

        exhaustive = next((m for m in range(min_bits, max_bits + 1) if m >= cliff), None)
        assert found == exhaustive
        assert len(evaluations) == len(probes)
        assert len(evaluations) <= max_bisection_runs(min_bits, max_bits)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            bisect_cliff(lambda b: None, 0, 10)
        with pytest.raises(ValueError):
            bisect_cliff(lambda b: None, 10, 9)

    def test_run_bound_formula(self):
        assert max_bisection_runs(4, 4) == 1
        assert max_bisection_runs(4, 5) == 2
        assert max_bisection_runs(1, 64) == 7
        assert max_bisection_runs(8, 48) == math.ceil(math.log2(41)) + 1


# ---------------------------------------------------------------------------
# find_cliff on the synthetic scenario (full protocol path)
# ---------------------------------------------------------------------------
class TestFindCliffSynthetic:
    @given(
        threshold_bits=st.integers(min_value=1, max_value=50),
        min_bits=st.integers(min_value=1, max_value=20),
        span=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_converges_to_the_exhaustive_grid_cliff(self, threshold_bits, min_bits, span):
        max_bits = min(min_bits + span, 52)  # FP64 storage caps the mantissa
        threshold = 2.0 ** -threshold_bits
        workload = SyntheticCliffWorkload()
        reference = workload.reference().detach()

        # the exhaustive grid: smallest m in range with error(m) <= threshold
        def passes(m):
            out = workload.run(policy=None) if m >= 53 else None
            error = abs(2.0 ** -m - 2.0 ** -53)
            return error <= threshold

        exhaustive = next((m for m in range(min_bits, max_bits + 1) if passes(m)), None)

        result = find_cliff(
            workload,
            PolicySpec.everywhere(),
            min_man_bits=min_bits,
            max_man_bits=max_bits,
            threshold=threshold,
            reference=reference,
        )
        assert result.cliff_man_bits == exhaustive
        assert result.n_runs <= max_bisection_runs(min_bits, max_bits)
        assert result.found == (exhaustive is not None)

    def test_evaluations_record_the_bisection_trace(self):
        workload = SyntheticCliffWorkload()
        result = find_cliff(
            workload, PolicySpec.everywhere(), min_man_bits=1, max_man_bits=32,
            threshold=2.0 ** -16,
        )
        assert result.evaluations[0].man_bits == 32  # top probe first
        # error(16) = 2^-16 - 2^-53 <= 2^-16 passes; error(15) does not
        assert result.cliff_man_bits == 16
        assert all(e.error >= 0 for e in result.evaluations)
        assert result.last_failing_bits == result.cliff_man_bits - 1

    def test_instance_with_config_kwargs_rejected(self):
        with pytest.raises(ValueError, match="config_kwargs"):
            find_cliff(SyntheticCliffWorkload(), config_kwargs={"x": 1})

    def test_non_scenario_rejected(self):
        class NotAScenario:
            name = "nope"

        with pytest.raises(ValueError, match="scenario protocol"):
            find_cliff(NotAScenario())


# ---------------------------------------------------------------------------
# find_cliff on the real cellular workload, vs a real exhaustive grid
# ---------------------------------------------------------------------------
class TestFindCliffCellular:
    @pytest.fixture(scope="class")
    def exhaustive(self):
        """Exhaustive pass/fail scan of the cellular EOS invariant."""
        from repro.workloads import CellularConfig, CellularWorkload

        workload = CellularWorkload(CellularConfig(**CELLULAR_FAST))
        reference = workload.reference().detach()
        policy = PolicySpec.module("eos")
        from repro.core.fpformat import FPFormat

        profile = {}
        for man_bits in range(28, 41):
            rt = RaptorRuntime()
            built = policy.build(FPFormat(11, man_bits), rt)
            outcome = workload.run(policy=built, runtime=rt)
            profile[man_bits] = workload.acceptable(outcome, reference)
        return workload, reference, profile

    def test_profile_is_monotone(self, exhaustive):
        _, _, profile = exhaustive
        outcomes = [profile[m] for m in sorted(profile)]
        first_pass = outcomes.index(True)
        assert all(outcomes[first_pass:]) and not any(outcomes[:first_pass])

    def test_bisection_matches_the_exhaustive_cliff(self, exhaustive):
        workload, reference, profile = exhaustive
        expected = next(m for m in sorted(profile) if profile[m])
        result = find_cliff(
            workload,
            PolicySpec.module("eos"),
            min_man_bits=28,
            max_man_bits=40,
            reference=reference,
        )
        assert result.cliff_man_bits == expected
        assert result.n_runs <= max_bisection_runs(28, 40)

    def test_cache_serves_the_reference(self, tmp_path):
        cache = ReferenceCache(tmp_path)
        kwargs = dict(
            config_kwargs=CELLULAR_FAST, min_man_bits=30, max_man_bits=38, cache=cache,
        )
        first = find_cliff("cellular", PolicySpec.module("eos"), **kwargs)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        second = find_cliff("cellular", PolicySpec.module("eos"), **kwargs)
        assert cache.stats.hits == 1
        assert first.cliff_man_bits == second.cliff_man_bits
        assert [e.error for e in first.evaluations] == [e.error for e in second.evaluations]

    def test_cache_shared_between_name_and_instance_spellings(self, tmp_path):
        from repro.workloads import CellularConfig, CellularWorkload

        cache = ReferenceCache(tmp_path)
        by_name = find_cliff(
            "cellular", PolicySpec.module("eos"),
            config_kwargs=CELLULAR_FAST, min_man_bits=30, max_man_bits=38, cache=cache,
        )
        assert cache.stats.stores == 1
        # a ready-made instance with the same effective config hits the
        # same content address — no reference recomputation
        instance = CellularWorkload(CellularConfig(**CELLULAR_FAST))
        by_instance = find_cliff(
            instance, PolicySpec.module("eos"),
            min_man_bits=30, max_man_bits=38, cache=cache,
        )
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert by_instance.cliff_man_bits == by_name.cliff_man_bits
        assert [e.error for e in by_instance.evaluations] == [
            e.error for e in by_name.evaluations
        ]

    def test_unregistered_instance_with_cache_still_works(self, tmp_path):
        cache = ReferenceCache(tmp_path)
        result = find_cliff(
            SyntheticCliffWorkload(), PolicySpec.everywhere(),
            min_man_bits=1, max_man_bits=16, threshold=2.0 ** -8, cache=cache,
        )
        assert result.found  # reference computed on the spot, cache skipped


# ---------------------------------------------------------------------------
# the grid driver
# ---------------------------------------------------------------------------
class TestAdaptiveSweep:
    @pytest.fixture(scope="class")
    def spec(self):
        return AdaptiveSpec(
            workloads=["cellular"],
            policies=[PolicySpec.module("eos")],
            min_man_bits=28,
            max_man_bits=40,
            workload_configs={"cellular": CELLULAR_FAST},
        )

    @pytest.fixture(scope="class")
    def serial_result(self, spec):
        return run_adaptive_sweep(spec)

    def test_cells_and_cliffs_in_grid_order(self, serial_result):
        assert len(serial_result) == 1
        cliff = serial_result.cliffs[0]
        assert cliff.workload == "cellular"
        assert cliff.found
        assert cliff.n_runs <= max_bisection_runs(28, 40)
        assert serial_result.total_runs == cliff.n_runs

    def test_serial_and_process_backends_identical(self, spec, serial_result):
        process = run_adaptive_sweep(spec.with_backend("process", max_workers=2))
        assert [c.to_dict() for c in process.cliffs] == [
            c.to_dict() for c in serial_result.cliffs
        ]

    def test_table_and_to_dict(self, serial_result):
        import json

        table = serial_result.table()
        assert "cellular" in table and "module[eos]" in table
        payload = serial_result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["total_runs"] == serial_result.total_runs

    def test_shard_merge_bitwise_identical(self, tmp_path):
        spec = AdaptiveSpec(
            workloads=["cellular"],
            policies=[PolicySpec.module("eos"), PolicySpec.everywhere(modules=("eos",))],
            min_man_bits=30,
            max_man_bits=38,
            workload_configs={"cellular": CELLULAR_FAST},
        )
        whole = run_adaptive_sweep(spec)
        shards = []
        for i in range(2):
            result = run_adaptive_sweep(spec.shard(i, 2))
            path = result.save(tmp_path / f"shard{i}.pkl")
            shards.append(AdaptiveResult.load(path))
        merged = AdaptiveResult.merge(*shards)
        assert [c.to_dict() for c in merged.cliffs] == [c.to_dict() for c in whole.cliffs]

    def test_merge_rejects_incomplete_coverage(self, spec):
        shard = run_adaptive_sweep(
            AdaptiveSpec(
                workloads=["cellular"],
                policies=[PolicySpec.module("eos"), PolicySpec.everywhere(modules=("eos",))],
                min_man_bits=30,
                max_man_bits=34,
                workload_configs={"cellular": CELLULAR_FAST},
            ).shard(0, 2)
        )
        with pytest.raises(ValueError, match="missing cell"):
            AdaptiveResult.merge(shard)

    def test_warm_cache_launches_zero_reference_tasks(self, spec, tmp_path, monkeypatch):
        from repro.experiments import engine

        cache = ReferenceCache(tmp_path)
        run_adaptive_sweep(spec, cache=cache)

        def _boom(task):
            raise AssertionError("reference task launched despite a warm cache")

        monkeypatch.setattr(engine, "_execute_reference", _boom)
        warm = run_adaptive_sweep(spec, cache=cache)
        assert warm.cache_stats["hits"] == 1 and warm.cache_stats["misses"] == 0


class TestDefaultPolicies:
    """With no explicit policy, the search must target each workload's own
    truncation modules — a fixed hydro policy truncates nothing for
    cellular/bubble and would report a vacuous cliff at min_man_bits."""

    def test_default_policy_targets_each_workloads_modules(self):
        from repro.experiments.adaptive import default_policy_for

        assert default_policy_for("sod").modules == ("hydro",)
        assert default_policy_for("cellular").modules == ("eos",)
        assert default_policy_for("bubble").modules == ("advection", "diffusion")

    def test_spec_default_policies_are_per_workload(self):
        spec = AdaptiveSpec(workloads=["sod", "cellular"])
        spec.validate()
        cells = spec.full_cells()
        assert cells[0].policy.modules == ("hydro",)
        assert cells[1].policy.modules == ("eos",)

    def test_policy_missing_the_workloads_modules_warns_vacuous(self):
        with pytest.warns(RuntimeWarning, match="vacuous"):
            result = find_cliff(
                "cellular",
                PolicySpec.everywhere(modules=("hydro",)),
                config_kwargs=dict(n_cells=16, n_steps=4),
                min_man_bits=2,
                max_man_bits=4,
            )
        # nothing was truncated: every probe trivially at full precision
        assert all(e.truncated_fraction == 0.0 for e in result.evaluations)

    def test_matching_policy_does_not_warn(self, recwarn):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            find_cliff(
                "cellular",
                config_kwargs=dict(n_cells=16, n_steps=4),
                min_man_bits=30,
                max_man_bits=32,
            )


class TestAdaptiveSpecValidation:
    def test_defaults_validate(self):
        AdaptiveSpec().validate()

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError, match="min_man_bits"):
            AdaptiveSpec(min_man_bits=0).validate()
        with pytest.raises(ValueError, match="max_man_bits"):
            AdaptiveSpec(min_man_bits=10, max_man_bits=9).validate()

    def test_duplicate_and_unknown_workloads_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AdaptiveSpec(workloads=["kh", "kelvin-helmholtz"]).validate()
        with pytest.raises(KeyError):
            AdaptiveSpec(workloads=["no-such-thing"]).validate()

    def test_thresholds_are_alias_aware(self):
        spec = AdaptiveSpec(workloads=["kh"], thresholds={"kelvin-helmholtz": 0.5})
        spec.validate()
        assert spec.threshold_for("kh") == 0.5
        spec = AdaptiveSpec(workloads=["kh"], threshold=0.25)
        assert spec.threshold_for("kh") == 0.25
        assert AdaptiveSpec(workloads=["kh"]).threshold_for("kh") is None

    def test_threshold_for_unlisted_workload_rejected(self):
        with pytest.raises(ValueError, match="not in workloads"):
            AdaptiveSpec(workloads=["sod"], thresholds={"kh": 0.5}).validate()

    def test_sharding_validation(self):
        spec = AdaptiveSpec(workloads=["sod", "sedov"])
        assert len(spec.shard(0, 2).cells()) + len(spec.shard(1, 2).cells()) == len(spec.cells())
        with pytest.raises(ValueError, match="already sharded"):
            spec.shard(0, 2).shard(0, 2)
