"""Engine-level fault tolerance: collect mode, failure records, chaos runs.

The contract under test: ``on_error="collect"`` turns every failing point
into a structured :class:`PointFailure` — exception, blow-up, timeout,
worker crash, or a failed reference — while the healthy points stay
**bitwise identical** to a fault-free run, and ``on_error="raise"`` (the
default) preserves the historical abort-on-first-error behaviour exactly.
"""
import pickle
import warnings

import numpy as np
import pytest

from repro.experiments import (
    AdaptiveSpec,
    NonFiniteStateError,
    PointFailure,
    PolicySpec,
    SweepResult,
    SweepSpec,
    find_cliff,
    nonfinite_variables,
    run_adaptive_sweep,
    run_sweep,
)
from repro.testing import Fault, FaultInjected, FaultPlan
from repro.workloads import create_workload, get_workload_class

#: the cheapest sweepable workload: a handful of reactive-Euler cells
CELLULAR = dict(n_cells=16, n_steps=4)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["cellular"],
        formats=["e11m46", "e11m20", "e11m10"],
        policies=[PolicySpec.module("eos")],
        workload_configs={"cellular": dict(CELLULAR)},
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def clean_result():
    return run_sweep(_spec())


class TestCollectMode:
    def test_raising_point_is_collected_healthy_points_bitwise(self, clean_result, tmp_path):
        plan = FaultPlan(
            faults=(Fault("point", 1, "raise", times=None, message="solver exploded"),)
        )
        with plan.installed():
            result = run_sweep(_spec(on_error="collect"))

        assert [f.index for f in result.failures] == [1]
        failure = result.failures[0]
        assert failure.kind == "exception"
        assert failure.exc_type == "FaultInjected"
        assert "solver exploded" in failure.message
        assert failure.format_name == "e11m20"
        assert failure.policy == "module[eos]"
        assert "FaultInjected" in failure.traceback
        assert failure.seconds >= 0.0

        assert [p.index for p in result.points] == [0, 2]
        clean = {p.index: p for p in clean_result.points}
        for point in result.points:
            assert point.metrics_key() == clean[point.index].metrics_key()

    def test_default_raise_mode_propagates(self):
        plan = FaultPlan(faults=(Fault("point", 0, "raise", times=None),))
        with plan.installed():
            with pytest.raises(FaultInjected):
                run_sweep(_spec())

    def test_failure_is_picklable_and_keyed_without_noise(self):
        plan = FaultPlan(faults=(Fault("point", 2, "raise", times=None),))
        with plan.installed():
            result = run_sweep(_spec(on_error="collect"))
        failure = pickle.loads(pickle.dumps(result.failures[0]))
        # seconds / retries / traceback are machine noise, excluded from the
        # identity used by merge dedup and bitwise comparisons
        assert failure.failure_key() == result.failures[0].failure_key()
        hostile = PointFailure(**{**failure.__dict__, "seconds": 99.0, "retries": 7})
        assert hostile.failure_key() == failure.failure_key()

    def test_table_and_to_dict_report_failures(self):
        plan = FaultPlan(faults=(Fault("point", 0, "raise", times=None),))
        with plan.installed():
            result = run_sweep(_spec(on_error="collect"))
        assert "failed points:" in result.table()
        assert "FaultInjected" in result.table()
        payload = result.to_dict()
        assert payload["failures"][0]["kind"] == "exception"
        assert result.select_failures(kind="exception") == result.failures
        assert result.select_failures(workload="nope") == []

    def test_reference_failure_fails_its_points(self):
        plan = FaultPlan(faults=(Fault("reference", "cellular", "raise", times=None),))
        with plan.installed():
            result = run_sweep(_spec(on_error="collect"))
        assert result.points == []
        # one reference-level record (index -1) plus one kind="reference"
        # failure per point that needed it
        assert [f.index for f in result.failures] == [-1, 0, 1, 2]
        assert result.failures[0].exc_type == "FaultInjected"
        assert {f.kind for f in result.failures[1:]} == {"reference"}

    def test_reference_failure_raises_in_raise_mode(self):
        plan = FaultPlan(faults=(Fault("reference", "cellular", "raise", times=None),))
        with plan.installed():
            with pytest.raises(FaultInjected):
                run_sweep(_spec())


class TestBlowupDetection:
    def test_nonfinite_variables(self):
        state = {"a": np.ones(3), "b": np.array([1.0, np.nan]), "c": np.array([np.inf])}
        assert nonfinite_variables(state) == ["b", "c"]
        assert nonfinite_variables({"a": np.ones(3)}) == []

    @pytest.fixture
    def nan_producing_cellular(self):
        cls = get_workload_class("cellular")
        original = cls.run

        def bad_run(self, **kwargs):
            outcome = original(self, **kwargs)
            next(iter(outcome.state.values()))[0] = np.nan
            return outcome

        cls.run = bad_run
        try:
            yield
        finally:
            cls.run = original

    def test_collect_mode_records_blowups(self, nan_producing_cellular):
        result = run_sweep(_spec(on_error="collect"))
        assert result.points == []
        assert len(result.failures) == 3
        assert {f.kind for f in result.failures} == {"blowup"}
        assert all(f.exc_type == "NonFiniteStateError" for f in result.failures)
        assert "non-finite" in result.failures[0].message

    def test_raise_mode_keeps_historical_nan_propagation(self, nan_producing_cellular):
        """The finiteness check is collect-only: default sweeps must keep
        their historical bit-for-bit behaviour, NaN errors included."""
        result = run_sweep(_spec())
        assert len(result.points) == 3
        assert not result.failures


class TestMergeWithFailures:
    def test_shards_merge_failures_into_grid_order(self):
        spec = _spec(on_error="collect")
        plan = FaultPlan(faults=(Fault("point", 1, "raise", times=None),))
        with plan.installed():
            shards = [run_sweep(spec.shard(i, 2)) for i in range(2)]
        merged = SweepResult.merge(shards)
        assert [p.index for p in merged.points] == [0, 2]
        assert [f.index for f in merged.failures] == [1]
        clean = run_sweep(_spec())
        lookup = {p.index: p for p in clean.points}
        for point in merged.points:
            assert point.metrics_key() == lookup[point.index].metrics_key()

    def test_merge_rejects_missing_coverage(self):
        spec = _spec(on_error="collect")
        plan = FaultPlan(faults=(Fault("point", 1, "raise", times=None),))
        with plan.installed():
            shard0 = run_sweep(spec.shard(0, 2))
        with pytest.raises(ValueError):
            SweepResult.merge([shard0])


class TestSpecValidation:
    def test_fault_tolerance_fields_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            _spec(on_error="ignore").validate()
        with pytest.raises(ValueError, match="point_timeout"):
            _spec(point_timeout=0.0).validate()
        with pytest.raises(ValueError, match="retries"):
            _spec(retries=-1).validate()

    def test_old_pickles_default_new_fields(self):
        spec = _spec()
        state = dict(spec.__dict__)
        for field in ("on_error", "point_timeout", "retries"):
            state.pop(field)
        revived = SweepSpec.__new__(SweepSpec)
        revived.__setstate__(state)
        assert revived.on_error == "raise"
        assert revived.point_timeout is None
        assert revived.retries is None

    def test_serial_backend_warns_about_unenforceable_timeout(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_sweep(_spec(formats=["e11m46"], point_timeout=60.0))
        assert len(result.points) == 1
        assert any("cannot enforce" in str(w.message) for w in caught)


class TestAdaptiveFaults:
    def test_find_cliff_collect_isolates_probe_failures(self):
        workload = create_workload("cellular", **CELLULAR)
        reference = workload.reference(plane="fast")
        cls = get_workload_class("cellular")
        original = cls.run

        def exploding_run(self, **kwargs):
            raise RuntimeError("probe exploded")

        cls.run = exploding_run
        try:
            result = find_cliff(
                create_workload("cellular", **CELLULAR),
                PolicySpec.module("eos"),
                min_man_bits=8,
                max_man_bits=12,
                reference=reference,
                on_error="collect",
            )
            assert result.evaluations
            assert all(not e.passed and e.error == float("inf")
                       for e in result.evaluations)
            assert len(result.probe_failures) == len(result.evaluations)
            assert all(f.kind == "exception" and "probe exploded" in f.message
                       for f in result.probe_failures)
            with pytest.raises(RuntimeError, match="probe exploded"):
                find_cliff(
                    create_workload("cellular", **CELLULAR),
                    PolicySpec.module("eos"),
                    min_man_bits=8,
                    max_man_bits=12,
                    reference=reference,
                )
        finally:
            cls.run = original

    def test_adaptive_sweep_collects_cell_failures(self):
        spec = AdaptiveSpec(
            workloads=["cellular"],
            min_man_bits=8,
            max_man_bits=12,
            workload_configs={"cellular": dict(CELLULAR)},
            on_error="collect",
        )
        plan = FaultPlan(faults=(Fault("cell", 0, "raise", times=None),))
        with plan.installed():
            result = run_adaptive_sweep(spec)
        assert result.cliffs == []
        assert len(result.failures) == 1
        assert result.failures[0].kind == "exception"
        assert result.select_failures(workload="cellular") == result.failures
        assert "failed cells:" in result.table()
        assert result.to_dict()["failures"][0]["exc_type"] == "FaultInjected"

    def test_adaptive_raise_mode_propagates(self):
        spec = AdaptiveSpec(
            workloads=["cellular"],
            min_man_bits=8,
            max_man_bits=12,
            workload_configs={"cellular": dict(CELLULAR)},
        )
        plan = FaultPlan(faults=(Fault("cell", 0, "raise", times=None),))
        with plan.installed():
            with pytest.raises(FaultInjected):
                run_adaptive_sweep(spec)

    def test_adaptive_spec_validation_and_setstate(self):
        with pytest.raises(ValueError, match="on_error"):
            AdaptiveSpec(workloads=["cellular"], on_error="ignore").validate()
        spec = AdaptiveSpec(workloads=["cellular"])
        state = dict(spec.__dict__)
        for field in ("on_error", "point_timeout", "retries"):
            state.pop(field)
        revived = AdaptiveSpec.__new__(AdaptiveSpec)
        revived.__setstate__(state)
        assert revived.on_error == "raise"
        assert revived.point_timeout is None
        assert revived.retries is None


class TestProcessBackendChaos:
    def test_process_sweep_with_kill_and_raise(self, tmp_path):
        """A worker SIGKILL plus a raising point: the collect-mode sweep
        completes with exactly those failures, healthy points bitwise equal
        to the serial run."""
        plan = FaultPlan(
            faults=(
                Fault("point", 0, "raise", times=None),
                Fault("point", 2, "kill", times=None),
            ),
            marker_dir=str(tmp_path),
        )
        with plan.installed(), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = run_sweep(
                _spec(backend="process", max_workers=2, on_error="collect")
            )
        kinds = {f.index: f.kind for f in result.failures}
        assert kinds == {0: "exception", 2: "worker-crash"}
        assert [p.index for p in result.points] == [1]
        clean = run_sweep(_spec())
        assert result.points[0].metrics_key() == clean.points[1].metrics_key()
