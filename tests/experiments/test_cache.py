"""Tests for the reference-run cache: keys, levels, hit/miss/invalidation
semantics, and the warm-cache guarantee of ``run_sweep``."""
import numpy as np
import pytest

from repro.experiments import (
    PolicySpec,
    ReferenceCache,
    ReferenceKey,
    SweepSpec,
    reference_key,
    run_sweep,
    solver_fingerprint,
)
from repro.experiments.cache import MemoryLRU, NpzReferenceStore
from repro.experiments.engine import ReferenceResult

FAST = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.005, rk_stages=1)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["kelvin-helmholtz"],
        formats=["fp64", "bf16"],
        policies=[PolicySpec.everywhere(modules=("hydro",))],
        workload_configs={"kelvin-helmholtz": FAST},
        variables=("dens",),
    )
    base.update(overrides)
    return SweepSpec(**base)


def _reference(value: float = 1.0) -> ReferenceResult:
    return ReferenceResult(
        workload="kelvin-helmholtz",
        info={"steps": 3.0, "time": 0.005},
        runtime_snapshot={"ops": {"truncated": 0, "full": 7}},
        state={"dens": np.full((4, 4), value), "pres": np.arange(16.0).reshape(4, 4)},
        time=0.005,
    )


# ---------------------------------------------------------------------------
# keys and fingerprints
# ---------------------------------------------------------------------------
class TestKeys:
    def test_alias_and_canonical_share_a_key(self):
        assert reference_key("kh", FAST) == reference_key("kelvin-helmholtz", FAST)

    def test_explicit_defaults_share_a_key(self):
        from repro.workloads import KelvinHelmholtzConfig

        defaults = KelvinHelmholtzConfig(**FAST)
        spelled_out = dict(FAST, gamma=defaults.gamma, cfl=defaults.cfl)
        assert reference_key("kh", FAST) == reference_key("kh", spelled_out)

    def test_different_configs_differ(self):
        assert reference_key("kh", FAST) != reference_key("kh", dict(FAST, t_end=0.01))
        assert reference_key("kh", FAST) != reference_key("sedov", FAST)

    def test_grid_shape_and_steps_in_key(self):
        key = reference_key("kh", FAST)
        assert key.grid_shape == (32, 32)  # 2 roots * 8 cells * 2**(2-1)
        assert key.n_steps == 0  # adaptive dt
        fixed = reference_key("kh", dict(FAST, fixed_dt=0.001))
        assert fixed.n_steps == 5
        assert key.filename().startswith("kelvin-helmholtz-32x32-s0-")

    def test_solver_fingerprint_is_stable_and_hex(self):
        fp = solver_fingerprint()
        assert fp == solver_fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0

    def test_cellular_key_carries_cells_and_steps(self):
        key = reference_key("cellular", dict(n_cells=32, n_steps=8))
        assert key.grid_shape == (32,)
        assert key.n_steps == 8
        assert key.filename().startswith("cellular-32-s8-")
        assert key != reference_key("cellular", dict(n_cells=32, n_steps=9))

    def test_bubble_key_carries_grid_and_fixed_steps(self):
        from repro.incomp import BubbleConfig

        kwargs = dict(
            solver=BubbleConfig(nx=16, ny=24),
            spin_up_time=0.04, truncation_time=0.06, fixed_dt=0.004,
        )
        key = reference_key("bubble", kwargs)
        assert key.grid_shape == (16, 24)
        assert key.n_steps == 15  # truncation_time / fixed_dt
        assert key != reference_key("bubble", dict(kwargs, truncation_time=0.08))

    def test_nested_dataclass_configs_hash_deterministically(self):
        # CellularConfig nests NewtonSolverConfig and CarbonBurnNetwork;
        # the digest must not depend on object identity
        a = reference_key("cellular", dict(n_cells=32))
        b = reference_key("cellular", dict(n_cells=32))
        assert a == b

    def test_physics_packages_enumerated_dynamically(self, tmp_path):
        from repro.experiments.cache import _physics_packages

        for name in ("hydro", "kernels", "experiments", "parallel", "codesign", "newpkg"):
            (tmp_path / name).mkdir()
            (tmp_path / name / "__init__.py").write_text("")
        (tmp_path / "not_a_package").mkdir()  # no __init__.py: skipped
        (tmp_path / "loose.py").write_text("")  # plain file: skipped
        # orchestration packages are excluded; everything else — including
        # a package that did not exist when cache.py was written — is in
        assert _physics_packages(tmp_path) == ["hydro", "kernels", "newpkg"]

    def test_fingerprint_covers_every_physics_package(self, tmp_path):
        import repro
        from pathlib import Path
        from repro.experiments.cache import _NON_PHYSICS_PACKAGES, _physics_packages

        root = Path(repro.__file__).parent
        packages = _physics_packages(root)
        # the real tree: kernels (fast planes) must participate, the
        # orchestration-only packages must not
        assert "kernels" in packages and "hydro" in packages and "core" in packages
        assert not set(packages) & _NON_PHYSICS_PACKAGES

    def test_fingerprint_changes_when_physics_source_changes(self):
        import repro
        from pathlib import Path

        root = Path(repro.__file__).parent
        extra = root / "kernels" / "_fingerprint_probe_delete_me.py"
        before = solver_fingerprint(refresh=True)
        try:
            extra.write_text("# temporary fingerprint probe\n")
            after = solver_fingerprint(refresh=True)
        finally:
            extra.unlink()
            solver_fingerprint(refresh=True)  # restore the memoised value
        assert before != after


# ---------------------------------------------------------------------------
# the two levels
# ---------------------------------------------------------------------------
class TestMemoryLRU:
    def test_lru_evicts_least_recently_used(self):
        lru = MemoryLRU(max_entries=2)
        k = [ReferenceKey("w", f"h{i}", (4, 4), 0) for i in range(3)]
        lru.put(k[0], "a")
        lru.put(k[1], "b")
        assert lru.get(k[0]) == "a"  # refresh k0
        lru.put(k[2], "c")  # evicts k1, the least recently used
        assert k[1] not in lru and k[0] in lru and k[2] in lru
        assert lru.evictions == 1

    def test_zero_entries_disables_the_level(self):
        lru = MemoryLRU(max_entries=0)
        key = ReferenceKey("w", "h", (4, 4), 0)
        lru.put(key, "x")
        assert lru.get(key) is None and len(lru) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MemoryLRU(max_entries=-1)


class TestNpzStore:
    def test_round_trip_is_bit_exact(self, tmp_path):
        store = NpzReferenceStore(tmp_path)
        key = reference_key("kh", FAST)
        ref = _reference(value=np.pi)
        store.write(key, ref, "finger")
        loaded, fingerprint = store.read(key)
        assert fingerprint == "finger"
        assert loaded.time == ref.time
        assert loaded.info == ref.info
        assert loaded.runtime_snapshot == ref.runtime_snapshot
        for name in ref.state:
            assert loaded.state[name].dtype == np.float64
            np.testing.assert_array_equal(loaded.state[name], ref.state[name])

    def test_missing_and_corrupt_entries_read_as_none(self, tmp_path):
        store = NpzReferenceStore(tmp_path)
        key = reference_key("kh", FAST)
        assert store.read(key) is None
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_bytes(b"not an npz")
        assert store.read(key) is None
        # a zip magic number followed by garbage raises BadZipFile, not
        # ValueError — it must also read as a miss, not crash the sweep
        store.path_for(key).write_bytes(b"PK\x03\x04garbage")
        assert store.read(key) is None
        cache = ReferenceCache(tmp_path)
        assert cache.get(key) is None and cache.stats.misses == 1

    def test_corrupt_entry_is_deleted_with_a_warning_and_recomputed(self, tmp_path):
        """A torn/garbage ``.npz`` must not wedge the cache: reading it warns,
        deletes the file, and the next write-read cycle works normally."""
        store = NpzReferenceStore(tmp_path)
        key = reference_key("kh", FAST)
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"PK\x03\x04torn-by-a-crash")
        with pytest.warns(RuntimeWarning, match="corrupt reference-cache entry"):
            assert store.read(key) is None
        assert not path.exists(), "the corrupt entry must be deleted, not retried forever"
        store.write(key, _reference(), "fp")
        entry = store.read(key)
        assert entry is not None and entry[1] == "fp"

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = NpzReferenceStore(tmp_path)
        store.write(reference_key("kh", FAST), _reference(), "fp")
        assert not list(tmp_path.glob("*.tmp*"))
        assert len(store.entries()) == 1

    def test_read_fingerprint_without_loading_state(self, tmp_path):
        store = NpzReferenceStore(tmp_path)
        key = reference_key("kh", FAST)
        assert store.read_fingerprint(key) is None
        store.write(key, _reference(), "fp-abc")
        assert store.read_fingerprint(key) == "fp-abc"

    def test_cellular_reference_round_trips_bit_exact(self, tmp_path):
        store = NpzReferenceStore(tmp_path)
        key = reference_key("cellular", dict(n_cells=8, n_steps=3))
        ref = ReferenceResult(
            workload="cellular",
            info={"eos_converged": 1.0, "detonation_propagated": 1.0},
            runtime_snapshot={"ops": {"truncated": 5, "full": 2}},
            state={
                "dens": np.full(8, 1.0e7),
                "temp": np.geomspace(2e8, 3.5e9, 8),
                "front_positions": np.array([20.0, 24.0, 28.0]),
                "times": np.array([0.1, 0.2, 0.3]) * 1e-7,
            },
            time=3e-8,
            kind="cellular",
        )
        store.write(key, ref, "finger")
        loaded, _ = store.read(key)
        assert loaded.kind == "cellular"
        assert loaded.info == ref.info
        for name in ref.state:
            np.testing.assert_array_equal(loaded.state[name], ref.state[name])

    def test_bubble_levelset_reference_round_trips_bit_exact(self, tmp_path):
        from repro.incomp import BubbleConfig

        rng = np.random.default_rng(7)
        phi = rng.normal(size=(16, 24))
        ref = ReferenceResult(
            workload="bubble",
            info={"gas_volume": 0.42, "fragments": 2.0},
            runtime_snapshot={},
            state={
                "phi": phi,
                "phi_snap0": phi * 0.5,
                "centroid": rng.normal(size=15),
                "snapshot_times": np.array([0.03, 0.06]),
            },
            time=0.1,
            kind="bubble",
        )
        store = NpzReferenceStore(tmp_path)
        key = reference_key(
            "bubble",
            dict(solver=BubbleConfig(nx=16, ny=24), truncation_time=0.06, fixed_dt=0.004),
        )
        store.write(key, ref, "finger")
        loaded, _ = store.read(key)
        assert loaded.kind == "bubble"
        for name in ref.state:
            assert loaded.state[name].dtype == np.float64
            np.testing.assert_array_equal(loaded.state[name], ref.state[name])


# ---------------------------------------------------------------------------
# the combined cache
# ---------------------------------------------------------------------------
class TestReferenceCache:
    def test_miss_put_hit(self, tmp_path):
        cache = ReferenceCache(tmp_path)
        key = reference_key("kh", FAST)
        assert cache.get(key) is None
        cache.put(key, _reference())
        assert key in cache
        assert cache.get(key) is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1 and cache.stats.stores == 1

    def test_disk_persists_across_cache_objects(self, tmp_path):
        key = reference_key("kh", FAST)
        ReferenceCache(tmp_path).put(key, _reference())
        fresh = ReferenceCache(tmp_path)
        assert fresh.get(key) is not None
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0

    def test_fingerprint_mismatch_invalidates_and_deletes(self, tmp_path):
        key = reference_key("kh", FAST)
        stale = ReferenceCache(tmp_path, fingerprint="old-physics")
        stale.put(key, _reference())
        current = ReferenceCache(tmp_path)
        # membership agrees with get(): a stale entry is not 'in' the cache
        assert key not in current
        assert current.get(key) is None
        assert current.stats.invalidations == 1 and current.stats.misses == 1
        # the stale entry is gone from disk, not just skipped
        assert current.disk.read(key) is None

    def test_explicit_invalidate_and_clear(self, tmp_path):
        cache = ReferenceCache(tmp_path)
        key = reference_key("kh", FAST)
        cache.put(key, _reference())
        cache.invalidate(key)
        assert key not in cache
        cache.put(key, _reference())
        cache.clear()
        assert key not in cache and not cache.disk.entries()

    def test_memory_only_cache(self):
        cache = ReferenceCache(directory=None, max_memory_entries=2)
        key = reference_key("kh", FAST)
        cache.put(key, _reference())
        assert cache.get(key) is not None

    def test_lru_evictions_reported_in_stats(self):
        cache = ReferenceCache(directory=None, max_memory_entries=2)
        for t_end in (0.004, 0.005, 0.006):
            cache.put(reference_key("kh", dict(FAST, t_end=t_end)), _reference())
        assert cache.stats.evictions == 1
        assert cache.stats.to_dict()["evictions"] == 1

    def test_tilde_directory_expands_to_home(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = ReferenceCache("~/refs")
        cache.put(reference_key("kh", FAST), _reference())
        assert (tmp_path / "refs").is_dir()
        assert len(list((tmp_path / "refs").glob("*.npz"))) == 1

    def test_no_levels_rejected(self):
        with pytest.raises(ValueError, match="at least one level"):
            ReferenceCache(directory=None, max_memory_entries=0)


# ---------------------------------------------------------------------------
# engine integration: the warm-cache guarantee
# ---------------------------------------------------------------------------
class TestCachedSweep:
    @pytest.fixture(scope="class")
    def warm_cache_and_cold_result(self, tmp_path_factory):
        cache = ReferenceCache(tmp_path_factory.mktemp("refs"))
        return cache, run_sweep(_spec(), cache=cache)

    def test_cold_run_stores_the_reference(self, warm_cache_and_cold_result):
        cache, result = warm_cache_and_cold_result
        assert result.cache_stats["misses"] == 1
        assert result.cache_stats["stores"] == 1
        assert len(cache.disk.entries()) == 1

    def test_warm_run_launches_zero_reference_tasks(
        self, warm_cache_and_cold_result, monkeypatch
    ):
        from repro.experiments import engine

        cache, cold = warm_cache_and_cold_result

        def _boom(task):
            raise AssertionError("reference task launched despite a warm cache")

        monkeypatch.setattr(engine, "_execute_reference", _boom)
        warm = run_sweep(_spec(), cache=cache)
        # stats are per-run deltas even on a shared cache object
        assert warm.cache_stats == {
            "hits": 1, "misses": 0, "stores": 0, "invalidations": 0, "evictions": 0,
        }
        for cold_point, warm_point in zip(cold.points, warm.points):
            assert cold_point.metrics_key() == warm_point.metrics_key()
            assert cold_point.errors == warm_point.errors

    def test_disk_round_trip_preserves_metrics_bitwise(
        self, warm_cache_and_cold_result
    ):
        cache, cold = warm_cache_and_cold_result
        # a fresh cache object reads the reference back through .npz only
        disk_only = ReferenceCache(cache.disk.directory, max_memory_entries=0)
        warm = run_sweep(_spec(), cache=disk_only)
        assert warm.cache_stats == {
            "hits": 1, "misses": 0, "stores": 0, "invalidations": 0, "evictions": 0,
        }
        for cold_point, warm_point in zip(cold.points, warm.points):
            assert cold_point.metrics_key() == warm_point.metrics_key()

    def test_spec_cache_dir_field_enables_caching(self, tmp_path):
        spec = _spec(cache_dir=str(tmp_path))
        first = run_sweep(spec)
        second = run_sweep(spec)
        assert first.cache_stats["misses"] == 1
        assert second.cache_stats == {
            "hits": 1, "misses": 0, "stores": 0, "invalidations": 0, "evictions": 0,
        }

    def test_uncached_sweep_reports_no_stats(self):
        assert run_sweep(_spec(formats=["bf16"])).cache_stats is None

    def test_result_to_dict_includes_cache_stats(self, warm_cache_and_cold_result):
        import json

        _, cold = warm_cache_and_cold_result
        payload = cold.to_dict()
        assert payload["cache"]["misses"] == 1
        assert json.loads(json.dumps(payload)) == payload
