"""Adaptive cliff search on the instability workloads, vs exhaustive grids.

PR 3 verified the bisection end-to-end against a real exhaustive grid only
for the cellular detonation.  These tests pin the same property — the
bisection finds exactly the cliff an exhaustive mantissa scan finds, within
the ``ceil(log2 n) + 1`` run bound — for the Kelvin–Helmholtz,
Rayleigh–Taylor and Woodward–Colella double-blast workloads, driven through
:func:`run_adaptive_sweep` (the grid driver, not just ``find_cliff``).

The configurations are deliberately tiny (two AMR levels, a handful of
steps); the thresholds were chosen so the cliff sits strictly inside the
scanned range for each workload (the exhaustive fixture re-derives and
re-asserts that at test time, so a numerics change cannot silently turn
the comparison vacuous).
"""
import pytest

from repro.core import RaptorRuntime
from repro.core.fpformat import FPFormat
from repro.experiments import AdaptiveSpec, PolicySpec, run_adaptive_sweep
from repro.experiments.adaptive import max_bisection_runs
from repro.workloads import create_workload

MIN_BITS, MAX_BITS = 8, 18

TINY = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.004, rk_stages=1)

#: per-workload failure thresholds on the sfocu L1(dens) error, placing the
#: cliff strictly inside [MIN_BITS, MAX_BITS] for the TINY configurations
THRESHOLDS = {
    "kelvin-helmholtz": 1e-5,
    "rayleigh-taylor": 1e-5,
    "double-blast": 1e-4,
}

WORKLOADS = tuple(THRESHOLDS)


@pytest.fixture(scope="module", params=WORKLOADS)
def exhaustive(request):
    """(workload name, exhaustive pass/fail profile over the bit range)."""
    name = request.param
    workload = create_workload(name, **TINY)
    reference = workload.reference(plane="fast").detach()
    policy = PolicySpec(kind="global", modules=("hydro",))
    profile = {}
    for man_bits in range(MIN_BITS, MAX_BITS + 1):
        rt = RaptorRuntime()
        outcome = workload.run(policy=policy.build(FPFormat(11, man_bits), rt), runtime=rt)
        profile[man_bits] = workload.acceptable(
            outcome, reference, threshold=THRESHOLDS[name]
        )
    return name, profile


@pytest.fixture(scope="module")
def adaptive_result():
    spec = AdaptiveSpec(
        workloads=WORKLOADS,
        policies=[PolicySpec(kind="global", modules=("hydro",))],
        min_man_bits=MIN_BITS,
        max_man_bits=MAX_BITS,
        thresholds=THRESHOLDS,
        workload_configs={name: TINY for name in WORKLOADS},
    )
    return run_adaptive_sweep(spec)


class TestInstabilityCliffs:
    def test_profile_is_monotone_with_an_interior_cliff(self, exhaustive):
        name, profile = exhaustive
        outcomes = [profile[m] for m in sorted(profile)]
        assert not outcomes[0], f"{name}: cliff below MIN_BITS, comparison vacuous"
        assert outcomes[-1], f"{name}: cliff above MAX_BITS, comparison vacuous"
        first_pass = outcomes.index(True)
        assert all(outcomes[first_pass:]) and not any(outcomes[:first_pass]), (
            f"{name}: pass/fail profile is not monotone: {profile}"
        )

    def test_bisection_matches_the_exhaustive_cliff(self, exhaustive, adaptive_result):
        name, profile = exhaustive
        expected = next(m for m in sorted(profile) if profile[m])
        cliff = next(c for c in adaptive_result.cliffs if c.workload == name)
        assert cliff.found
        assert cliff.cliff_man_bits == expected
        assert cliff.n_runs <= max_bisection_runs(MIN_BITS, MAX_BITS)
        assert cliff.last_failing_bits == expected - 1

    def test_driver_covers_every_workload_in_grid_order(self, adaptive_result):
        assert [c.workload for c in adaptive_result.cliffs] == list(WORKLOADS)
        assert adaptive_result.total_runs == sum(c.n_runs for c in adaptive_result.cliffs)
        # every cell beat its fixed grid
        for cliff in adaptive_result.cliffs:
            assert cliff.n_runs < cliff.grid_points
