"""Engine coverage for the unified scenario protocol: the cellular and
bubble workloads run through ``run_sweep`` exactly like the compressible
ones — cached, sharded, and bit-identical across backends."""
import numpy as np
import pytest

from repro.experiments import (
    PolicySpec,
    ReferenceCache,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.incomp import BubbleConfig

CELLULAR_FAST = dict(n_cells=32, n_steps=8)
BUBBLE_FAST = dict(
    solver=BubbleConfig(
        nx=16, ny=24, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
        reynolds=700.0, advection_scheme="upwind", reinit_interval=4,
    ),
    spin_up_time=0.04,
    truncation_time=0.06,
    snapshot_times=(0.03, 0.06),
    fixed_dt=0.004,
)
SOD_FAST = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.005, rk_stages=1)


def _cellular_spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["cellular"],
        formats=["e11m46", "e11m12"],
        policies=[PolicySpec.module("eos")],
        workload_configs={"cellular": CELLULAR_FAST},
    )
    base.update(overrides)
    return SweepSpec(**base)


def _bubble_spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["bubble"],
        formats=["fp64", "e8m4"],
        policies=[PolicySpec.everywhere(modules=("advection", "diffusion"))],
        workload_configs={"bubble": BUBBLE_FAST},
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestCellularThroughEngine:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(_cellular_spec())

    def test_points_carry_cellular_metrics(self, result):
        wide, narrow = result.points
        assert wide.info["eos_converged"] == 1.0
        assert narrow.info["eos_converged"] == 0.0
        # default error variables of the cellular scenario
        assert set(wide.errors) == {"dens", "temp"}
        assert wide.l1("dens") < narrow.l1("dens")

    def test_reference_recorded_with_cellular_state(self, result):
        ref = result.references["cellular"]
        assert ref.kind == "cellular"
        assert "front_positions" in ref.state
        assert ref.info["detonation_propagated"] == 1.0

    def test_serial_and_process_backends_identical(self, result):
        process = run_sweep(_cellular_spec(backend="process", max_workers=2))
        for a, b in zip(result.points, process.points):
            assert a.metrics_key() == b.metrics_key()
            assert a.errors == b.errors

    def test_scalar_error_is_front_deviation(self, result):
        for p in result.points:
            assert p.scalar_error >= 0.0


class TestBubbleThroughEngine:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sweep(_bubble_spec())

    def test_points_carry_interface_metrics(self, result):
        fp64_point, narrow = result.points
        assert set(fp64_point.errors) == {"phi"}
        # the fp64 point is bit-identical to the reference
        assert fp64_point.scalar_error == 0.0
        assert fp64_point.l1("phi") == 0.0
        assert narrow.scalar_error > 0.0
        assert narrow.truncated_fraction > 0.0

    def test_serial_and_process_backends_identical(self, result):
        process = run_sweep(_bubble_spec(backend="process", max_workers=2))
        for a, b in zip(result.points, process.points):
            assert a.metrics_key() == b.metrics_key()
            assert a.errors == b.errors

    def test_cutoff_policy_reduces_interface_error(self, result):
        cutoff = run_sweep(
            _bubble_spec(
                formats=["e8m4"],
                policies=[PolicySpec.amr_cutoff(2, modules=("advection", "diffusion"))],
            )
        )
        everywhere_error = result.points[1].scalar_error
        assert cutoff.points[0].scalar_error <= everywhere_error + 1e-12


class TestMixedKindSweep:
    """One grid mixing all three scenario kinds, with per-workload error
    variables (variables=None) — the tentpole end to end."""

    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec(
            workloads=["sod", "cellular", "bubble"],
            formats=["e11m40", "e11m10"],
            policies=[PolicySpec.everywhere(modules=("hydro", "eos", "advection", "diffusion"))],
            workload_configs={
                "sod": SOD_FAST,
                "cellular": CELLULAR_FAST,
                "bubble": BUBBLE_FAST,
            },
        )

    @pytest.fixture(scope="class")
    def result(self, spec):
        return run_sweep(spec)

    def test_all_seven_registered_workloads_validate(self):
        from repro.workloads import available_workloads

        spec = SweepSpec(workloads=available_workloads(), formats=["bf16"])
        spec.validate()  # all seven accepted by the sweep engine

    def test_points_in_grid_order_with_per_workload_errors(self, result):
        assert [p.workload for p in result.points] == [
            "sod", "sod", "cellular", "cellular", "bubble", "bubble",
        ]
        by_workload = {p.workload: p for p in result.points}
        assert set(by_workload["sod"].errors) == {"dens"}
        assert set(by_workload["cellular"].errors) == {"dens", "temp"}
        assert set(by_workload["bubble"].errors) == {"phi"}

    def test_references_cover_all_kinds(self, result):
        kinds = {result.references[name].kind for name in result.references}
        assert kinds == {"compressible", "cellular", "bubble"}

    def test_rollup_and_to_dict(self, result):
        import json

        rollup = result.rollup()
        assert rollup.ops.truncated > 0
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_shard_merge_bitwise_identical(self, spec, result, tmp_path):
        shards = []
        for i in range(3):
            shard_result = run_sweep(spec.shard(i, 3))
            path = shard_result.save(tmp_path / f"shard{i}.pkl")
            shards.append(SweepResult.load(path))
        merged = SweepResult.merge(*shards)
        assert len(merged) == len(result)
        for a, b in zip(result.points, merged.points):
            assert a.metrics_key() == b.metrics_key()

    def test_warm_cache_serves_all_kinds(self, spec, result, tmp_path):
        cache = ReferenceCache(tmp_path / "refs")
        cold = run_sweep(spec, cache=cache)
        assert cold.cache_stats["misses"] == 3 and cold.cache_stats["stores"] == 3
        # disk-only round trip: references come back through .npz alone
        disk_only = ReferenceCache(tmp_path / "refs", max_memory_entries=0)
        warm = run_sweep(spec, cache=disk_only)
        assert warm.cache_stats["hits"] == 3 and warm.cache_stats["misses"] == 0
        for a, b in zip(cold.points, warm.points):
            assert a.metrics_key() == b.metrics_key()
