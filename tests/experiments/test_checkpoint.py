"""Crash-safe checkpoint/resume: the journal and its bitwise-resume pin.

The headline guarantee: SIGKILL a checkpointed sweep at any instant, rerun
the same spec against the same journal, and the assembled result is
**bitwise identical** to an uninterrupted run — per-point ``metrics_key``,
rollup counters and cache-stats semantics included.  A journal written by a
different spec must be rejected, corrupt entries must heal by recompute,
and a complete journal must resume without running anything.
"""
import os
import signal
import subprocess
import sys
import time
import types

import pytest

from repro.experiments import (
    CheckpointMismatchError,
    PolicySpec,
    SweepJournal,
    SweepResult,
    SweepSpec,
    atomic_pickle,
    checkpoint_signature,
    run_sweep,
)
from repro.experiments.journal import atomic_write_bytes
from repro.testing import Fault, FaultInjected, FaultPlan

CELLULAR = dict(n_cells=16, n_steps=4)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["cellular"],
        formats=["e11m46", "e11m20", "e11m10"],
        policies=[PolicySpec.module("eos")],
        workload_configs={"cellular": dict(CELLULAR)},
    )
    base.update(overrides)
    return SweepSpec(**base)


def _assert_bitwise_equal(resumed: SweepResult, clean: SweepResult) -> None:
    assert [p.metrics_key() for p in resumed.points] == [
        p.metrics_key() for p in clean.points
    ]
    assert not resumed.failures and not clean.failures
    a, b = resumed.rollup(), clean.rollup()
    assert (a.ops, a.mem) == (b.ops, b.mem)
    assert resumed.cache_stats == clean.cache_stats


# ---------------------------------------------------------------------------
# the journal itself
# ---------------------------------------------------------------------------
class TestJournal:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "x.bin"
        atomic_write_bytes(path, b"first")
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]

    def test_point_and_reference_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.open("sig", total_points=4)
        journal.record_point(3, {"value": 1})
        ref = types.SimpleNamespace(workload="kelvin-helmholtz")
        journal.record_reference("kelvin-helmholtz", ref)
        assert journal.completed_indices() == [3]
        assert journal.load_points() == {3: {"value": 1}}
        assert set(journal.load_references()) == {"kelvin-helmholtz"}

    def test_reopen_same_signature_ok_different_rejected(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.open("sig-a", total_points=2)
        SweepJournal(tmp_path).open("sig-a", total_points=2)
        with pytest.raises(CheckpointMismatchError):
            SweepJournal(tmp_path).open("sig-b", total_points=2)

    def test_corrupt_entry_heals_by_recompute(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.open("sig", total_points=2)
        journal.record_point(0, {"value": 1})
        (tmp_path / "point-000001.pkl").write_bytes(b"torn mid-write")
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint point"):
            points = journal.load_points()
        assert points == {0: {"value": 1}}
        assert not (tmp_path / "point-000001.pkl").exists()

    def test_unreadable_metadata_is_a_mismatch(self, tmp_path):
        (tmp_path / "journal.json").write_text("{not json")
        with pytest.raises(CheckpointMismatchError, match="unreadable"):
            SweepJournal(tmp_path).open("sig", total_points=1)


class TestCheckpointSignature:
    def test_execution_knobs_do_not_change_identity(self):
        base = checkpoint_signature(_spec())
        assert checkpoint_signature(_spec(backend="process", max_workers=4)) == base
        assert checkpoint_signature(
            _spec(on_error="collect", point_timeout=9.0, retries=2)
        ) == base

    def test_grid_and_slice_do_change_identity(self):
        base = checkpoint_signature(_spec())
        assert checkpoint_signature(_spec(formats=["e11m46"])) != base
        assert checkpoint_signature(_spec(keep_states=True)) != base
        assert checkpoint_signature(_spec().shard(0, 2)) != base


# ---------------------------------------------------------------------------
# resume semantics
# ---------------------------------------------------------------------------
class TestResume:
    def test_interrupted_collect_sweep_resumes_bitwise(self, tmp_path):
        """A raising point interrupts a raise-mode checkpointed sweep; the
        journal keeps the completed prefix and resume fills in the rest."""
        journal_dir = tmp_path / "journal"
        plan = FaultPlan(
            faults=(Fault("point", 1, "raise", times=1),),
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.installed():
            with pytest.raises(FaultInjected):
                run_sweep(_spec(), checkpoint=journal_dir)
        done = set(SweepJournal(journal_dir).completed_indices())
        assert 0 in done and 1 not in done

        resumed = run_sweep(_spec(), checkpoint=journal_dir)
        _assert_bitwise_equal(resumed, run_sweep(_spec()))

    def test_complete_journal_reruns_nothing(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first = run_sweep(_spec(), checkpoint=journal_dir)
        # any recomputation would now fire this deterministic fault
        plan = FaultPlan(
            faults=(
                Fault("point", 0, "raise", times=None),
                Fault("point", 1, "raise", times=None),
                Fault("point", 2, "raise", times=None),
                Fault("reference", "cellular", "raise", times=None),
            )
        )
        with plan.installed():
            resumed = run_sweep(_spec(), checkpoint=journal_dir)
        _assert_bitwise_equal(resumed, first)

    def test_collected_failures_are_journaled_and_survive_resume(self, tmp_path):
        journal_dir = tmp_path / "journal"
        plan = FaultPlan(
            faults=(Fault("point", 1, "raise", times=1),),
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.installed():
            first = run_sweep(_spec(on_error="collect"), checkpoint=journal_dir)
        assert [f.index for f in first.failures] == [1]
        # the fault's one firing is spent: a rerun could only succeed at
        # point 1 — unless the journaled failure is (correctly) replayed
        resumed = run_sweep(_spec(on_error="collect"), checkpoint=journal_dir)
        assert [f.index for f in resumed.failures] == [1]
        assert resumed.failures[0].failure_key() == first.failures[0].failure_key()
        assert [p.metrics_key() for p in resumed.points] == [
            p.metrics_key() for p in first.points
        ]

    def test_mismatched_spec_rejected(self, tmp_path):
        journal_dir = tmp_path / "journal"
        run_sweep(_spec(), checkpoint=journal_dir)
        with pytest.raises(CheckpointMismatchError):
            run_sweep(_spec(formats=["e11m46"]), checkpoint=journal_dir)

    def test_corrupt_point_entry_recomputed_on_resume(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first = run_sweep(_spec(), checkpoint=journal_dir)
        (journal_dir / "point-000001.pkl").write_bytes(b"torn by a crash")
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint point"):
            resumed = run_sweep(_spec(), checkpoint=journal_dir)
        _assert_bitwise_equal(resumed, first)


CHILD_SCRIPT = """
import sys
from repro.experiments import PolicySpec, SweepSpec, run_sweep

spec = SweepSpec(
    workloads=["cellular"],
    formats=["e11m46", "e11m20", "e11m10"],
    policies=[PolicySpec.module("eos")],
    workload_configs={"cellular": dict(n_cells=16, n_steps=4)},
    backend="process",
    max_workers=2,
)
run_sweep(spec, checkpoint=sys.argv[1])
"""


class TestKilledSweepResumes:
    def test_sigkilled_process_backend_sweep_resumes_bitwise(self, tmp_path):
        """The acceptance pin: SIGKILL a checkpointed process-backend sweep
        mid-flight, rerun, and the result is bitwise identical to an
        uninterrupted run (the resume may even switch backends)."""
        journal_dir = tmp_path / "journal"
        plan = FaultPlan(
            faults=(Fault("point", 2, "hang", times=1, seconds=600.0),),
            marker_dir=str(tmp_path / "markers"),
        )
        env = dict(os.environ, RAPTOR_FAULT_PLAN=plan.to_json())
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
        )
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(journal_dir)],
            env=env,
            start_new_session=True,  # lets SIGKILL reap the pool workers too
        )
        journal = SweepJournal(journal_dir)
        deadline = time.monotonic() + 120.0
        try:
            while time.monotonic() < deadline:
                if {0, 1} <= set(journal.completed_indices()):
                    break
                assert child.poll() is None, "child finished before hanging at point 2"
                time.sleep(0.1)
            else:
                pytest.fail("journal never reached points {0, 1}")
        finally:
            try:
                os.killpg(child.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)

        assert 2 not in set(journal.completed_indices())
        resumed = run_sweep(_spec(backend="process", max_workers=2),
                            checkpoint=journal_dir)
        _assert_bitwise_equal(resumed, run_sweep(_spec()))


# ---------------------------------------------------------------------------
# atomic result persistence (SweepResult.save / AdaptiveResult.save)
# ---------------------------------------------------------------------------
class TestAtomicSave:
    def test_save_is_atomic_and_loadable(self, tmp_path):
        result = run_sweep(_spec(formats=["e11m46"]))
        out = tmp_path / "result.pkl"
        result.save(out)
        result.save(out)  # overwrite via rename, not truncate-then-write
        loaded = SweepResult.load(out)
        assert [p.metrics_key() for p in loaded.points] == [
            p.metrics_key() for p in result.points
        ]
        assert [p.name for p in tmp_path.iterdir()] == ["result.pkl"]

    def test_atomic_pickle_failure_leaves_no_debris(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle this")

        with pytest.raises(RuntimeError):
            atomic_pickle(Unpicklable(), tmp_path / "x.pkl")
        assert list(tmp_path.iterdir()) == []
