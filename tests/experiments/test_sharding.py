"""Tests for sweep sharding: deterministic grid partitioning, shard
execution, persistence, and bit-identical recombination via
``SweepResult.merge``."""
import pytest

from repro.experiments import PolicySpec, SweepResult, SweepSpec, run_sweep

FAST = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.005, rk_stages=1)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["kelvin-helmholtz"],
        formats=["fp64", "fp32", "bf16", "fp16"],
        policies=[PolicySpec.everywhere(modules=("hydro",))],
        workload_configs={"kelvin-helmholtz": FAST},
        variables=("dens",),
    )
    base.update(overrides)
    return SweepSpec(**base)


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------
class TestShardSpec:
    def test_shards_partition_the_grid(self):
        spec = _spec(
            workloads=["kelvin-helmholtz", "sedov"],
            formats=["fp64", "fp32", "bf16"],
            workload_configs={},
        )
        full = spec.full_grid()
        seen = []
        for i in range(4):
            shard_points = spec.shard(i, 4).points()
            seen.extend(p.index for p in shard_points)
            # global indices are preserved, not renumbered
            for p in shard_points:
                assert full[p.index] == p
        assert sorted(seen) == [p.index for p in full]
        assert len(seen) == len(set(seen))

    def test_strided_partition_balances_workloads(self):
        # consecutive points belong to the same workload, so a strided
        # partition gives every shard points from every workload
        spec = _spec(
            workloads=["kelvin-helmholtz", "sedov"],
            formats=["fp64", "fp32"],
            workload_configs={},
        )
        for i in range(2):
            workloads = {p.workload for p in spec.shard(i, 2).points()}
            assert workloads == {"kelvin-helmholtz", "sedov"}

    def test_single_shard_is_the_full_grid(self):
        spec = _spec()
        assert spec.shard(0, 1).points() == spec.points()

    def test_shard_validation(self):
        spec = _spec()
        with pytest.raises(ValueError):
            spec.shard(0, 0)
        with pytest.raises(ValueError):
            spec.shard(4, 4)
        with pytest.raises(ValueError):
            spec.shard(-1, 4)
        with pytest.raises(ValueError, match="already sharded"):
            spec.shard(0, 2).shard(0, 2)

    def test_sharded_spec_fails_validate_on_bad_fields(self):
        from dataclasses import replace

        spec = replace(_spec(), shard_index=3, shard_count=2)
        with pytest.raises(ValueError, match="shard_index"):
            spec.validate()

    def test_unsharded_round_trip(self):
        spec = _spec()
        shard = spec.shard(1, 3)
        assert shard.unsharded() == spec
        assert spec.unsharded() is spec


# ---------------------------------------------------------------------------
# execution + merge (the acceptance criterion: bitwise identity)
# ---------------------------------------------------------------------------
class TestShardedExecution:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_sweep(_spec())

    @pytest.fixture(scope="class")
    def shard_results(self):
        return [run_sweep(_spec().shard(i, 4)) for i in range(4)]

    def test_each_shard_runs_only_its_slice(self, shard_results):
        for i, result in enumerate(shard_results):
            assert len(result) == 1
            assert result.points[0].index % 4 == i

    def test_merge_is_bitwise_identical_to_unsharded(self, serial_result, shard_results):
        merged = SweepResult.merge(*shard_results)
        assert len(merged) == len(serial_result)
        for serial_point, merged_point in zip(serial_result.points, merged.points):
            assert serial_point.metrics_key() == merged_point.metrics_key()
            assert serial_point.errors == merged_point.errors
            # the full counter snapshots, not just the summary metrics
            assert serial_point.runtime_snapshot == merged_point.runtime_snapshot

    def test_merged_rollup_matches_unsharded(self, serial_result, shard_results):
        merged = SweepResult.merge(*shard_results)
        assert merged.rollup().snapshot() == serial_result.rollup().snapshot()

    def test_merge_accepts_any_order_and_iterables(self, serial_result, shard_results):
        merged = SweepResult.merge(reversed(shard_results))
        assert [p.index for p in merged.points] == [p.index for p in serial_result.points]

    def test_merged_spec_is_the_unsharded_base(self, shard_results):
        merged = SweepResult.merge(*shard_results)
        assert (merged.spec.shard_index, merged.spec.shard_count) == (0, 1)

    def test_save_load_round_trip(self, shard_results, tmp_path):
        paths = [
            result.save(tmp_path / f"shard{i}.pkl")
            for i, result in enumerate(shard_results)
        ]
        loaded = [SweepResult.load(path) for path in paths]
        merged = SweepResult.merge(*loaded)
        original = SweepResult.merge(*shard_results)
        for a, b in zip(original.points, merged.points):
            assert a.metrics_key() == b.metrics_key()
            assert a.runtime_snapshot == b.runtime_snapshot

    def test_references_only_for_workloads_in_the_slice(self):
        spec = _spec(
            workloads=["kelvin-helmholtz", "sedov"],
            formats=["bf16"],
            workload_configs={
                "kelvin-helmholtz": FAST,
                "sedov": FAST,
            },
        )
        # 2 points: index 0 = kh, index 1 = sedov; each shard needs one ref
        shard0 = run_sweep(spec.shard(0, 2))
        assert set(shard0.references) == {"kelvin-helmholtz"}
        shard1 = run_sweep(spec.shard(1, 2))
        assert set(shard1.references) == {"sedov"}
        merged = SweepResult.merge(shard0, shard1)
        assert set(merged.references) == {"kelvin-helmholtz", "sedov"}


# ---------------------------------------------------------------------------
# merge error handling
# ---------------------------------------------------------------------------
class TestMergeValidation:
    @pytest.fixture(scope="class")
    def two_shards(self):
        spec = _spec(formats=["fp64", "bf16"])
        return [run_sweep(spec.shard(i, 2)) for i in range(2)]

    def test_duplicate_points_rejected(self, two_shards):
        with pytest.raises(ValueError, match="more than one shard"):
            SweepResult.merge(two_shards[0], two_shards[0], two_shards[1])

    def test_missing_shards_rejected(self, two_shards):
        with pytest.raises(ValueError, match="missing point"):
            SweepResult.merge(two_shards[0])

    def test_mismatched_specs_rejected(self, two_shards):
        other = run_sweep(_spec(formats=["fp32", "fp16"]).shard(1, 2))
        with pytest.raises(ValueError, match="different sweeps"):
            SweepResult.merge(two_shards[0], other)

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepResult.merge()

    def test_backend_mismatch_is_allowed(self, two_shards):
        # shards may run on heterogeneous hosts/backends; metrics are
        # backend-independent so the merge must accept this
        spec = _spec(formats=["fp64", "bf16"]).shard(1, 2).with_backend("process", 2)
        process_shard = run_sweep(spec)
        merged = SweepResult.merge(two_shards[0], process_shard)
        assert len(merged) == 2
