"""Tests for the string-keyed workload registry."""
import pytest

from repro.workloads import (
    CompressibleWorkload,
    DuplicateWorkloadError,
    KelvinHelmholtzWorkload,
    SedovWorkload,
    UnknownWorkloadError,
    available_workloads,
    create_workload,
    get_workload_class,
    register_workload,
    unregister_workload,
    workload_aliases,
)
from repro.workloads.sedov import SedovConfig


class TestLookup:
    def test_builtin_workloads_are_registered(self):
        names = available_workloads()
        for expected in ("sod", "sedov", "cellular", "bubble",
                         "kelvin-helmholtz", "rayleigh-taylor", "double-blast"):
            assert expected in names

    def test_aliases_resolve_to_canonical_classes(self):
        assert get_workload_class("kh") is KelvinHelmholtzWorkload
        assert workload_aliases()["kh"] == "kelvin-helmholtz"

    def test_lookup_is_case_and_separator_insensitive(self):
        assert get_workload_class("Kelvin_Helmholtz") is KelvinHelmholtzWorkload

    def test_unknown_workload_lists_registered_names(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload_class("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        assert "sedov" in message and "kelvin-helmholtz" in message


class TestRegistration:
    def test_duplicate_name_raises(self):
        class Impostor:
            name = "sedov"

        with pytest.raises(DuplicateWorkloadError):
            register_workload(Impostor)

    def test_reregistering_same_class_is_idempotent(self):
        register_workload(SedovWorkload)  # no raise
        assert get_workload_class("sedov") is SedovWorkload

    def test_subclasses_self_register(self):
        class ProbeWorkload(CompressibleWorkload):
            name = "probe-workload-selftest"

        try:
            assert get_workload_class("probe-workload-selftest") is ProbeWorkload
        finally:
            unregister_workload("probe-workload-selftest")
        with pytest.raises(UnknownWorkloadError):
            get_workload_class("probe-workload-selftest")

    def test_register_false_opts_out(self):
        class Unregistered(CompressibleWorkload):
            name = "never-registered-selftest"
            register = False

        with pytest.raises(UnknownWorkloadError):
            get_workload_class("never-registered-selftest")

    def test_class_without_name_needs_explicit_name(self):
        class Nameless:
            pass

        with pytest.raises(ValueError):
            register_workload(Nameless)


class TestCreate:
    def test_create_with_config_object(self):
        cfg = SedovConfig(max_level=2)
        w = create_workload("sedov", config=cfg)
        assert w.config is cfg

    def test_create_with_config_kwargs(self):
        w = create_workload("sedov", max_level=2, t_end=0.01)
        assert isinstance(w.config, SedovConfig)
        assert w.config.max_level == 2 and w.config.t_end == 0.01

    def test_create_rejects_config_and_kwargs_together(self):
        with pytest.raises(ValueError):
            create_workload("sedov", config=SedovConfig(), max_level=2)

    def test_create_default(self):
        w = create_workload("kh")
        assert isinstance(w, KelvinHelmholtzWorkload)


class TestAliasCanonicalConsistency:
    def test_registering_under_own_alias_does_not_double_list(self):
        before = available_workloads()
        register_workload(KelvinHelmholtzWorkload, name="kh")  # "kh" is an alias
        assert available_workloads() == before  # no second canonical entry
        assert get_workload_class("kh") is KelvinHelmholtzWorkload

    def test_registering_different_class_under_alias_raises(self):
        class Impostor:
            name = "kh"

        with pytest.raises(DuplicateWorkloadError):
            register_workload(Impostor)
