"""Tests for the precision-sweep engine and its execution backends."""
import numpy as np
import pytest

from repro.core import BF16, FP32, FP64, FPFormat
from repro.experiments import (
    PolicySpec,
    SweepSpec,
    format_label,
    resolve_format,
    run_sweep,
)
from repro.parallel.executor import (
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    run_tasks,
)
from repro.workloads import UnknownWorkloadError

#: tiny but non-degenerate grid: 2 AMR levels, a handful of steps
FAST = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.005, rk_stages=1)


def _spec(**overrides) -> SweepSpec:
    base = dict(
        workloads=["kelvin-helmholtz"],
        formats=["fp64", "bf16"],
        policies=[PolicySpec.everywhere(modules=("hydro",))],
        workload_configs={"kelvin-helmholtz": FAST},
        variables=("dens", "velx"),
    )
    base.update(overrides)
    return SweepSpec(**base)


# ---------------------------------------------------------------------------
# spec validation and grid enumeration
# ---------------------------------------------------------------------------
class TestSpec:
    def test_resolve_format_names_and_specs(self):
        assert resolve_format("fp32") is FP32
        assert resolve_format(BF16) is BF16
        assert resolve_format("e11m18") == FPFormat(11, 18)
        with pytest.raises(ValueError):
            resolve_format("fp128")
        with pytest.raises(TypeError):
            resolve_format(42)

    def test_points_enumerate_workload_policy_format(self):
        spec = _spec(
            workloads=["kelvin-helmholtz", "sedov"],
            policies=[PolicySpec.everywhere(), PolicySpec.amr_cutoff(1)],
            formats=["fp64", "fp32", "bf16"],
        )
        points = spec.points()
        assert len(points) == 2 * 2 * 3
        assert [p.index for p in points] == list(range(12))
        assert points[0].workload == "kelvin-helmholtz" and points[0].format_name == "fp64"
        assert points[3].policy.describe() == "M-1"
        assert points[6].workload == "sedov"

    def test_unknown_workload_fails_validation_with_listing(self):
        spec = _spec(workloads=["no-such-thing"], workload_configs={})
        with pytest.raises(UnknownWorkloadError) as excinfo:
            spec.validate()
        assert "sedov" in str(excinfo.value)

    def test_config_for_unlisted_workload_rejected(self):
        # 'sedov' is not in the spec's workloads list
        spec = _spec(workload_configs={"sedov": {"max_level": 2}})
        with pytest.raises(ValueError, match="not in workloads"):
            spec.validate()

    def test_policy_spec_validation(self):
        with pytest.raises(ValueError):
            PolicySpec(kind="bogus")
        with pytest.raises(ValueError):
            PolicySpec(kind="module")  # needs modules
        with pytest.raises(ValueError):
            PolicySpec.amr_cutoff(-1)

    def test_policy_descriptions(self):
        assert PolicySpec.everywhere().describe() == "global"
        assert PolicySpec.everywhere(("hydro",)).describe() == "global[hydro]"
        assert PolicySpec.amr_cutoff(2, ("hydro",)).describe() == "M-2[hydro]"
        assert PolicySpec.module("eos").describe() == "module[eos]"


# ---------------------------------------------------------------------------
# executor backends
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


def _maybe_fail(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestBackends:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_pool_preserves_order(self):
        result = run_tasks(_square, list(range(10)), backend="process", max_workers=4)
        assert result == [x * x for x in range(10)]

    def test_process_pool_single_task_runs_serially(self):
        backend = ProcessPoolBackend(max_workers=4)
        assert backend.map(_square, [7]) == [49]

    def test_task_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            run_tasks(_maybe_fail, [1, 2, 3], backend="process", max_workers=2)

    def test_force_serial_env(self, monkeypatch):
        monkeypatch.setenv("RAPTOR_FORCE_SERIAL", "1")
        assert ProcessPoolBackend().map(_square, [1, 2]) == [1, 4]

    def test_get_backend(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        backend = get_backend("process", max_workers=2)
        assert isinstance(backend, ProcessPoolBackend) and backend.max_workers == 2
        assert get_backend(backend) is backend
        with pytest.raises(ValueError):
            get_backend("gpu")
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
class TestRunSweep:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_sweep(_spec())

    def test_points_in_grid_order_with_metrics(self, serial_result):
        assert len(serial_result) == 2
        fp64_point, bf16_point = serial_result.points
        assert fp64_point.format_name == "fp64" and bf16_point.format_name == "bf16"
        # the FP64 point is bit-identical to the reference
        assert fp64_point.l1("dens") == 0.0
        assert fp64_point.truncated_fraction == 0.0
        # the BF16 point truncates and deviates
        assert bf16_point.l1("dens") > 0.0
        assert bf16_point.ops["truncated"] > 0
        for variable in ("dens", "velx"):
            assert set(bf16_point.errors[variable]) == {"l1", "l2", "linf"}

    def test_reference_recorded_per_workload(self, serial_result):
        ref = serial_result.references["kelvin-helmholtz"]
        assert ref.info["steps"] > 0
        assert "dens" in ref.state and np.isfinite(ref.state["dens"]).all()

    def test_select_and_table(self, serial_result):
        assert len(serial_result.select(fmt="bf16")) == 1
        assert len(serial_result.select(workload="kelvin-helmholtz")) == 2
        assert serial_result.select(policy="nope") == []
        table = serial_result.table()
        assert "bf16" in table and "kelvin-helmholtz" in table

    def test_rollup_merges_point_counters(self, serial_result):
        rollup = serial_result.rollup()
        assert rollup.ops.truncated == sum(p.ops["truncated"] for p in serial_result.points)
        assert rollup.ops.full == sum(p.ops["full"] for p in serial_result.points)
        assert rollup.mem.total == sum(
            p.mem["truncated"] + p.mem["full"] for p in serial_result.points
        )

    def test_to_dict_is_json_ready(self, serial_result):
        import json

        payload = serial_result.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_serial_and_process_backends_identical(self, serial_result):
        process_result = run_sweep(_spec().with_backend("process", max_workers=2))
        assert len(process_result) == len(serial_result)
        for serial_point, process_point in zip(serial_result.points, process_result.points):
            assert serial_point.metrics_key() == process_point.metrics_key()
            # error metrics must match bitwise, not approximately
            assert serial_point.errors == process_point.errors

    def test_keep_states(self):
        result = run_sweep(_spec(formats=["bf16"], keep_states=True))
        state = result.points[0].state
        assert state is not None and "dens" in state

    def test_multi_workload_sweep(self):
        spec = _spec(
            workloads=["kelvin-helmholtz", "double-blast"],
            formats=["bf16"],
            workload_configs={
                "kelvin-helmholtz": FAST,
                "double-blast": dict(FAST, t_end=0.0005),
            },
        )
        result = run_sweep(spec)
        assert [p.workload for p in result.points] == ["kelvin-helmholtz", "double-blast"]
        assert set(result.references) == {"kelvin-helmholtz", "double-blast"}


class TestReviewRegressions:
    """Fixes from review: fail-fast validation, fallback classification,
    alias-aware dedup, and config gravity override."""

    def test_non_sweepable_workload_fails_validation(self):
        from repro.workloads import register_workload, unregister_workload

        class LookupOnly:
            """Registered for name lookup, no scenario surface."""

            name = "lookup-only"

        register_workload(LookupOnly)
        try:
            spec = _spec(workloads=["lookup-only"], workload_configs={})
            with pytest.raises(ValueError, match="scenario \\(sweep\\) protocol"):
                spec.validate()
        finally:
            unregister_workload("lookup-only")

    def test_every_registered_workload_is_sweepable(self):
        from repro.workloads import available_workloads, get_workload_class, is_scenario

        for name in available_workloads():
            assert is_scenario(get_workload_class(name)), name

    def test_alias_duplicates_are_rejected(self):
        spec = _spec(workloads=["kh", "kelvin-helmholtz"])
        with pytest.raises(ValueError, match="duplicate workload"):
            spec.validate()

    def test_task_oserror_propagates_without_serial_rerun(self, recwarn):
        import warnings as _warnings

        with pytest.raises(FileNotFoundError):
            with _warnings.catch_warnings():
                _warnings.simplefilter("error", RuntimeWarning)  # fallback would raise here
                run_tasks(_raise_oserror, [0, 1, 2], backend="process", max_workers=2)

    def test_explicit_gravity_overrides_magnitude(self):
        from repro.workloads import RayleighTaylorConfig

        cfg = RayleighTaylorConfig(gravity=(0.0, -0.5))
        assert cfg.gravity == (0.0, -0.5)
        assert cfg.gravity_magnitude == pytest.approx(0.5)
        default = RayleighTaylorConfig()
        assert default.gravity == (0.0, -default.gravity_magnitude)


def _raise_oserror(x):
    if x == 1:
        raise FileNotFoundError("missing data file")
    return x


class TestReviewRegressionsRound2:
    def test_typoed_config_field_fails_validation(self):
        spec = _spec(
            workloads=["sedov"],
            workload_configs={"sedov": {"max_lvl": 2}},
        )
        with pytest.raises(ValueError, match="invalid workload_configs for 'sedov'"):
            spec.validate()

    def test_explicit_zero_gravity_is_honoured(self):
        from repro.workloads import RayleighTaylorConfig

        cfg = RayleighTaylorConfig(gravity=(0.0, 0.0))
        assert cfg.gravity == (0.0, 0.0)
        assert cfg.gravity_magnitude == 0.0


class TestReviewRegressionsRound3:
    def test_sideways_gravity_rejected(self):
        from repro.workloads import RayleighTaylorConfig

        with pytest.raises(ValueError, match="straight down"):
            RayleighTaylorConfig(gravity=(0.1, 0.0))
        with pytest.raises(ValueError, match="straight down"):
            RayleighTaylorConfig(gravity=(0.0, 0.1))

    def test_transient_worker_death_retries_in_fresh_pool(self, tmp_path):
        # task 2 kills its worker the first time it runs; the retry pool
        # completes the remaining tasks without rerunning anything in the
        # parent process (max_workers=1 would short-circuit to serial)
        backend = ProcessPoolBackend(max_workers=2)
        marker = str(tmp_path / "already-died")
        tasks = [(x, marker) for x in range(4)]
        with pytest.warns(RuntimeWarning, match="fresh pool"):
            result = backend.map(_die_once_on_2, tasks)
        assert result == [0, 1, 2, 3]

    def test_deterministic_worker_killer_raises_instead_of_crashing_parent(self):
        from concurrent.futures.process import BrokenProcessPool

        backend = ProcessPoolBackend(max_workers=2)
        with pytest.warns(RuntimeWarning, match="fresh pool"):
            with pytest.raises(BrokenProcessPool):
                backend.map(_always_die_on_2, list(range(4)))

    def test_force_serial_env_spellings(self, monkeypatch):
        for value in ("FALSE", "no", "off", "0", ""):
            monkeypatch.setenv("RAPTOR_FORCE_SERIAL", value)
            assert run_tasks(_square, [2], backend="process", max_workers=2) == [4]
        monkeypatch.setenv("RAPTOR_FORCE_SERIAL", "yes")
        assert ProcessPoolBackend().map(_square, [3]) == [9]


def _die_once_on_2(task):
    import os

    value, marker = task
    if value == 2 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)  # abrupt worker death -> BrokenProcessPool
    return value


def _always_die_on_2(value):
    import os

    if value == 2:
        os._exit(1)
    return value


class TestVariableValidation:
    def test_typoed_variable_fails_validation(self):
        spec = _spec(variables=("density",))
        with pytest.raises(ValueError, match="unknown error variable"):
            spec.validate()

    def test_empty_variables_rejected(self):
        spec = _spec(variables=())
        with pytest.raises(ValueError, match="at least one error variable"):
            spec.validate()

    def test_variable_missing_on_one_workload_names_it(self):
        # "phi" exists on bubble but not on the compressible workloads
        spec = _spec(variables=("phi",))
        with pytest.raises(ValueError, match="variables=None"):
            spec.validate()

    def test_variables_none_uses_per_workload_defaults(self):
        spec = _spec(variables=None)
        spec.validate()
        assert spec.variables_for("kelvin-helmholtz") == ("dens",)
        assert spec.variables_for("bubble") == ("phi",)
        assert spec.variables_for("cellular") == ("dens", "temp")


class TestAliasAwareConfigs:
    def test_config_keyed_by_canonical_applies_to_alias_sweep(self):
        spec = _spec(workloads=["kh"], workload_configs={"kelvin-helmholtz": FAST})
        spec.validate()
        assert spec.config_kwargs("kh") == FAST

    def test_config_keyed_by_alias_applies_to_canonical_sweep(self):
        spec = _spec(workloads=["kelvin-helmholtz"], workload_configs={"kh": FAST})
        spec.validate()
        assert spec.config_kwargs("kelvin-helmholtz") == FAST

    def test_conflicting_alias_and_canonical_config_keys_rejected(self):
        spec = _spec(
            workloads=["kh"],
            workload_configs={"kh": FAST, "kelvin-helmholtz": dict(FAST, t_end=0.01)},
        )
        with pytest.raises(ValueError, match="both refer to workload"):
            spec.validate()

    def test_backend_instance_with_max_workers_rejected(self):
        with pytest.raises(ValueError, match="given by name"):
            run_tasks(_square, [1], backend=SerialBackend(), max_workers=2)
