"""Differential bit-identity harness for the fused grid plane
(repro.kernels.grid + the AMRGrid/HydroSolver/BubbleSolver dispatch).

The load-bearing contracts:

* a :class:`GuardFillPlan` fill is **bitwise identical** to the per-block
  reference loop across every neighbour kind (boundary/same/coarse/fine),
  every boundary condition (outflow/periodic/reflect/mixed) and the
  reflect-variable sign flips — property-tested over randomly generated,
  properly nested refinement patterns;
* the batched ``compute_dt`` equals the per-block loop bit-for-bit, and
  both ride the fused ``kernels.flux`` EOS sound-speed helper (single
  source of truth for the floor/sound-speed math);
* stacked refinement estimators are element-wise identical to per-block
  evaluation and never change a regrid decision;
* ``pad_edge`` matches ``np.pad(mode="edge")`` bitwise;
* workspace discipline mirrors the fused-flux suite: steady-state zero
  allocation, poisoned buffers never leak into results, inputs are never
  written;
* the whole plane sits behind ``RAPTOR_FAST_NO_GRID`` and every registered
  workload produces bit-identical states with the knob on or off, with
  instrumented sweep counters byte-identical either way.
"""
import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr import AMRGrid
from repro.amr.refinement import (
    block_error,
    gradient_error,
    lohner_error,
    stacked_block_errors,
)
from repro.hydro.eos import GammaLawEOS
from repro.hydro.solver import HydroSolver
from repro.kernels import grid as grid_kernels
from repro.kernels.grid import GuardFillPlan, pad_edge
from repro.kernels.scratch import Workspace, grid_plane_enabled
from repro.workloads import create_workload

VARS = ["dens", "velx", "vely", "pres"]
SIDES = ("-x", "+x", "-y", "+y")

BOUNDARIES = [
    "outflow",
    "periodic",
    "reflect",
    {"x": "periodic", "y": "reflect"},
]
BOUNDARY_IDS = ["outflow", "periodic", "reflect", "mixed"]

COMPRESSIBLE = ("sod", "sedov", "kelvin-helmholtz", "rayleigh-taylor", "double-blast")

TINY_COMPRESSIBLE = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.004, rk_stages=1
)
TINY_CONFIGS = {
    "sod": TINY_COMPRESSIBLE,
    "sedov": TINY_COMPRESSIBLE,
    "kelvin-helmholtz": TINY_COMPRESSIBLE,
    "rayleigh-taylor": TINY_COMPRESSIBLE,
    "double-blast": TINY_COMPRESSIBLE,
    "cellular": dict(n_cells=16, n_steps=4),
    "bubble": dict(spin_up_time=0.04, truncation_time=0.04, snapshot_times=(0.04,)),
}

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


# ---------------------------------------------------------------------------
# grid construction helpers
# ---------------------------------------------------------------------------
def make_grid(boundary="outflow", fused=True, max_level=3, n_root=2, nxb=8, nyb=8):
    return AMRGrid(
        VARS, nxb=nxb, nyb=nyb, n_root_x=n_root, n_root_y=n_root,
        max_level=max_level, boundary=boundary, fused_grid=fused,
    )


def refine_nested(grid, key):
    """Refine ``key``, first refining any coarser neighbour so proper
    nesting (adjacent leaves differ by at most one level) is preserved."""
    if key not in grid.leaves or key[0] >= grid.max_level:
        return
    for side in SIDES:
        kind, info = grid.neighbor(key, side)
        if kind == "coarse":
            refine_nested(grid, info)
    if key in grid.leaves:
        grid.refine_block(key)


def random_topology(grid, seed, n_refines):
    rng = np.random.default_rng(seed)
    for _ in range(n_refines):
        keys = grid.sorted_keys()
        refine_nested(grid, keys[int(rng.integers(len(keys)))])


def fill_random(grid, seed):
    """Deterministic random interiors; dens/pres kept physical (positive)."""
    rng = np.random.default_rng(seed)
    for key in grid.sorted_keys():
        block = grid.leaves[key]
        for name in grid.variables:
            vals = rng.uniform(-2.0, 2.0, (grid.nxb, grid.nyb))
            if name in ("dens", "pres"):
                vals = np.abs(vals) + 0.1
            block.set_interior(name, vals)


def snapshot(grid):
    return {
        key: {name: grid.leaves[key].data[name].copy() for name in grid.variables}
        for key in grid.leaves
    }


def assert_snapshots_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        for name in a[key]:
            np.testing.assert_array_equal(
                a[key][name], b[key][name], err_msg=f"{key}/{name}"
            )


def fused_vs_reference_fill(grid, variables=None):
    """Fill via the plan, then via the per-block loop, from the same state.

    Guard filling reads interiors only, so running the reference fill
    second re-derives every guard cell from the same inputs — the two
    snapshots must agree bitwise.
    """
    grid.fused_grid = True
    grid.fill_guard_cells(variables)
    fused_snap = snapshot(grid)
    grid.fused_grid = False
    grid.fill_guard_cells(variables)
    ref_snap = snapshot(grid)
    grid.fused_grid = True
    return fused_snap, ref_snap


def nested_grid(boundary="outflow", topology_seed=0, data_seed=1):
    """A three-level grid exercising all four neighbour kinds."""
    grid = make_grid(boundary=boundary)
    for key in list(grid.sorted_keys()):
        grid.refine_block(key)
    grid.refine_block((2, 1, 1))
    fill_random(grid, data_seed)
    return grid


# ---------------------------------------------------------------------------
# guard-fill plan: unit tests
# ---------------------------------------------------------------------------
class TestGuardFillPlan:
    @pytest.mark.parametrize("boundary", BOUNDARIES, ids=BOUNDARY_IDS)
    def test_fill_bitwise_identical(self, boundary):
        grid = nested_grid(boundary=boundary)
        fused_snap, ref_snap = fused_vs_reference_fill(grid)
        assert_snapshots_equal(fused_snap, ref_snap)

    def test_plan_covers_all_neighbor_kinds(self):
        grid = nested_grid(boundary="outflow")
        grid.fill_guard_cells()
        counts = grid._guard_plan.kind_counts
        assert all(counts[k] > 0 for k in ("boundary", "same", "coarse", "fine"))
        assert sum(counts.values()) == 4 * grid.n_leaves

    def test_plan_op_count(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        plan = grid._guard_plan
        # four side strips + one corner op per (leaf, variable)
        assert plan.n_ops == 5 * grid.n_leaves * len(grid.variables)
        assert plan.n_blocks == grid.n_leaves

    def test_plan_cached_while_topology_unchanged(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        plan = grid._guard_plan
        grid.fill_guard_cells()
        assert grid._guard_plan is plan

    def test_plan_rebuilt_after_refine(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        plan = grid._guard_plan
        refine_nested(grid, grid.sorted_keys()[0])
        fill_random(grid, 3)
        fused_snap, ref_snap = fused_vs_reference_fill(grid)
        assert grid._guard_plan is not plan
        assert grid._guard_plan.epoch == grid._topology_epoch
        assert_snapshots_equal(fused_snap, ref_snap)

    def test_plan_rebuilt_after_derefine(self):
        grid = make_grid(max_level=2)
        grid.refine_block((1, 0, 0))
        fill_random(grid, 4)
        grid.fill_guard_cells()
        plan = grid._guard_plan
        grid.derefine_siblings((1, 0, 0))
        fill_random(grid, 5)
        fused_snap, ref_snap = fused_vs_reference_fill(grid)
        assert grid._guard_plan is not plan
        assert_snapshots_equal(fused_snap, ref_snap)

    def test_fill_variable_subset(self):
        grid = nested_grid()
        fused_snap, ref_snap = fused_vs_reference_fill(grid, variables=["dens"])
        assert_snapshots_equal(fused_snap, ref_snap)

    def test_unknown_variable_raises_on_both_paths(self):
        grid = nested_grid()
        with pytest.raises(KeyError):
            grid.fill_guard_cells(["nope"])
        grid.fused_grid = False
        with pytest.raises(KeyError):
            grid.fill_guard_cells(["nope"])

    def test_reflect_flips_normal_velocity_x(self):
        grid = make_grid(boundary="reflect", n_root=1, max_level=1)
        fill_random(grid, 6)
        grid.fill_guard_cells()
        data = grid.leaves[(1, 0, 0)].data
        ng = grid.ng
        interior_edge = data["velx"][ng:2 * ng, ng:-ng][::-1, :]
        np.testing.assert_array_equal(data["velx"][0:ng, ng:-ng], -interior_edge)
        # tangential velocity and scalars copy without a sign flip
        np.testing.assert_array_equal(
            data["dens"][0:ng, ng:-ng], data["dens"][ng:2 * ng, ng:-ng][::-1, :]
        )

    def test_reflect_flips_normal_velocity_y(self):
        grid = make_grid(boundary="reflect", n_root=1, max_level=1)
        fill_random(grid, 7)
        grid.fill_guard_cells()
        data = grid.leaves[(1, 0, 0)].data
        ng = grid.ng
        interior_edge = data["vely"][ng:-ng, ng:2 * ng][:, ::-1]
        np.testing.assert_array_equal(data["vely"][ng:-ng, 0:ng], -interior_edge)
        np.testing.assert_array_equal(
            data["velx"][ng:-ng, 0:ng], data["velx"][ng:-ng, ng:2 * ng][:, ::-1]
        )

    def test_corners_hold_nearest_interior_value(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        ng = grid.ng
        for block in grid.blocks():
            data = block.data["dens"]
            nxe, nye = ng + grid.nxb, ng + grid.nyb
            assert np.all(data[0:ng, 0:ng] == data[ng, ng])
            assert np.all(data[nxe:, nye:] == data[nxe - 1, nye - 1])

    def test_fill_never_writes_interiors(self):
        grid = nested_grid()
        before = {
            key: {n: grid.leaves[key].interior_view(n).copy() for n in VARS}
            for key in grid.leaves
        }
        grid.fill_guard_cells()
        for key in grid.leaves:
            for name in VARS:
                np.testing.assert_array_equal(
                    grid.leaves[key].interior_view(name), before[key][name]
                )

    def test_pickle_drops_plan_and_refills_correctly(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        assert grid._guard_plan is not None
        clone = pickle.loads(pickle.dumps(grid))
        assert clone._guard_plan is None
        clone.fill_guard_cells()
        assert_snapshots_equal(snapshot(clone), snapshot(grid))

    def test_deepcopy_drops_plan_and_refills_correctly(self):
        grid = nested_grid()
        grid.fill_guard_cells()
        clone = copy.deepcopy(grid)
        clone.fill_guard_cells()
        assert_snapshots_equal(snapshot(clone), snapshot(grid))

    def test_single_root_periodic_wraps_to_itself(self):
        grid = make_grid(boundary="periodic", n_root=1, max_level=1)
        fill_random(grid, 8)
        fused_snap, ref_snap = fused_vs_reference_fill(grid)
        assert_snapshots_equal(fused_snap, ref_snap)

    def test_ctor_flag_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        assert make_grid(fused=True).fused_grid
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID")
        assert not make_grid(fused=False).fused_grid


# ---------------------------------------------------------------------------
# guard-fill plan: hypothesis over random properly nested topologies
# ---------------------------------------------------------------------------
class TestGuardFillProperty:
    @pytest.mark.parametrize("boundary", BOUNDARIES, ids=BOUNDARY_IDS)
    @given(refine_seed=seeds, data_seed=seeds, n_refines=st.integers(0, 6))
    @settings(max_examples=15, deadline=None)
    def test_random_topologies_bitwise(self, boundary, refine_seed, data_seed, n_refines):
        grid = make_grid(boundary=boundary)
        random_topology(grid, refine_seed, n_refines)
        fill_random(grid, data_seed)
        fused_snap, ref_snap = fused_vs_reference_fill(grid)
        assert_snapshots_equal(fused_snap, ref_snap)

    @given(data_seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_fill_after_regrid_cycles(self, data_seed):
        grid = make_grid(boundary="outflow")
        fill_random(grid, data_seed)
        grid.fill_guard_cells()
        for i in range(3):
            grid.regrid(["dens", "pres"], refine_cutoff=0.3, derefine_cutoff=0.1)
            fill_random(grid, data_seed + i + 1)
            fused_snap, ref_snap = fused_vs_reference_fill(grid)
            assert_snapshots_equal(fused_snap, ref_snap)


# ---------------------------------------------------------------------------
# batched compute_dt
# ---------------------------------------------------------------------------
def _workload(name, **overrides):
    cfg = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
               t_end=0.01, rk_stages=1)
    cfg.update(overrides)
    return create_workload(name, **cfg)


class TestComputeDt:
    @pytest.mark.parametrize("name", COMPRESSIBLE)
    def test_batched_vs_per_block_bitwise(self, name):
        workload = _workload(name)
        grid = workload.build_grid()
        solver = workload.build_solver()
        batched = solver.compute_dt(grid)
        reference = solver._compute_dt_per_block(grid)
        assert np.float64(batched).tobytes() == np.float64(reference).tobytes()

    def test_batched_vs_per_block_after_evolution(self):
        workload = _workload("sedov")
        grid = workload.build_grid()
        solver = workload.build_solver()
        solver.evolve(grid, t_end=0.004)
        batched = solver.compute_dt(grid)
        reference = solver._compute_dt_per_block(grid)
        assert np.float64(batched).tobytes() == np.float64(reference).tobytes()

    @given(refine_seed=seeds, data_seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_random_grids_bitwise(self, refine_seed, data_seed):
        grid = make_grid()
        random_topology(grid, refine_seed, 4)
        fill_random(grid, data_seed)
        solver = HydroSolver()
        batched = solver.compute_dt(grid)
        reference = solver._compute_dt_per_block(grid)
        assert np.float64(batched).tobytes() == np.float64(reference).tobytes()

    def test_batch_dt_flag_dispatch(self):
        grid = _workload("sod").build_grid()
        on = HydroSolver(batch_dt=True)
        off = HydroSolver(batch_dt=False)
        assert on.batch_dt and not off.batch_dt
        assert on.compute_dt(grid) == off.compute_dt(grid)

    def test_never_writes_grid_data(self):
        grid = _workload("sod").build_grid()
        before = snapshot(grid)
        HydroSolver().compute_dt(grid)
        assert_snapshots_equal(before, snapshot(grid))

    def test_workspace_steady_state_zero_allocations(self):
        grid = _workload("sod").build_grid()
        ws = Workspace()
        eos = GammaLawEOS()
        first = grid_kernels.compute_dt(grid, eos, 0.4, ws=ws)
        misses = ws.misses
        assert misses > 0
        for _ in range(3):
            assert grid_kernels.compute_dt(grid, eos, 0.4, ws=ws) == first
        assert ws.misses == misses
        assert ws.hits > 0

    def test_poisoned_workspace_never_leaks(self):
        grid = _workload("sod").build_grid()
        ws = Workspace()
        eos = GammaLawEOS()
        reference = grid_kernels.compute_dt(grid, eos, 0.4, ws=None)
        grid_kernels.compute_dt(grid, eos, 0.4, ws=ws)
        for buf in ws._buffers.values():
            buf.fill(np.nan)
        poisoned = grid_kernels.compute_dt(grid, eos, 0.4, ws=ws)
        assert np.float64(poisoned).tobytes() == np.float64(reference).tobytes()

    def test_without_workspace(self):
        grid = _workload("sod").build_grid()
        eos = GammaLawEOS()
        with_ws = grid_kernels.compute_dt(grid, eos, 0.4, ws=Workspace())
        without = grid_kernels.compute_dt(grid, eos, 0.4, ws=None)
        assert with_ws == without

    def test_per_block_path_pins_handrolled_formula(self):
        """The unified EOS helper must reproduce the historical expression
        ``sqrt(gamma * pres_f / dens_f)`` bit-for-bit."""
        from repro.kernels import flux

        eos = GammaLawEOS()
        rng = np.random.default_rng(11)
        dens = rng.uniform(0.1, 5.0, (8, 8))
        pres = rng.uniform(0.1, 5.0, (8, 8))
        dens_f, pres_f = eos.apply_floors(dens, pres)
        np.testing.assert_array_equal(
            flux.eos_sound_speed(dens_f, pres_f, eos.gamma),
            np.sqrt(eos.gamma * pres_f / dens_f),
        )


# ---------------------------------------------------------------------------
# stacked refinement estimators
# ---------------------------------------------------------------------------
class TestStackedEstimators:
    @given(seed=seeds, nblocks=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_lohner_stacked_bitwise(self, seed, nblocks):
        stack = np.random.default_rng(seed).uniform(-3.0, 3.0, (nblocks, 10, 9))
        batched = lohner_error(stack)
        for i in range(nblocks):
            np.testing.assert_array_equal(batched[i], lohner_error(stack[i]))

    @given(seed=seeds, nblocks=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_gradient_stacked_bitwise(self, seed, nblocks):
        stack = np.random.default_rng(seed).uniform(-3.0, 3.0, (nblocks, 9, 10))
        batched = gradient_error(stack)
        for i in range(nblocks):
            np.testing.assert_array_equal(batched[i], gradient_error(stack[i]))

    @pytest.mark.parametrize("estimator", [lohner_error, gradient_error],
                             ids=["lohner", "gradient"])
    def test_small_arrays_return_zeros(self, estimator):
        assert estimator.supports_batching
        tiny = np.ones((4, 2, 7))
        np.testing.assert_array_equal(estimator(tiny), np.zeros_like(tiny))

    @pytest.mark.parametrize("name", ["sod", "kelvin-helmholtz"])
    def test_stacked_block_errors_match_block_error(self, name):
        grid = _workload(name).build_grid()
        blocks = grid.blocks()
        stacked = stacked_block_errors(blocks, ["dens", "pres"], ws=Workspace())
        reference = [block_error(b, ["dens", "pres"]) for b in blocks]
        assert [float(v) for v in stacked] == reference

    def test_unbatchable_estimator_rejected(self):
        grid = nested_grid()

        def plain_2d(u):
            return np.zeros_like(u)

        with pytest.raises(ValueError):
            stacked_block_errors(grid.blocks(), ["dens"], estimator=plain_2d)

    def test_regrid_falls_back_for_custom_estimator(self):
        def custom(u):  # no supports_batching attribute
            return gradient_error(u)

        fused = nested_grid(data_seed=12)
        reference = nested_grid(data_seed=12)
        reference.fused_grid = False
        s1 = fused.regrid(["dens"], 0.3, 0.05, estimator=custom)
        s2 = reference.regrid(["dens"], 0.3, 0.05, estimator=custom)
        assert set(fused.leaves) == set(reference.leaves)
        assert (s1.refined, s1.derefined) == (s2.refined, s2.derefined)

    def test_regrid_decisions_identical_across_planes(self):
        fused = nested_grid(data_seed=13)
        reference = nested_grid(data_seed=13)
        reference.fused_grid = False
        s1 = fused.regrid(["dens", "pres"], 0.25, 0.05)
        s2 = reference.regrid(["dens", "pres"], 0.25, 0.05)
        assert set(fused.leaves) == set(reference.leaves)
        assert (s1.refined, s1.derefined) == (s2.refined, s2.derefined)
        assert_snapshots_equal(snapshot(fused), snapshot(reference))

    def test_workspace_steady_state(self):
        grid = nested_grid()
        ws = Workspace()
        first = stacked_block_errors(grid.blocks(), VARS, ws=ws)
        misses = ws.misses
        again = stacked_block_errors(grid.blocks(), VARS, ws=ws)
        np.testing.assert_array_equal(first, again)
        assert ws.misses == misses

    def test_poisoned_workspace_never_leaks(self):
        grid = nested_grid()
        ws = Workspace()
        reference = stacked_block_errors(grid.blocks(), VARS, ws=None)
        stacked_block_errors(grid.blocks(), VARS, ws=ws)
        for buf in ws._buffers.values():
            buf.fill(np.nan)
        poisoned = stacked_block_errors(grid.blocks(), VARS, ws=ws)
        np.testing.assert_array_equal(poisoned, reference)

    def test_empty_block_list(self):
        assert stacked_block_errors([], ["dens"]).shape == (0,)


# ---------------------------------------------------------------------------
# pad_edge (bubble-solver paddings)
# ---------------------------------------------------------------------------
class TestPadEdge:
    @given(nx=st.integers(2, 16), ny=st.integers(2, 16),
           n=st.integers(1, 4), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_matches_np_pad(self, nx, ny, n, seed):
        arr = np.random.default_rng(seed).uniform(-5.0, 5.0, (nx, ny))
        expected = np.pad(arr, n, mode="edge")
        np.testing.assert_array_equal(pad_edge(arr, n), expected)
        np.testing.assert_array_equal(pad_edge(arr, n, ws=Workspace()), expected)

    def test_workspace_buffer_reused(self):
        ws = Workspace()
        a = np.ones((6, 6))
        first = pad_edge(a, 2, ws=ws, key=("pad", "a"))
        second = pad_edge(a + 1, 2, ws=ws, key=("pad", "a"))
        assert second is first  # same scratch buffer
        assert ws.misses == 1 and ws.hits == 1

    def test_distinct_keys_distinct_buffers(self):
        ws = Workspace()
        a = np.ones((6, 6))
        pa = pad_edge(a, 1, ws=ws, key=("pad", "a"))
        pb = pad_edge(a, 1, ws=ws, key=("pad", "b"))
        assert pa is not pb
        np.testing.assert_array_equal(pa, pb)

    def test_never_writes_input(self):
        arr = np.arange(36, dtype=np.float64).reshape(6, 6)
        before = arr.copy()
        pad_edge(arr, 3, ws=Workspace())
        np.testing.assert_array_equal(arr, before)


# ---------------------------------------------------------------------------
# environment knob + whole-workload differential runs
# ---------------------------------------------------------------------------
def _assert_states_equal(a, b, label):
    assert set(a) == set(b), label
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=f"{label}: {key}")


class TestEnvironmentKnob:
    def test_grid_plane_enabled_values(self, monkeypatch):
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID", raising=False)
        assert grid_plane_enabled()
        for value in ("1", "true", "yes"):
            monkeypatch.setenv("RAPTOR_FAST_NO_GRID", value)
            assert not grid_plane_enabled()
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("RAPTOR_FAST_NO_GRID", value)
            assert grid_plane_enabled()

    def test_amr_grid_follows_knob(self, monkeypatch):
        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        assert not AMRGrid(VARS).fused_grid
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID")
        assert AMRGrid(VARS).fused_grid

    def test_hydro_solver_follows_knob(self, monkeypatch):
        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        assert not HydroSolver().batch_dt
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID")
        assert HydroSolver().batch_dt

    def test_bubble_solver_follows_knob(self, monkeypatch):
        from repro.incomp.solver import BubbleConfig, BubbleSolver

        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        assert not BubbleSolver(BubbleConfig(nx=8, ny=8))._grid_pad
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID")
        assert BubbleSolver(BubbleConfig(nx=8, ny=8))._grid_pad

    def test_grid_plane_is_active_by_default(self):
        """The differential runs below must exercise the fused grid plane
        unless the environment disabled it on purpose."""
        assert grid_plane_enabled()

    @pytest.mark.parametrize("name", sorted(TINY_CONFIGS))
    def test_workload_bitwise_across_knob(self, name, monkeypatch):
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID", raising=False)
        on = create_workload(name, **TINY_CONFIGS[name]).reference(plane="fast")
        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        off = create_workload(name, **TINY_CONFIGS[name]).reference(plane="fast")
        assert on.time == off.time
        _assert_states_equal(on.state, off.state, name)

    def test_instrumented_counters_byte_identical_across_knob(self, monkeypatch):
        """The grid side is context-free, so toggling the fused grid plane
        must not move a single instrumented counter."""
        cfg = TINY_CONFIGS["sod"]
        monkeypatch.delenv("RAPTOR_FAST_NO_GRID", raising=False)
        on = create_workload("sod", **cfg).reference(plane="instrumented")
        monkeypatch.setenv("RAPTOR_FAST_NO_GRID", "1")
        off = create_workload("sod", **cfg).reference(plane="instrumented")
        assert on.runtime.ops.full == off.runtime.ops.full
        assert on.runtime.ops.total == off.runtime.ops.total
        _assert_states_equal(on.state, off.state, "sod instrumented")
