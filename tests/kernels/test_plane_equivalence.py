"""End-to-end kernel-plane equivalence.

The acceptance contract of the fast plane: for binary64 (non-truncating)
contexts it is **bit-identical** to the instrumented plane — golden-config
runs match bitwise, and all seven registered workloads produce identical
``Outcome`` states through ``run_sweep`` on either plane, on both the
serial and the process backend.

Since the fused-flux PR, ``plane="fast"`` runs the compressible workloads
through the full fused pipeline (Riemann/EOS fusion + scratch workspaces +
batched block stepping) by default, so every sweep below also covers the
scratch/batched path; ``test_scratch_and_batching_are_active`` pins that
the defaults were indeed in effect.
"""
import numpy as np
import pytest

from repro.experiments import PolicySpec, SweepSpec, run_sweep
from repro.workloads import available_workloads, create_workload

#: deliberately tiny configurations — every registered workload, both kinds
#: of compressible instability, a handful of steps each
TINY_COMPRESSIBLE = dict(
    nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.004, rk_stages=1
)
TINY_CONFIGS = {
    "sod": TINY_COMPRESSIBLE,
    "sedov": TINY_COMPRESSIBLE,
    "kelvin-helmholtz": TINY_COMPRESSIBLE,
    "rayleigh-taylor": TINY_COMPRESSIBLE,
    "double-blast": TINY_COMPRESSIBLE,
    "cellular": dict(n_cells=16, n_steps=4),
    "bubble": dict(spin_up_time=0.04, truncation_time=0.04, snapshot_times=(0.04,)),
}

ALL_WORKLOADS = tuple(TINY_CONFIGS)


def _assert_states_equal(a, b, label):
    assert set(a) == set(b), label
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=f"{label}: {key}")


class TestGoldenConfigsBothPlanes:
    """The golden Sod/Sedov configurations, instrumented vs fast."""

    @pytest.mark.parametrize("workload", ["sod", "sedov"])
    def test_reference_bitwise_identical(self, workload):
        cfg = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                   t_end=0.04 if workload == "sod" else 0.02, rk_stages=1)
        instrumented = create_workload(workload, **cfg).reference(plane="instrumented")
        fast = create_workload(workload, **cfg).reference(plane="fast")
        assert fast.time == instrumented.time
        _assert_states_equal(instrumented.state, fast.state, workload)
        # the trade: the fast plane records no counters
        assert instrumented.runtime.ops.full > 0
        assert fast.runtime.ops.total == 0


class TestAllWorkloadsThroughRunSweep:
    """All seven registry workloads: identical outcome states through
    run_sweep on either plane, serial and process backends."""

    def test_registry_is_fully_covered(self):
        assert set(available_workloads()) == set(ALL_WORKLOADS)

    def test_scratch_and_batching_are_active(self):
        """The fast-plane sweeps in this module must exercise the fused
        flux pipeline with scratch buffers and batched block stepping —
        the defaults, unless the environment disabled them."""
        from repro.hydro.solver import HydroSolver
        from repro.kernels.scratch import batching_enabled, scratch_enabled

        assert scratch_enabled() and batching_enabled()
        solver = HydroSolver()
        assert solver._workspace is not None and solver.batch_blocks

    @pytest.fixture(scope="class")
    def results(self):
        def spec(plane, backend):
            return SweepSpec(
                workloads=ALL_WORKLOADS,
                formats=("fp64", "bf16"),
                policies=(PolicySpec(kind="global"),),
                workload_configs=TINY_CONFIGS,
                plane=plane,
                backend=backend,
                max_workers=2,
                keep_states=True,
            )

        return {
            (plane, backend): run_sweep(spec(plane, backend))
            for plane in ("instrumented", "fast")
            for backend in ("serial", "process")
        }

    def test_point_states_identical_across_planes_and_backends(self, results):
        baseline = results[("instrumented", "serial")]
        for key, other in results.items():
            if key == ("instrumented", "serial"):
                continue
            for ours, theirs in zip(baseline.points, other.points):
                assert ours.index == theirs.index
                _assert_states_equal(
                    ours.state, theirs.state, f"{key}: {theirs.workload}@{theirs.format_name}"
                )

    def test_reference_states_identical_across_planes(self, results):
        baseline = results[("instrumented", "serial")].references
        for key, other in results.items():
            for name, reference in other.references.items():
                _assert_states_equal(baseline[name].state, reference.state, f"{key}: {name}")

    def test_errors_identical_across_planes(self, results):
        baseline = results[("instrumented", "serial")]
        for key, other in results.items():
            for ours, theirs in zip(baseline.points, other.points):
                assert ours.errors == theirs.errors, key
                assert ours.scalar_error == theirs.scalar_error, key

    def test_auto_plane_counters_match_instrumented(self, results):
        """plane="auto" (the default) must keep the per-point counters
        byte-identical to the instrumented plane — only the reference
        tasks (whose counters are discarded) move to the fast plane."""
        auto = run_sweep(
            SweepSpec(
                workloads=("sod",),
                formats=("bf16",),
                policies=(PolicySpec(kind="global"),),
                workload_configs={"sod": TINY_CONFIGS["sod"]},
                plane="auto",
            )
        )
        instrumented = results[("instrumented", "serial")]
        ours = next(
            p for p in instrumented.points
            if p.workload == "sod" and p.format_name == "bf16"
        )
        theirs = auto.points[0]
        assert ours.ops == theirs.ops
        assert ours.mem == theirs.mem
        assert ours.module_ops == theirs.module_ops

    def test_fast_plane_drops_full_precision_counters(self, results):
        fast = results[("fast", "serial")]
        for point in fast.points:
            # truncating contexts still feed the counters; full-precision
            # contexts run fused and record nothing
            assert point.ops["full"] == 0

    def test_timings_recorded(self, results):
        for result in results.values():
            assert result.elapsed_seconds > 0
            assert all(p.seconds > 0 for p in result.points)
            assert result.total_point_seconds == pytest.approx(
                sum(p.seconds for p in result.points)
            )

    def test_plane_disagreement_refuses_merge(self, results):
        from repro.experiments import SweepResult

        with pytest.raises(ValueError, match="cannot merge"):
            SweepResult.merge(
                results[("instrumented", "serial")], results[("fast", "serial")]
            )
