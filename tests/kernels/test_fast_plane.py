"""Unit tests for the kernel-plane layer (repro.kernels).

The load-bearing contract: every :class:`FastPlaneContext` operation (and
every pre-fused stencil) is **bitwise identical** to the instrumented
:class:`FullPrecisionContext` on binary64 data, and plane selection never
substitutes a context whose semantics (truncation, shadow tracking) or
observable counters would change.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BF16,
    FullPrecisionContext,
    GlobalPolicy,
    NoTruncationPolicy,
    RaptorRuntime,
    ShadowContext,
    TruncatedContext,
    TruncationConfig,
)
from repro.hydro.reconstruction import SCHEMES, reconstruct
from repro.kernels import (
    DEFAULT_PLANE,
    PLANES,
    FastPlaneContext,
    fused,
    is_fast_eligible,
    reference_plane,
    select_context,
    validate_plane,
)

#: (method name, arity) of every arithmetic FPContext operation
UNARY_OPS = ("neg", "abs", "sqrt", "exp", "log", "log10", "sin", "cos",
             "tanh", "square", "reciprocal")
BINARY_OPS = ("add", "sub", "mul", "div", "power", "maximum", "minimum", "copysign")


def _positive(arr):
    return np.abs(arr) + 0.5


finite_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=16
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestFastContextBitIdentity:
    @given(a=finite_arrays, b=finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_binary_ops_match_instrumented(self, a, b):
        n = min(a.size, b.size)
        a, b = a[:n], _positive(b[:n])
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        fast = FastPlaneContext()
        for op in BINARY_OPS:
            if op == "power":
                base, expo = _positive(a), np.clip(b, 0.5, 3.0)
                expected = getattr(slow, op)(base, expo)
                got = getattr(fast, op)(base, expo)
            else:
                expected = getattr(slow, op)(a, b)
                got = getattr(fast, op)(a, b)
            np.testing.assert_array_equal(got, expected, err_msg=op)

    @given(a=finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_unary_ops_match_instrumented(self, a):
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        fast = FastPlaneContext()
        pos = _positive(a)
        for op in UNARY_OPS:
            arg = pos if op in ("sqrt", "log", "log10", "reciprocal") else a
            np.testing.assert_array_equal(
                getattr(fast, op)(arg), getattr(slow, op)(arg), err_msg=op
            )

    @given(a=finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_reductions_and_composites_match(self, a):
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        fast = FastPlaneContext()
        for op in ("sum", "max", "min"):
            np.testing.assert_array_equal(getattr(fast, op)(a), getattr(slow, op)(a))
        b = _positive(a)
        np.testing.assert_array_equal(fast.fma(a, b, b), slow.fma(a, b, b))
        np.testing.assert_array_equal(fast.dot(a, b), slow.dot(a, b))
        np.testing.assert_array_equal(fast.axpy(2.0, a, b), slow.axpy(2.0, a, b))

    def test_reduction_axis(self):
        a = np.arange(12.0).reshape(3, 4) / 7.0
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        fast = FastPlaneContext()
        for axis in (0, 1, None):
            np.testing.assert_array_equal(fast.sum(a, axis=axis), slow.sum(a, axis=axis))

    def test_records_nothing(self):
        rt = RaptorRuntime()
        ctx = FastPlaneContext(runtime=rt)
        ctx.add(np.ones(8), np.ones(8))
        ctx.sum(np.ones(8))
        assert rt.ops.total == 0
        assert rt.mem.total == 0

    def test_is_a_full_precision_context(self):
        ctx = FastPlaneContext()
        assert isinstance(ctx, FullPrecisionContext)
        assert not ctx.truncating
        assert ctx.plane == "fast" and ctx.fused
        assert not ctx.count_ops and not ctx.track_memory


class TestPlaneSelection:
    def test_validate_plane(self):
        for plane in PLANES:
            assert validate_plane(plane) == plane
        with pytest.raises(ValueError, match="kernel plane"):
            validate_plane("warp")
        assert DEFAULT_PLANE in PLANES

    def test_truncating_and_shadow_contexts_never_substituted(self):
        rt = RaptorRuntime()
        cfg = TruncationConfig(targets={64: BF16})
        truncated = TruncatedContext.from_config(cfg, runtime=rt)
        shadow = ShadowContext.from_config(cfg, runtime=rt)
        for plane in PLANES:
            assert select_context(truncated, plane) is truncated
            assert select_context(shadow, plane) is shadow
        assert not is_fast_eligible(truncated)
        assert not is_fast_eligible(shadow)

    def test_auto_keeps_counting_contexts_instrumented(self):
        counting = FullPrecisionContext(runtime=RaptorRuntime())
        assert select_context(counting, "auto") is counting
        silent = FullPrecisionContext(
            runtime=RaptorRuntime(), count_ops=False, track_memory=False
        )
        assert isinstance(select_context(silent, "auto"), FastPlaneContext)

    def test_fast_substitutes_every_full_precision_context(self):
        counting = FullPrecisionContext(runtime=RaptorRuntime(), module="hydro")
        fast = select_context(counting, "fast")
        assert isinstance(fast, FastPlaneContext)
        assert fast.module == "hydro"
        assert select_context(counting, "instrumented") is counting

    def test_selection_is_idempotent(self):
        ctx = FastPlaneContext()
        for plane in PLANES:
            assert select_context(ctx, plane) is ctx

    def test_reference_plane_resolution(self):
        assert reference_plane("auto") == "fast"
        assert reference_plane("fast") == "fast"
        assert reference_plane("instrumented") == "instrumented"


class TestPolicyPlane:
    def test_no_truncation_policy_fast_plane(self):
        pol = NoTruncationPolicy(runtime=RaptorRuntime(), plane="fast")
        assert isinstance(pol.context_for(module="hydro"), FastPlaneContext)
        assert isinstance(pol.full_context("burn"), FastPlaneContext)

    def test_default_plane_preserves_counters(self):
        rt = RaptorRuntime()
        pol = NoTruncationPolicy(runtime=rt)  # plane="auto", counting config
        ctx = pol.context_for(module="hydro")
        assert not isinstance(ctx, FastPlaneContext)
        ctx.add(np.ones(4), np.ones(4))
        assert rt.ops.full == 4

    def test_truncating_policy_keeps_truncation_on_fast_plane(self):
        rt = RaptorRuntime()
        pol = GlobalPolicy(TruncationConfig(targets={64: BF16}), runtime=rt, plane="fast")
        ctx = pol.context_for(module="hydro")
        assert ctx.truncating  # the measurement is untouched
        assert isinstance(pol.full_context("elsewhere"), FastPlaneContext)

    def test_invalid_plane_rejected(self):
        with pytest.raises(ValueError, match="kernel plane"):
            NoTruncationPolicy(plane="bogus")


class TestFusedStencils:
    @pytest.fixture()
    def field2d(self):
        rng = np.random.default_rng(42)
        return rng.normal(size=(20, 20)) + 2.0

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    @pytest.mark.parametrize("axis", [0, 1])
    def test_fused_reconstruction_bitwise_equal(self, field2d, scheme, axis):
        ng, n = 3, 8
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        left_s, right_s = SCHEMES[scheme](field2d, axis, ng, n, slow)
        left_f, right_f = fused.FUSED_SCHEMES[scheme](field2d, axis, ng, n)
        np.testing.assert_array_equal(left_f, left_s)
        np.testing.assert_array_equal(right_f, right_s)

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_reconstruct_dispatches_to_fused_on_fast_plane(self, field2d, scheme):
        slow = FullPrecisionContext(runtime=RaptorRuntime())
        fast = FastPlaneContext()
        for axis in (0, 1):
            left_s, right_s = reconstruct(field2d, axis, 3, 8, slow, scheme)
            left_f, right_f = reconstruct(field2d, axis, 3, 8, fast, scheme)
            np.testing.assert_array_equal(left_f, left_s)
            np.testing.assert_array_equal(right_f, right_s)

    def test_fused_weno_edge_matches_context_edge(self, field2d):
        from repro.hydro.reconstruction import _weno5_edge

        slow = FullPrecisionContext(runtime=RaptorRuntime())
        rows = [field2d[i] for i in range(5)]
        np.testing.assert_array_equal(
            fused.weno5_edge(*rows), _weno5_edge(*rows, slow)
        )


class TestPlanePlumbingRegressions:
    def test_legacy_kwargs_reference_never_receives_plane(self):
        """A duck-typed scenario with the pre-plane protocol signature
        (``reference(**kwargs)`` forwarding into ``run``) must be executed
        unchanged — passing ``plane=`` through would TypeError in run()."""
        from repro.experiments.engine import run_reference

        class Legacy:
            name = "legacy"

            def run(self, policy=None, runtime=None):
                return "ran"

            def reference(self, **kwargs):
                return self.run(policy=None, **kwargs)

        assert run_reference(Legacy(), plane="auto") == "ran"
        assert run_reference(Legacy(), plane="fast") == "ran"

    def test_bubble_solver_honours_the_instrumented_plane(self):
        """plane="instrumented" must disable the fast plane everywhere,
        including the bubble solver's internal full-precision context."""
        from repro.incomp.solver import BubbleSolver

        assert isinstance(BubbleSolver()._full_ctx, FastPlaneContext)
        instrumented = BubbleSolver(plane="instrumented")._full_ctx
        assert not isinstance(instrumented, FastPlaneContext)
        assert not instrumented.fused

    def test_cellular_burn_ops_recorded_on_the_run_runtime(self):
        """Burn ops must land on the run's runtime even when the policy
        was built on another (here: the process-global default)."""
        from repro.core import ModulePolicy
        from repro.workloads import create_workload

        workload = create_workload("cellular", n_cells=8, n_steps=2)
        policy = ModulePolicy(TruncationConfig.mantissa(40), modules=["eos"])
        outcome = workload.run(policy=policy)
        burn = outcome.snapshot()["modules"].get("burn", {})
        assert burn.get("full", 0) > 0
