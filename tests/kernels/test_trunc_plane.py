"""Bit-identity tests for the fused truncating plane (repro.kernels.trunc).

The load-bearing contracts:

* :func:`quantize_into` is **bitwise identical** to
  :func:`repro.core.quantize.quantize` — workspace or not, in place or
  not — including signed zeros, non-finite lanes, subnormals and the
  directed-rounding overflow clamps;
* every fused truncating kernel (stencils, EOS helpers, wave speeds,
  Riemann solvers) reproduces the optimized instrumented
  :class:`TruncatedContext` stream bit for bit on representable inputs,
  because it quantises at exactly the same op boundaries;
* plane selection routes *non-counting* truncating contexts onto
  :class:`TruncFastPlaneContext` under both ``"fast"`` and ``"auto"`` and
  never substitutes a counting, naive, error-tracking or shadow context;
* the scratch workspace and the batched per-level stepping never change a
  bit, and whole truncated workloads (states *and* counter snapshots) are
  identical across planes, backends and the engine entry points.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BF16,
    FPFormat,
    FullPrecisionContext,
    GlobalPolicy,
    RaptorRuntime,
    RoundingMode,
    ShadowContext,
    TruncatedContext,
    TruncationConfig,
    quantize,
)
from repro.hydro.eos import GammaLawEOS
from repro.hydro.reconstruction import SCHEMES, _weno5_edge, reconstruct
from repro.hydro.riemann import SOLVERS, _einfeldt_wave_speeds, _wave_speeds
from repro.hydro.solver import HydroSolver
from repro.kernels import (
    FastPlaneContext,
    TruncFastPlaneContext,
    is_trunc_fast_eligible,
    select_context,
    trunc,
)
from repro.kernels.scratch import Workspace
from repro.kernels.trunc import quantize_into

GAMMA = 1.4
COMPONENTS = ("dens", "momn", "momt", "ener")

#: the paper's sweep format plus the standard half-width pair and an FP8
FORMATS = [
    FPFormat(exp_bits=8, man_bits=10),
    FPFormat(exp_bits=8, man_bits=7),
    FPFormat(exp_bits=5, man_bits=10),
    FPFormat(exp_bits=5, man_bits=2),
]
FORMAT_IDS = [f"e{f.exp_bits}m{f.man_bits}" for f in FORMATS]
ROUNDINGS = list(RoundingMode.ALL)

E8M10 = FORMATS[0]


def _instrumented(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN, **kw):
    """The optimized op-by-op truncating context the fused twins must match."""
    return TruncatedContext(fmt, runtime=RaptorRuntime(), rounding=rounding, **kw)


def _silent(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN):
    """A non-counting truncating context (trunc-fast-plane eligible)."""
    return TruncatedContext(
        fmt, runtime=RaptorRuntime(), rounding=rounding,
        count_ops=False, track_memory=False,
    )


def _fast(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN):
    return TruncFastPlaneContext(fmt, rounding=rounding)


# ---------------------------------------------------------------------------
# quantize_into
# ---------------------------------------------------------------------------
all_doubles = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64), min_size=1, max_size=24
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestQuantizeInto:
    @given(
        arr=all_doubles,
        fmt=st.sampled_from(FORMATS),
        rounding=st.sampled_from(ROUNDINGS),
    )
    @settings(max_examples=120, deadline=None)
    def test_bitwise_equal_to_quantize(self, arr, fmt, rounding):
        expected = quantize(arr, fmt, rounding)
        for ws in (None, Workspace()):
            got = quantize_into(arr.copy(), fmt, rounding, ws)
            np.testing.assert_array_equal(got, expected)
            # the bit patterns must agree too (signed zeros, NaN lanes)
            np.testing.assert_array_equal(
                got.view(np.uint64), np.asarray(expected).view(np.uint64)
            )

    @given(
        arr=all_doubles,
        fmt=st.sampled_from(FORMATS),
        rounding=st.sampled_from(ROUNDINGS),
    )
    @settings(max_examples=60, deadline=None)
    def test_in_place_and_out_variants(self, arr, fmt, rounding):
        expected = np.asarray(quantize(arr, fmt, rounding))
        ws = Workspace()
        inplace = arr.copy()
        assert quantize_into(inplace, fmt, rounding, ws, out=inplace) is inplace
        np.testing.assert_array_equal(inplace.view(np.uint64), expected.view(np.uint64))
        dest = np.full_like(arr, 3.25)
        assert quantize_into(arr.copy(), fmt, rounding, ws, out=dest) is dest
        np.testing.assert_array_equal(dest.view(np.uint64), expected.view(np.uint64))

    @given(arr=all_doubles, fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, arr, fmt, rounding):
        ws = Workspace()
        once = quantize_into(arr.copy(), fmt, rounding, ws)
        twice = quantize_into(once.copy(), fmt, rounding, ws)
        np.testing.assert_array_equal(
            twice.view(np.uint64), once.view(np.uint64)
        )

    def test_special_lanes_restored(self):
        arr = np.array([np.inf, -np.inf, np.nan, 0.0, -0.0, 1.0 / 3.0])
        for rounding in ROUNDINGS:
            got = quantize_into(arr.copy(), BF16, rounding, Workspace())
            assert got[0] == np.inf and got[1] == -np.inf and np.isnan(got[2])
            assert got[3] == 0.0 and not np.signbit(got[3])
            assert got[4] == 0.0 and np.signbit(got[4])
            assert got[5] == float(quantize(1.0 / 3.0, BF16, rounding))

    def test_fp64_nearest_fast_path_copies(self):
        from repro.core import FP64

        arr = np.array([np.pi, -0.0, np.nan])
        got = quantize_into(arr, FP64, RoundingMode.NEAREST_EVEN, Workspace())
        assert got is not arr
        np.testing.assert_array_equal(got.view(np.uint64), arr.view(np.uint64))

    def test_unknown_rounding_rejected(self):
        with pytest.raises(ValueError, match="rounding"):
            quantize_into(np.ones(3), BF16, "stochastic")

    def test_workspace_reaches_steady_state(self):
        ws = Workspace()
        arr = np.linspace(-2.0, 2.0, 64)
        quantize_into(arr.copy(), BF16, RoundingMode.UP, ws)
        misses = ws.misses
        assert misses > 0
        quantize_into(arr.copy(), BF16, RoundingMode.UP, ws)
        assert ws.misses == misses and ws.hits > 0


# ---------------------------------------------------------------------------
# the context and plane selection
# ---------------------------------------------------------------------------
class TestTruncFastPlaneContext:
    def test_flags_and_describe(self):
        ctx = _fast(rounding=RoundingMode.UP)
        assert ctx.plane == "fast" and ctx.fused_trunc and not ctx.fused
        assert ctx.truncating and ctx.optimized
        assert not (ctx.count_ops or ctx.track_memory or ctx.track_errors)
        assert "e8m10" in ctx.describe()

    def test_from_context_clones_format_and_rounding(self):
        rt = RaptorRuntime()
        src = TruncatedContext(BF16, runtime=rt, module="hydro",
                               rounding=RoundingMode.DOWN,
                               count_ops=False, track_memory=False)
        ctx = TruncFastPlaneContext.from_context(src)
        assert ctx.fmt is src.fmt and ctx.rounding == RoundingMode.DOWN
        assert ctx.module == "hydro" and ctx.runtime is rt

    def test_records_nothing(self):
        rt = RaptorRuntime()
        ctx = TruncFastPlaneContext(E8M10, runtime=rt)
        ctx.add(np.ones(8), np.ones(8))
        ctx.sum(np.ones(8))
        assert rt.ops.total == 0 and rt.mem.total == 0

    @given(
        a=st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                   min_size=1, max_size=12).map(np.asarray),
        fmt=st.sampled_from(FORMATS),
        rounding=st.sampled_from(ROUNDINGS),
    )
    @settings(max_examples=60, deadline=None)
    def test_ops_match_instrumented(self, a, fmt, rounding):
        a = np.asarray(quantize(a, fmt, rounding))
        b = np.abs(a) + 1.0
        b = np.asarray(quantize(b, fmt, rounding))
        slow = _instrumented(fmt, rounding)
        fast = TruncFastPlaneContext(fmt, rounding=rounding)
        for op, args in (
            ("add", (a, b)), ("sub", (a, b)), ("mul", (a, b)), ("div", (a, b)),
            ("maximum", (a, b)), ("minimum", (a, b)),
            ("sqrt", (b,)), ("square", (a,)), ("abs", (a,)), ("neg", (a,)),
            ("sum", (a,)), ("max", (a,)), ("min", (a,)),
        ):
            np.testing.assert_array_equal(
                getattr(fast, op)(*args), getattr(slow, op)(*args), err_msg=op
            )


class TestTruncPlaneSelection:
    def test_eligibility_predicate(self):
        assert is_trunc_fast_eligible(_silent())
        assert not is_trunc_fast_eligible(_instrumented())  # counting
        assert not is_trunc_fast_eligible(
            TruncatedContext(BF16, runtime=RaptorRuntime(), optimized=False,
                             count_ops=False, track_memory=False)
        )
        assert not is_trunc_fast_eligible(
            TruncatedContext(BF16, runtime=RaptorRuntime(), track_errors=True,
                             count_ops=False, track_memory=False)
        )
        assert not is_trunc_fast_eligible(
            FullPrecisionContext(runtime=RaptorRuntime(), count_ops=False,
                                 track_memory=False)
        )

    @pytest.mark.parametrize("plane", ["fast", "auto"])
    def test_silent_truncating_context_rides_the_trunc_plane(self, plane):
        src = _silent(fmt=BF16, rounding=RoundingMode.TOWARD_ZERO)
        ctx = select_context(src, plane)
        assert isinstance(ctx, TruncFastPlaneContext)
        assert ctx.fmt is src.fmt and ctx.rounding == src.rounding
        assert ctx.runtime is src.runtime

    def test_instrumented_plane_never_substitutes(self):
        src = _silent()
        assert select_context(src, "instrumented") is src

    def test_counting_truncating_context_stays_put_without_warning(self):
        import warnings

        counting = _instrumented()
        for plane in ("fast", "auto", "instrumented"):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert select_context(counting, plane) is counting

    def test_naive_and_shadow_contexts_stay_put(self):
        naive = TruncatedContext(BF16, runtime=RaptorRuntime(), optimized=False,
                                 count_ops=False, track_memory=False)
        shadow = ShadowContext.from_config(
            TruncationConfig(targets={64: BF16}), runtime=RaptorRuntime()
        )
        for plane in ("fast", "auto"):
            assert select_context(naive, plane) is naive
            assert select_context(shadow, plane) is shadow

    def test_selection_is_idempotent_on_the_plane(self):
        ctx = _fast()
        for plane in ("fast", "auto", "instrumented"):
            assert select_context(ctx, plane) is ctx

    def test_fast_on_counting_binary64_warns_with_module_name(self):
        counting = FullPrecisionContext(runtime=RaptorRuntime(), module="hydro")
        with pytest.warns(UserWarning, match="module='hydro'") as record:
            ctx = select_context(counting, "fast")
        assert isinstance(ctx, FastPlaneContext)
        assert "counters will read zero" in str(record[0].message)

    def test_no_warning_on_auto_or_silent_binary64(self):
        import warnings

        counting = FullPrecisionContext(runtime=RaptorRuntime())
        silent = FullPrecisionContext(runtime=RaptorRuntime(),
                                      count_ops=False, track_memory=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert select_context(counting, "auto") is counting
            assert isinstance(select_context(silent, "fast"), FastPlaneContext)
            assert isinstance(select_context(_silent(), "fast"), TruncFastPlaneContext)


# ---------------------------------------------------------------------------
# per-kernel twins (hypothesis)
# ---------------------------------------------------------------------------
@st.composite
def trunc_face_states(draw):
    """Left/right primitive face states quantized into the drawn format —
    the representability contract of the fused truncating kernels."""
    fmt = draw(st.sampled_from(FORMATS))
    rounding = draw(st.sampled_from(ROUNDINGS))
    n = draw(st.integers(min_value=1, max_value=10))
    arr = lambda lo, hi: np.asarray(quantize(np.asarray(
        draw(st.lists(st.floats(min_value=lo, max_value=hi, allow_nan=False),
                      min_size=n, max_size=n)), dtype=np.float64), fmt, rounding))
    mk = lambda: {
        "dens": arr(1e-2, 1e2),
        "velx": arr(-5.0, 5.0),
        "vely": arr(-5.0, 5.0),
        "pres": arr(1e-2, 1e2),
    }
    return mk(), mk(), fmt, rounding


class TestTruncKernelTwins:
    @pytest.mark.parametrize("scheme", sorted(trunc.TRUNC_SCHEMES))
    @given(
        u=st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                   min_size=14, max_size=18).map(np.asarray),
        fmt=st.sampled_from(FORMATS),
        rounding=st.sampled_from(ROUNDINGS),
    )
    @settings(max_examples=25, deadline=None)
    def test_stencils_bitwise(self, scheme, u, fmt, rounding):
        field = np.asarray(quantize(
            np.stack([np.roll(u, k) + 0.1 * k for k in range(14)]), fmt, rounding
        ))
        ng, slow = 3, _instrumented(fmt, rounding)
        for axis in (0, 1):
            nn = field.shape[axis] - 2 * ng - 1
            left_s, right_s = SCHEMES[scheme](field, axis, ng, nn, slow)
            for ws in (None, Workspace()):
                left_f, right_f = trunc.TRUNC_SCHEMES[scheme](
                    field, axis, ng, nn, ws=ws, key=("t",), fmt=fmt, rounding=rounding
                )
                np.testing.assert_array_equal(left_f, left_s)
                np.testing.assert_array_equal(right_f, right_s)

    @pytest.mark.parametrize("scheme", sorted(trunc.TRUNC_SCHEMES))
    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_reconstruct_dispatches_on_the_trunc_plane(self, scheme, rounding):
        rng = np.random.default_rng(42)
        field = np.asarray(quantize(rng.normal(size=(20, 20)) + 2.0, E8M10, rounding))
        slow = _instrumented(rounding=rounding)
        fast = _fast(rounding=rounding)
        for axis in (0, 1):
            left_s, right_s = reconstruct(field, axis, 3, 8, slow, scheme)
            left_f, right_f = reconstruct(field, axis, 3, 8, fast, scheme)
            np.testing.assert_array_equal(left_f, left_s)
            np.testing.assert_array_equal(right_f, right_s)

    @given(state=trunc_face_states())
    @settings(max_examples=30, deadline=None)
    def test_weno5_edge_bitwise(self, state):
        left, _, fmt, rounding = state
        rows = [left["dens"], left["velx"], left["vely"], left["pres"],
                np.asarray(quantize(left["dens"] + left["pres"], fmt, rounding))]
        slow = _instrumented(fmt, rounding)
        expected = _weno5_edge(*rows, slow)
        for ws in (None, Workspace()):
            got = trunc.weno5_edge(*rows, ws=ws, key=("e",), fmt=fmt, rounding=rounding)
            np.testing.assert_array_equal(got, expected)

    @given(state=trunc_face_states())
    @settings(max_examples=30, deadline=None)
    def test_eos_helpers_bitwise(self, state):
        left, _, fmt, rounding = state
        dens, velx, vely, pres = (left[k] for k in ("dens", "velx", "vely", "pres"))
        eos = GammaLawEOS(gamma=GAMMA)
        slow = _instrumented(fmt, rounding)
        kw = dict(fmt=fmt, rounding=rounding)
        np.testing.assert_array_equal(
            trunc.eos_sound_speed(dens, pres, GAMMA, **kw),
            eos.sound_speed(dens, pres, slow),
        )
        np.testing.assert_array_equal(
            trunc.eos_internal_energy(dens, pres, GAMMA, **kw),
            eos.internal_energy_from_pressure(dens, pres, slow),
        )
        np.testing.assert_array_equal(
            trunc.eos_pressure_from_internal_energy(
                dens, pres, GAMMA, eos.pressure_floor, **kw),
            eos.pressure_from_internal_energy(dens, pres, slow),
        )
        ener_slow = eos.total_energy(dens, velx, vely, pres, slow)
        np.testing.assert_array_equal(
            trunc.eos_total_energy(dens, velx, vely, pres, GAMMA, **kw), ener_slow
        )
        momx = np.asarray(quantize(dens * velx, fmt, rounding))
        momy = np.asarray(quantize(dens * vely, fmt, rounding))
        np.testing.assert_array_equal(
            trunc.eos_pressure_from_total_energy(
                dens, momx, momy, ener_slow, GAMMA,
                eos.pressure_floor, eos.density_floor, **kw),
            eos.pressure_from_total_energy(dens, momx, momy, ener_slow, slow),
        )

    def test_gamma_law_eos_dispatches_on_the_trunc_plane(self):
        rng = np.random.default_rng(7)
        q = lambda a: np.asarray(quantize(a, E8M10, RoundingMode.NEAREST_EVEN))
        dens, pres = q(rng.uniform(0.1, 2.0, 32)), q(rng.uniform(0.1, 2.0, 32))
        velx, vely = q(rng.normal(size=32)), q(rng.normal(size=32))
        eos = GammaLawEOS()
        slow, fast = _instrumented(), _fast()
        pairs = [
            (eos.sound_speed(dens, pres, slow), eos.sound_speed(dens, pres, fast)),
            (eos.internal_energy_from_pressure(dens, pres, slow),
             eos.internal_energy_from_pressure(dens, pres, fast)),
            (eos.pressure_from_internal_energy(dens, pres, slow),
             eos.pressure_from_internal_energy(dens, pres, fast)),
            (eos.total_energy(dens, velx, vely, pres, slow),
             eos.total_energy(dens, velx, vely, pres, fast)),
            (eos.pressure_from_total_energy(dens, q(dens * velx), q(dens * vely), pres, slow),
             eos.pressure_from_total_energy(dens, q(dens * velx), q(dens * vely), pres, fast)),
        ]
        for expected, got in pairs:
            np.testing.assert_array_equal(got, expected)

    @given(state=trunc_face_states())
    @settings(max_examples=25, deadline=None)
    def test_wave_speeds_bitwise(self, state):
        left, right, fmt, rounding = state
        eos = GammaLawEOS(gamma=GAMMA)
        slow = _instrumented(fmt, rounding)
        sl_s, sr_s = _wave_speeds(left, right, eos, slow)
        sl_f, sr_f = trunc.davis_wave_speeds(left, right, GAMMA, fmt=fmt, rounding=rounding)
        np.testing.assert_array_equal(sl_f, sl_s)
        np.testing.assert_array_equal(sr_f, sr_s)
        el_s, er_s = _einfeldt_wave_speeds(left, right, eos, slow)
        el_f, er_f = trunc.einfeldt_wave_speeds(left, right, GAMMA, fmt=fmt, rounding=rounding)
        np.testing.assert_array_equal(el_f, el_s)
        np.testing.assert_array_equal(er_f, er_s)

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    @given(state=trunc_face_states())
    @settings(max_examples=20, deadline=None)
    def test_riemann_solvers_bitwise(self, name, state):
        left, right, fmt, rounding = state
        eos = GammaLawEOS(gamma=GAMMA)
        expected = SOLVERS[name](left, right, eos, _instrumented(fmt, rounding))
        for ws in (None, Workspace()):
            got = trunc.TRUNC_SOLVERS[name](
                left, right, GAMMA, ws=ws, fmt=fmt, rounding=rounding
            )
            for comp in COMPONENTS:
                np.testing.assert_array_equal(got[comp], expected[comp],
                                              err_msg=f"{name}:{comp}")

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_solver_names_dispatch_on_the_trunc_plane(self, name):
        rng = np.random.default_rng(11)
        q = lambda a: np.asarray(quantize(a, E8M10, RoundingMode.NEAREST_EVEN))
        mk = lambda: {
            "dens": q(rng.uniform(0.1, 2.0, 48)),
            "velx": q(rng.normal(0, 2, 48)),
            "vely": q(rng.normal(0, 2, 48)),
            "pres": q(rng.uniform(0.1, 2.0, 48)),
        }
        left, right = mk(), mk()
        eos = GammaLawEOS()
        slow_flux = SOLVERS[name](left, right, eos, _instrumented())
        fast_flux = SOLVERS[name](left, right, eos, _fast())
        for comp in COMPONENTS:
            np.testing.assert_array_equal(fast_flux[comp], slow_flux[comp], err_msg=comp)


# ---------------------------------------------------------------------------
# scratch lifecycle on the truncating plane
# ---------------------------------------------------------------------------
def _q_states(seed=9, n=16, fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN):
    rng = np.random.default_rng(seed)
    q = lambda a: np.asarray(quantize(a, fmt, rounding))
    mk = lambda: {
        "dens": q(rng.uniform(0.1, 2.0, n)),
        "velx": q(rng.normal(0, 1, n)),
        "vely": q(rng.normal(0, 1, n)),
        "pres": q(rng.uniform(0.1, 2.0, n)),
    }
    return mk(), mk()


class TestTruncScratchLifecycle:
    def test_workspace_reuse_allocates_nothing_after_first_call(self):
        left, right = _q_states(seed=5, n=32)
        ws = Workspace()
        kw = dict(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN)
        first = trunc.hllc_flux(left, right, GAMMA, ws=ws, **kw)
        first = {c: first[c].copy() for c in first}
        misses = ws.misses
        assert misses > 0
        again = trunc.hllc_flux(left, right, GAMMA, ws=ws, **kw)
        assert ws.misses == misses  # steady state: zero allocations
        assert ws.hits > 0
        for comp in COMPONENTS:
            np.testing.assert_array_equal(again[comp], first[comp])

    def test_poisoned_workspace_does_not_leak_into_results(self):
        left, right = _q_states(seed=9)
        ws = Workspace()
        kw = dict(fmt=E8M10, rounding=RoundingMode.UP)
        clean = trunc.hll_flux(left, right, GAMMA, ws=ws, **kw)
        clean = {c: clean[c].copy() for c in clean}
        for buf in ws._buffers.values():
            buf.fill(np.nan if buf.dtype == np.float64 else True)
        poisoned = trunc.hll_flux(left, right, GAMMA, ws=ws, **kw)
        for comp in COMPONENTS:
            np.testing.assert_array_equal(poisoned[comp], clean[comp])

    def test_inputs_never_written(self):
        left, right = _q_states(seed=13, n=24)
        snap = {("L", k): v.copy() for k, v in left.items()}
        snap.update({("R", k): v.copy() for k, v in right.items()})
        for name in trunc.TRUNC_SOLVERS:
            trunc.TRUNC_SOLVERS[name](left, right, GAMMA, ws=Workspace(),
                                      fmt=E8M10, rounding=RoundingMode.DOWN)
        for k, v in left.items():
            np.testing.assert_array_equal(v, snap[("L", k)])
        for k, v in right.items():
            np.testing.assert_array_equal(v, snap[("R", k)])

    def test_weno5_edge_out_may_alias_an_input(self):
        rng = np.random.default_rng(21)
        kw = dict(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN)
        rows = [np.asarray(quantize(rng.normal(size=32) + 2.0, E8M10)) for _ in range(5)]
        expected = trunc.weno5_edge(*rows, **kw)
        aliased = rows[2].copy()
        got = trunc.weno5_edge(rows[0], rows[1], aliased, rows[3], rows[4],
                               ws=Workspace(), key=("alias",), out=aliased, **kw)
        assert got is aliased
        np.testing.assert_array_equal(got, expected)


def _sod_workload(**overrides):
    from repro.workloads import create_workload

    cfg = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
               t_end=0.01, rk_stages=1)
    cfg.update(overrides)
    return create_workload("sod", **cfg)


class TestTruncAdvance:
    """The fused truncating block update against the instrumented path."""

    @pytest.fixture(scope="class")
    def grid(self):
        return _sod_workload(reconstruction="weno5").build_grid()

    @pytest.mark.parametrize("scheme", ["pcm", "plm", "weno5"])
    @pytest.mark.parametrize("riemann", ["hll", "hllc", "hlle"])
    def test_advance_block_bitwise(self, grid, scheme, riemann):
        solver = HydroSolver(reconstruction=scheme, riemann=riemann, rk_stages=1)
        block = grid.blocks()[0]
        slow = solver.advance_block(block, 1e-4, _instrumented())
        fast = solver.advance_block(block, 1e-4, _fast())
        for name in slow:
            np.testing.assert_array_equal(fast[name], slow[name], err_msg=name)

    @pytest.mark.parametrize("rounding", ROUNDINGS)
    def test_advance_block_all_roundings(self, grid, rounding):
        solver = HydroSolver(rk_stages=1)
        block = grid.blocks()[0]
        slow = solver.advance_block(block, 1e-4, _instrumented(BF16, rounding))
        fast = solver.advance_block(block, 1e-4, _fast(BF16, rounding))
        for name in slow:
            np.testing.assert_array_equal(fast[name], slow[name], err_msg=name)

    def test_advance_block_with_gravity_bitwise(self, grid):
        solver = HydroSolver(rk_stages=1, gravity=(0.3, -1.0))
        block = grid.blocks()[0]
        slow = solver.advance_block(block, 1e-4, _instrumented())
        fast = solver.advance_block(block, 1e-4, _fast())
        for name in slow:
            np.testing.assert_array_equal(fast[name], slow[name], err_msg=name)

    def test_substep_batched_vs_unbatched_vs_instrumented(self):
        results = {}
        for label, batch, scratch, ctx in (
            ("instrumented", False, False, _instrumented()),
            ("trunc-perblock", False, False, _fast()),
            ("trunc-noscratch", True, False, _fast()),
            ("trunc-batched", True, True, _fast()),
        ):
            workload = _sod_workload(max_level=3)
            grid = workload.build_grid()
            solver = HydroSolver(rk_stages=1, batch_blocks=batch, scratch=scratch)
            solver._substep(grid, 5e-4, lambda module, level=None, max_level=None: ctx)
            results[label] = {
                key: {v: grid.leaves[key].interior_view(v).copy()
                      for v in ("dens", "velx", "vely", "pres")}
                for key in grid.sorted_keys()
            }
        base = results["instrumented"]
        for label, states in results.items():
            assert set(states) == set(base), label
            for key in base:
                for var in base[key]:
                    np.testing.assert_array_equal(
                        states[key][var], base[key][var], err_msg=f"{label}: {key} {var}"
                    )

    def test_mixed_format_levels_batch_by_signature(self):
        """Per-level formats must never share a batch group: the group
        signature carries (format, rounding), so a provider handing
        different formats to different levels stays bitwise equal to the
        per-block loop."""

        def provider_for(runtime_free=True):
            ctxs = {
                True: _fast(E8M10, RoundingMode.NEAREST_EVEN),
                False: _fast(BF16, RoundingMode.UP),
            }
            return lambda module, level=None, max_level=None: ctxs[(level or 1) <= 2]

        states = {}
        for label, batch in (("batched", True), ("perblock", False)):
            workload = _sod_workload(max_level=3)
            grid = workload.build_grid()
            solver = HydroSolver(rk_stages=1, batch_blocks=batch)
            solver._substep(grid, 5e-4, provider_for())
            states[label] = {
                key: grid.leaves[key].interior_view("dens").copy()
                for key in grid.sorted_keys()
            }
        assert set(states["batched"]) == set(states["perblock"])
        for key in states["perblock"]:
            np.testing.assert_array_equal(
                states["batched"][key], states["perblock"][key], err_msg=str(key)
            )

    def test_workspace_steady_state_no_allocations(self):
        workload = _sod_workload()
        grid = workload.build_grid()
        solver = workload.build_solver()
        assert solver._workspace is not None
        ctx = _fast()
        provider = lambda module, level=None, max_level=None: ctx
        solver._substep(grid, 1e-4, provider)
        misses = solver._workspace.misses
        assert misses > 0
        solver._substep(grid, 1e-4, provider)
        assert solver._workspace.misses == misses
        assert solver._workspace.hits > 0

    def test_env_knobs_still_bitwise(self, monkeypatch):
        def run_sod():
            workload = _sod_workload(t_end=0.008)
            rt = RaptorRuntime()
            policy = GlobalPolicy(
                TruncationConfig(targets={64: E8M10}, count_ops=False,
                                 track_memory=False),
                runtime=rt, plane="auto",
            )
            return workload.run(policy=policy, runtime=rt)

        reference = run_sod()
        monkeypatch.setenv("RAPTOR_FAST_NO_SCRATCH", "1")
        monkeypatch.setenv("RAPTOR_FAST_NO_BATCH", "1")
        plain = run_sod()
        assert plain.time == reference.time
        for key in reference.state:
            np.testing.assert_array_equal(plain.state[key], reference.state[key],
                                          err_msg=key)


# ---------------------------------------------------------------------------
# whole workloads across planes and engine entry points
# ---------------------------------------------------------------------------
class TestTruncWorkloadEquivalence:
    @pytest.mark.parametrize("count_ops", [True, False])
    @pytest.mark.parametrize("rounding",
                             [RoundingMode.NEAREST_EVEN, RoundingMode.UP])
    def test_sod_states_and_counters_identical_across_planes(self, count_ops, rounding):
        def run(plane):
            workload = _sod_workload(t_end=0.008)
            rt = RaptorRuntime()
            policy = GlobalPolicy(
                TruncationConfig(targets={64: E8M10}, rounding=rounding,
                                 count_ops=count_ops, track_memory=count_ops),
                runtime=rt, plane=plane,
            )
            return workload.run(policy=policy, runtime=rt)

        instrumented = run("instrumented")
        auto = run("auto")
        assert set(auto.state) == set(instrumented.state)
        for key in instrumented.state:
            np.testing.assert_array_equal(auto.state[key], instrumented.state[key],
                                          err_msg=key)
        # byte-identical counters: counting policies stay instrumented
        # under auto; non-counting ones record nothing on either plane
        assert auto.snapshot() == instrumented.snapshot()

    def test_run_sweep_identical_with_and_without_point_counters(self):
        from repro.experiments import PolicySpec, SweepSpec, run_sweep

        def spec(count, plane="auto", backend="serial"):
            return SweepSpec(
                workloads=["sod"],
                formats=["e8m10", "bf16"],
                policies=[PolicySpec.everywhere(modules=("hydro",))],
                workload_configs={"sod": dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                                              max_level=2, t_end=0.005, rk_stages=1)},
                variables=("dens",),
                count_point_ops=count,
                plane=plane,
                backend=backend,
            )

        counting = run_sweep(spec(True))
        silent = run_sweep(spec(False))
        silent_instr = run_sweep(spec(False, plane="instrumented"))
        for a, b in zip(counting.points, silent.points):
            assert a.errors == b.errors  # bitwise: norms are exact floats
        for a, b in zip(silent.points, silent_instr.points):
            assert a.errors == b.errors
        assert all(p.ops["truncated"] > 0 for p in counting.points)
        assert all(p.ops["truncated"] == 0 for p in silent.points)

    def test_run_sweep_process_backend_matches_serial(self):
        from repro.experiments import PolicySpec, SweepSpec, run_sweep

        def spec(backend):
            return SweepSpec(
                workloads=["sod"],
                formats=["bf16"],
                policies=[PolicySpec.everywhere(modules=("hydro",))],
                workload_configs={"sod": dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                                              max_level=2, t_end=0.005, rk_stages=1)},
                variables=("dens",),
                count_point_ops=False,
                backend=backend,
            )

        serial = run_sweep(spec("serial"))
        process = run_sweep(spec("process"))
        for a, b in zip(serial.points, process.points):
            assert a.errors == b.errors

    def test_find_cliff_identical_with_and_without_probe_counters(self):
        from repro.experiments import find_cliff

        kwargs = dict(
            config_kwargs=dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2,
                               max_level=2, t_end=0.005, rk_stages=1),
            min_man_bits=4, max_man_bits=12, exp_bits=8,
        )
        counting = find_cliff("sod", **kwargs, count_ops=True)
        silent = find_cliff("sod", **kwargs, count_ops=False)
        assert counting.cliff_man_bits == silent.cliff_man_bits
        assert [(e.man_bits, e.error) for e in counting.evaluations] == [
            (e.man_bits, e.error) for e in silent.evaluations
        ]
