"""Bit-identity tests for the fused flux pipeline (repro.kernels.flux)
and the scratch-workspace machinery (repro.kernels.scratch).

The load-bearing contracts:

* every fused EOS helper, wave-speed estimate and Riemann solver is
  **bitwise identical** to its instrumented op-by-op twin on binary64 data;
* threading a :class:`Workspace` (``out=`` chaining) through any fused
  kernel never changes a single bit, reuses its buffers across calls, and
  never writes into caller-owned arrays;
* the batched ``(nblocks, nx, ny)`` block stepping is bit-identical to the
  per-block loop, and all three Riemann solver names dispatch correctly on
  both kernel planes.
"""
import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FullPrecisionContext, RaptorRuntime
from repro.hydro.eos import GammaLawEOS
from repro.hydro.riemann import (
    SOLVERS,
    _einfeldt_wave_speeds,
    _wave_speeds,
    hll_flux,
    hllc_flux,
    hlle_flux,
)
from repro.hydro.solver import HydroSolver
from repro.kernels import FastPlaneContext, flux, fused
from repro.kernels.scratch import Workspace

GAMMA = 1.4
COMPONENTS = ("dens", "momn", "momt", "ener")


def _slow():
    return FullPrecisionContext(runtime=RaptorRuntime())


positive_arrays = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False), min_size=1, max_size=12
).map(lambda xs: np.asarray(xs, dtype=np.float64))

velocity_lists = st.lists(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=1, max_size=12
)


@st.composite
def face_states(draw):
    """A pair of physically plausible left/right primitive face states."""
    n = draw(st.integers(min_value=1, max_value=12))
    arr = lambda lo, hi: np.asarray(
        draw(st.lists(st.floats(min_value=lo, max_value=hi, allow_nan=False),
                      min_size=n, max_size=n)),
        dtype=np.float64,
    )
    mk = lambda: {
        "dens": arr(1e-3, 1e3),
        "velx": arr(-10.0, 10.0),
        "vely": arr(-10.0, 10.0),
        "pres": arr(1e-3, 1e3),
    }
    return mk(), mk()


class TestFusedEOSHelpers:
    @given(dens=positive_arrays, pres=positive_arrays)
    @settings(max_examples=50, deadline=None)
    def test_sound_speed_and_internal_energy(self, dens, pres):
        n = min(dens.size, pres.size)
        dens, pres = dens[:n], pres[:n]
        eos = GammaLawEOS(gamma=GAMMA)
        slow = _slow()
        np.testing.assert_array_equal(
            flux.eos_sound_speed(dens, pres, GAMMA), eos.sound_speed(dens, pres, slow)
        )
        np.testing.assert_array_equal(
            flux.eos_internal_energy(dens, pres, GAMMA),
            eos.internal_energy_from_pressure(dens, pres, slow),
        )
        np.testing.assert_array_equal(
            flux.eos_pressure_from_internal_energy(dens, pres, GAMMA, eos.pressure_floor),
            eos.pressure_from_internal_energy(dens, pres, slow),
        )

    @given(state=face_states())
    @settings(max_examples=50, deadline=None)
    def test_total_energy_and_pressure_recovery(self, state):
        left, _ = state
        eos = GammaLawEOS(gamma=GAMMA)
        slow = _slow()
        dens, velx, vely, pres = (left[k] for k in ("dens", "velx", "vely", "pres"))
        ener_slow = eos.total_energy(dens, velx, vely, pres, slow)
        np.testing.assert_array_equal(
            flux.eos_total_energy(dens, velx, vely, pres, GAMMA), ener_slow
        )
        momx = dens * velx
        momy = dens * vely
        np.testing.assert_array_equal(
            flux.eos_pressure_from_total_energy(
                dens, momx, momy, ener_slow, GAMMA, eos.pressure_floor, eos.density_floor
            ),
            eos.pressure_from_total_energy(dens, momx, momy, ener_slow, slow),
        )

    def test_gamma_law_eos_dispatches_fused_on_fast_plane(self):
        """Every GammaLawEOS helper rides the fused twin under a fused
        context — same bits as the instrumented evaluation."""
        rng = np.random.default_rng(7)
        dens = rng.uniform(0.1, 2.0, 32)
        pres = rng.uniform(0.1, 2.0, 32)
        velx = rng.normal(size=32)
        vely = rng.normal(size=32)
        eos = GammaLawEOS()
        slow, fast = _slow(), FastPlaneContext()
        pairs = [
            (eos.sound_speed(dens, pres, slow), eos.sound_speed(dens, pres, fast)),
            (eos.internal_energy_from_pressure(dens, pres, slow),
             eos.internal_energy_from_pressure(dens, pres, fast)),
            (eos.pressure_from_internal_energy(dens, pres, slow),
             eos.pressure_from_internal_energy(dens, pres, fast)),
            (eos.total_energy(dens, velx, vely, pres, slow),
             eos.total_energy(dens, velx, vely, pres, fast)),
            (eos.pressure_from_total_energy(dens, dens * velx, dens * vely, pres, slow),
             eos.pressure_from_total_energy(dens, dens * velx, dens * vely, pres, fast)),
        ]
        for expected, got in pairs:
            np.testing.assert_array_equal(got, expected)


class TestFusedWaveSpeeds:
    @given(state=face_states())
    @settings(max_examples=50, deadline=None)
    def test_davis_estimates_bitwise(self, state):
        left, right = state
        eos = GammaLawEOS(gamma=GAMMA)
        sl_s, sr_s = _wave_speeds(left, right, eos, _slow())
        for ws in (None, Workspace()):
            sl_f, sr_f = flux.davis_wave_speeds(left, right, GAMMA, ws=ws)
            np.testing.assert_array_equal(sl_f, sl_s)
            np.testing.assert_array_equal(sr_f, sr_s)

    @given(state=face_states())
    @settings(max_examples=50, deadline=None)
    def test_einfeldt_estimates_bitwise(self, state):
        left, right = state
        eos = GammaLawEOS(gamma=GAMMA)
        sl_s, sr_s = _einfeldt_wave_speeds(left, right, eos, _slow())
        for ws in (None, Workspace()):
            sl_f, sr_f = flux.einfeldt_wave_speeds(left, right, GAMMA, ws=ws)
            np.testing.assert_array_equal(sl_f, sl_s)
            np.testing.assert_array_equal(sr_f, sr_s)


class TestFusedRiemannSolvers:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    @given(state=face_states())
    @settings(max_examples=40, deadline=None)
    def test_fluxes_bitwise_with_and_without_workspace(self, name, state):
        left, right = state
        eos = GammaLawEOS(gamma=GAMMA)
        expected = SOLVERS[name](left, right, eos, _slow())
        for ws in (None, Workspace()):
            got = flux.FUSED_SOLVERS[name](left, right, GAMMA, ws=ws)
            for comp in COMPONENTS:
                np.testing.assert_array_equal(got[comp], expected[comp], err_msg=f"{name}:{comp}")

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_solver_names_dispatch_on_both_planes(self, name):
        """All three registered solver names produce identical fluxes
        through the instrumented context and the fused fast plane."""
        rng = np.random.default_rng(11)
        mk = lambda: {
            "dens": rng.uniform(0.1, 2.0, 48),
            "velx": rng.normal(0, 2, 48),
            "vely": rng.normal(0, 2, 48),
            "pres": rng.uniform(0.1, 2.0, 48),
        }
        left, right = mk(), mk()
        eos = GammaLawEOS()
        slow_flux = SOLVERS[name](left, right, eos, _slow())
        fast_flux = SOLVERS[name](left, right, eos, FastPlaneContext())
        for comp in COMPONENTS:
            np.testing.assert_array_equal(fast_flux[comp], slow_flux[comp], err_msg=comp)

    def test_hlle_is_a_distinct_solver(self):
        """hlle must no longer alias hll: the Einfeldt wave speeds give a
        genuinely different (less diffusive) flux."""
        assert SOLVERS["hlle"] is hlle_flux
        assert SOLVERS["hll"] is hll_flux
        assert SOLVERS["hllc"] is hllc_flux
        assert len({id(fn) for fn in SOLVERS.values()}) == 3
        rng = np.random.default_rng(3)
        mk = lambda: {
            "dens": rng.uniform(0.5, 2.0, 64),
            "velx": rng.normal(0, 1, 64),
            "vely": rng.normal(0, 1, 64),
            "pres": rng.uniform(0.5, 2.0, 64),
        }
        left, right = mk(), mk()
        eos = GammaLawEOS()
        a = hll_flux(left, right, eos, _slow())
        b = hlle_flux(left, right, eos, _slow())
        assert any(not np.array_equal(a[c], b[c]) for c in COMPONENTS)

    def test_workspace_reuse_allocates_nothing_after_first_call(self):
        rng = np.random.default_rng(5)
        mk = lambda: {
            "dens": rng.uniform(0.1, 2.0, 32),
            "velx": rng.normal(0, 1, 32),
            "vely": rng.normal(0, 1, 32),
            "pres": rng.uniform(0.1, 2.0, 32),
        }
        left, right = mk(), mk()
        ws = Workspace()
        first = flux.hllc_flux(left, right, GAMMA, ws=ws)
        first = {c: first[c].copy() for c in first}
        misses_after_first = ws.misses
        assert misses_after_first > 0
        again = flux.hllc_flux(left, right, GAMMA, ws=ws)
        assert ws.misses == misses_after_first  # steady state: zero allocations
        assert ws.hits > 0
        for comp in COMPONENTS:
            np.testing.assert_array_equal(again[comp], first[comp])

    def test_poisoned_workspace_does_not_leak_into_results(self):
        """Scratch contents must never influence a kernel's output."""
        rng = np.random.default_rng(9)
        mk = lambda: {
            "dens": rng.uniform(0.1, 2.0, 16),
            "velx": rng.normal(0, 1, 16),
            "vely": rng.normal(0, 1, 16),
            "pres": rng.uniform(0.1, 2.0, 16),
        }
        left, right = mk(), mk()
        ws = Workspace()
        clean = flux.hll_flux(left, right, GAMMA, ws=ws)
        clean = {c: clean[c].copy() for c in clean}
        for buf in ws._buffers.values():
            buf.fill(np.nan if buf.dtype == np.float64 else True)
        poisoned = flux.hll_flux(left, right, GAMMA, ws=ws)
        for comp in COMPONENTS:
            np.testing.assert_array_equal(poisoned[comp], clean[comp])

    def test_inputs_never_written(self):
        rng = np.random.default_rng(13)
        mk = lambda: {
            "dens": rng.uniform(0.1, 2.0, 24),
            "velx": rng.normal(0, 1, 24),
            "vely": rng.normal(0, 1, 24),
            "pres": rng.uniform(0.1, 2.0, 24),
        }
        left, right = mk(), mk()
        snap = {("L", k): v.copy() for k, v in left.items()}
        snap.update({("R", k): v.copy() for k, v in right.items()})
        for name in SOLVERS:
            flux.FUSED_SOLVERS[name](left, right, GAMMA, ws=Workspace())
        for k, v in left.items():
            np.testing.assert_array_equal(v, snap[("L", k)])
        for k, v in right.items():
            np.testing.assert_array_equal(v, snap[("R", k)])


finite_arrays = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=14, max_size=20
).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestScratchStencils:
    """out=-reusing reconstruction stencils: bit-identical, aliasing-safe."""

    @pytest.mark.parametrize("scheme", sorted(fused.FUSED_SCHEMES))
    @given(u=finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_stencils_with_workspace_bitwise(self, scheme, u):
        field = np.stack([np.roll(u, k) + 0.1 * k for k in range(14)])
        ng = 3
        for axis in (0, 1):
            nn = field.shape[axis] - 2 * ng - 1
            assert nn >= 7
            plain_l, plain_r = fused.FUSED_SCHEMES[scheme](field, axis, ng, nn)
            ws = Workspace()
            ws_l, ws_r = fused.FUSED_SCHEMES[scheme](field, axis, ng, nn, ws=ws, key=("t",))
            np.testing.assert_array_equal(ws_l, plain_l)
            np.testing.assert_array_equal(ws_r, plain_r)

    def test_weno5_edge_out_may_alias_an_input(self):
        """The final division reads only scratch, so ``out=`` may alias any
        input array — the aliasing-safety contract of the stencils."""
        rng = np.random.default_rng(21)
        rows = [rng.normal(size=32) + 2.0 for _ in range(5)]
        expected = fused.weno5_edge(*rows)
        aliased_input = rows[2].copy()
        got = fused.weno5_edge(rows[0], rows[1], aliased_input, rows[3], rows[4],
                               ws=Workspace(), key=("alias",), out=aliased_input)
        assert got is aliased_input
        np.testing.assert_array_equal(got, expected)

    def test_where_helper_aliasing(self):
        rng = np.random.default_rng(22)
        a, b = rng.normal(size=16), rng.normal(size=16)
        cond = a > 0
        expected = np.where(cond, a, b)
        # out is b: allowed fast path
        got = fused.where(cond, a, b.copy(), out=(out_b := b.copy()))
        np.testing.assert_array_equal(fused.where(cond, a, out_b, out=out_b), expected)
        np.testing.assert_array_equal(got, expected)
        # out overlaps a: falls back to an allocating where
        a2 = a.copy()
        np.testing.assert_array_equal(fused.where(cond, a2, b, out=a2), expected)
        # overlapping *views* are detected too — on either operand
        base = np.concatenate([a, b])
        np.testing.assert_array_equal(
            fused.where(cond, base[:16], b, out=base[8:24]), expected
        )
        base = np.concatenate([a, b])
        expected_b_overlap = np.where(cond, a, base[:16])
        np.testing.assert_array_equal(
            fused.where(cond, a, base[:16], out=base[8:24]), expected_b_overlap
        )

    def test_shift_handles_batched_arrays(self):
        """The stencil shift addresses the trailing two dims, so stacked
        blocks reconstruct exactly like each slice alone."""
        rng = np.random.default_rng(23)
        stack = rng.normal(size=(3, 14, 14)) + 2.0
        for scheme in ("plm", "weno5"):
            for axis in (0, 1):
                l_b, r_b = fused.FUSED_SCHEMES[scheme](stack, axis, 3, 7)
                for i in range(stack.shape[0]):
                    l_i, r_i = fused.FUSED_SCHEMES[scheme](stack[i], axis, 3, 7)
                    np.testing.assert_array_equal(l_b[i], l_i)
                    np.testing.assert_array_equal(r_b[i], r_i)


class TestWorkspace:
    def test_keying_and_stats(self):
        ws = Workspace()
        a = ws.out(("x",), (4, 4))
        b = ws.out(("x",), (4, 4))
        c = ws.out(("y",), (4, 4))
        d = ws.out(("x",), (4, 5))
        e = ws.out(("x",), (4, 4), bool)
        assert a is b and a is not c and a is not d
        assert e.dtype == np.bool_
        assert ws.misses == 4 and ws.hits == 1
        assert ws.n_buffers == 4
        assert ws.nbytes > 0
        ws.clear()
        assert ws.n_buffers == 0

    def test_pickle_and_deepcopy_drop_buffers(self):
        ws = Workspace()
        ws.out(("k",), (64, 64))
        assert ws.n_buffers == 1
        assert pickle.loads(pickle.dumps(ws)).n_buffers == 0
        assert copy.deepcopy(ws).n_buffers == 0

    def test_trim_drops_only_stale_buffers(self):
        ws = Workspace(max_bytes=4 * 8 * 100)  # room for four 100-element buffers
        for i in range(4):
            ws.out(("grow", i), (100,))
        assert not ws.trim() and ws.n_buffers == 4  # at the cap: kept
        live = ws.out(("grow", 4), (100,))  # over the cap, but fresh
        assert ws.trim() and ws.trims == 1
        # the four buffers untouched since the previous trim are gone; the
        # fresh one survives (an oversized working set is never thrashed)
        assert ws.n_buffers == 1
        assert ws.out(("grow", 4), (100,)) is live

    def test_trim_never_thrashes_a_live_working_set(self):
        ws = Workspace(max_bytes=1)
        bufs = [ws.out(("live", i), (100,)) for i in range(3)]
        assert not ws.trim()  # everything fresh: nothing to drop
        # the working set stays resident across trims as long as it is used
        for _ in range(3):
            for i in range(3):
                assert ws.out(("live", i), (100,)) is bufs[i]
            ws.trim()
        assert ws.n_buffers == 3 and ws.trims == 0

    def test_regridding_drops_stale_batch_families(self):
        """When refinement changes a level's fused group size, the buffer
        family of the old size goes stale and is trimmed — the pool tracks
        the current working set, not the history of every size ever seen."""
        workload = _sod_workload(max_level=3)
        grid = workload.build_grid()
        solver = workload.build_solver()
        solver._workspace.max_bytes = 1  # every family counts as over-cap
        ctx = FastPlaneContext()
        provider = lambda module, level=None, max_level=None: ctx

        solver._substep(grid, 1e-4, provider)
        before = solver._workspace.n_buffers
        # change the finest level's group size: its old stacked shape
        # becomes stale after one more substep and is dropped on the next
        grid.refine_block(grid.sorted_keys()[0])
        grid.fill_guard_cells()
        solver._substep(grid, 1e-4, provider)
        solver._substep(grid, 1e-4, provider)
        assert solver._workspace.trims > 0
        assert solver._workspace.n_buffers <= before + 2  # stacks for 2 changed levels

    def test_hostile_trimming_schedule_stays_bitwise(self):
        """max_bytes=1 trims every stale buffer before every substep — the
        most hostile schedule possible must not change a single bit."""

        def evolve(ctx, max_bytes=None):
            workload = _sod_workload(max_level=3, t_end=0.02)
            grid = workload.build_grid()
            solver = workload.build_solver()
            if max_bytes is not None:
                solver._workspace.max_bytes = max_bytes
            provider = lambda module, level=None, max_level=None: ctx
            solver.evolve(grid, t_end=0.02, provider=provider, regrid_interval=2)
            return solver, {
                key: grid.leaves[key].interior_view("dens").copy()
                for key in grid.sorted_keys()
            }

        trimmy, trimmed_state = evolve(FastPlaneContext(), max_bytes=1)
        # bounded by the current working set (levels currently present),
        # not by the history of every group size ever seen
        assert trimmy._workspace.nbytes <= 8 * 2 ** 20
        _, instrumented_state = evolve(_slow())
        assert set(trimmed_state) == set(instrumented_state)
        for key in instrumented_state:
            np.testing.assert_array_equal(
                trimmed_state[key], instrumented_state[key], err_msg=str(key)
            )


def _sod_workload(**overrides):
    from repro.workloads import create_workload

    cfg = dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
               t_end=0.01, rk_stages=1)
    cfg.update(overrides)
    return create_workload("sod", **cfg)


class TestFusedAdvance:
    """The fully fused block update against the instrumented advance_block."""

    @pytest.fixture(scope="class")
    def grid_and_solver(self):
        workload = _sod_workload(reconstruction="weno5")
        return workload.build_grid(), workload.build_solver()

    @pytest.mark.parametrize("scheme", ["pcm", "plm", "weno5"])
    @pytest.mark.parametrize("riemann", ["hll", "hllc", "hlle"])
    def test_advance_block_bitwise(self, grid_and_solver, scheme, riemann):
        grid, _ = grid_and_solver
        solver = HydroSolver(reconstruction=scheme, riemann=riemann, rk_stages=1)
        block = grid.blocks()[0]
        slow = solver.advance_block(block, 1e-4, _slow())
        fast = solver.advance_block(block, 1e-4, FastPlaneContext())
        for name in slow:
            np.testing.assert_array_equal(fast[name], slow[name], err_msg=name)

    def test_advance_block_with_gravity_bitwise(self, grid_and_solver):
        grid, _ = grid_and_solver
        solver = HydroSolver(rk_stages=1, gravity=(0.3, -1.0))
        block = grid.blocks()[0]
        slow = solver.advance_block(block, 1e-4, _slow())
        fast = solver.advance_block(block, 1e-4, FastPlaneContext())
        for name in slow:
            np.testing.assert_array_equal(fast[name], slow[name], err_msg=name)

    def test_batched_advance_matches_per_block(self, grid_and_solver):
        grid, solver = grid_and_solver
        blocks = [b for b in grid.blocks() if b.level == grid.finest_level]
        assert len(blocks) > 1
        stacked = {
            name: np.stack([b.data[name] for b in blocks])
            for name in ("dens", "velx", "vely", "pres")
        }
        first = blocks[0]
        batched = solver._advance_fused(
            stacked, 1e-4, first.dx, first.dy, first.ng, first.nxb, first.nyb
        )
        for i, block in enumerate(blocks):
            single = solver.advance_block(block, 1e-4, FastPlaneContext())
            for name in single:
                np.testing.assert_array_equal(
                    batched[name][i], single[name], err_msg=f"block {i}: {name}"
                )

    def test_substep_batched_vs_unbatched_vs_instrumented(self):
        """One full substep: batched fast plane == per-block fast plane ==
        instrumented, on a multi-level grid."""
        results = {}
        for label, batch, scratch, plane in (
            ("instrumented", False, False, "instrumented"),
            ("fast-perblock", False, False, "fast"),
            ("fast-noscratch", True, False, "fast"),
            ("fast-batched", True, True, "fast"),
        ):
            workload = _sod_workload(max_level=3)
            grid = workload.build_grid()
            solver = HydroSolver(rk_stages=1, batch_blocks=batch, scratch=scratch)
            ctx = FastPlaneContext() if plane == "fast" else _slow()
            solver._substep(grid, 5e-4, lambda module, level=None, max_level=None: ctx)
            results[label] = {
                key: {v: grid.leaves[key].interior_view(v).copy()
                      for v in ("dens", "velx", "vely", "pres")}
                for key in grid.sorted_keys()
            }
        base = results["instrumented"]
        for label, states in results.items():
            assert set(states) == set(base), label
            for key in base:
                for var in base[key]:
                    np.testing.assert_array_equal(
                        states[key][var], base[key][var], err_msg=f"{label}: {key} {var}"
                    )

    def test_workspace_steady_state_no_allocations(self):
        workload = _sod_workload()
        grid = workload.build_grid()
        solver = workload.build_solver()
        assert solver._workspace is not None
        ctx = FastPlaneContext()
        provider = lambda module, level=None, max_level=None: ctx
        solver._substep(grid, 1e-4, provider)
        misses = solver._workspace.misses
        assert misses > 0
        solver._substep(grid, 1e-4, provider)
        assert solver._workspace.misses == misses
        assert solver._workspace.hits > 0


class TestEnvironmentKnobs:
    def test_env_switches_disable_scratch_and_batching(self, monkeypatch):
        monkeypatch.setenv("RAPTOR_FAST_NO_SCRATCH", "1")
        monkeypatch.setenv("RAPTOR_FAST_NO_BATCH", "1")
        solver = HydroSolver()
        assert solver._workspace is None
        assert not solver.batch_blocks
        from repro.incomp.solver import BubbleSolver

        assert BubbleSolver()._workspace is None

    def test_defaults_enable_scratch_and_batching(self, monkeypatch):
        monkeypatch.delenv("RAPTOR_FAST_NO_SCRATCH", raising=False)
        monkeypatch.delenv("RAPTOR_FAST_NO_BATCH", raising=False)
        solver = HydroSolver()
        assert solver._workspace is not None
        assert solver.batch_blocks

    def test_disabled_paths_still_bitwise(self, monkeypatch):
        reference = _sod_workload().reference(plane="fast")
        monkeypatch.setenv("RAPTOR_FAST_NO_SCRATCH", "1")
        monkeypatch.setenv("RAPTOR_FAST_NO_BATCH", "1")
        plain = _sod_workload().reference(plane="fast")
        assert plain.time == reference.time
        for key in reference.state:
            np.testing.assert_array_equal(plain.state[key], reference.state[key], err_msg=key)


class TestBubbleWorkspacePath:
    def test_fused_weno_derivative_bitwise_with_workspace(self):
        from repro.incomp.solver import BubbleConfig, BubbleSolver

        cfg = BubbleConfig(nx=16, ny=24)
        fast_solver = BubbleSolver(cfg)
        slow_solver = BubbleSolver(cfg, plane="instrumented")
        assert fast_solver._workspace is not None
        rng = np.random.default_rng(31)
        f = rng.normal(size=(cfg.nx, cfg.ny))
        vel = rng.normal(size=(cfg.nx, cfg.ny))
        for axis, spacing in ((0, cfg.dx), (1, cfg.dy)):
            fast = fast_solver._weno5_derivative(f, vel, spacing, axis, fast_solver._full_ctx)
            slow = slow_solver._weno5_derivative(f, vel, spacing, axis, slow_solver._full_ctx)
            np.testing.assert_array_equal(
                fast_solver._full_ctx.asplain(fast), slow_solver._full_ctx.asplain(slow)
            )
