"""Differential bit-identity harness for the fused bubble plane
(repro.kernels.bubble + the BubbleSolver/LevelSet/PoissonSolver dispatch).

The load-bearing contracts:

* every fused twin (advection WENO5/upwind, diffusion, level-set
  advect/reinitialise, curvature/heaviside/delta/material fields) is
  **bitwise identical** to the op-by-op reference it replaces — with or
  without a workspace;
* every truncating twin rounds at exactly the op boundaries the optimized
  instrumented :class:`TruncatedContext` rounds at, property-tested across
  formats × rounding modes on representable inputs;
* the batched WENO5 pair reconstruction equals the per-axis, per-edge
  evaluation bit for bit (ufuncs are elementwise, rows are independent);
* workspace discipline: poisoned buffers never leak into results, kernel
  inputs are never written, and a warm ``BubbleSolver.step`` allocates
  nothing (``ws.misses`` stays flat through further steps, including a
  reinitialisation);
* the whole plane sits behind ``RAPTOR_FAST_NO_BUBBLE``: full runs —
  binary64 and truncated, both advection schemes — produce bit-identical
  ``velx``/``vely``/``pres``/``phi`` with the knob on or off, and the
  bubble workload matches through ``run_sweep`` / ``find_cliff`` with
  instrumented counters byte-identical either way.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FPFormat,
    FullPrecisionContext,
    GlobalPolicy,
    RaptorRuntime,
    RoundingMode,
    TruncatedContext,
    TruncationConfig,
    quantize,
)
from repro.core.selective import NoTruncationPolicy
from repro.incomp import BubbleConfig, BubbleSolver
from repro.incomp.levelset import LevelSet, upwind_derivative
from repro.kernels import FastPlaneContext, TruncFastPlaneContext
from repro.kernels import bubble as kbubble
from repro.kernels.scratch import Workspace, bubble_plane_enabled
from repro.workloads import create_workload

FORMATS = [
    FPFormat(exp_bits=8, man_bits=10),
    FPFormat(exp_bits=8, man_bits=7),
    FPFormat(exp_bits=5, man_bits=10),
]
FORMAT_IDS = [f"e{f.exp_bits}m{f.man_bits}" for f in FORMATS]
ROUNDINGS = list(RoundingMode.ALL)
E8M10 = FORMATS[0]

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)

TINY_BUBBLE = dict(spin_up_time=0.04, truncation_time=0.04, snapshot_times=(0.04,))


def small_config(**kwargs):
    defaults = dict(
        nx=20,
        ny=28,
        xlim=(-1.0, 1.0),
        ylim=(-1.0, 2.0),
        reynolds=350.0,
        bubble_diameter=0.8,
        advection_scheme="weno5",
        reinit_interval=3,
    )
    defaults.update(kwargs)
    return BubbleConfig(**defaults)


def make_solver(fused, monkeypatch, plane=None, **cfg_kw):
    """A solver built with the bubble plane on (``fused=True``) or off.

    The reference solver also runs on the instrumented kernel plane so its
    internal full-precision context is the classic op-by-op one.
    """
    if fused:
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
    else:
        monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", "1")
    solver = BubbleSolver(
        small_config(**cfg_kw), plane=plane or ("auto" if fused else "instrumented")
    )
    monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
    return solver


def seed_state(solver, seed, fmt=None, rounding=RoundingMode.NEAREST_EVEN):
    """Deterministic, physical-ish random state; quantised when a format is
    given so truncating twins see representable operands."""
    rng = np.random.default_rng(seed)
    shape = solver.velx.shape
    velx = rng.uniform(-0.5, 0.5, shape)
    vely = rng.uniform(-0.5, 0.5, shape)
    phi = solver.levelset.phi + rng.uniform(-0.05, 0.05, shape)
    if fmt is not None:
        velx = np.asarray(quantize(velx, fmt, rounding))
        vely = np.asarray(quantize(vely, fmt, rounding))
        phi = np.asarray(quantize(phi, fmt, rounding))
    solver.velx = velx.copy()
    solver.vely = vely.copy()
    solver.levelset.phi = phi.copy()
    return velx, vely, phi


def _full(**kw):
    return FullPrecisionContext(runtime=RaptorRuntime(), count_ops=False,
                                track_memory=False, **kw)


def _silent_trunc(fmt=E8M10, rounding=RoundingMode.NEAREST_EVEN):
    return TruncatedContext(fmt, runtime=RaptorRuntime(), rounding=rounding,
                            count_ops=False, track_memory=False)


def assert_bits(a, b, label=""):
    np.testing.assert_array_equal(np.asarray(a), np.asarray(b), err_msg=label)


def solver_state(solver):
    return {
        "velx": solver.velx.copy(),
        "vely": solver.vely.copy(),
        "pres": solver.pres.copy(),
        "phi": solver.levelset.phi.copy(),
    }


# ---------------------------------------------------------------------------
# level-set kernel twins
# ---------------------------------------------------------------------------
class TestLevelSetTwins:
    def _pair(self, seed, ws):
        rng = np.random.default_rng(seed)
        phi = rng.uniform(-0.4, 0.4, (12, 16))
        ref = LevelSet(phi, 0.05, 0.06)
        fused = LevelSet(phi, 0.05, 0.06).enable_fused(ws)
        return ref, fused

    @given(seed=seeds, with_ws=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_indicator_and_material_fields(self, seed, with_ws):
        ref, fused = self._pair(seed, Workspace() if with_ws else None)
        assert_bits(fused.heaviside(), ref.heaviside(), "heaviside")
        assert_bits(fused.delta(), ref.delta(), "delta")
        assert_bits(fused.density(1.0, 0.1), ref.density(1.0, 0.1), "density")
        assert_bits(fused.viscosity(2e-3, 4e-5), ref.viscosity(2e-3, 4e-5), "viscosity")
        assert_bits(fused.curvature(), ref.curvature(), "curvature")

    @given(seed=seeds, iterations=st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_reinitialize(self, seed, iterations):
        ref, fused = self._pair(seed, Workspace())
        ref.reinitialize(iterations=iterations)
        fused.reinitialize(iterations=iterations)
        assert_bits(fused.phi, ref.phi, f"reinit({iterations})")

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_advect_binary64(self, seed):
        ref, fused = self._pair(seed, Workspace())
        rng = np.random.default_rng(seed + 1)
        velx = rng.uniform(-0.5, 0.5, ref.phi.shape)
        vely = rng.uniform(-0.5, 0.5, ref.phi.shape)
        ref.advect(velx, vely, 1e-3, _full())
        fused.advect(velx, vely, 1e-3, FastPlaneContext())
        assert_bits(fused.phi, ref.phi, "levelset_advect")

    @given(seed=seeds, fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=60, deadline=None)
    def test_advect_truncated(self, seed, fmt, rounding):
        ref, fused = self._pair(seed, Workspace())
        rng = np.random.default_rng(seed + 1)
        velx = np.asarray(quantize(rng.uniform(-0.5, 0.5, ref.phi.shape), fmt, rounding))
        vely = np.asarray(quantize(rng.uniform(-0.5, 0.5, ref.phi.shape), fmt, rounding))
        ref.phi = np.asarray(quantize(ref.phi, fmt, rounding))
        fused.phi = ref.phi.copy()
        dt = 1e-3
        ref.advect(velx, vely, dt, _silent_trunc(fmt, rounding))
        fused.advect(velx, vely, dt, TruncFastPlaneContext(fmt, rounding=rounding))
        assert_bits(fused.phi, ref.phi, f"levelset_advect_trunc {fmt} {rounding}")

    def test_shared_upwind_derivative_modes(self):
        rng = np.random.default_rng(7)
        f = rng.uniform(-1.0, 1.0, (10, 12))
        vel = rng.uniform(-1.0, 1.0, (10, 12))
        ctx = _full()
        # wrap mode equals the historical np.roll expression
        got = upwind_derivative(f, vel, 0.1, 0, ctx, boundary="wrap")
        bwd = (f - np.roll(f, 1, 0)) * (1.0 / 0.1)
        fwd = (np.roll(f, -1, 0) - f) * (1.0 / 0.1)
        assert_bits(got, np.where(vel > 0.0, bwd, fwd), "wrap")
        # edge mode slices the caller's padding
        padded = np.pad(f, 1, mode="edge")
        got = upwind_derivative(f, vel, 0.1, 1, ctx, boundary="edge", padded=padded)
        bwd = (f - padded[1:-1, :-2]) * (1.0 / 0.1)
        fwd = (padded[1:-1, 2:] - f) * (1.0 / 0.1)
        assert_bits(got, np.where(vel > 0.0, bwd, fwd), "edge")
        with pytest.raises(ValueError, match="boundary"):
            upwind_derivative(f, vel, 0.1, 0, ctx, boundary="mirror")


# ---------------------------------------------------------------------------
# solver operator twins (advection / diffusion), binary64 and truncating
# ---------------------------------------------------------------------------
class TestSolverOperatorTwins:
    @pytest.mark.parametrize("scheme", ["weno5", "upwind"])
    @pytest.mark.parametrize("op", ["advection", "diffusion"])
    def test_binary64_operators(self, scheme, op, monkeypatch):
        ref = make_solver(False, monkeypatch, advection_scheme=scheme)
        fused = make_solver(True, monkeypatch, advection_scheme=scheme)
        seed_state(ref, 11)
        seed_state(fused, 11)
        for which, field in (("u", "velx"), ("v", "vely")):
            if op == "advection":
                a = ref.advection_term(getattr(ref, field), _full(), which)
                b = fused.advection_term(getattr(fused, field), FastPlaneContext(), which)
            else:
                mu_ref = ref.levelset.viscosity(2e-3, 4e-5)
                mu_fus = fused.levelset.viscosity(2e-3, 4e-5)
                assert_bits(mu_fus, mu_ref, "mu")
                a = ref.diffusion_term(getattr(ref, field), mu_ref, _full(), which)
                b = fused.diffusion_term(getattr(fused, field), mu_fus,
                                         FastPlaneContext(), which)
            assert_bits(b, a, f"{op}/{scheme}/{which}")

    @given(seed=seeds, fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=25, deadline=None)
    def test_truncated_weno5_advection(self, seed, fmt, rounding):
        self._truncated_operator("weno5", "advection", seed, fmt, rounding)

    @given(seed=seeds, fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=25, deadline=None)
    def test_truncated_upwind_advection(self, seed, fmt, rounding):
        self._truncated_operator("upwind", "advection", seed, fmt, rounding)

    @given(seed=seeds, fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=25, deadline=None)
    def test_truncated_diffusion(self, seed, fmt, rounding):
        self._truncated_operator("weno5", "diffusion", seed, fmt, rounding)

    def _truncated_operator(self, scheme, op, seed, fmt, rounding):
        monkeypatch = pytest.MonkeyPatch()
        try:
            ref = make_solver(False, monkeypatch, advection_scheme=scheme)
            fused = make_solver(True, monkeypatch, advection_scheme=scheme)
        finally:
            monkeypatch.undo()
        seed_state(ref, seed, fmt, rounding)
        seed_state(fused, seed, fmt, rounding)
        slow = _silent_trunc(fmt, rounding)
        fast = TruncFastPlaneContext(fmt, rounding=rounding)
        for which, field in (("u", "velx"), ("v", "vely")):
            if op == "advection":
                a = ref.advection_term(getattr(ref, field), slow, which)
                b = fused.advection_term(getattr(fused, field), fast, which)
            else:
                mu = np.asarray(quantize(ref.levelset.viscosity(2e-3, 4e-5), fmt, rounding))
                a = ref.diffusion_term(getattr(ref, field), mu, slow, which)
                b = fused.diffusion_term(getattr(fused, field), mu, fast, which)
            assert_bits(b, a, f"{op}/{scheme}/{which} {fmt} {rounding}")

    def test_pair_matches_per_axis_twins(self):
        """The batched (5, 8, nx, ny) WENO5 reconstruction equals the
        per-axis single calls bit for bit — rows are independent lanes."""
        rng = np.random.default_rng(3)
        f = rng.uniform(-1.0, 1.0, (14, 18))
        velx = rng.uniform(-1.0, 1.0, (14, 18))
        vely = rng.uniform(-1.0, 1.0, (14, 18))
        padded = np.pad(f, 3, mode="edge")
        ws = Workspace()
        fx, fy = kbubble.weno5_derivative_pair(padded, velx, vely, 0.1, 0.2, ws=ws, key=("p",))
        fx, fy = fx.copy(), fy.copy()
        sx = kbubble.weno5_derivative(padded, velx, 0.1, 0, ws=ws, key=("s", 0))
        sy = kbubble.weno5_derivative(padded, vely, 0.2, 1, ws=ws, key=("s", 1))
        assert_bits(fx, sx, "pair/x")
        assert_bits(fy, sy, "pair/y")

    @given(fmt=st.sampled_from(FORMATS), rounding=st.sampled_from(ROUNDINGS))
    @settings(max_examples=20, deadline=None)
    def test_pair_trunc_matches_per_axis_twins(self, fmt, rounding):
        rng = np.random.default_rng(5)
        f = np.asarray(quantize(rng.uniform(-1.0, 1.0, (12, 14)), fmt, rounding))
        velx = np.asarray(quantize(rng.uniform(-1.0, 1.0, (12, 14)), fmt, rounding))
        vely = np.asarray(quantize(rng.uniform(-1.0, 1.0, (12, 14)), fmt, rounding))
        padded = np.pad(f, 3, mode="edge")
        ws = Workspace()
        fx, fy = kbubble.weno5_derivative_pair_trunc(
            padded, velx, vely, 0.1, 0.2, ws=ws, key=("p",), fmt=fmt, rounding=rounding)
        fx, fy = fx.copy(), fy.copy()
        sx = kbubble.weno5_derivative_trunc(padded, velx, 0.1, 0, ws=ws, key=("s", 0),
                                            fmt=fmt, rounding=rounding)
        sy = kbubble.weno5_derivative_trunc(padded, vely, 0.2, 1, ws=ws, key=("s", 1),
                                            fmt=fmt, rounding=rounding)
        assert_bits(fx, sx, "pair_trunc/x")
        assert_bits(fy, sy, "pair_trunc/y")


# ---------------------------------------------------------------------------
# workspace discipline
# ---------------------------------------------------------------------------
class TestWorkspaceDiscipline:
    def test_steady_state_no_allocations(self, monkeypatch):
        """After one reinit cycle the warm step allocates nothing new from
        the workspace — misses stay flat across further full cycles."""
        solver = make_solver(True, monkeypatch)
        assert solver._workspace is not None
        for _ in range(solver.config.reinit_interval * 2):
            solver.step(1e-3)
        misses = solver._workspace.misses
        assert misses > 0
        for _ in range(solver.config.reinit_interval * 2):
            solver.step(1e-3)
        assert solver._workspace.misses == misses
        assert solver._workspace.hits > 0

    def test_poisoned_workspace_never_leaks(self, monkeypatch):
        """Every kernel must fully overwrite its scratch before reading it:
        NaN-poisoning all warm buffers cannot change a single bit."""
        a = make_solver(True, monkeypatch)
        b = make_solver(True, monkeypatch)
        for solver in (a, b):
            seed_state(solver, 23)
            for _ in range(4):
                solver.step(1e-3)
        for buf in a._workspace._buffers.values():
            if buf.dtype.kind == "f":
                buf.fill(np.nan)
            else:
                buf.fill(1)
        a.step(1e-3)
        b.step(1e-3)
        for key, val in solver_state(b).items():
            assert_bits(solver_state(a)[key], val, f"poisoned/{key}")

    def test_kernels_do_not_write_inputs(self):
        rng = np.random.default_rng(31)
        shape = (10, 12)
        phi = rng.uniform(-0.4, 0.4, shape)
        velx = rng.uniform(-0.5, 0.5, shape)
        vely = rng.uniform(-0.5, 0.5, shape)
        nu = np.abs(rng.uniform(0.1, 1.0, shape))
        fp = np.pad(phi, 1, mode="edge")
        nup = np.pad(nu, 1, mode="edge")
        padded3 = np.pad(phi, 3, mode="edge")
        ws = Workspace()
        originals = [x.copy() for x in (phi, velx, vely, nu, fp, nup, padded3)]
        kbubble.heaviside(phi, 0.1, ws=ws, key=("h",))
        kbubble.delta(phi, 0.1, ws=ws, key=("d",))
        kbubble.material_field(phi, 0.1, 1.0, 0.1, ws=ws, key=("m",))
        kbubble.curvature(phi, 0.05, 0.06, ws=ws, key=("c",))
        kbubble.gradient_axis(phi, 0.05, 0, ws=ws, key=("g",))
        kbubble.reinitialize(phi, 0.05, 0.06, iterations=3, ws=ws, key=("r",))
        kbubble.buoyancy(phi, 0.1, 1.0, 0.1, ws=ws, key=("b",))
        kbubble.surface_tension(phi, 0.1, 0.01, 0.05, 0.06, ws=ws, key=("st",))
        kbubble.levelset_advect(phi, velx, vely, 1e-3, 0.05, 0.06, ws=ws, key=("la",))
        kbubble.levelset_advect_trunc(phi, velx, vely, 1e-3, 0.05, 0.06, ws=ws,
                                      key=("lat",), fmt=E8M10)
        kbubble.weno5_derivative(padded3, velx, 0.05, 0, ws=ws, key=("w",))
        kbubble.weno5_derivative_pair(padded3, velx, vely, 0.05, 0.06, ws=ws, key=("wp",))
        kbubble.upwind_derivative(phi, velx, 0.05, 1, "edge", fp, ws=ws, key=("u",))
        kbubble.diffusion_term(phi, nu, fp, nup, 0.05, 0.06, ws=ws, key=("df",))
        kbubble.diffusion_term_trunc(phi, nu, fp, nup, 0.05, 0.06, ws=ws, key=("dft",),
                                     fmt=E8M10)
        for orig, arr in zip(originals, (phi, velx, vely, nu, fp, nup, padded3)):
            assert_bits(arr, orig, "input written")

    def test_twins_work_without_workspace(self):
        """ws=None falls back to fresh allocations, same bits."""
        rng = np.random.default_rng(37)
        phi = rng.uniform(-0.4, 0.4, (10, 12))
        velx = rng.uniform(-0.5, 0.5, (10, 12))
        vely = rng.uniform(-0.5, 0.5, (10, 12))
        with_ws = kbubble.levelset_advect(phi, velx, vely, 1e-3, 0.05, 0.06,
                                          ws=Workspace(), key=("a",))
        without = kbubble.levelset_advect(phi, velx, vely, 1e-3, 0.05, 0.06)
        assert_bits(with_ws, without, "ws=None")
        padded = np.pad(phi, 3, mode="edge")
        a = kbubble.weno5_derivative_pair(padded, velx, vely, 0.05, 0.06,
                                          ws=Workspace(), key=("p",))
        b = kbubble.weno5_derivative_pair(padded, velx, vely, 0.05, 0.06)
        assert_bits(a[0], b[0], "pair/ws=None/x")
        assert_bits(a[1], b[1], "pair/ws=None/y")


# ---------------------------------------------------------------------------
# the knob and whole-solver equivalence
# ---------------------------------------------------------------------------
class TestKnobAndFullRuns:
    def test_bubble_plane_enabled_parses_env(self, monkeypatch):
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        assert bubble_plane_enabled()
        for truthy in ("1", "true", "yes", "on"):
            monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", truthy)
            assert not bubble_plane_enabled()
        for falsy in ("", "0", "false"):
            monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", falsy)
            assert bubble_plane_enabled()

    def test_default_solver_rides_the_bubble_plane(self, monkeypatch):
        solver = make_solver(True, monkeypatch)
        assert solver._fused_bubble
        assert solver.levelset._fused
        assert solver.levelset._ws is solver._workspace
        off = make_solver(False, monkeypatch)
        assert not off._fused_bubble
        assert not off.levelset._fused

    @pytest.mark.parametrize("scheme", ["weno5", "upwind"])
    def test_binary64_runs_bitwise_identical(self, scheme, monkeypatch):
        ref = make_solver(False, monkeypatch, advection_scheme=scheme)
        fused = make_solver(True, monkeypatch, advection_scheme=scheme)
        ref.run(t_end=0.03, fixed_dt=2e-3)
        fused.run(t_end=0.03, fixed_dt=2e-3)
        for key, val in solver_state(ref).items():
            assert_bits(solver_state(fused)[key], val, f"{scheme}/{key}")

    @pytest.mark.parametrize("scheme", ["weno5", "upwind"])
    @pytest.mark.parametrize("rounding",
                             [RoundingMode.NEAREST_EVEN, RoundingMode.TOWARD_ZERO])
    def test_truncated_runs_bitwise_identical(self, scheme, rounding, monkeypatch):
        def run(fused):
            solver = make_solver(fused, monkeypatch, advection_scheme=scheme)
            ctx = (TruncFastPlaneContext(E8M10, rounding=rounding) if fused
                   else _silent_trunc(E8M10, rounding))
            solver.run(t_end=0.03, fixed_dt=2e-3, advection_ctx=ctx, diffusion_ctx=ctx)
            return solver_state(solver)

        ref, fast = run(False), run(True)
        for key, val in ref.items():
            assert_bits(fast[key], val, f"{scheme}/{rounding}/{key}")

    def test_blended_mask_runs_bitwise_identical(self, monkeypatch):
        """The M − l cutoff path blends truncated and full results — both
        planes must agree bit for bit through the blend."""
        def run(fused):
            solver = make_solver(fused, monkeypatch)
            ctx = (TruncFastPlaneContext(E8M10) if fused else _silent_trunc(E8M10))
            solver.run(
                t_end=0.02, fixed_dt=2e-3, advection_ctx=ctx, diffusion_ctx=ctx,
                truncate_mask_fn=lambda s: s.levelset.level_map(max_level=3) <= 2,
            )
            return solver_state(solver)

        ref, fast = run(False), run(True)
        for key, val in ref.items():
            assert_bits(fast[key], val, f"blend/{key}")

    def test_counting_contexts_and_counters_untouched(self, monkeypatch):
        """Counting (instrumented) truncating contexts never ride the
        bubble plane: states and op counters are byte-identical with the
        knob on or off."""
        def run(fused):
            if fused:
                monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
            else:
                monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", "1")
            wl = create_workload("bubble", **TINY_BUBBLE)
            out = wl.run_strategy("everywhere", 10)
            monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
            return out

        on, off = run(True), run(False)
        for key in off.state:
            assert_bits(on.state[key], off.state[key], key)
        assert on.info == off.info


# ---------------------------------------------------------------------------
# the workload through the engine entry points
# ---------------------------------------------------------------------------
class TestWorkloadEquivalence:
    def _run_policy(self, policy_kind, plane, fused, monkeypatch):
        if fused:
            monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        else:
            monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", "1")
        wl = create_workload("bubble", **TINY_BUBBLE)
        rt = RaptorRuntime()
        if policy_kind == "trunc":
            policy = GlobalPolicy(
                TruncationConfig(targets={64: E8M10}, count_ops=False,
                                 track_memory=False),
                runtime=rt, plane=plane,
            )
        else:
            policy = NoTruncationPolicy(runtime=rt, count_ops=False,
                                        track_memory=False, plane=plane)
        out = wl.run(policy=policy, runtime=rt)
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        return out

    @pytest.mark.parametrize("policy_kind", ["full", "trunc"])
    def test_states_identical_across_planes_and_knob(self, policy_kind, monkeypatch):
        baseline = self._run_policy(policy_kind, "instrumented", False, monkeypatch)
        for plane in ("instrumented", "auto", "fast"):
            for fused in (False, True):
                other = self._run_policy(policy_kind, plane, fused, monkeypatch)
                assert other.time == baseline.time
                for key in baseline.state:
                    assert_bits(other.state[key], baseline.state[key],
                                f"{policy_kind}/{plane}/fused={fused}/{key}")

    def test_run_sweep_identical_with_knob_on_or_off(self, monkeypatch):
        from repro.experiments import PolicySpec, SweepSpec, run_sweep

        def sweep():
            return run_sweep(SweepSpec(
                workloads=("bubble",),
                formats=("fp64", "bf16"),
                policies=(PolicySpec(kind="global"),),
                workload_configs={"bubble": TINY_BUBBLE},
                keep_states=True,
            ))

        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        fused = sweep()
        monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", "1")
        plain = sweep()
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        for a, b in zip(fused.points, plain.points):
            assert a.errors == b.errors
            assert set(a.state) == set(b.state)
            for key in a.state:
                assert_bits(a.state[key], b.state[key], f"{a.format_name}/{key}")
        for name, reference in fused.references.items():
            for key in reference.state:
                assert_bits(reference.state[key], plain.references[name].state[key],
                            f"ref/{key}")

    def test_find_cliff_identical_with_knob_on_or_off(self, monkeypatch):
        from repro.experiments import find_cliff

        kwargs = dict(
            config_kwargs=dict(TINY_BUBBLE),
            min_man_bits=4, max_man_bits=12, exp_bits=8,
            count_ops=False,
        )
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        fused = find_cliff("bubble", **kwargs)
        monkeypatch.setenv("RAPTOR_FAST_NO_BUBBLE", "1")
        plain = find_cliff("bubble", **kwargs)
        monkeypatch.delenv("RAPTOR_FAST_NO_BUBBLE", raising=False)
        assert fused.cliff_man_bits == plain.cliff_man_bits
        assert [(e.man_bits, e.error) for e in fused.evaluations] == [
            (e.man_bits, e.error) for e in plain.evaluations
        ]
