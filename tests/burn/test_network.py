"""Tests for the carbon-burning network."""
import numpy as np
import pytest

from repro.burn import CarbonBurnNetwork
from repro.core import FPFormat, RaptorRuntime, TruncatedContext


@pytest.fixture()
def network():
    return CarbonBurnNetwork()


class TestRate:
    def test_zero_below_ignition(self, network):
        r = network.rate(np.array([1e8, 5e8]))  # T9 = 0.1, 0.5 < 0.6
        assert np.all(r == 0.0)

    def test_positive_above_ignition(self, network):
        r = network.rate(np.array([1e9, 3e9]))
        assert np.all(r > 0.0)

    def test_extreme_temperature_sensitivity(self, network):
        r1 = float(network.rate(np.array([1.5e9]))[0])
        r2 = float(network.rate(np.array([3.0e9]))[0])
        assert r2 / r1 > 10.0

    def test_burning_timescale(self, network):
        assert network.burning_timescale(1e8) == np.inf
        t_hot = network.burning_timescale(3e9)
        t_cool = network.burning_timescale(1.5e9)
        assert t_hot < t_cool < np.inf


class TestBurn:
    def test_cold_fuel_unburned(self, network):
        x, de = network.burn(np.array([1.0, 1.0]), np.array([1e8, 2e8]), dt=1.0)
        assert np.allclose(x, 1.0)
        assert np.allclose(de, 0.0)

    def test_hot_fuel_burns_and_releases_energy(self, network):
        x0 = np.array([1.0])
        t_burn = network.burning_timescale(3e9)
        x, de = network.burn(x0, np.array([3e9]), dt=5 * t_burn)
        assert float(x[0]) < 0.05
        assert float(de[0]) == pytest.approx(network.q_value * (1.0 - float(x[0])), rel=1e-12)

    def test_mass_fraction_bounded(self, network):
        x, _ = network.burn(np.array([1.0]), np.array([1e10]), dt=1e3)
        assert 0.0 <= float(x[0]) <= 1.0

    def test_energy_release_nonnegative_and_bounded(self, network):
        rng = np.random.default_rng(0)
        x0 = rng.uniform(0, 1, 16)
        temps = 10.0 ** rng.uniform(8.5, 9.7, 16)
        x, de = network.burn(x0, temps, dt=1e-3)
        assert np.all(de >= -1e-10)
        assert np.all(de <= network.q_value * x0 + 1e-6)
        assert np.all(x <= x0 + 1e-12)

    def test_substep_invariance_for_frozen_temperature(self, network):
        """With the rate frozen (constant T), the exponential update is exact,
        so substepping must not change the result."""
        x1, _ = network.burn(np.array([1.0]), np.array([2.5e9]), dt=1e-4, substeps=1)
        x8, _ = network.burn(np.array([1.0]), np.array([2.5e9]), dt=1e-4, substeps=8)
        assert float(x1[0]) == pytest.approx(float(x8[0]), rel=1e-10)

    def test_truncated_burn_counts_ops_and_stays_physical(self, network):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 10), runtime=rt, module="burn")
        x, de = network.burn(np.full(8, 1.0), np.full(8, 2.5e9), dt=1e-3, ctx=ctx)
        assert rt.module_ops()["burn"].truncated > 0
        assert np.all((x >= 0) & (x <= 1.0))
        assert np.all(de >= 0)
