"""Tests for the pressure Poisson solver."""
import numpy as np
import pytest

from repro.incomp import PoissonSolver
from repro.kernels.scratch import Workspace


@pytest.fixture(scope="module")
def solver():
    return PoissonSolver(nx=32, ny=24, dx=1.0 / 32, dy=1.0 / 24)


class TestBandedAssembly:
    """The vectorised ``sp.diags`` assembly is pinned exactly — values *and*
    stored sparsity structure — against the per-cell reference loop."""

    @pytest.mark.parametrize(
        "nx,ny,dx,dy",
        [(32, 24, 1.0 / 32, 1.0 / 24), (1, 1, 0.5, 0.5), (1, 7, 0.1, 0.2),
         (7, 1, 0.2, 0.1), (2, 2, 1.0, 2.0), (17, 5, 0.03, 0.7)],
    )
    def test_matches_reference_loop_exactly(self, nx, ny, dx, dy):
        solver = PoissonSolver(nx=nx, ny=ny, dx=dx, dy=dy)
        banded = solver._build_matrix().tocsr()
        reference = solver._build_matrix_reference().tocsr()
        assert (banded - reference).nnz == 0
        # identical stored structure, not just identical values
        np.testing.assert_array_equal(banded.indptr, reference.indptr)
        np.testing.assert_array_equal(banded.indices, reference.indices)
        np.testing.assert_array_equal(banded.data, reference.data)

    def test_solve_with_workspace_bitwise_identical(self, solver):
        rng = np.random.default_rng(11)
        rhs = rng.normal(size=(32, 24))
        rhs_orig = rhs.copy()
        ws = Workspace()
        p_ws = solver.solve(rhs, ws=ws)
        p = solver.solve(rhs)
        np.testing.assert_array_equal(p_ws, p)
        # the staging buffer is reused, the returned pressure is fresh
        misses = ws.misses
        p_ws2 = solver.solve(rhs, ws=ws)
        assert ws.misses == misses
        assert p_ws2 is not p_ws
        np.testing.assert_array_equal(p_ws2, p_ws)
        # rhs is never written
        np.testing.assert_array_equal(rhs, rhs_orig)

    def test_gradient_with_workspace_bitwise_identical(self, solver):
        rng = np.random.default_rng(12)
        p = rng.normal(size=(32, 24))
        gx, gy = solver.gradient(p)
        np.testing.assert_array_equal(gx, np.gradient(p, solver.dx, axis=0))
        np.testing.assert_array_equal(gy, np.gradient(p, solver.dy, axis=1))
        ws = Workspace()
        wx, wy = solver.gradient(p, ws=ws)
        np.testing.assert_array_equal(wx, gx)
        np.testing.assert_array_equal(wy, gy)


class TestSolver:
    def test_rhs_shape_validated(self, solver):
        with pytest.raises(ValueError):
            solver.solve(np.zeros((8, 8)))

    def test_zero_rhs_gives_constant_solution(self, solver):
        p = solver.solve(np.zeros((32, 24)))
        assert np.allclose(p, 0.0, atol=1e-10)

    def test_solution_has_zero_mean(self, solver):
        rng = np.random.default_rng(0)
        rhs = rng.normal(size=(32, 24))
        p = solver.solve(rhs)
        assert abs(float(np.mean(p))) < 1e-12

    def test_residual_small(self, solver):
        rng = np.random.default_rng(1)
        rhs = rng.normal(size=(32, 24))
        p = solver.solve(rhs)
        assert solver.residual(p, rhs) < 1e-8

    def test_manufactured_solution(self):
        """lap(cos(pi x) cos(pi y)) = -2 pi^2 cos(pi x) cos(pi y), which is
        compatible with homogeneous Neumann walls."""
        nx = ny = 48
        dx = 1.0 / nx
        solver = PoissonSolver(nx, ny, dx, dx)
        x = (np.arange(nx) + 0.5) * dx
        y = (np.arange(ny) + 0.5) * dx
        X, Y = np.meshgrid(x, y, indexing="ij")
        exact = np.cos(np.pi * X) * np.cos(np.pi * Y)
        rhs = -2 * np.pi ** 2 * exact
        p = solver.solve(rhs)
        exact_zero_mean = exact - exact.mean()
        err = np.max(np.abs(p - exact_zero_mean))
        assert err < 5e-3

    def test_gradient_shapes(self, solver):
        p = solver.solve(np.random.default_rng(2).normal(size=(32, 24)))
        gx, gy = solver.gradient(p)
        assert gx.shape == (32, 24)
        assert gy.shape == (32, 24)

    def test_projection_reduces_divergence(self, solver):
        """Projecting an arbitrary velocity field must reduce its divergence
        (the property the fractional-step method relies on)."""
        rng = np.random.default_rng(3)
        dx, dy = solver.dx, solver.dy
        u = rng.normal(size=(32, 24))
        v = rng.normal(size=(32, 24))
        # zero the wall-normal velocities, as the bubble solver does
        u[0, :] = u[-1, :] = 0.0
        v[:, 0] = v[:, -1] = 0.0
        dt = 0.1
        div = np.gradient(u, dx, axis=0) + np.gradient(v, dy, axis=1)
        p = solver.solve(div / dt)
        gx, gy = solver.gradient(p)
        u2, v2 = u - dt * gx, v - dt * gy
        div2 = np.gradient(u2, dx, axis=0) + np.gradient(v2, dy, axis=1)
        assert np.linalg.norm(div2[2:-2, 2:-2]) < 0.7 * np.linalg.norm(div[2:-2, 2:-2])
