"""Tests for the level-set module."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FPFormat, FullPrecisionContext, RaptorRuntime, TruncatedContext
from repro.incomp import LevelSet, circle_level_set, interface_level_map


def make_levelset(n=32, radius=0.3):
    x = np.linspace(-1, 1, n)
    y = np.linspace(-1, 1, n)
    X, Y = np.meshgrid(x, y, indexing="ij")
    dx = x[1] - x[0]
    phi = circle_level_set(X, Y, (0.0, 0.0), radius)
    return LevelSet(phi, dx, dx), X, Y


class TestCircleLevelSet:
    def test_sign_convention(self):
        ls, X, Y = make_levelset()
        assert ls.phi[16, 16] > 0          # centre: gas
        assert ls.phi[0, 0] < 0            # corner: liquid

    def test_zero_on_interface(self):
        phi = circle_level_set(np.array([[0.3]]), np.array([[0.0]]), (0.0, 0.0), 0.3)
        assert float(phi[0, 0]) == pytest.approx(0.0, abs=1e-12)


class TestPhaseProperties:
    def test_heaviside_limits(self):
        ls, _, _ = make_levelset()
        h = ls.heaviside()
        assert np.all((h >= 0) & (h <= 1))
        assert h[16, 16] == 1.0
        assert h[0, 0] == 0.0

    def test_density_between_phases(self):
        ls, _, _ = make_levelset()
        rho = ls.density(1.0, 0.001)
        assert rho[0, 0] == pytest.approx(1.0)
        assert rho[16, 16] == pytest.approx(0.001)
        assert np.all((rho >= 0.001 - 1e-12) & (rho <= 1.0 + 1e-12))

    def test_viscosity_between_phases(self):
        ls, _, _ = make_levelset()
        mu = ls.viscosity(1.0, 0.1)
        assert np.all((mu >= 0.1 - 1e-12) & (mu <= 1.0 + 1e-12))

    def test_delta_localised_at_interface(self):
        ls, _, _ = make_levelset()
        d = ls.delta()
        assert np.max(d) > 0
        assert d[16, 16] == 0.0
        assert d[0, 0] == 0.0

    def test_volume_approximates_circle_area(self):
        ls, _, _ = make_levelset(n=64, radius=0.4)
        dx = 2.0 / 64
        vol = ls.volume(dx * dx)
        assert vol == pytest.approx(np.pi * 0.4 ** 2, rel=0.05)

    def test_curvature_of_circle(self):
        ls, _, _ = make_levelset(n=64, radius=0.4)
        mask = ls.interface_contour_mask(width=0.05)
        kappa = ls.curvature()[mask]
        # curvature of the phi>0-inside convention circle is -1/R
        assert np.median(kappa) == pytest.approx(-1.0 / 0.4, rel=0.25)


class TestAdvection:
    def test_uniform_translation_moves_interface(self):
        ls, X, Y = make_levelset(n=48, radius=0.3)
        dx = 2.0 / 48
        u = np.full_like(ls.phi, 0.5)
        v = np.zeros_like(ls.phi)
        x0 = float(np.sum(ls.heaviside() * X) / np.sum(ls.heaviside()))
        for _ in range(20):
            ls.advect(u, v, dt=0.4 * dx)
        x1 = float(np.sum(ls.heaviside() * X) / np.sum(ls.heaviside()))
        assert x1 > x0 + 0.05

    def test_zero_velocity_is_identity(self):
        ls, _, _ = make_levelset()
        phi0 = ls.phi.copy()
        ls.advect(np.zeros_like(phi0), np.zeros_like(phi0), dt=0.01)
        assert np.array_equal(ls.phi, phi0)

    def test_truncated_advection_counts_ops_and_differs(self):
        ls_ref, _, _ = make_levelset(n=32)
        ls_tr, _, _ = make_levelset(n=32)
        u = np.full_like(ls_ref.phi, 0.3)
        v = np.full_like(ls_ref.phi, -0.2)
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 4), runtime=rt, module="advection")
        for _ in range(5):
            ls_ref.advect(u, v, 0.01)
            ls_tr.advect(u, v, 0.01, ctx)
        assert rt.module_ops()["advection"].truncated > 0
        assert np.max(np.abs(ls_ref.phi - ls_tr.phi)) > 0


class TestReinitialisation:
    def test_restores_unit_gradient(self):
        ls, _, _ = make_levelset(n=48, radius=0.35)
        # distort the level set away from a signed distance function
        ls.phi = ls.phi * (1.0 + 2.0 * np.abs(ls.phi))
        ls.reinitialize(iterations=40)
        gx = np.gradient(ls.phi, ls.dx, axis=0)
        gy = np.gradient(ls.phi, ls.dy, axis=1)
        mag = np.sqrt(gx ** 2 + gy ** 2)
        band = np.abs(ls.phi) < 0.2
        assert np.median(np.abs(mag[band] - 1.0)) < 0.15

    def test_interface_location_roughly_preserved(self):
        ls, _, _ = make_levelset(n=48, radius=0.35)
        before = ls.volume(ls.dx * ls.dy)
        ls.reinitialize(iterations=20)
        after = ls.volume(ls.dx * ls.dy)
        assert after == pytest.approx(before, rel=0.1)


class TestLevelMap:
    def test_levels_bounded_and_peak_at_interface(self):
        ls, _, _ = make_levelset(n=48, radius=0.35)
        levels = ls.level_map(max_level=4)
        assert levels.min() >= 1
        assert levels.max() == 4
        interface = ls.interface_contour_mask()
        assert np.all(levels[interface] == 4)

    def test_levels_decrease_with_distance(self):
        phi = np.linspace(0, 1, 100).reshape(1, -1)  # distance grows along the row
        levels = interface_level_map(phi, dx=0.01, max_level=4)
        assert levels[0, 0] == 4
        assert levels[0, -1] == 1
        assert np.all(np.diff(levels[0, :]) <= 0)

    def test_max_level_one_is_uniform(self):
        ls, _, _ = make_levelset()
        assert np.all(ls.level_map(max_level=1) == 1)


@given(radius=st.floats(0.1, 0.6))
@settings(max_examples=20, deadline=None)
def test_heaviside_volume_monotone_in_radius(radius):
    ls, _, _ = make_levelset(n=32, radius=radius)
    bigger, _, _ = make_levelset(n=32, radius=min(radius + 0.2, 0.8))
    area = ls.volume(1.0)
    area_big = bigger.volume(1.0)
    assert area_big >= area
