"""Tests for the rising-bubble solver."""
import numpy as np
import pytest

from repro.core import FPFormat, RaptorRuntime, TruncatedContext
from repro.incomp import BubbleConfig, BubbleSolver


def small_config(**kwargs):
    defaults = dict(
        nx=24,
        ny=36,
        xlim=(-1.0, 1.0),
        ylim=(-1.0, 2.0),
        reynolds=350.0,
        bubble_diameter=0.8,
        advection_scheme="upwind",
        reinit_interval=4,
    )
    defaults.update(kwargs)
    return BubbleConfig(**defaults)


class TestSetup:
    def test_initial_state(self):
        solver = BubbleSolver(small_config())
        assert solver.velx.shape == (24, 36)
        assert np.all(solver.velx == 0.0)
        assert solver.gas_volume() == pytest.approx(np.pi * 0.4 ** 2, rel=0.1)
        cx, cy = solver.bubble_centroid()
        assert cx == pytest.approx(0.0, abs=0.05)
        assert cy == pytest.approx(0.0, abs=0.05)

    def test_config_derived_quantities(self):
        cfg = small_config()
        assert cfg.dx == pytest.approx(2.0 / 24)
        assert cfg.gravity == 1.0
        assert cfg.sigma == pytest.approx(1.0 / 125.0)
        assert cfg.nu_liquid == pytest.approx(1.0 / 350.0)

    def test_stable_dt_positive(self):
        solver = BubbleSolver(small_config())
        assert solver.stable_dt() > 0


class TestDynamics:
    def test_bubble_rises(self):
        solver = BubbleSolver(small_config())
        _, cy0 = solver.bubble_centroid()
        solver.run(t_end=0.3, fixed_dt=0.005)
        _, cy1 = solver.bubble_centroid()
        assert cy1 > cy0 + 0.01
        # the gas phase is moving upward
        gas = solver.levelset.phi > 0
        assert float(np.mean(solver.vely[gas])) > 0.0
        assert np.all(np.isfinite(solver.velx))
        assert np.all(np.isfinite(solver.levelset.phi))

    def test_gas_volume_roughly_conserved(self):
        solver = BubbleSolver(small_config())
        v0 = solver.gas_volume()
        solver.run(t_end=0.2, fixed_dt=0.005)
        assert solver.gas_volume() == pytest.approx(v0, rel=0.25)

    def test_no_flow_without_forces(self):
        cfg = small_config(froude=1e6, surface_tension=False)  # negligible gravity
        solver = BubbleSolver(cfg)
        solver.run(t_end=0.05, fixed_dt=0.005)
        assert np.max(np.abs(solver.vely)) < 1e-3

    def test_run_reports_steps_and_time(self):
        solver = BubbleSolver(small_config())
        out = solver.run(t_end=0.05, fixed_dt=0.01)
        assert out["steps"] == 5
        assert out["time"] == pytest.approx(0.05)

    def test_callback_invoked(self):
        solver = BubbleSolver(small_config())
        times = []
        solver.run(t_end=0.03, fixed_dt=0.01, callback=lambda s: times.append(s.time))
        assert len(times) == 3

    def test_fragment_count_initially_one(self):
        solver = BubbleSolver(small_config())
        assert solver.interface_fragment_count() == 1


class TestTruncation:
    def _run(self, ctx=None, mask_fn=None, scheme="upwind"):
        solver = BubbleSolver(small_config(advection_scheme=scheme))
        solver.run(t_end=0.1, fixed_dt=0.005, advection_ctx=ctx, diffusion_ctx=ctx, truncate_mask_fn=mask_fn)
        return solver

    def test_truncated_run_counts_ops_and_stays_finite(self):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 8), runtime=rt, module="advection")
        solver = self._run(ctx)
        assert rt.ops.truncated > 0
        assert np.all(np.isfinite(solver.levelset.phi))

    def test_low_precision_perturbs_interface(self):
        ref = self._run(None)
        low = self._run(TruncatedContext(FPFormat(8, 4), runtime=RaptorRuntime()))
        diff = np.max(np.abs(ref.levelset.phi - low.levelset.phi))
        assert diff > 1e-6

    def test_wider_mantissa_closer_to_reference(self):
        ref = self._run(None)

        def err(man):
            run = self._run(TruncatedContext(FPFormat(11, man), runtime=RaptorRuntime()))
            return float(np.mean(np.abs(run.levelset.phi - ref.levelset.phi)))

        assert err(40) < err(4)

    def test_selective_mask_reduces_truncated_share(self):
        def run_fraction(mask_fn):
            rt = RaptorRuntime()
            ctx = TruncatedContext(FPFormat(8, 8), runtime=rt, module="advection")
            self._run(ctx, mask_fn)
            return rt.ops.truncated

        everywhere = run_fraction(None)
        cutoff = run_fraction(lambda s: s.levelset.level_map(max_level=3) <= 2)
        # with a cutoff mask the truncated+full evaluations both run, so the
        # truncated-op count is the same; what changes is the applied result.
        assert cutoff >= everywhere * 0.5

    def test_selective_truncation_closer_to_reference_than_global(self):
        ref = self._run(None)
        global_run = self._run(TruncatedContext(FPFormat(8, 4), runtime=RaptorRuntime()))
        selective_run = self._run(
            TruncatedContext(FPFormat(8, 4), runtime=RaptorRuntime()),
            mask_fn=lambda s: s.levelset.level_map(max_level=3) <= 2,
        )
        err_global = float(np.mean(np.abs(global_run.levelset.phi - ref.levelset.phi)))
        err_selective = float(np.mean(np.abs(selective_run.levelset.phi - ref.levelset.phi)))
        assert err_selective <= err_global

    def test_weno5_scheme_runs_truncated(self):
        rt = RaptorRuntime()
        ctx = TruncatedContext(FPFormat(8, 10), runtime=rt, module="advection")
        solver = BubbleSolver(small_config(advection_scheme="weno5"))
        solver.run(t_end=0.02, fixed_dt=0.005, advection_ctx=ctx)
        assert rt.ops.truncated > 0
        assert np.all(np.isfinite(solver.levelset.phi))
