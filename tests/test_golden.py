"""Golden regression tests for the Sod and Sedov final states.

Small reference checkpoints (FP64 reference run and a BF16
globally-truncated run for each workload) are committed under
``tests/golden/``.  The simulation pipeline is deterministic, so any change
to the numerics — quantisation, reconstruction, Riemann solver, AMR guard
filling, context bookkeeping — shows up as a diff against these arrays.

After an *intentional* change to the numerics, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --regen-golden
"""
from pathlib import Path

import numpy as np
import pytest

from repro.core import BF16, GlobalPolicy, RaptorRuntime, TruncationConfig
from repro.io.checkpoint import Checkpoint
from repro.workloads import create_workload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: deliberately tiny but non-trivial configurations (two AMR levels, a few
#: dozen steps) so the files stay small and the tests fast
GOLDEN_CONFIGS = {
    "sod": dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                t_end=0.04, rk_stages=1, reconstruction="plm"),
    "sedov": dict(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2,
                  t_end=0.02, rk_stages=1, reconstruction="plm"),
}

CASES = [(workload, fmt) for workload in GOLDEN_CONFIGS for fmt in ("fp64", "bf16")]


def _golden_path(workload: str, fmt: str) -> Path:
    return GOLDEN_DIR / f"{workload}_{fmt}.npz"


def _run_case(workload: str, fmt: str) -> Checkpoint:
    w = create_workload(workload, **GOLDEN_CONFIGS[workload])
    if fmt == "fp64":
        run = w.reference()
    else:
        runtime = RaptorRuntime(f"golden-{workload}-{fmt}")
        policy = GlobalPolicy(TruncationConfig(targets={64: BF16}), runtime=runtime)
        run = w.run(policy=policy, runtime=runtime)
    return run.checkpoint


@pytest.mark.parametrize("workload,fmt", CASES, ids=[f"{w}-{f}" for w, f in CASES])
def test_golden_final_state(workload, fmt, regen_golden):
    path = _golden_path(workload, fmt)
    checkpoint = _run_case(workload, fmt)

    if regen_golden:
        checkpoint.save(path)
        pytest.skip(f"regenerated {path.name}")

    assert path.exists(), (
        f"golden file {path} is missing; generate it with "
        "pytest tests/test_golden.py --regen-golden"
    )
    golden = Checkpoint.load(path)
    assert golden.variables() == checkpoint.variables()
    np.testing.assert_allclose(
        checkpoint.time, golden.time, rtol=0, atol=1e-15,
        err_msg=f"{workload}/{fmt}: final time drifted",
    )
    for name in golden.variables():
        np.testing.assert_allclose(
            checkpoint[name],
            golden[name],
            rtol=1e-12,
            atol=1e-14,
            err_msg=(
                f"{workload}/{fmt}: variable {name!r} deviates from the "
                f"golden state in {path.name}; if the numerics change is "
                "intentional, rerun with --regen-golden"
            ),
        )
