"""Cross-module integration tests.

These exercise the paths the benchmarks rely on end to end: policy ->
solver -> runtime counters -> sfocu errors -> co-design model, plus the
rank-independence statement of Section 3.6 on a truncated run.
"""
import numpy as np
import pytest

from repro.codesign import estimate_speedup
from repro.core import (
    FP16,
    AMRCutoffPolicy,
    GlobalPolicy,
    RaptorRuntime,
    TruncationConfig,
    profile_report,
)
from repro.io import Checkpoint, compare
from repro.parallel import BlockDistribution, SimulatedComm
from repro.workloads import SedovConfig, SedovWorkload, SodConfig, SodWorkload


@pytest.fixture(scope="module")
def sedov_pair():
    """A (reference, truncated) pair of small Sedov runs shared by tests."""
    workload = SedovWorkload(
        SedovConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.015, rk_stages=1)
    )
    reference = workload.reference()
    runtime = RaptorRuntime("integration")
    policy = GlobalPolicy(TruncationConfig.mantissa(10, exp_bits=8), runtime=runtime)
    truncated = workload.run(policy=policy, runtime=runtime)
    return workload, reference, truncated


class TestEndToEndPipeline:
    def test_errors_counters_and_report(self, sedov_pair):
        _, reference, truncated = sedov_pair
        errors = truncated.errors(reference, ("dens", "velx", "pres"))
        assert all(v >= 0 for v in errors.values())
        assert errors["dens"] > 0
        assert truncated.truncated_fraction > 0.5
        text = profile_report(truncated.runtime)
        assert "hydro" in text

    def test_codesign_model_consumes_profiled_counters(self, sedov_pair):
        _, _, truncated = sedov_pair
        estimate = estimate_speedup(truncated.runtime, FP16)
        assert estimate.compute_bound > 1.0
        assert estimate.memory_bound > 1.0
        assert estimate.bound in ("compute", "memory")

    def test_checkpoint_roundtrip_preserves_sfocu_errors(self, sedov_pair, tmp_path):
        _, reference, truncated = sedov_pair
        p1 = truncated.checkpoint.save(tmp_path / "trunc.npz")
        p2 = reference.checkpoint.save(tmp_path / "ref.npz")
        report = compare(Checkpoint.load(p1), Checkpoint.load(p2), ["dens"])
        assert report.l1("dens") == pytest.approx(truncated.l1_error(reference, "dens"))

    def test_amr_cutoff_policy_on_sod_reduces_truncated_ops(self):
        workload = SodWorkload(
            SodConfig(nxb=8, nyb=8, n_root_x=2, n_root_y=2, max_level=2, t_end=0.02, rk_stages=1)
        )
        fractions = {}
        for cutoff in (0, 1):
            rt = RaptorRuntime()
            policy = AMRCutoffPolicy(
                TruncationConfig.mantissa(10, exp_bits=8), cutoff=cutoff, modules=["hydro"], runtime=rt
            )
            workload.run(policy=policy, runtime=rt)
            fractions[cutoff] = rt.ops.truncated_fraction
        assert fractions[1] < fractions[0]


class TestRankIndependence:
    def test_decomposition_of_truncated_run_preserves_integrals(self, sedov_pair):
        """Section 3.6: RAPTOR's op-mode and MPI do not interfere — the
        decomposition of a truncated run's grid over any number of ranks
        reproduces the same global integrals."""
        _, _, truncated = sedov_pair
        grid = truncated.grid
        reference_mass = grid.total_integral("dens")
        for n_ranks in (1, 3, 8):
            dist = BlockDistribution.from_grid(grid, n_ranks)
            comm = SimulatedComm(n_ranks)
            partial = [
                sum(grid.leaves[key].integral("dens") for key in dist.blocks_for(rank))
                for rank in range(n_ranks)
            ]
            assert float(comm.allreduce(partial, "sum")) == pytest.approx(reference_mass, rel=1e-12)

    def test_level_map_and_checkpoint_shapes_consistent(self, sedov_pair):
        _, reference, truncated = sedov_pair
        assert truncated.checkpoint["dens"].shape == reference.checkpoint["dens"].shape
        lm = truncated.grid.level_map(truncated.grid.finest_level)
        assert set(np.unique(lm)).issubset({1, 2})
