"""Checkpoints: uniform-grid snapshots of a simulation state.

Flash-X writes HDF5 checkpoint/plot files; the comparison utility ``sfocu``
then compares two of them variable by variable.  This reproduction stores
the covering-grid data of selected variables (plus metadata) in ``.npz``
files, which is sufficient for every comparison the experiments need.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..amr.grid import AMRGrid

__all__ = ["Checkpoint"]


@dataclass
class Checkpoint:
    """A named collection of uniform-grid variables plus metadata."""

    data: Dict[str, np.ndarray]
    time: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        grid: AMRGrid,
        variables=None,
        time: float = 0.0,
        metadata: Optional[Dict[str, object]] = None,
        level: Optional[int] = None,
    ) -> "Checkpoint":
        """Sample an AMR grid's leaves onto the covering grid of ``level``
        (default: the finest level currently present).  Sampling at the
        grid's ``max_level`` gives shape-compatible checkpoints across runs
        whose AMR hierarchies ended up refined differently."""
        names = list(variables) if variables is not None else list(grid.variables)
        data = {name: grid.uniform_data(name, level=level) for name in names}
        meta = dict(metadata or {})
        meta.setdefault("finest_level", grid.finest_level)
        meta.setdefault("n_leaves", grid.n_leaves)
        meta.setdefault("leaf_levels", grid.leaf_levels())
        return cls(data=data, time=time, metadata=meta)

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        time: float = 0.0,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "Checkpoint":
        return cls(data={k: np.asarray(v, dtype=np.float64) for k, v in arrays.items()},
                   time=time, metadata=dict(metadata or {}))

    # ------------------------------------------------------------------
    def variables(self):
        return sorted(self.data.keys())

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def __getitem__(self, name: str) -> np.ndarray:
        return self.data[name]

    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the checkpoint to an ``.npz`` file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {f"var_{k}": v for k, v in self.data.items()}
        payload["_time"] = np.asarray(self.time)
        payload["_metadata"] = np.frombuffer(
            json.dumps(self.metadata, default=str).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        return path

    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as npz:
            data = {
                key[len("var_"):]: np.asarray(npz[key], dtype=np.float64)
                for key in npz.files
                if key.startswith("var_")
            }
            time = float(npz["_time"]) if "_time" in npz.files else 0.0
            metadata = {}
            if "_metadata" in npz.files:
                metadata = json.loads(bytes(npz["_metadata"].tobytes()).decode("utf-8"))
        return cls(data=data, time=time, metadata=metadata)
