"""Checkpoints and the sfocu comparison utility."""
from .checkpoint import Checkpoint
from .sfocu import ComparisonReport, VariableComparison, compare, l1_norm

__all__ = ["Checkpoint", "compare", "l1_norm", "ComparisonReport", "VariableComparison"]
