"""sfocu: serial Flash output comparison utility (reproduction).

Flash-X ships ``sfocu``, which compares two checkpoint files and reports
per-variable error norms; the paper's Figures 7 and Table 2 quote the L1
error norm it computes.  This module reproduces that comparison for
:class:`~repro.io.checkpoint.Checkpoint` objects.

The L1 norm follows sfocu's convention: the sum of absolute differences
normalised by the sum of absolute reference values, so identical files give
0 and the number is a relative, resolution-independent measure.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .checkpoint import Checkpoint

__all__ = ["VariableComparison", "ComparisonReport", "compare", "l1_norm"]


def l1_norm(test: np.ndarray, reference: np.ndarray) -> float:
    """Relative L1 error norm (sfocu's "L1 error" column)."""
    test = np.asarray(test, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if test.shape != reference.shape:
        raise ValueError(f"shape mismatch: {test.shape} vs {reference.shape}")
    denom = float(np.sum(np.abs(reference)))
    if denom == 0.0:
        return float(np.sum(np.abs(test - reference)))
    return float(np.sum(np.abs(test - reference)) / denom)


@dataclass
class VariableComparison:
    """Error norms of one variable."""

    name: str
    l1: float
    l2: float
    linf: float
    max_abs_reference: float

    @property
    def identical(self) -> bool:
        return self.linf == 0.0


@dataclass
class ComparisonReport:
    """Result of comparing two checkpoints."""

    variables: Dict[str, VariableComparison]
    time_test: float
    time_reference: float

    def __getitem__(self, name: str) -> VariableComparison:
        return self.variables[name]

    def l1(self, name: str) -> float:
        return self.variables[name].l1

    @property
    def max_l1(self) -> float:
        return max((v.l1 for v in self.variables.values()), default=0.0)

    @property
    def identical(self) -> bool:
        return all(v.identical for v in self.variables.values())

    def to_text(self) -> str:
        lines = [f"sfocu comparison (t_test={self.time_test:g}, t_ref={self.time_reference:g})"]
        lines.append(f"{'variable':<12} {'L1 error':>14} {'L2 error':>14} {'Linf error':>14}")
        for name in sorted(self.variables):
            v = self.variables[name]
            lines.append(f"{name:<12} {v.l1:>14.6e} {v.l2:>14.6e} {v.linf:>14.6e}")
        verdict = "SUCCESS: files are identical" if self.identical else "FAILURE: files differ"
        lines.append(verdict)
        return "\n".join(lines)


def compare(
    test: Checkpoint,
    reference: Checkpoint,
    variables: Optional[Iterable[str]] = None,
) -> ComparisonReport:
    """Compare two checkpoints variable by variable (sfocu behaviour).

    Variables present in only one of the two checkpoints raise, matching
    sfocu's refusal to compare structurally different files.
    """
    if variables is None:
        names = sorted(set(test.variables()) & set(reference.variables()))
        missing = set(test.variables()) ^ set(reference.variables())
        if missing:
            raise ValueError(f"checkpoints carry different variables: {sorted(missing)}")
    else:
        names = list(variables)

    out: Dict[str, VariableComparison] = {}
    for name in names:
        a = test[name]
        b = reference[name]
        if a.shape != b.shape:
            raise ValueError(f"variable {name!r}: shape mismatch {a.shape} vs {b.shape}")
        diff = np.abs(a - b)
        denom_l1 = float(np.sum(np.abs(b)))
        denom_l2 = float(np.sqrt(np.sum(b ** 2)))
        out[name] = VariableComparison(
            name=name,
            l1=float(np.sum(diff) / denom_l1) if denom_l1 else float(np.sum(diff)),
            l2=float(np.sqrt(np.sum(diff ** 2)) / denom_l2) if denom_l2 else float(np.sqrt(np.sum(diff ** 2))),
            linf=float(np.max(diff)) if diff.size else 0.0,
            max_abs_reference=float(np.max(np.abs(b))) if b.size else 0.0,
        )
    return ComparisonReport(out, test.time, reference.time)
