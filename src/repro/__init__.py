"""repro — Python reproduction of RAPTOR (SC'25).

RAPTOR: Practical Numerical Profiling of Scientific Applications.

The package is organised as:

* :mod:`repro.core`      — the profiling tool itself (formats, quantisation,
  op-mode / mem-mode runtimes, instrumentation, selective policies).
* :mod:`repro.kernels`   — the kernel-plane layer: instrumented vs fused
  binary64 fast execution of the solvers' numerics contexts.
* :mod:`repro.codesign`  — the hardware co-design model of Section 7.2.
* :mod:`repro.amr`       — block-structured AMR substrate (Flash-X analogue).
* :mod:`repro.hydro`     — compressible hydrodynamics solver (Spark analogue).
* :mod:`repro.eos`, :mod:`repro.burn` — stellar EOS and burning (Cellular).
* :mod:`repro.incomp`    — incompressible multiphase solver (Bubble).
* :mod:`repro.workloads` — the four evaluation workloads.
* :mod:`repro.io`        — checkpoints and the sfocu comparison utility.
* :mod:`repro.parallel`  — domain decomposition substrate.

Subpackages other than :mod:`repro.core` are imported lazily by user code
(``import repro.workloads`` etc.); only the core is imported eagerly here so
that ``import repro`` stays lightweight.
"""
from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
