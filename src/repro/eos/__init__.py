"""Helmholtz-like tabulated stellar EOS (Cellular detonation substrate)."""
from .newton import NewtonResult, NewtonSolverConfig, invert_energy
from .table import HelmholtzTable

__all__ = ["HelmholtzTable", "NewtonSolverConfig", "NewtonResult", "invert_energy"]
