"""Newton–Raphson inversion of the tabulated EOS.

Flash-X's Helmholtz EOS is tabulated in (density, temperature) but the hydro
solver provides (density, internal energy); a Newton–Raphson iteration on
temperature closes the gap.  Hypothesis 2 of the paper assumed this module
would tolerate reduced precision because it "only extrapolates from a table
look-up" — and was falsified: with fewer than ~42 mantissa bits the
iteration stops converging within the permitted iteration count, even after
the tolerance was relaxed and the iteration limit raised.

This module reproduces that mechanism: every arithmetic operation of the
residual, derivative, and update goes through the numerics context, so when
the context truncates, the residual stalls at the truncation noise floor and
the iteration exhausts ``max_iterations``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.opmode import FPContext, FullPrecisionContext
from .table import HelmholtzTable

__all__ = ["NewtonSolverConfig", "NewtonResult", "invert_energy"]


@dataclass
class NewtonSolverConfig:
    """Controls of the Newton–Raphson inversion (Flash-X-like defaults)."""

    tolerance: float = 1e-10      # relative residual |e(T) - e_target| / e_target
    max_iterations: int = 40
    relaxation: float = 1.0       # under-relaxation factor for the update
    temperature_floor: float = 1.2e7
    temperature_ceiling: float = 9e9
    #: per-iteration multiplicative bound on the temperature change
    #: (safeguard against runaway Newton steps from poor initial guesses,
    #: as in Flash-X's bounded Newton implementation)
    max_step_factor: float = 10.0


@dataclass
class NewtonResult:
    """Outcome of one (vectorised) inversion call."""

    temperature: np.ndarray
    iterations: int
    converged: bool
    max_residual: float
    residual_history: list

    @property
    def failed(self) -> bool:
        return not self.converged


def invert_energy(
    table: HelmholtzTable,
    rho: np.ndarray,
    energy_target: np.ndarray,
    temperature_guess: np.ndarray,
    config: Optional[NewtonSolverConfig] = None,
    ctx: Optional[FPContext] = None,
) -> NewtonResult:
    """Solve ``e(rho, T) = energy_target`` for T with Newton–Raphson.

    All floating-point work is routed through ``ctx``; pass a truncating
    context to reproduce the Cellular EOS-truncation experiment.

    Returns a :class:`NewtonResult`; ``converged`` is True only if **every**
    cell reached the relative tolerance within ``max_iterations``.
    """
    cfg = config or NewtonSolverConfig()
    ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)

    rho = np.asarray(rho, dtype=np.float64)
    energy_target = np.asarray(energy_target, dtype=np.float64)
    temp = ctx.const(np.asarray(temperature_guess, dtype=np.float64))

    history = []
    max_res = np.inf
    for iteration in range(1, cfg.max_iterations + 1):
        e_guess = table.energy(rho, temp, ctx)
        residual = ctx.sub(e_guess, energy_target, "eos:nr_residual")
        rel = np.abs(ctx.asplain(residual)) / np.maximum(np.abs(energy_target), 1e-300)
        max_res = float(np.max(rel))
        history.append(max_res)
        if max_res < cfg.tolerance:
            return NewtonResult(ctx.asplain(temp), iteration, True, max_res, history)

        dedt = table.energy_derivative(rho, temp, ctx)
        step = ctx.div(residual, dedt, "eos:nr_step")
        if cfg.relaxation != 1.0:
            step = ctx.mul(ctx.const(cfg.relaxation), step, "eos:nr_relax")
        temp_old_plain = ctx.asplain(temp)
        temp = ctx.sub(temp, step, "eos:nr_update")
        # keep the iterate inside the table and bound the per-iteration change
        # (plain clamps: control flow / safeguarding, not floating-point physics)
        temp_plain = np.clip(
            ctx.asplain(temp),
            np.maximum(cfg.temperature_floor, temp_old_plain / cfg.max_step_factor),
            np.minimum(cfg.temperature_ceiling, temp_old_plain * cfg.max_step_factor),
        )
        temp = ctx.const(temp_plain)

    return NewtonResult(ctx.asplain(temp), cfg.max_iterations, False, max_res, history)
