"""Synthetic Helmholtz-like tabulated equation of state.

The Cellular detonation workload in the paper uses Flash-X's Helmholtz EOS:
a table of free energy (and derivatives) on a (density, temperature) grid,
interpolated and then *inverted* with a Newton–Raphson iteration to match the
conditions in the simulation (the solver hands the EOS density and internal
energy and wants temperature and pressure back).

The real Helmholtz table is proprietary-sized (a large data file of
electron-positron quantities).  This reproduction builds a synthetic table
with the same structure and the same numerical mechanism — bilinear
interpolation in (log rho, log T) of a smooth, monotone-in-T internal energy
that combines ideal-gas ions, an electron-like component and radiation —
because Hypothesis 2 is about the *table-interpolation + Newton–Raphson*
pipeline, not about the exact stellar physics.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.opmode import FPContext, FullPrecisionContext

__all__ = ["HelmholtzTable"]

# physical-ish constants in CGS-flavoured units (values only set scales)
_K_B_OVER_MU = 8.314e7      # ideal-gas specific energy scale (erg/g/K per mean molecular weight)
_A_RAD = 7.5657e-15         # radiation constant (erg/cm^3/K^4)
_ELECTRON_COEFF = 3.0e6     # degenerate-electron-like contribution scale


@dataclass
class HelmholtzTable:
    """Tabulated internal energy and pressure on a (log rho, log T) grid.

    Parameters
    ----------
    rho_range, temp_range:
        Bounds (min, max) of the table in density and temperature.
    n_rho, n_temp:
        Table resolution.  The default (101 x 201) gives interpolation errors
        far below the truncation errors probed in the experiments.
    mu:
        Mean molecular weight of the ion mixture (carbon: ~12/7 with
        electrons; the exact value only scales energies).
    """

    rho_range: Tuple[float, float] = (1e4, 1e8)
    temp_range: Tuple[float, float] = (1e7, 1e10)
    n_rho: int = 101
    n_temp: int = 201
    mu: float = 1.75

    def __post_init__(self) -> None:
        self.log_rho = np.linspace(np.log10(self.rho_range[0]), np.log10(self.rho_range[1]), self.n_rho)
        self.log_temp = np.linspace(np.log10(self.temp_range[0]), np.log10(self.temp_range[1]), self.n_temp)
        rho = 10.0 ** self.log_rho[:, None]
        temp = 10.0 ** self.log_temp[None, :]
        self.energy_table = self._energy_model(rho, temp)      # erg/g
        self.pressure_table = self._pressure_model(rho, temp)  # erg/cm^3

    # ------------------------------------------------------------------
    # analytic model behind the synthetic table
    # ------------------------------------------------------------------
    def _energy_model(self, rho: np.ndarray, temp: np.ndarray) -> np.ndarray:
        ion = 1.5 * _K_B_OVER_MU / self.mu * temp
        radiation = _A_RAD * temp ** 4 / rho
        electron = _ELECTRON_COEFF * rho ** (2.0 / 3.0) * (1.0 + 1e-9 * temp)
        return ion + radiation + electron

    def _pressure_model(self, rho: np.ndarray, temp: np.ndarray) -> np.ndarray:
        ion = rho * _K_B_OVER_MU / self.mu * temp
        radiation = _A_RAD * temp ** 4 / 3.0
        electron = (2.0 / 3.0) * _ELECTRON_COEFF * rho ** (5.0 / 3.0) * (1.0 + 1e-9 * temp)
        return ion + radiation + electron

    # ------------------------------------------------------------------
    # table interpolation (the operations RAPTOR truncates)
    # ------------------------------------------------------------------
    def _locate(self, grid: np.ndarray, value: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(grid, value) - 1
        return np.clip(idx, 0, len(grid) - 2)

    def _bilinear(
        self,
        table: np.ndarray,
        rho,
        temp,
        ctx: FPContext,
    ):
        """Bilinear interpolation of ``table`` at (rho, temp).

        Index search runs on plain values (integer work); the arithmetic of
        the interpolation itself goes through the numerics context so the
        EOS module can be truncated.
        """
        log_rho = np.log10(np.maximum(ctx.asplain(rho), 10.0 ** self.log_rho[0]))
        log_temp = np.log10(np.maximum(ctx.asplain(temp), 10.0 ** self.log_temp[0]))
        i = self._locate(self.log_rho, log_rho)
        j = self._locate(self.log_temp, log_temp)

        x0 = self.log_rho[i]
        y0 = self.log_temp[j]
        dlr = self.log_rho[1] - self.log_rho[0]
        dlt = self.log_temp[1] - self.log_temp[0]
        # interpolation weights (truncated arithmetic)
        tx = ctx.div(ctx.sub(log_rho, x0, "eos:tx_num"), ctx.const(dlr), "eos:tx")
        ty = ctx.div(ctx.sub(log_temp, y0, "eos:ty_num"), ctx.const(dlt), "eos:ty")

        f00 = table[i, j]
        f10 = table[i + 1, j]
        f01 = table[i, j + 1]
        f11 = table[i + 1, j + 1]

        one = ctx.const(1.0)
        w00 = ctx.mul(ctx.sub(one, tx, "eos:w00a"), ctx.sub(one, ty, "eos:w00b"), "eos:w00")
        w10 = ctx.mul(tx, ctx.sub(one, ty, "eos:w10a"), "eos:w10")
        w01 = ctx.mul(ctx.sub(one, tx, "eos:w01a"), ty, "eos:w01")
        w11 = ctx.mul(tx, ty, "eos:w11")

        out = ctx.add(
            ctx.add(ctx.mul(w00, f00, "eos:c00"), ctx.mul(w10, f10, "eos:c10"), "eos:c0"),
            ctx.add(ctx.mul(w01, f01, "eos:c01"), ctx.mul(w11, f11, "eos:c11"), "eos:c1"),
            "eos:interp",
        )
        return out

    # ------------------------------------------------------------------
    # public lookups
    # ------------------------------------------------------------------
    def energy(self, rho, temp, ctx: Optional[FPContext] = None):
        """Specific internal energy e(rho, T) from the table."""
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        return self._bilinear(self.energy_table, rho, temp, ctx)

    def pressure(self, rho, temp, ctx: Optional[FPContext] = None):
        """Pressure p(rho, T) from the table."""
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        return self._bilinear(self.pressure_table, rho, temp, ctx)

    def energy_derivative(self, rho, temp, ctx: Optional[FPContext] = None, eps: float = 1e-4):
        """de/dT at constant density, from a centred difference of the table
        interpolation (this is what the Newton–Raphson update divides by —
        the cancellation-prone operation that reacts badly to truncation)."""
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        temp_plain = ctx.asplain(temp)
        dT = np.maximum(eps * temp_plain, 1e-30)
        e_hi = self.energy(rho, ctx.add(temp, dT, "eos:t_hi"), ctx)
        e_lo = self.energy(rho, ctx.sub(temp, dT, "eos:t_lo"), ctx)
        return ctx.div(
            ctx.sub(e_hi, e_lo, "eos:de"),
            ctx.mul(ctx.const(2.0), dT, "eos:two_dT"),
            "eos:dedT",
        )

    def analytic_energy(self, rho: np.ndarray, temp: np.ndarray) -> np.ndarray:
        """The analytic model (reference for tests; not used by the solver)."""
        return self._energy_model(np.asarray(rho, dtype=float), np.asarray(temp, dtype=float))

    def analytic_pressure(self, rho: np.ndarray, temp: np.ndarray) -> np.ndarray:
        return self._pressure_model(np.asarray(rho, dtype=float), np.asarray(temp, dtype=float))
