"""Floating-point format descriptions.

RAPTOR lets the user request truncation of 16/32/64-bit IEEE operations to an
arbitrary format described by an exponent width and a mantissa (fraction)
width, e.g. ``--raptor-truncate-all=64_to_5_14;32_to_3_8``.  This module
provides the :class:`FPFormat` value type used throughout the library, the
standard IEEE formats, and a parser for the paper's flag syntax.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = [
    "FPFormat",
    "FP64",
    "FP32",
    "FP16",
    "BF16",
    "FP8_E5M2",
    "FP8_E4M3",
    "STANDARD_FORMATS",
    "parse_truncation_spec",
]


@dataclass(frozen=True)
class FPFormat:
    """A binary floating-point format with ``exp_bits`` exponent bits and
    ``man_bits`` explicitly stored fraction bits (the leading significand bit
    is implicit, as in IEEE-754).

    The format follows IEEE-754 conventions: biased exponent, gradual
    underflow (subnormals), and overflow to infinity.
    """

    exp_bits: int
    man_bits: int
    #: cosmetic label; excluded from equality so FPFormat(5, 10) == FP16
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.exp_bits < 1:
            raise ValueError(f"exp_bits must be >= 1, got {self.exp_bits}")
        if self.exp_bits > 11:
            raise ValueError(
                f"exp_bits must be <= 11 (FP64 storage is used), got {self.exp_bits}"
            )
        if self.man_bits < 0:
            raise ValueError(f"man_bits must be >= 0, got {self.man_bits}")
        if self.man_bits > 52:
            raise ValueError(
                f"man_bits must be <= 52 (FP64 storage is used), got {self.man_bits}"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def precision(self) -> int:
        """Significand precision in bits (including the implicit bit)."""
        return self.man_bits + 1

    @property
    def eps(self) -> float:
        """Machine epsilon: distance from 1.0 to the next larger number."""
        return 2.0 ** (-self.man_bits)

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float((2.0 - 2.0 ** (-self.man_bits)) * 2.0 ** self.emax)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return float(2.0 ** self.emin)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return float(2.0 ** (self.emin - self.man_bits))

    @property
    def total_bits(self) -> int:
        """Storage width (sign + exponent + fraction)."""
        return 1 + self.exp_bits + self.man_bits

    def is_fp64(self) -> bool:
        """True when the format is (a superset of) IEEE binary64: quantising
        to it is the identity on finite doubles."""
        return self.exp_bits >= 11 and self.man_bits >= 52

    def spec(self) -> str:
        """The ``<exp>_<man>`` suffix used in RAPTOR's command-line flags."""
        return f"{self.exp_bits}_{self.man_bits}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"e{self.exp_bits}m{self.man_bits}"
        return f"FPFormat({label})"


#: IEEE binary64 (double precision).
FP64 = FPFormat(11, 52, "fp64")
#: IEEE binary32 (single precision).
FP32 = FPFormat(8, 23, "fp32")
#: IEEE binary16 (half precision).
FP16 = FPFormat(5, 10, "fp16")
#: bfloat16.
BF16 = FPFormat(8, 7, "bf16")
#: FP8 E5M2 (the FPNew / OCP variant used in Table 4 of the paper).
FP8_E5M2 = FPFormat(5, 2, "fp8_e5m2")
#: FP8 E4M3.
FP8_E4M3 = FPFormat(4, 3, "fp8_e4m3")

STANDARD_FORMATS: Dict[str, FPFormat] = {
    f.name: f for f in (FP64, FP32, FP16, BF16, FP8_E5M2, FP8_E4M3)
}


def parse_truncation_spec(spec: str) -> Dict[int, FPFormat]:
    """Parse a RAPTOR truncation flag value.

    The paper's flag syntax maps an original operand width to a target
    format, with multiple mappings separated by ``;``::

        >>> parse_truncation_spec("64_to_5_14;32_to_3_8")
        {64: FPFormat(e5m14), 32: FPFormat(e3m8)}

    Parameters
    ----------
    spec:
        String of the form ``"<from>_to_<exp>_<man>[;...]"``.

    Returns
    -------
    dict
        Mapping from original width (16, 32 or 64) to the target
        :class:`FPFormat`.
    """
    result: Dict[int, FPFormat] = {}
    for part in _split_nonempty(spec, ";"):
        tokens = part.split("_to_")
        if len(tokens) != 2:
            raise ValueError(f"malformed truncation spec element: {part!r}")
        try:
            from_width = int(tokens[0])
        except ValueError as exc:
            raise ValueError(f"malformed source width in {part!r}") from exc
        if from_width not in (16, 32, 64):
            raise ValueError(
                f"original operand width must be 16, 32 or 64, got {from_width}"
            )
        em = tokens[1].split("_")
        if len(em) != 2:
            raise ValueError(f"malformed target format in {part!r}")
        exp_bits, man_bits = int(em[0]), int(em[1])
        result[from_width] = FPFormat(exp_bits, man_bits)
    if not result:
        raise ValueError("empty truncation spec")
    return result


def _split_nonempty(text: str, sep: str) -> Iterable[str]:
    return [p for p in (s.strip() for s in text.split(sep)) if p]
