"""Function / file / program scope instrumentation.

RAPTOR offers three scopes (Figure 2b): *function* scope, where the user
requests a truncated clone of a specific function
(``_raptor_trunc_func_op``/``_raptor_trunc_func_mem``); *file* scope, where
every operation in a compilation unit is truncated; and *program* scope,
where the whole application is truncated via a compiler flag.

This module provides the Python equivalents:

* :func:`trunc_func_op` / :func:`trunc_func_mem` — return a truncated clone
  of a callable (the original stays untouched), exactly like the
  ``_raptor_trunc_func_*`` API in Figure 3.
* :func:`truncate_region` — a context manager that activates a truncation
  configuration for the dynamic extent of a ``with`` block (function scope
  for code that is not easily wrapped).
* :func:`program_scope` / :func:`file_scope` — process-wide and per-module
  activation, the analogues of ``--raptor-truncate-all`` and per-file flags.
* :func:`active_context` — what instrumented kernels call to find the
  numerics context they should execute with.

Scope activation is kept in a :class:`contextvars.ContextVar`, so nested
scopes and threaded kernels behave predictably (inner-most scope wins).
"""
from __future__ import annotations

import contextlib
import contextvars
import functools
import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

import numpy as np

from .array import TruncatedArray, truncate_array, untruncate
from .config import Mode, Scope, TruncationConfig
from .fpformat import FPFormat
from .memmode import ShadowArray, ShadowContext
from .opmode import FPContext, FullPrecisionContext, TruncatedContext, make_context
from .runtime import RaptorRuntime, get_runtime

__all__ = [
    "ScopeState",
    "truncate_region",
    "program_scope",
    "file_scope",
    "active_context",
    "active_config",
    "trunc_func_op",
    "trunc_func_mem",
    "trunc_func",
]


@dataclass
class ScopeState:
    """The currently active instrumentation scope."""

    config: Optional[TruncationConfig] = None
    #: module/file names the scope is restricted to (None = everywhere)
    modules: Optional[frozenset] = None
    runtime: Optional[RaptorRuntime] = None
    #: cache of contexts per module label
    _contexts: Dict[Optional[str], FPContext] = field(default_factory=dict)

    def applies_to(self, module: Optional[str]) -> bool:
        if self.config is None or not self.config.enabled:
            return False
        if self.modules is None:
            return True
        return module in self.modules

    def context(self, module: Optional[str] = None) -> FPContext:
        ctx = self._contexts.get(module)
        if ctx is None:
            runtime = self.runtime if self.runtime is not None else get_runtime()
            if self.applies_to(module):
                if self.config is not None and self.config.mode == Mode.MEM:
                    ctx = ShadowContext.from_config(self.config, runtime=runtime, module=module)
                else:
                    ctx = make_context(self.config, runtime=runtime, module=module)
            else:
                ctx = FullPrecisionContext(runtime=runtime, module=module)
            self._contexts[module] = ctx
        return ctx


_scope_var: contextvars.ContextVar[Optional[ScopeState]] = contextvars.ContextVar(
    "raptor_scope", default=None
)


def active_config() -> Optional[TruncationConfig]:
    """The truncation configuration of the innermost active scope (or None)."""
    state = _scope_var.get()
    return state.config if state is not None else None


def active_context(module: Optional[str] = None) -> FPContext:
    """Numerics context an instrumented kernel should use right now.

    Outside any scope this is a plain (counting) full-precision context;
    inside a scope it is the scope's truncating context, unless the scope is
    restricted to other modules.
    """
    state = _scope_var.get()
    if state is None:
        return FullPrecisionContext(module=module)
    return state.context(module)


@contextlib.contextmanager
def truncate_region(
    config: TruncationConfig,
    modules: Optional[Iterable[str]] = None,
    runtime: Optional[RaptorRuntime] = None,
):
    """Activate ``config`` for the dynamic extent of the ``with`` block.

    ``modules`` optionally restricts the truncation to kernels that identify
    themselves with one of the given module labels, which is how file scope
    is expressed (see :func:`file_scope`).
    """
    state = ScopeState(
        config=config,
        modules=frozenset(modules) if modules is not None else None,
        runtime=runtime,
    )
    token = _scope_var.set(state)
    try:
        yield state
    finally:
        _scope_var.reset(token)


def program_scope(
    config: TruncationConfig,
    runtime: Optional[RaptorRuntime] = None,
):
    """Program-scope truncation (``--raptor-truncate-all``)."""
    cfg = config
    cfg.scope = Scope.PROGRAM
    return truncate_region(cfg, modules=None, runtime=runtime)


def file_scope(
    config: TruncationConfig,
    modules: Iterable[str],
    runtime: Optional[RaptorRuntime] = None,
):
    """File-scope truncation: only kernels tagged with one of ``modules``.

    In the paper the unit is the compilation unit (one ``.cpp``/``.f90``
    file); here it is the module label kernels pass to
    :func:`active_context` — by convention the sub-package name
    (``"hydro"``, ``"eos"``, ``"incomp.advection"`` …).
    """
    cfg = config
    cfg.scope = Scope.FILE
    return truncate_region(cfg, modules=modules, runtime=runtime)


# ---------------------------------------------------------------------------
# function-scope clones (_raptor_trunc_func_{op,mem})
# ---------------------------------------------------------------------------
def _wrap_arrays(args, kwargs, fmt: FPFormat, runtime, module):
    """Wrap ndarray arguments as TruncatedArray (op-mode function scope)."""
    def wrap(x):
        if isinstance(x, np.ndarray) and x.dtype.kind == "f":
            return truncate_array(x, fmt, runtime=runtime, module=module)
        return x

    return [wrap(a) for a in args], {k: wrap(v) for k, v in kwargs.items()}


def trunc_func_op(
    func: Callable,
    from_width: int = 64,
    to_exponent: int = 11,
    to_mantissa: int = 52,
    runtime: Optional[RaptorRuntime] = None,
    module: Optional[str] = None,
    **config_kwargs,
) -> Callable:
    """Return an op-mode truncated clone of ``func``.

    Mirrors ``_raptor_trunc_func_op(foo, 32, 5, 8)`` from Figure 3b: the
    returned callable has the same signature as ``func``; inside it, a
    truncation scope is active and floating-point ndarray arguments are
    wrapped with the transparent numpy hook so that even plain-numpy code is
    truncated.  The return value is converted back to plain binary64 arrays
    (op-mode keeps boundary values in the original IEEE type).
    """
    fmt = FPFormat(to_exponent, to_mantissa)
    config = TruncationConfig(
        targets={from_width: fmt}, mode=Mode.OP, scope=Scope.FUNCTION, **config_kwargs
    )
    rt = runtime if runtime is not None else get_runtime()
    label = module or getattr(func, "__name__", "func")

    @functools.wraps(func)
    def truncated(*args, **kwargs):
        wrapped_args, wrapped_kwargs = _wrap_arrays(args, kwargs, fmt, rt, label)
        with truncate_region(config, runtime=rt):
            result = func(*wrapped_args, **wrapped_kwargs)
        return _unwrap_result(result)

    truncated.__raptor_config__ = config
    return truncated


def trunc_func_mem(
    func: Callable,
    from_width: int = 64,
    to_exponent: int = 11,
    to_mantissa: int = 52,
    threshold: float = 1e-6,
    runtime: Optional[RaptorRuntime] = None,
    module: Optional[str] = None,
    excluded_modules: Iterable[str] = (),
    **config_kwargs,
) -> Callable:
    """Return a mem-mode truncated clone of ``func``.

    Mirrors ``_raptor_trunc_func_mem`` (Figure 3c).  Floating-point ndarray
    arguments are lifted to :class:`~repro.core.memmode.ShadowArray`
    (the ``_raptor_pre_c`` conversions); the function must perform its
    arithmetic either through operators on those shadows or through the
    context returned by :func:`active_context`; the result is lowered back
    to plain arrays (``_raptor_post_c``).  The clone exposes the shadow
    context on its ``.context`` attribute so callers can query the deviation
    report afterwards.
    """
    fmt = FPFormat(to_exponent, to_mantissa)
    config = TruncationConfig(
        targets={from_width: fmt},
        mode=Mode.MEM,
        scope=Scope.FUNCTION,
        deviation_threshold=threshold,
        **config_kwargs,
    )
    rt = runtime if runtime is not None else get_runtime()
    label = module or getattr(func, "__name__", "func")
    ctx = ShadowContext.from_config(config, runtime=rt, module=label)
    ctx.exclude(*excluded_modules)

    @functools.wraps(func)
    def truncated(*args, **kwargs):
        def lift(x):
            if isinstance(x, np.ndarray) and x.dtype.kind == "f":
                return ctx.lift(x)
            return x

        lifted_args = [lift(a) for a in args]
        lifted_kwargs = {k: lift(v) for k, v in kwargs.items()}
        state = ScopeState(config=config, runtime=rt)
        state._contexts[None] = ctx
        state._contexts[label] = ctx
        token = _scope_var.set(state)
        try:
            result = func(*lifted_args, **lifted_kwargs)
        finally:
            _scope_var.reset(token)
        return _unwrap_result(result)

    truncated.__raptor_config__ = config
    truncated.context = ctx
    return truncated


def trunc_func(
    from_width: int = 64,
    to_exponent: int = 11,
    to_mantissa: int = 52,
    mode: Mode | str = Mode.OP,
    **kwargs,
) -> Callable[[Callable], Callable]:
    """Decorator form: ``@trunc_func(64, 8, 23)`` above a kernel definition."""
    mode = Mode(mode)

    def decorate(func: Callable) -> Callable:
        if mode == Mode.MEM:
            return trunc_func_mem(func, from_width, to_exponent, to_mantissa, **kwargs)
        return trunc_func_op(func, from_width, to_exponent, to_mantissa, **kwargs)

    return decorate


def _unwrap_result(result):
    """Convert TruncatedArray / ShadowArray results back to plain arrays."""
    if isinstance(result, ShadowArray):
        return result.value.copy()
    if isinstance(result, TruncatedArray):
        return untruncate(result)
    if isinstance(result, tuple):
        return tuple(_unwrap_result(r) for r in result)
    if isinstance(result, list):
        return [_unwrap_result(r) for r in result]
    if isinstance(result, dict):
        return {k: _unwrap_result(v) for k, v in result.items()}
    return result
