"""Source-location registry.

RAPTOR's compiler pass embeds the source location (``file:line:col``) of every
instrumented floating-point operation and the runtime aggregates statistics
per location.  In this source-level reproduction, locations are captured with
:mod:`inspect` at the call site of a truncated operation (one frame above the
numerics context), or supplied explicitly by kernels that want stable labels.
"""
from __future__ import annotations

import inspect
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["SourceLocation", "LocationRegistry", "capture_location"]


@dataclass(frozen=True)
class SourceLocation:
    """A source code location, ``file:line`` plus an optional label.

    ``label`` lets solver kernels register semantically meaningful names
    (e.g. ``"hydro/reconstruction:weno5"``) instead of raw line numbers,
    which is how the experiments in the paper group flagged operations by
    solver component.
    """

    filename: str
    lineno: int
    label: str = ""

    def short(self) -> str:
        base = os.path.basename(self.filename) if self.filename else "<unknown>"
        loc = f"{base}:{self.lineno}"
        return f"{loc} [{self.label}]" if self.label else loc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.short()


_UNKNOWN = SourceLocation("<unknown>", 0)

#: directory containing the instrumentation internals; frames from here are
#: skipped when attributing an operation to user code
_CORE_DIR = os.path.dirname(os.path.abspath(__file__))


def capture_location(depth: int = 2, label: str = "", skip_internal: bool = True) -> SourceLocation:
    """Capture the caller's source location.

    Parameters
    ----------
    depth:
        Number of frames to walk up from this function (2 = caller of the
        function that called ``capture_location``).
    label:
        Optional semantic label attached to the location.
    skip_internal:
        After walking ``depth`` frames, keep walking past frames that live in
        :mod:`repro.core` itself, so operations are attributed to the user's
        kernel rather than to the context machinery (matching RAPTOR, which
        records the location of the original instruction, not the runtime).
    """
    frame = inspect.currentframe()
    try:
        for _ in range(depth):
            if frame is None:
                return _UNKNOWN
            frame = frame.f_back
        if skip_internal:
            while frame is not None and os.path.dirname(os.path.abspath(frame.f_code.co_filename)) == _CORE_DIR:
                frame = frame.f_back
        if frame is None:
            return _UNKNOWN
        return SourceLocation(frame.f_code.co_filename, frame.f_lineno, label)
    finally:
        del frame


@dataclass
class LocationRegistry:
    """Assigns stable integer identifiers to source locations.

    Thread-safe; identifiers are dense and start at 0 so they can index
    per-location statistics arrays.
    """

    _ids: Dict[SourceLocation, int] = field(default_factory=dict)
    _by_id: Dict[int, SourceLocation] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def intern(self, loc: SourceLocation) -> int:
        """Return the identifier for ``loc``, creating one if necessary."""
        with self._lock:
            ident = self._ids.get(loc)
            if ident is None:
                ident = len(self._ids)
                self._ids[loc] = ident
                self._by_id[ident] = loc
            return ident

    def lookup(self, ident: int) -> Optional[SourceLocation]:
        """Return the location for an identifier, or ``None``."""
        return self._by_id.get(ident)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, loc: SourceLocation) -> bool:
        return loc in self._ids

    def locations(self):
        """Iterate over ``(id, location)`` pairs in insertion order."""
        return list(self._by_id.items())

    def clear(self) -> None:
        with self._lock:
            self._ids.clear()
            self._by_id.clear()
