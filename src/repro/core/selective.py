"""Selective and dynamic truncation policies.

Section 6 of the paper explores three truncation modes:

1. *Global truncation* — every operation in the scope is truncated
   (:class:`GlobalPolicy`).
2. *Selective truncation with AMR* — truncation is applied only on blocks at
   levels coarser than ``M - l`` where ``M`` is the maximum refinement level
   (:class:`AMRCutoffPolicy`).  This is the "dynamic truncation" feature of
   Table 1: whether an operation is truncated depends on the simulation
   state (the block's refinement level) at run time.
3. *Selective truncation of a physics module* — only operations belonging to
   a chosen module (hydro, eos, advection, diffusion…) are truncated
   (:class:`ModulePolicy`).

A policy is consulted by the simulation driver for every (module, block)
pair and returns the numerics context to use — either a truncating context
or the shared full-precision context.  Policies compose with both op-mode
and mem-mode contexts.
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from .config import Mode, TruncationConfig
from .memmode import ShadowContext
from .opmode import FPContext, FullPrecisionContext, TruncatedContext
from .runtime import RaptorRuntime, get_runtime

__all__ = [
    "TruncationPolicy",
    "NoTruncationPolicy",
    "GlobalPolicy",
    "AMRCutoffPolicy",
    "ModulePolicy",
    "PredicatePolicy",
]


class TruncationPolicy:
    """Decides, per (module, block level), whether operations are truncated.

    Subclasses implement :meth:`should_truncate`; the base class handles
    context construction and caching so repeated queries are cheap.

    ``plane`` selects the kernel plane of the contexts the policy hands
    out (see :mod:`repro.kernels`): ``"auto"`` (default) substitutes the
    fused planes only where nothing would be recorded anyway — binary64
    contexts onto the binary64 fast plane, *non-counting* truncating
    op-mode contexts onto the fused truncating plane — ``"fast"``
    additionally substitutes every full-precision context (states
    bit-identical, counters for those contexts dropped, with a warning),
    ``"instrumented"`` never substitutes.  Counting truncating contexts
    and shadow contexts always stay instrumented — they are the
    measurement.
    """

    def __init__(
        self,
        config: Optional[TruncationConfig],
        runtime: Optional[RaptorRuntime] = None,
        plane: str = "auto",
    ) -> None:
        from ..kernels.dispatch import validate_plane

        self.config = config
        self.runtime = runtime if runtime is not None else get_runtime()
        self.plane = validate_plane(plane)
        self._full_contexts: Dict[Optional[str], FPContext] = {}
        self._trunc_contexts: Dict[Optional[str], FPContext] = {}

    # -- to be overridden -----------------------------------------------------
    def should_truncate(
        self,
        module: Optional[str] = None,
        level: Optional[int] = None,
        max_level: Optional[int] = None,
        state: Optional[dict] = None,
    ) -> bool:
        raise NotImplementedError

    # -- context factory --------------------------------------------------------
    def _full_context(self, module: Optional[str]) -> FPContext:
        ctx = self._full_contexts.get(module)
        if ctx is None:
            from ..kernels.dispatch import select_context

            count = self.config.count_ops if self.config is not None else True
            track = self.config.track_memory if self.config is not None else True
            ctx = select_context(
                FullPrecisionContext(
                    runtime=self.runtime, count_ops=count, track_memory=track, module=module
                ),
                self.plane,
            )
            self._full_contexts[module] = ctx
        return ctx

    def full_context(self, module: Optional[str] = None) -> FPContext:
        """The full-precision context of this policy for ``module``, on the
        policy's kernel plane — for code that always runs untruncated but
        should still ride the fast plane when the policy selects it.

        The context is bound to the **policy's** runtime.  Callers that
        count into a per-run runtime the policy was not built on must
        instead build their own context and route it through
        :func:`repro.kernels.select_context` with this policy's ``plane``
        (see the burn context in ``repro.workloads.cellular``)."""
        return self._full_context(module)

    def _truncated_context(self, module: Optional[str]) -> FPContext:
        ctx = self._trunc_contexts.get(module)
        if ctx is None:
            assert self.config is not None
            if self.config.mode == Mode.MEM:
                # shadow contexts are the measurement: never re-planed
                ctx = ShadowContext.from_config(self.config, runtime=self.runtime, module=module)
            else:
                from ..kernels.dispatch import select_context

                ctx = select_context(
                    TruncatedContext.from_config(self.config, runtime=self.runtime, module=module),
                    self.plane,
                )
            self._trunc_contexts[module] = ctx
        return ctx

    def context_for(
        self,
        module: Optional[str] = None,
        level: Optional[int] = None,
        max_level: Optional[int] = None,
        state: Optional[dict] = None,
    ) -> FPContext:
        """Return the numerics context for an operation site."""
        if (
            self.config is None
            or self.config.is_noop()
            or not self.should_truncate(module=module, level=level, max_level=max_level, state=state)
        ):
            return self._full_context(module)
        return self._truncated_context(module)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        cfg = self.config.describe() if self.config is not None else "none"
        return f"{type(self).__name__}({cfg})"


class NoTruncationPolicy(TruncationPolicy):
    """Full precision everywhere — the reference runs of Section 6."""

    def __init__(
        self,
        runtime: Optional[RaptorRuntime] = None,
        count_ops: bool = True,
        track_memory: bool = True,
        plane: str = "auto",
    ) -> None:
        cfg = TruncationConfig(enabled=False, count_ops=count_ops, track_memory=track_memory)
        super().__init__(cfg, runtime, plane=plane)

    def should_truncate(self, **_kwargs) -> bool:
        return False


class GlobalPolicy(TruncationPolicy):
    """Truncate every operation in the instrumented scope (M−0 / Full Trunc)."""

    def should_truncate(self, **_kwargs) -> bool:
        return True


class AMRCutoffPolicy(TruncationPolicy):
    """Truncate only blocks coarser than the cutoff level ``M - l``.

    Parameters
    ----------
    cutoff:
        The ``l`` in the paper's ``M − l`` notation: ``cutoff=0`` truncates
        everything, ``cutoff=1`` disables truncation on the most refined
        level, ``cutoff=2`` on the two most refined levels, and so on.
    modules:
        Optional restriction of the truncation to a set of physics modules
        (e.g. only the hydro solver, or only advection + diffusion); ``None``
        truncates all modules on eligible blocks.
    """

    def __init__(
        self,
        config: TruncationConfig,
        cutoff: int,
        modules: Optional[Iterable[str]] = None,
        runtime: Optional[RaptorRuntime] = None,
        plane: str = "auto",
    ) -> None:
        super().__init__(config, runtime, plane=plane)
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        self.cutoff = int(cutoff)
        self.modules = set(modules) if modules is not None else None

    def should_truncate(
        self,
        module: Optional[str] = None,
        level: Optional[int] = None,
        max_level: Optional[int] = None,
        state: Optional[dict] = None,
    ) -> bool:
        if self.modules is not None and module not in self.modules:
            return False
        if level is None or max_level is None:
            # No AMR information available: behave like global truncation,
            # mirroring file/program scope on non-AMR code.
            return True
        # M-0 truncates everything; M-l leaves the l most refined levels
        # (levels > max_level - l) at full precision.
        return level <= max_level - self.cutoff

    def describe(self) -> str:
        mods = sorted(self.modules) if self.modules is not None else "all"
        return f"AMRCutoffPolicy(M-{self.cutoff}, modules={mods}, {self.config.describe()})"


class ModulePolicy(TruncationPolicy):
    """Truncate only the listed physics modules (entire-module truncation).

    Used for the Cellular experiment (truncating the EOS module) and the
    Bubble experiment (truncating advection and diffusion operators).
    """

    def __init__(
        self,
        config: TruncationConfig,
        modules: Iterable[str],
        runtime: Optional[RaptorRuntime] = None,
        plane: str = "auto",
    ) -> None:
        super().__init__(config, runtime, plane=plane)
        self.modules = set(modules)

    def should_truncate(self, module: Optional[str] = None, **_kwargs) -> bool:
        return module in self.modules

    def describe(self) -> str:
        return f"ModulePolicy(modules={sorted(self.modules)}, {self.config.describe()})"


class PredicatePolicy(TruncationPolicy):
    """Fully dynamic truncation driven by an arbitrary predicate.

    The predicate receives ``(module, level, max_level, state)`` and returns
    True to truncate.  This is the general form of "dynamic truncation"
    (Table 1, feature 3): e.g. truncate only where the local solution is
    smooth, or only after a given simulation time.
    """

    def __init__(
        self,
        config: TruncationConfig,
        predicate: Callable[[Optional[str], Optional[int], Optional[int], Optional[dict]], bool],
        runtime: Optional[RaptorRuntime] = None,
        plane: str = "auto",
    ) -> None:
        super().__init__(config, runtime, plane=plane)
        self.predicate = predicate

    def should_truncate(
        self,
        module: Optional[str] = None,
        level: Optional[int] = None,
        max_level: Optional[int] = None,
        state: Optional[dict] = None,
    ) -> bool:
        return bool(self.predicate(module, level, max_level, state))
