"""Truncation configuration: scope, mode, and target formats.

This mirrors the configuration matrix in Figure 2b of the paper:

=========  ================  ==================
Scope      op-mode           mem-mode
=========  ================  ==================
Function   fully automatic   semi automatic
File       fully automatic   n/a
Program    fully automatic   n/a
=========  ================  ==================

In this reproduction "fully automatic" corresponds to the numpy-hook /
context-manager instrumentation (no kernel changes needed) and
"semi automatic" to the explicit conversion of region inputs/outputs into
shadow values (see :mod:`repro.core.memmode`), exactly paralleling the extra
user annotations mem-mode requires in the paper (Figure 3c).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from .fpformat import FP64, FPFormat, parse_truncation_spec
from .quantize import RoundingMode

__all__ = ["Mode", "Scope", "TruncationConfig"]


class Mode(str, enum.Enum):
    """RAPTOR operation modes."""

    OP = "op"
    MEM = "mem"


class Scope(str, enum.Enum):
    """Granularity at which the truncation is applied."""

    FUNCTION = "function"
    FILE = "file"
    PROGRAM = "program"


@dataclass
class TruncationConfig:
    """Complete description of one truncation request.

    Parameters
    ----------
    targets:
        Mapping from original operand width (16/32/64) to the target format.
        Most experiments truncate 64-bit operations only.
    mode:
        Op-mode or mem-mode.
    scope:
        Function, file, or program scope.
    rounding:
        Rounding mode for the emulated operations.
    count_ops:
        Whether the runtime counts truncated / full-precision operations
        (needed for the bars in Figure 7 and the co-design model).
    track_memory:
        Whether the runtime counts bytes moved in truncated / full regions
        (needed for the memory-bound speedup model, Figure 8).
    track_errors:
        Whether op-mode records per-location rounding-error statistics.
    deviation_threshold:
        Mem-mode only: relative deviation (vs. the FP64 shadow) above which
        an operation is flagged.
    optimized:
        Use the scratch-pad optimised runtime path (Figure 4b) instead of
        the naive per-operation allocation path (Figure 5a).  Results are
        identical; only the overhead differs (Table 3).
    """

    targets: Dict[int, FPFormat] = field(default_factory=lambda: {64: FP64})
    mode: Mode = Mode.OP
    scope: Scope = Scope.PROGRAM
    rounding: str = RoundingMode.NEAREST_EVEN
    count_ops: bool = True
    track_memory: bool = True
    track_errors: bool = False
    deviation_threshold: float = 1e-6
    optimized: bool = True
    enabled: bool = True

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: str,
        mode: Mode | str = Mode.OP,
        scope: Scope | str = Scope.PROGRAM,
        **kwargs,
    ) -> "TruncationConfig":
        """Build a configuration from the paper's flag syntax.

        >>> cfg = TruncationConfig.from_spec("64_to_5_14;32_to_3_8")
        >>> cfg.targets[64].man_bits
        14
        """
        return cls(
            targets=parse_truncation_spec(spec),
            mode=Mode(mode),
            scope=Scope(scope),
            **kwargs,
        )

    @classmethod
    def mantissa(
        cls,
        man_bits: int,
        exp_bits: int = 11,
        from_width: int = 64,
        **kwargs,
    ) -> "TruncationConfig":
        """Convenience constructor used by the mantissa sweeps in Section 6:
        truncate ``from_width``-bit operations to ``exp_bits``/``man_bits``."""
        return cls(targets={from_width: FPFormat(exp_bits, man_bits)}, **kwargs)

    # ------------------------------------------------------------------
    def target_for(self, width: int = 64) -> Optional[FPFormat]:
        """Target format for operations on ``width``-bit operands (or None)."""
        return self.targets.get(width)

    @property
    def fmt(self) -> FPFormat:
        """The 64-bit target format (the common case in the experiments)."""
        return self.targets.get(64, FP64)

    def is_noop(self) -> bool:
        """True when the configuration would not change any operation."""
        return (not self.enabled) or all(f.is_fp64() for f in self.targets.values())

    def describe(self) -> str:
        parts = [f"{w}->e{f.exp_bits}m{f.man_bits}" for w, f in sorted(self.targets.items())]
        return (
            f"TruncationConfig(mode={self.mode.value}, scope={self.scope.value}, "
            f"targets=[{', '.join(parts)}], rounding={self.rounding})"
        )
