"""Mem-mode: persistent emulated values with FP64 shadow tracking.

In RAPTOR's mem-mode the emulated (MPFR) representation of every value is
*memorised* between operations instead of being converted back after each
one.  Each value additionally carries a double-precision shadow that is
updated with full-precision operations, so the runtime can monitor the
deviation of the truncated trajectory from the FP64 trajectory for every
single operation, flag operations whose deviation exceeds a threshold, and
correlate the flags back to source locations (the "heat-map" used for the
numerical-debugging workflow of Section 6.3 / Table 2).

Reproduction mapping:

* ``_raptor_fp`` struct (MPFR variable + shadow + bookkeeping)  →
  :class:`ShadowArray` (truncated payload + FP64 shadow, vectorised).
* ``_raptor_pre_c`` / ``_raptor_post_c`` converters             →
  :func:`to_shadow` / :func:`from_shadow`.
* runtime flagging & location statistics                        →
  :class:`ShadowContext` + :class:`DeviationReport`.
* dynamic exclusion of modules from truncation (Table 2 rows)   →
  ``ShadowContext.exclude`` / ``excluded_modules``.

Because numpy cannot exceed binary64, the shadow is always binary64 and the
emulated target precision is limited to 52 mantissa bits; "precision
increase" is therefore supported relative to truncated formats (the only way
the paper's evaluation uses it).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .config import TruncationConfig
from .fpformat import FPFormat
from .opmode import FPContext
from .quantize import RoundingMode, quantize
from .registry import SourceLocation, capture_location
from .runtime import RaptorRuntime, get_runtime

__all__ = [
    "ShadowArray",
    "ShadowContext",
    "DeviationReport",
    "to_shadow",
    "from_shadow",
]

ArrayLike = Union[float, int, np.ndarray, "ShadowArray"]


class ShadowArray:
    """A value (array) carrying both a truncated payload and an FP64 shadow.

    ``value`` is the truncated trajectory (stored in binary64 but always
    exactly representable in the context's target format); ``shadow`` is the
    trajectory the application would have followed had it stayed in FP64.

    Arithmetic operators are routed through the owning
    :class:`ShadowContext`, so ordinary numpy-style expressions inside a
    mem-mode region keep both trajectories up to date and feed the deviation
    statistics.  Comparisons and boolean tests use the truncated payload —
    that is what the truncated application actually branches on.
    """

    __slots__ = ("value", "shadow", "ctx")

    def __init__(self, value: np.ndarray, shadow: np.ndarray, ctx: "ShadowContext") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.shadow = np.asarray(shadow, dtype=np.float64)
        if self.value.shape != self.shadow.shape:
            raise ValueError(
                f"value/shadow shape mismatch: {self.value.shape} vs {self.shadow.shape}"
            )
        self.ctx = ctx

    # -- array protocol -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def ndim(self) -> int:
        return self.value.ndim

    @property
    def size(self) -> int:
        return self.value.size

    def __len__(self) -> int:
        return len(self.value)

    def __getitem__(self, key) -> "ShadowArray":
        return ShadowArray(self.value[key], self.shadow[key], self.ctx)

    def __setitem__(self, key, other: ArrayLike) -> None:
        if isinstance(other, ShadowArray):
            self.value[key] = other.value
            self.shadow[key] = other.shadow
        else:
            arr = np.asarray(other, dtype=np.float64)
            self.value[key] = self.ctx._quantize(arr)
            self.shadow[key] = arr

    def copy(self) -> "ShadowArray":
        return ShadowArray(self.value.copy(), self.shadow.copy(), self.ctx)

    def deviation(self) -> np.ndarray:
        """Element-wise absolute deviation of the truncated trajectory."""
        return np.abs(self.value - self.shadow)

    def relative_deviation(self) -> np.ndarray:
        dev = self.deviation()
        scale = np.maximum(np.abs(self.shadow), np.finfo(np.float64).tiny)
        return dev / scale

    # -- arithmetic routed through the context ---------------------------------
    def __add__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.add(self, other)

    def __radd__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.add(other, self)

    def __sub__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.sub(other, self)

    def __mul__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.div(other, self)

    def __pow__(self, other: ArrayLike) -> "ShadowArray":
        return self.ctx.power(self, other)

    def __neg__(self) -> "ShadowArray":
        return self.ctx.neg(self)

    def __abs__(self) -> "ShadowArray":
        return self.ctx.abs(self)

    # -- comparisons on the truncated payload ----------------------------------
    def _other_value(self, other: ArrayLike) -> np.ndarray:
        return other.value if isinstance(other, ShadowArray) else np.asarray(other, dtype=np.float64)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.value < self._other_value(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.value <= self._other_value(other)

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.value > self._other_value(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.value >= self._other_value(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShadowArray(shape={self.value.shape}, fmt=e{self.ctx.fmt.exp_bits}m{self.ctx.fmt.man_bits})"


@dataclass
class DeviationReport:
    """Summary of flagged operations, grouped by source location."""

    threshold: float
    entries: List[Tuple[SourceLocation, int, int, float]]
    # each entry: (location, flagged_count, total_count, max_rel_deviation)

    def top(self, n: int = 10) -> List[Tuple[SourceLocation, int, int, float]]:
        return self.entries[:n]

    def flagged_labels(self) -> List[str]:
        """Distinct labels of flagged locations, most-flagged first."""
        seen: List[str] = []
        for loc, flagged, _, _ in self.entries:
            if flagged > 0 and loc.label and loc.label not in seen:
                seen.append(loc.label)
        return seen

    def to_text(self) -> str:
        lines = [f"mem-mode deviation report (threshold={self.threshold:g})"]
        lines.append(f"{'location':<48} {'flagged':>10} {'ops':>14} {'max rel dev':>12}")
        for loc, flagged, count, maxdev in self.entries:
            lines.append(f"{loc.short():<48} {flagged:>10} {count:>14} {maxdev:>12.3e}")
        return "\n".join(lines)


class ShadowContext(FPContext):
    """Mem-mode numerics context.

    Every operation updates the truncated payload (rounded to ``fmt`` unless
    the operation's module is excluded) and the FP64 shadow, computes the
    relative deviation between the two, and flags locations whose deviation
    exceeds ``threshold``.

    Parameters
    ----------
    fmt:
        Target format of the truncated trajectory.
    threshold:
        Relative deviation above which an operation instance is flagged.
    excluded_modules:
        Iterable of module names whose operations are kept at full precision
        (the "excluded modules" rows of Table 2).  Exclusion is dynamic — it
        is honoured at call time, which is why the paper notes both Table 3
        mem-mode rows have comparable overhead.
    """

    truncating = True

    def __init__(
        self,
        fmt: FPFormat,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
        threshold: float = 1e-6,
        excluded_modules: Iterable[str] = (),
        rounding: str = RoundingMode.NEAREST_EVEN,
        count_ops: bool = True,
        track_memory: bool = True,
    ) -> None:
        self.fmt = fmt
        self.name = f"mem:e{fmt.exp_bits}m{fmt.man_bits}"
        self.runtime = runtime if runtime is not None else get_runtime()
        self.module = module
        self.threshold = float(threshold)
        self.excluded_modules = set(excluded_modules)
        self.rounding = rounding
        self.count_ops = count_ops
        self.track_memory = track_memory
        # local flag bookkeeping: location-id -> [flagged, total, max_rel_dev]
        self._flags: Dict[SourceLocation, List[float]] = {}

    @classmethod
    def from_config(
        cls,
        config: TruncationConfig,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
        excluded_modules: Iterable[str] = (),
    ) -> "ShadowContext":
        return cls(
            config.fmt,
            runtime=runtime,
            module=module,
            threshold=config.deviation_threshold,
            excluded_modules=excluded_modules,
            rounding=config.rounding,
            count_ops=config.count_ops,
            track_memory=config.track_memory,
        )

    # ------------------------------------------------------------------
    # exclusion management (the Table 2 workflow)
    # ------------------------------------------------------------------
    def exclude(self, *modules: str) -> None:
        """Add modules to the full-precision exclusion list."""
        self.excluded_modules.update(modules)

    def include(self, *modules: str) -> None:
        """Remove modules from the exclusion list (re-enable truncation)."""
        self.excluded_modules.difference_update(modules)

    def scoped(self, module: str) -> "ShadowContext":
        """A view of this context tagged with a different module name.

        The view shares the runtime, flag bookkeeping and exclusion list, so
        a single mem-mode region can contain several solver components each
        reporting under its own module label.
        """
        view = ShadowContext.__new__(ShadowContext)
        view.fmt = self.fmt
        view.name = self.name
        view.runtime = self.runtime
        view.module = module
        view.threshold = self.threshold
        view.excluded_modules = self.excluded_modules
        view.rounding = self.rounding
        view.count_ops = self.count_ops
        view.track_memory = self.track_memory
        view._flags = self._flags
        return view

    # ------------------------------------------------------------------
    def _quantize(self, arr: np.ndarray) -> np.ndarray:
        return quantize(arr, self.fmt, self.rounding)

    def _truncation_active(self) -> bool:
        return self.module not in self.excluded_modules

    def const(self, x: ArrayLike) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        return self._quantize(arr) if self._truncation_active() else arr

    def lift(self, x: ArrayLike) -> ShadowArray:
        """Convert a plain array (or ShadowArray) into a ShadowArray of this
        context (the ``_raptor_pre_c`` conversion)."""
        if isinstance(x, ShadowArray):
            return ShadowArray(x.value, x.shadow, self)
        arr = np.asarray(x, dtype=np.float64)
        value = self._quantize(arr) if self._truncation_active() else arr.copy()
        return ShadowArray(value, arr.copy(), self)

    def lower(self, x: ArrayLike) -> np.ndarray:
        """Extract the truncated payload (the ``_raptor_post_c`` conversion)."""
        if isinstance(x, ShadowArray):
            return x.value.copy()
        return np.asarray(x, dtype=np.float64)

    # ------------------------------------------------------------------
    def _split(self, x: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(x, ShadowArray):
            return x.value, x.shadow
        arr = np.asarray(x, dtype=np.float64)
        return arr, arr

    def _location(self, label: str) -> SourceLocation:
        # capture_location -> _location -> _apply/_reduce -> op method -> kernel
        return capture_location(depth=4, label=label)

    def _record(
        self,
        result_value: np.ndarray,
        result_shadow: np.ndarray,
        inputs_sizes: int,
        label: str,
        truncated: bool,
    ) -> None:
        n = int(np.size(result_value))
        loc = self._location(label)
        if truncated:
            dev = np.abs(result_value - result_shadow)
            scale = np.maximum(np.abs(result_shadow), np.finfo(np.float64).tiny)
            rel = dev / scale
            flagged = int(np.count_nonzero(rel > self.threshold))
            maxrel = float(np.max(rel)) if rel.size else 0.0
            entry = self._flags.setdefault(loc, [0, 0, 0.0])
            entry[0] += flagged
            entry[1] += n
            entry[2] = max(entry[2], maxrel)
            if self.count_ops:
                self.runtime.record_truncated_ops(
                    n, location=loc, module=self.module, abs_err=dev, rel_err=rel, flagged=flagged
                )
            if self.track_memory:
                self.runtime.record_truncated_bytes(8 * (n + inputs_sizes))
        else:
            entry = self._flags.setdefault(loc, [0, 0, 0.0])
            entry[1] += n
            if self.count_ops:
                self.runtime.record_full_ops(n, module=self.module)
            if self.track_memory:
                self.runtime.record_full_bytes(8 * (n + inputs_sizes))

    def _apply(self, ufunc, inputs: Sequence[ArrayLike], label: str):
        pairs = [self._split(x) for x in inputs]
        values = [p[0] for p in pairs]
        shadows = [p[1] for p in pairs]
        truncated = self._truncation_active()
        exact_value = ufunc(*values)
        result_value = self._quantize(exact_value) if truncated else exact_value
        result_shadow = ufunc(*shadows)
        self._record(
            result_value,
            result_shadow,
            sum(int(np.size(v)) for v in values),
            label,
            truncated,
        )
        return ShadowArray(result_value, result_shadow, self)

    def _reduce(self, ufunc, a: ArrayLike, axis: Optional[int], label: str):
        value, shadow = self._split(a)
        truncated = self._truncation_active()
        exact_value = ufunc.reduce(value, axis=axis)
        result_value = self._quantize(exact_value) if truncated else exact_value
        result_shadow = ufunc.reduce(shadow, axis=axis)
        result_value = np.asarray(result_value, dtype=np.float64)
        result_shadow = np.asarray(result_shadow, dtype=np.float64)
        self._record(result_value, result_shadow, int(np.size(value)), label, truncated)
        return ShadowArray(result_value, result_shadow, self)

    # -- structural (non-arithmetic) operations ---------------------------------
    def where(self, cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> ShadowArray:
        cond_arr = cond.value.astype(bool) if isinstance(cond, ShadowArray) else np.asarray(cond, dtype=bool)
        av, ash = self._split(a)
        bv, bsh = self._split(b)
        return ShadowArray(np.where(cond_arr, av, bv), np.where(cond_arr, ash, bsh), self)

    def stack(self, arrays: Sequence[ArrayLike], axis: int = 0) -> ShadowArray:
        pairs = [self._split(a) for a in arrays]
        return ShadowArray(
            np.stack([p[0] for p in pairs], axis=axis),
            np.stack([p[1] for p in pairs], axis=axis),
            self,
        )

    def concatenate(self, arrays: Sequence[ArrayLike], axis: int = 0) -> ShadowArray:
        pairs = [self._split(a) for a in arrays]
        return ShadowArray(
            np.concatenate([p[0] for p in pairs], axis=axis),
            np.concatenate([p[1] for p in pairs], axis=axis),
            self,
        )

    def sign(self, a: ArrayLike) -> np.ndarray:
        value, _ = self._split(a)
        return np.sign(value)

    def zeros_like(self, a: ArrayLike) -> ShadowArray:
        shape = a.shape if isinstance(a, ShadowArray) else np.shape(a)
        zeros = np.zeros(shape, dtype=np.float64)
        return ShadowArray(zeros, zeros.copy(), self)

    def full_like(self, a: ArrayLike, value: float) -> ShadowArray:
        shape = a.shape if isinstance(a, ShadowArray) else np.shape(a)
        arr = np.full(shape, float(value), dtype=np.float64)
        return ShadowArray(self._quantize(arr) if self._truncation_active() else arr.copy(), arr, self)

    def asplain(self, a: ArrayLike) -> np.ndarray:
        value, _ = self._split(a)
        return np.asarray(value, dtype=np.float64)

    def clip_nonnegative(self, a: ArrayLike, floor: float = 0.0) -> ShadowArray:
        value, shadow = self._split(a)
        return ShadowArray(np.maximum(value, floor), np.maximum(shadow, floor), self)

    # ------------------------------------------------------------------
    def report(self) -> DeviationReport:
        """Build the deviation heat-map collected so far."""
        entries = [
            (loc, int(v[0]), int(v[1]), float(v[2]))
            for loc, v in self._flags.items()
        ]
        entries.sort(key=lambda e: (e[1], e[3]), reverse=True)
        return DeviationReport(self.threshold, entries)

    def reset_flags(self) -> None:
        self._flags.clear()


def to_shadow(x: ArrayLike, ctx: ShadowContext) -> ShadowArray:
    """Module-level alias of :meth:`ShadowContext.lift` (``_raptor_pre_c``)."""
    return ctx.lift(x)


def from_shadow(x: ArrayLike) -> np.ndarray:
    """Extract the truncated payload of a ShadowArray (``_raptor_post_c``)."""
    if isinstance(x, ShadowArray):
        return x.value.copy()
    return np.asarray(x, dtype=np.float64)
