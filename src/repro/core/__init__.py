"""RAPTOR core: precision emulation, instrumentation, profiling runtime.

This package is the reproduction of the paper's primary contribution — the
numerical-profiling tool itself.  See DESIGN.md for the mapping between the
LLVM/MPFR implementation and this source-level / numpy-hook variant.
"""
from .array import TruncatedArray, truncate_array, untruncate
from .config import Mode, Scope, TruncationConfig
from .filterspec import FilterSpec, load_filter_file, parse_filter_text, policy_from_filter
from .fpformat import (
    BF16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FP64,
    FPFormat,
    STANDARD_FORMATS,
    parse_truncation_spec,
)
from .instrument import (
    active_config,
    active_context,
    file_scope,
    program_scope,
    trunc_func,
    trunc_func_mem,
    trunc_func_op,
    truncate_region,
)
from .memmode import DeviationReport, ShadowArray, ShadowContext, from_shadow, to_shadow
from .opmode import FPContext, FullPrecisionContext, TruncatedContext, make_context
from .quantize import RoundingMode, is_representable, quantization_error, quantize, ulp
from .registry import LocationRegistry, SourceLocation, capture_location
from .report import feature_matrix, format_table, op_summary, profile_report
from .runtime import MemCounters, OpCounters, OpStats, RaptorRuntime, get_runtime, set_runtime
from .selective import (
    AMRCutoffPolicy,
    GlobalPolicy,
    ModulePolicy,
    NoTruncationPolicy,
    PredicatePolicy,
    TruncationPolicy,
)
from .softfloat import EmulatedFloat, emulated_math

__all__ = [
    # formats & quantisation
    "FPFormat", "FP64", "FP32", "FP16", "BF16", "FP8_E5M2", "FP8_E4M3",
    "STANDARD_FORMATS", "parse_truncation_spec",
    "RoundingMode", "quantize", "is_representable", "ulp", "quantization_error",
    "EmulatedFloat", "emulated_math",
    # configuration & scoping
    "Mode", "Scope", "TruncationConfig",
    "FilterSpec", "parse_filter_text", "load_filter_file", "policy_from_filter",
    "truncate_region", "program_scope", "file_scope",
    "active_context", "active_config",
    "trunc_func", "trunc_func_op", "trunc_func_mem",
    # contexts
    "FPContext", "FullPrecisionContext", "TruncatedContext", "make_context",
    "ShadowArray", "ShadowContext", "DeviationReport", "to_shadow", "from_shadow",
    "TruncatedArray", "truncate_array", "untruncate",
    # runtime & reporting
    "RaptorRuntime", "get_runtime", "set_runtime",
    "OpCounters", "MemCounters", "OpStats",
    "SourceLocation", "LocationRegistry", "capture_location",
    "profile_report", "op_summary", "feature_matrix", "format_table",
    # policies
    "TruncationPolicy", "NoTruncationPolicy", "GlobalPolicy",
    "AMRCutoffPolicy", "ModulePolicy", "PredicatePolicy",
]
