"""The RAPTOR runtime: operation, memory and error accounting.

The runtime is the component that the (emulated) instrumentation calls into
for every truncated floating-point operation.  It keeps:

* global counters of truncated vs. full-precision scalar operations
  (the stacked bars in Figure 7 and the inputs to the co-design model);
* global counters of bytes read/written in truncated vs. full-precision
  regions (the memory-bound speedup model in Section 7.2);
* per-source-location operation statistics (op-mode error profiles and the
  mem-mode deviation heat-map).

A module-level default runtime is provided because solver kernels deep in the
call stack need to reach it without threading it through every signature —
the same role the process-global C++ runtime plays in RAPTOR.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .registry import LocationRegistry, SourceLocation

__all__ = ["OpStats", "OpCounters", "MemCounters", "RaptorRuntime", "get_runtime", "set_runtime"]


@dataclass
class OpStats:
    """Per-location statistics for truncated operations."""

    count: int = 0
    flagged: int = 0
    sum_abs_err: float = 0.0
    max_abs_err: float = 0.0
    sum_rel_err: float = 0.0
    max_rel_err: float = 0.0

    def update(
        self,
        n: int,
        abs_err_sum: float = 0.0,
        abs_err_max: float = 0.0,
        rel_err_sum: float = 0.0,
        rel_err_max: float = 0.0,
        flagged: int = 0,
    ) -> None:
        self.count += int(n)
        self.flagged += int(flagged)
        self.sum_abs_err += float(abs_err_sum)
        self.max_abs_err = max(self.max_abs_err, float(abs_err_max))
        self.sum_rel_err += float(rel_err_sum)
        self.max_rel_err = max(self.max_rel_err, float(rel_err_max))

    @property
    def mean_abs_err(self) -> float:
        return self.sum_abs_err / self.count if self.count else 0.0

    @property
    def mean_rel_err(self) -> float:
        return self.sum_rel_err / self.count if self.count else 0.0


@dataclass
class OpCounters:
    """Scalar floating-point operation counts."""

    truncated: int = 0
    full: int = 0

    @property
    def total(self) -> int:
        return self.truncated + self.full

    @property
    def truncated_fraction(self) -> float:
        total = self.total
        return self.truncated / total if total else 0.0


@dataclass
class MemCounters:
    """Bytes moved (reads + writes of floating-point data)."""

    truncated: int = 0
    full: int = 0

    @property
    def total(self) -> int:
        return self.truncated + self.full

    @property
    def truncated_fraction(self) -> float:
        total = self.total
        return self.truncated / total if total else 0.0


class RaptorRuntime:
    """Collects all profiling data for one experiment.

    The runtime is thread-safe at the granularity of individual updates so
    that OpenMP-style threaded kernels (``concurrent.futures`` in this
    reproduction) can share it, mirroring the paper's OpenMP support.
    """

    def __init__(self, name: str = "raptor") -> None:
        self.name = name
        self.registry = LocationRegistry()
        self.ops = OpCounters()
        self.mem = MemCounters()
        self._per_location: Dict[int, OpStats] = {}
        self._per_module_ops: Dict[str, OpCounters] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # operation accounting
    # ------------------------------------------------------------------
    def record_truncated_ops(
        self,
        n: int,
        location: Optional[SourceLocation] = None,
        module: Optional[str] = None,
        abs_err: Optional[np.ndarray] = None,
        rel_err: Optional[np.ndarray] = None,
        flagged: int = 0,
    ) -> None:
        """Record ``n`` scalar operations executed at truncated precision."""
        if n <= 0:
            return
        with self._lock:
            self.ops.truncated += int(n)
            if module is not None:
                self._per_module_ops.setdefault(module, OpCounters()).truncated += int(n)
            if location is not None:
                ident = self.registry.intern(location)
                stats = self._per_location.setdefault(ident, OpStats())
                abs_sum = abs_max = rel_sum = rel_max = 0.0
                if abs_err is not None and np.size(abs_err):
                    finite = np.asarray(abs_err)[np.isfinite(abs_err)]
                    if finite.size:
                        abs_sum = float(np.sum(finite))
                        abs_max = float(np.max(finite))
                if rel_err is not None and np.size(rel_err):
                    finite = np.asarray(rel_err)[np.isfinite(rel_err)]
                    if finite.size:
                        rel_sum = float(np.sum(finite))
                        rel_max = float(np.max(finite))
                stats.update(n, abs_sum, abs_max, rel_sum, rel_max, flagged)

    def record_full_ops(self, n: int, module: Optional[str] = None) -> None:
        """Record ``n`` scalar operations executed at full (FP64) precision."""
        if n <= 0:
            return
        with self._lock:
            self.ops.full += int(n)
            if module is not None:
                self._per_module_ops.setdefault(module, OpCounters()).full += int(n)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def record_truncated_bytes(self, n: int) -> None:
        if n > 0:
            with self._lock:
                self.mem.truncated += int(n)

    def record_full_bytes(self, n: int) -> None:
        if n > 0:
            with self._lock:
                self.mem.full += int(n)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def location_stats(self) -> List[Tuple[SourceLocation, OpStats]]:
        """All per-location statistics, most-flagged / most-erroneous first."""
        items = []
        for ident, stats in self._per_location.items():
            loc = self.registry.lookup(ident)
            if loc is not None:
                items.append((loc, stats))
        items.sort(key=lambda kv: (kv[1].flagged, kv[1].max_rel_err, kv[1].count), reverse=True)
        return items

    def module_ops(self) -> Dict[str, OpCounters]:
        """Per-module operation counters (copy)."""
        return {k: OpCounters(v.truncated, v.full) for k, v in self._per_module_ops.items()}

    def giga_flops(self) -> Tuple[float, float]:
        """(truncated, full) operation counts in units of 1e9, as plotted in
        the background bars of Figure 7."""
        return self.ops.truncated / 1e9, self.ops.full / 1e9

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all counters and statistics."""
        with self._lock:
            self.ops = OpCounters()
            self.mem = MemCounters()
            self._per_location.clear()
            self._per_module_ops.clear()
            self.registry.clear()

    def snapshot(self) -> dict:
        """A plain-dict snapshot suitable for serialisation.

        The snapshot is self-contained (plain ints/floats/strings only) so it
        can cross process boundaries; :meth:`merge_snapshot` reconstructs and
        accumulates it into another runtime, which is how the sweep engine
        rolls worker-process counters up into a single profile.
        """
        # everything is read under one lock so concurrent updates cannot
        # produce a snapshot whose ops / modules / locations disagree
        with self._lock:
            modules = {
                name: {"truncated": c.truncated, "full": c.full}
                for name, c in self._per_module_ops.items()
            }
            ops = {"truncated": self.ops.truncated, "full": self.ops.full}
            mem = {"truncated": self.mem.truncated, "full": self.mem.full}
            locations = [
                {
                    "location": loc.short(),
                    "filename": loc.filename,
                    "lineno": loc.lineno,
                    "label": loc.label,
                    "count": st.count,
                    "flagged": st.flagged,
                    "sum_abs_err": st.sum_abs_err,
                    "mean_abs_err": st.mean_abs_err,
                    "max_abs_err": st.max_abs_err,
                    "sum_rel_err": st.sum_rel_err,
                    "mean_rel_err": st.mean_rel_err,
                    "max_rel_err": st.max_rel_err,
                }
                for loc, st in self.location_stats()
            ]
        return {
            "name": self.name,
            "ops": ops,
            "mem": mem,
            "modules": modules,
            "locations": locations,
        }

    def merge_snapshot(self, snap: dict) -> "RaptorRuntime":
        """Accumulate a :meth:`snapshot` produced elsewhere (typically in a
        worker process, or loaded from a cached reference / merged sweep
        shard) into this runtime's counters and statistics.

        Returns ``self`` so roll-ups fold functionally::

            total = functools.reduce(RaptorRuntime.merge_snapshot,
                                     snapshots, RaptorRuntime("rollup"))
        """
        ops = snap.get("ops", {})
        mem = snap.get("mem", {})
        with self._lock:
            self.ops.truncated += int(ops.get("truncated", 0))
            self.ops.full += int(ops.get("full", 0))
            self.mem.truncated += int(mem.get("truncated", 0))
            self.mem.full += int(mem.get("full", 0))
            for name, counters in snap.get("modules", {}).items():
                mod = self._per_module_ops.setdefault(name, OpCounters())
                mod.truncated += int(counters.get("truncated", 0))
                mod.full += int(counters.get("full", 0))
            for entry in snap.get("locations", []):
                loc = SourceLocation(
                    entry.get("filename", "<unknown>"),
                    int(entry.get("lineno", 0)),
                    entry.get("label", ""),
                )
                ident = self.registry.intern(loc)
                stats = self._per_location.setdefault(ident, OpStats())
                stats.update(
                    entry.get("count", 0),
                    entry.get("sum_abs_err", 0.0),
                    entry.get("max_abs_err", 0.0),
                    entry.get("sum_rel_err", 0.0),
                    entry.get("max_rel_err", 0.0),
                    entry.get("flagged", 0),
                )
        return self


_default_runtime = RaptorRuntime()
_runtime_lock = threading.Lock()


def get_runtime() -> RaptorRuntime:
    """The process-wide default runtime (analogue of RAPTOR's linked runtime)."""
    return _default_runtime


def set_runtime(runtime: RaptorRuntime) -> RaptorRuntime:
    """Replace the default runtime; returns the previous one."""
    global _default_runtime
    with _runtime_lock:
        previous = _default_runtime
        _default_runtime = runtime
    return previous
