"""Transparent numpy-hook instrumentation: :class:`TruncatedArray`.

RAPTOR's headline usability feature is that *unmodified* code can be
truncated: the compiler pass rewrites every floating-point instruction in the
selected scope.  The closest Python analogue is numpy's ``__array_ufunc__``
protocol: once an array is wrapped in :class:`TruncatedArray`, every ufunc
evaluation it participates in (``a + b``, ``np.sqrt(a)``, ``np.maximum`` …)
is intercepted, evaluated, rounded to the target format, and counted by the
runtime — without any change to the numerical code operating on the array.

This gives the "fully automatic" column of Figure 2b for numpy-style kernels,
while :mod:`repro.core.opmode` provides the explicit-context route used by
the solver kernels in this repository (which is faster and easier to scope
per module/block).
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from .fpformat import FPFormat
from .quantize import RoundingMode, quantize
from .runtime import RaptorRuntime, get_runtime

__all__ = ["TruncatedArray", "truncate_array", "untruncate"]


class TruncatedArray(np.ndarray):
    """An ndarray subclass whose arithmetic is emulated at reduced precision.

    Create instances with :func:`truncate_array` (or ``np.asarray(x).view``
    plus :meth:`attach`).  All ufunc results involving at least one
    TruncatedArray operand are rounded into the array's format and counted as
    truncated operations; reductions (``a.sum()`` …) are handled through the
    same hook.

    Notes
    -----
    * The payload dtype is always float64; the *values* are representable in
      the reduced format.
    * Boolean/comparison ufuncs are passed through unrounded and uncounted
      (they are not floating-point arithmetic).
    * Slices and views keep the instrumentation (numpy propagates the
      subclass), matching the call-graph-deep truncation of the LLVM pass.
    """

    _fmt: FPFormat
    _runtime: Optional[RaptorRuntime]
    _module: Optional[str]
    _rounding: str

    def __array_finalize__(self, obj):
        if obj is None:
            return
        self._fmt = getattr(obj, "_fmt", None)
        self._runtime = getattr(obj, "_runtime", None)
        self._module = getattr(obj, "_module", None)
        self._rounding = getattr(obj, "_rounding", RoundingMode.NEAREST_EVEN)

    def attach(
        self,
        fmt: FPFormat,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> "TruncatedArray":
        self._fmt = fmt
        self._runtime = runtime if runtime is not None else get_runtime()
        self._module = module
        self._rounding = rounding
        return self

    # ------------------------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        fmt = None
        runtime = None
        module = None
        rounding = RoundingMode.NEAREST_EVEN
        for x in inputs:
            if isinstance(x, TruncatedArray) and getattr(x, "_fmt", None) is not None:
                fmt = x._fmt
                runtime = x._runtime
                module = x._module
                rounding = x._rounding
                break

        plain_inputs = [
            np.asarray(x, dtype=np.float64).view(np.ndarray)
            if isinstance(x, np.ndarray)
            else x
            for x in inputs
        ]
        out = kwargs.pop("out", None)
        if out is not None:
            kwargs["out"] = tuple(
                np.asarray(o).view(np.ndarray) if isinstance(o, np.ndarray) else o for o in out
            )

        result = getattr(ufunc, method)(*plain_inputs, **kwargs)
        if result is NotImplemented:  # pragma: no cover - defensive
            return NotImplemented

        if fmt is None:
            return result

        def _wrap(res):
            if not isinstance(res, np.ndarray) and not np.isscalar(res):
                return res
            arr = np.asarray(res)
            if arr.dtype.kind != "f":
                # comparisons / integer results: pass through untouched
                return res
            quantised = quantize(arr, fmt, rounding)
            if runtime is not None:
                if method in ("reduce", "accumulate"):
                    n = max(int(np.size(plain_inputs[0])) - int(np.size(arr)), 1)
                else:
                    n = int(np.size(arr))
                runtime.record_truncated_ops(n, module=module)
                runtime.record_truncated_bytes(
                    8 * (int(np.size(arr)) + sum(int(np.size(p)) for p in plain_inputs))
                )
            wrapped = quantised.view(TruncatedArray)
            wrapped._fmt = fmt
            wrapped._runtime = runtime
            wrapped._module = module
            wrapped._rounding = rounding
            return wrapped

        if isinstance(result, tuple):
            return tuple(_wrap(r) for r in result)
        return _wrap(result)

    # ------------------------------------------------------------------
    @property
    def fmt(self) -> Optional[FPFormat]:
        return getattr(self, "_fmt", None)

    def plain(self) -> np.ndarray:
        """Return a detached plain ndarray copy (instrumentation removed)."""
        return np.asarray(self, dtype=np.float64).view(np.ndarray).copy()


def truncate_array(
    x,
    fmt: FPFormat,
    runtime: Optional[RaptorRuntime] = None,
    module: Optional[str] = None,
    rounding: str = RoundingMode.NEAREST_EVEN,
) -> TruncatedArray:
    """Wrap ``x`` as a :class:`TruncatedArray` in format ``fmt``.

    The initial payload is itself rounded into ``fmt`` so that the invariant
    "payload representable in ``fmt``" holds from the start.
    """
    arr = quantize(np.asarray(x, dtype=np.float64), fmt, rounding)
    view = arr.view(TruncatedArray)
    return view.attach(fmt, runtime=runtime, module=module, rounding=rounding)


def untruncate(x) -> np.ndarray:
    """Remove instrumentation, returning a plain binary64 ndarray copy."""
    if isinstance(x, TruncatedArray):
        return x.plain()
    return np.asarray(x, dtype=np.float64).copy()
