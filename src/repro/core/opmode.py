"""Op-mode numerics contexts.

In RAPTOR's op-mode every floating-point operation inside the truncated
region is redirected to a runtime call that (1) converts the operands to the
target precision, (2) performs the operation at that precision, and
(3) converts the result back to the original IEEE type (Figure 5a).  The
scratch-pad optimisation (Figure 4b) removes the repeated conversion of
operands that are already held at the target precision.

In this reproduction the redirection is expressed through a *numerics
context*: solver kernels perform their arithmetic through the methods of an
:class:`FPContext` instead of raw numpy operators.  A
:class:`FullPrecisionContext` is plain numpy (and optionally counts
operations); a :class:`TruncatedContext` additionally rounds every result —
and, on the naive path, every operand — into the configured
:class:`~repro.core.fpformat.FPFormat` and feeds the
:class:`~repro.core.runtime.RaptorRuntime` counters.

Kernels that use plain numpy expressions instead can be instrumented
transparently with :class:`repro.core.array.TruncatedArray`, which routes
``__array_ufunc__`` calls through a context.
"""
from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .config import TruncationConfig
from .fpformat import FP64, FPFormat
from .quantize import RoundingMode, quantize
from .registry import SourceLocation, capture_location
from .runtime import RaptorRuntime, get_runtime

__all__ = [
    "FPContext",
    "FullPrecisionContext",
    "TruncatedContext",
    "make_context",
]

ArrayLike = Union[float, int, np.ndarray]


class FPContext:
    """Abstract numerics context.

    Every arithmetic method mirrors the corresponding numpy ufunc; the
    context decides at what precision the operation is evaluated and what
    profiling data is recorded.  ``where``/``select`` and comparisons are
    provided for convenience but are not counted as floating-point work
    (they are data movement / predicate evaluation, matching RAPTOR which
    only instruments FP arithmetic and libm calls).
    """

    #: human-readable name used in reports
    name: str = "base"
    #: True when the context rounds results to a reduced format
    truncating: bool = False
    #: format results are representable in (FP64 for the full context)
    fmt: FPFormat = FP64
    #: execution plane this context runs on (see :mod:`repro.kernels`);
    #: the fused fast plane overrides this to "fast"
    plane: str = "instrumented"
    #: True when kernels may substitute the pre-fused numpy stencils of
    #: :mod:`repro.kernels.fused` for the op-by-op context path
    fused: bool = False
    #: True when kernels may substitute the fused *truncating* twins of
    #: :mod:`repro.kernels.trunc` (quantize-at-op-boundary, no counters)
    fused_trunc: bool = False

    # -- to be provided by subclasses ---------------------------------------
    def _apply(self, ufunc, inputs: Sequence[ArrayLike], label: str):
        raise NotImplementedError

    # -- constants -----------------------------------------------------------
    def const(self, x: ArrayLike) -> np.ndarray:
        """Bring a literal/constant into the context's working precision."""
        return np.asarray(x, dtype=np.float64)

    # -- binary arithmetic ----------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.add, (a, b), label)

    def sub(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.subtract, (a, b), label)

    def mul(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.multiply, (a, b), label)

    def div(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.divide, (a, b), label)

    def power(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.power, (a, b), label)

    def maximum(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.maximum, (a, b), label)

    def minimum(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.minimum, (a, b), label)

    def copysign(self, a: ArrayLike, b: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.copysign, (a, b), label)

    # -- unary arithmetic -----------------------------------------------------
    def neg(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.negative, (a,), label)

    def abs(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.abs, (a,), label)

    def sqrt(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.sqrt, (a,), label)

    def exp(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.exp, (a,), label)

    def log(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.log, (a,), label)

    def log10(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.log10, (a,), label)

    def sin(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.sin, (a,), label)

    def cos(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.cos, (a,), label)

    def tanh(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.tanh, (a,), label)

    def square(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.square, (a,), label)

    def reciprocal(self, a: ArrayLike, label: str = "") -> np.ndarray:
        return self._apply(np.reciprocal, (a,), label)

    # -- composite helpers ------------------------------------------------------
    def fma(self, a: ArrayLike, b: ArrayLike, c: ArrayLike, label: str = "") -> np.ndarray:
        """a*b + c, evaluated as two context operations."""
        return self.add(self.mul(a, b, label), c, label)

    def axpy(self, alpha: ArrayLike, x: ArrayLike, y: ArrayLike, label: str = "") -> np.ndarray:
        """alpha*x + y."""
        return self.fma(alpha, x, y, label)

    def dot(self, a: np.ndarray, b: np.ndarray, label: str = "") -> float:
        """Inner product evaluated as mul + tree of adds in the context."""
        prod = self.mul(np.asarray(a).ravel(), np.asarray(b).ravel(), label)
        return self.sum(prod, label=label)

    def sum(self, a: ArrayLike, axis: Optional[int] = None, label: str = "") -> np.ndarray:
        """Reduction; counted as (n-1) additions along the reduced axis."""
        return self._reduce(np.add, a, axis, label)

    def max(self, a: ArrayLike, axis: Optional[int] = None, label: str = "") -> np.ndarray:
        return self._reduce(np.maximum, a, axis, label)

    def min(self, a: ArrayLike, axis: Optional[int] = None, label: str = "") -> np.ndarray:
        return self._reduce(np.minimum, a, axis, label)

    def _reduce(self, ufunc, a: ArrayLike, axis: Optional[int], label: str):
        raise NotImplementedError

    # -- non-arithmetic helpers (not counted as FLOPs) --------------------------
    def where(self, cond: ArrayLike, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        return np.where(cond, a, b)

    def sign(self, a: ArrayLike) -> np.ndarray:
        return np.sign(np.asarray(a, dtype=np.float64))

    def clip_nonnegative(self, a: ArrayLike, floor: float = 0.0) -> np.ndarray:
        return np.maximum(np.asarray(a, dtype=np.float64), floor)

    # -- structural operations (data movement, never counted as FLOPs) ----------
    def stack(self, arrays: Sequence[ArrayLike], axis: int = 0) -> np.ndarray:
        return np.stack([np.asarray(a, dtype=np.float64) for a in arrays], axis=axis)

    def concatenate(self, arrays: Sequence[ArrayLike], axis: int = 0) -> np.ndarray:
        return np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays], axis=axis)

    def zeros_like(self, a: ArrayLike) -> np.ndarray:
        return np.zeros(getattr(a, "shape", np.shape(a)), dtype=np.float64)

    def full_like(self, a: ArrayLike, value: float) -> np.ndarray:
        return np.full(getattr(a, "shape", np.shape(a)), self.const(value), dtype=np.float64)

    def asplain(self, a: ArrayLike) -> np.ndarray:
        """Return the plain binary64 payload of a context value (used for
        diagnostics and I/O; not counted as floating-point work)."""
        return np.asarray(a, dtype=np.float64)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"{type(self).__name__}(fmt=e{self.fmt.exp_bits}m{self.fmt.man_bits})"


def _nelems(x: ArrayLike) -> int:
    return int(np.size(x))


class FullPrecisionContext(FPContext):
    """Plain binary64 numpy arithmetic, optionally counted by the runtime.

    This is the context handed to code *outside* the truncated scope (or to
    blocks excluded by a selective policy); counting its operations is what
    produces the orange "full precision" bars in Figure 7.
    """

    name = "fp64"
    truncating = False
    fmt = FP64

    def __init__(
        self,
        runtime: Optional[RaptorRuntime] = None,
        count_ops: bool = True,
        track_memory: bool = True,
        module: Optional[str] = None,
    ) -> None:
        self.runtime = runtime if runtime is not None else get_runtime()
        self.count_ops = count_ops
        self.track_memory = track_memory
        self.module = module

    def _record(self, result: np.ndarray, inputs: Sequence[ArrayLike]) -> None:
        n = _nelems(result)
        if self.count_ops:
            self.runtime.record_full_ops(n, module=self.module)
        if self.track_memory:
            nbytes = 8 * (n + sum(_nelems(x) for x in inputs))
            self.runtime.record_full_bytes(nbytes)

    def _apply(self, ufunc, inputs: Sequence[ArrayLike], label: str):
        arrs = [np.asarray(x, dtype=np.float64) for x in inputs]
        result = ufunc(*arrs)
        self._record(result, arrs)
        return result

    def _reduce(self, ufunc, a: ArrayLike, axis: Optional[int], label: str):
        arr = np.asarray(a, dtype=np.float64)
        result = ufunc.reduce(arr, axis=axis)
        # n-1 scalar operations per reduced lane
        n = max(_nelems(arr) - _nelems(result), 0)
        if self.count_ops:
            self.runtime.record_full_ops(n, module=self.module)
        if self.track_memory:
            self.runtime.record_full_bytes(8 * (_nelems(arr) + _nelems(result)))
        return result


class TruncatedContext(FPContext):
    """Numerics context that emulates a reduced-precision FPU.

    Parameters
    ----------
    fmt:
        Target format for 64-bit operations.
    runtime:
        Profiling runtime (defaults to the process-wide one).
    module:
        Logical module name ("hydro", "eos", ...) used for per-module
        operation accounting.
    optimized:
        Scratch-pad optimised path: operands are assumed to already be
        representable in ``fmt`` (they are, as long as all values in the
        region are produced by this context) and are not re-quantised.
        The naive path re-quantises every operand on every call, exactly
        like the un-optimised runtime in Figure 5a re-initialises MPFR
        temporaries — numerically identical, just slower.
    track_errors:
        Record per-location statistics of the rounding error committed by
        each operation (|rounded - exact| where "exact" is the binary64
        evaluation on the same operands).
    """

    truncating = True

    def __init__(
        self,
        fmt: FPFormat,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
        optimized: bool = True,
        count_ops: bool = True,
        track_memory: bool = True,
        track_errors: bool = False,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.name = f"e{fmt.exp_bits}m{fmt.man_bits}"
        self.runtime = runtime if runtime is not None else get_runtime()
        self.module = module
        self.optimized = optimized
        self.count_ops = count_ops
        self.track_memory = track_memory
        self.track_errors = track_errors
        self.rounding = rounding

    @classmethod
    def from_config(
        cls,
        config: TruncationConfig,
        runtime: Optional[RaptorRuntime] = None,
        module: Optional[str] = None,
    ) -> "TruncatedContext":
        return cls(
            config.fmt,
            runtime=runtime,
            module=module,
            optimized=config.optimized,
            count_ops=config.count_ops,
            track_memory=config.track_memory,
            track_errors=config.track_errors,
            rounding=config.rounding,
        )

    # ------------------------------------------------------------------
    def const(self, x: ArrayLike) -> np.ndarray:
        return quantize(np.asarray(x, dtype=np.float64), self.fmt, self.rounding)

    def _location(self, label: str) -> Optional[SourceLocation]:
        if not self.track_errors:
            return None
        # depth 4: capture_location -> _location -> _apply/_reduce -> FPContext.<op> -> kernel
        return capture_location(depth=4, label=label)

    def _record(
        self,
        result: np.ndarray,
        inputs: Sequence[np.ndarray],
        exact: Optional[np.ndarray],
        label: str,
    ) -> None:
        n = _nelems(result)
        abs_err = rel_err = None
        if self.track_errors and exact is not None:
            abs_err = np.abs(result - exact)
            scale = np.abs(exact)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel_err = np.where(scale > 0, abs_err / scale, abs_err)
        if self.count_ops or self.track_errors:
            self.runtime.record_truncated_ops(
                n,
                location=self._location(label),
                module=self.module,
                abs_err=abs_err,
                rel_err=rel_err,
            )
        if self.track_memory:
            nbytes = 8 * (n + sum(_nelems(x) for x in inputs))
            self.runtime.record_truncated_bytes(nbytes)

    def _apply(self, ufunc, inputs: Sequence[ArrayLike], label: str):
        arrs = [np.asarray(x, dtype=np.float64) for x in inputs]
        if not self.optimized:
            arrs = [quantize(a, self.fmt, self.rounding) for a in arrs]
        exact = ufunc(*arrs)
        result = quantize(exact, self.fmt, self.rounding)
        self._record(result, arrs, exact if self.track_errors else None, label)
        return result

    def _reduce(self, ufunc, a: ArrayLike, axis: Optional[int], label: str):
        arr = np.asarray(a, dtype=np.float64)
        if not self.optimized:
            arr = quantize(arr, self.fmt, self.rounding)
        # Sequential reduction with per-step rounding would be O(n) python
        # calls; we emulate it by reducing in binary64 and rounding once,
        # then charging (n-1) truncated operations.  For the target formats
        # used in the experiments the difference in the reduced value is far
        # below the truncation error of the element-wise work feeding it.
        exact = ufunc.reduce(arr, axis=axis)
        result = quantize(exact, self.fmt, self.rounding)
        n = max(_nelems(arr) - _nelems(result), 0)
        if self.count_ops:
            self.runtime.record_truncated_ops(n, location=self._location(label), module=self.module)
        if self.track_memory:
            self.runtime.record_truncated_bytes(8 * (_nelems(arr) + _nelems(result)))
        return result


def make_context(
    config: Optional[TruncationConfig],
    runtime: Optional[RaptorRuntime] = None,
    module: Optional[str] = None,
) -> FPContext:
    """Build the appropriate context for a configuration.

    ``None`` or a no-op configuration yields a (counting) full-precision
    context; otherwise a :class:`TruncatedContext` for the configured format.
    """
    if config is None or config.is_noop():
        count = config.count_ops if config is not None else True
        track = config.track_memory if config is not None else True
        return FullPrecisionContext(runtime=runtime, count_ops=count, track_memory=track, module=module)
    return TruncatedContext.from_config(config, runtime=runtime, module=module)
