"""Profile reports and text output.

RAPTOR dumps its collected statistics on request; this module renders the
equivalent human-readable reports from a :class:`~repro.core.runtime.RaptorRuntime`:

* operation-count summaries (truncated vs full-precision, per module);
* per-location error/heat-map tables;
* the qualitative feature matrix of Table 1 (for documentation parity).
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .runtime import RaptorRuntime

__all__ = ["profile_report", "op_summary", "feature_matrix", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    cols = len(headers)
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i in range(cols):
            widths[i] = max(widths[i], len(row[i]) if i < len(row) else 0)
    sep = "  "
    lines = [sep.join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(row[i].ljust(widths[i]) if i < len(row) else "" for i in range(cols)))
    return "\n".join(lines)


def op_summary(runtime: RaptorRuntime) -> Dict[str, float]:
    """Headline counters: operation and byte counts plus truncated fractions."""
    return {
        "truncated_ops": runtime.ops.truncated,
        "full_ops": runtime.ops.full,
        "total_ops": runtime.ops.total,
        "truncated_op_fraction": runtime.ops.truncated_fraction,
        "truncated_bytes": runtime.mem.truncated,
        "full_bytes": runtime.mem.full,
        "truncated_byte_fraction": runtime.mem.truncated_fraction,
    }


def profile_report(runtime: RaptorRuntime, max_locations: int = 20) -> str:
    """Full text report: headline counters, per-module and per-location data."""
    lines: List[str] = []
    summary = op_summary(runtime)
    lines.append(f"RAPTOR profile: {runtime.name}")
    lines.append(
        "FP operations: {:,} truncated / {:,} full ({:.1%} truncated)".format(
            int(summary["truncated_ops"]),
            int(summary["full_ops"]),
            summary["truncated_op_fraction"],
        )
    )
    lines.append(
        "FP memory traffic: {:,} B truncated / {:,} B full ({:.1%} truncated)".format(
            int(summary["truncated_bytes"]),
            int(summary["full_bytes"]),
            summary["truncated_byte_fraction"],
        )
    )

    per_module = runtime.module_ops()
    if per_module:
        lines.append("")
        lines.append("Per-module operation counts:")
        rows = [
            [name, counters.truncated, counters.full, f"{counters.truncated_fraction:.1%}"]
            for name, counters in sorted(per_module.items(), key=lambda kv: -kv[1].total)
        ]
        lines.append(format_table(["module", "truncated", "full", "trunc %"], rows))

    locations = runtime.location_stats()
    if locations:
        lines.append("")
        lines.append(f"Top {min(max_locations, len(locations))} operation sites:")
        rows = []
        for loc, st in locations[:max_locations]:
            rows.append(
                [
                    loc.short(),
                    st.count,
                    st.flagged,
                    f"{st.mean_abs_err:.3e}",
                    f"{st.max_rel_err:.3e}",
                ]
            )
        lines.append(
            format_table(["location", "ops", "flagged", "mean |err|", "max rel err"], rows)
        )
    return "\n".join(lines)


#: Feature columns of Table 1.
_FEATURES = (
    "full_app_truncation",
    "dynamic_truncation",
    "flexible_formats",
    "scoped_truncation",
    "granular_truncation",
    "error_tracking",
    "non_differentiable_code",
)


def feature_matrix() -> Dict[str, Dict[str, object]]:
    """The RAPTOR row (and the categories) of the paper's Table 1.

    The other tools' rows are published observations, not something this
    library can measure; only RAPTOR's own feature set — which this
    reproduction implements — is returned programmatically, together with
    the category tags (B: automatic precision change, C: system-software
    enabled, E: wrapper/emulator).
    """
    return {
        "RAPTOR": {
            "categories": ("B", "C", "E"),
            "languages": ("C", "C++", "Fortran"),
            "features": {name: True for name in _FEATURES},
        }
    }
