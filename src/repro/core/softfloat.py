"""Scalar emulated floating-point values (the MPFR-variable analogue).

RAPTOR's runtime represents each truncated value as an ``mpfr_t`` with the
requested precision.  :class:`EmulatedFloat` plays that role here: a scalar
that stores its payload in binary64 but guarantees that the payload is always
exactly representable in its :class:`~repro.core.fpformat.FPFormat`, and whose
arithmetic rounds every intermediate result to that format.

The class exists mainly for API parity with the paper (op-mode array kernels
use :mod:`repro.core.opmode` instead, which is vectorised); it is also what
mem-mode uses for per-value bookkeeping of scalars.
"""
from __future__ import annotations

import math
import numbers
from fractions import Fraction
from typing import Callable, Optional, Union

import numpy as np

from .fpformat import FP64, FPFormat
from .quantize import RoundingMode, quantize

__all__ = ["EmulatedFloat", "emulated_math", "exact_quantize"]


def exact_quantize(
    value: float,
    fmt: FPFormat = FP64,
    rounding: str = RoundingMode.NEAREST_EVEN,
) -> float:
    """Round a scalar into ``fmt`` using exact rational arithmetic.

    An independent oracle for :func:`repro.core.quantize.quantize`: the
    representable grid of ``fmt`` around ``value`` is constructed from
    first principles (spacing ``2**(max(E, emin) - man_bits)`` in the
    binade of exponent ``E``, which covers normals, subnormals and the
    below-``min_subnormal`` regime uniformly) and the grid index is
    rounded as an exact :class:`~fractions.Fraction` — no binary64
    intermediates, so every directed-rounding decision at the underflow
    boundary is exact.  Overflow follows IEEE 754: directed modes clamp
    to ``max_value`` on the side they cannot cross, nearest goes to
    infinity past the top of the grid.
    """
    if rounding not in RoundingMode.ALL:
        raise ValueError(f"unknown rounding mode: {rounding!r}")
    x = float(value)
    # non-finite values and zeros (either sign) pass through untouched
    if not math.isfinite(x) or x == 0.0:
        return x
    m, e = math.frexp(abs(x))  # |x| = m * 2**e, m in [0.5, 1): exact
    E = e - 1
    ulp_exp = max(E, fmt.emin) - fmt.man_bits
    scaled = Fraction(x) / Fraction(2) ** ulp_exp
    if rounding == RoundingMode.NEAREST_EVEN:
        n = round(scaled)  # Fraction.__round__ is exact half-to-even
    elif rounding == RoundingMode.TOWARD_ZERO:
        n = math.trunc(scaled)
    elif rounding == RoundingMode.UP:
        n = math.ceil(scaled)
    else:  # DOWN
        n = math.floor(scaled)
    q = n * Fraction(2) ** ulp_exp
    if abs(q) > Fraction(fmt.max_value):
        if rounding == RoundingMode.TOWARD_ZERO:
            q = Fraction(fmt.max_value) if q > 0 else -Fraction(fmt.max_value)
        elif rounding == RoundingMode.UP:
            return math.inf if q > 0 else -fmt.max_value
        elif rounding == RoundingMode.DOWN:
            return -math.inf if q < 0 else fmt.max_value
        else:
            return math.copysign(math.inf, x)
    result = float(q)
    if result == 0.0 and math.copysign(1.0, x) < 0.0:
        return -0.0
    return result

Number = Union[int, float, "EmulatedFloat"]


def _coerce(value: Number) -> float:
    """Convert an arithmetic/comparison operand to its binary64 payload.

    Accepts :class:`EmulatedFloat` and any real number (Python ints/floats,
    numpy scalars such as ``np.float32`` / ``np.int64``, fractions, …).
    Non-numeric operands raise ``TypeError`` — notably strings, which
    ``float()`` would happily parse.
    """
    if isinstance(value, EmulatedFloat):
        return value.value
    if isinstance(value, numbers.Real):
        return float(value)
    # anything exposing __float__ (0-d numpy arrays, Decimal, ...) is a
    # legitimate numeric operand; strings are not — float("1.5") parses via
    # the constructor, not __float__, and must stay rejected
    if getattr(type(value), "__float__", None) is not None:
        return float(value)
    raise TypeError(
        f"cannot use {type(value).__name__!r} as an EmulatedFloat operand"
    )


def _try_coerce(value: object) -> Optional[float]:
    """Comparison-operand coercion: like :func:`_coerce` but signals an
    incompatible operand with ``None`` so dunder methods can return
    ``NotImplemented`` instead of raising."""
    try:
        return _coerce(value)  # type: ignore[arg-type]
    except TypeError:
        return None


class EmulatedFloat:
    """A floating-point scalar emulated at an arbitrary reduced precision.

    Parameters
    ----------
    value:
        Initial value; it is rounded into ``fmt`` immediately.
    fmt:
        Target format.  Defaults to binary64 (no-op emulation).
    rounding:
        Rounding mode applied after every operation.
    """

    __slots__ = ("_value", "fmt", "rounding")

    def __init__(
        self,
        value: Number = 0.0,
        fmt: FPFormat = FP64,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.rounding = rounding
        self._value = float(quantize(_coerce(value), fmt, rounding))

    # -- basic protocol ------------------------------------------------------
    @property
    def value(self) -> float:
        """The binary64 payload (always representable in ``fmt``)."""
        return self._value

    def __float__(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmulatedFloat({self._value!r}, fmt=e{self.fmt.exp_bits}m{self.fmt.man_bits})"

    def _make(self, raw: float) -> "EmulatedFloat":
        out = EmulatedFloat.__new__(EmulatedFloat)
        out.fmt = self.fmt
        out.rounding = self.rounding
        out._value = float(quantize(raw, self.fmt, self.rounding))
        return out

    # -- arithmetic ----------------------------------------------------------
    # like the comparisons, arithmetic returns NotImplemented for operands it
    # cannot coerce, so reflected implementations on the other type get their
    # chance and Python raises its standard unsupported-operand TypeError
    def _binop(self, other: Number, op: Callable[[float, float], float]):
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._make(op(self._value, coerced))

    def _rbinop(self, other: Number, op: Callable[[float, float], float]):
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._make(op(coerced, self._value))

    def __add__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other: Number) -> "EmulatedFloat":
        return self._rbinop(other, lambda a, b: a - b)

    def __mul__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: float(np.divide(a, b)))

    def __rtruediv__(self, other: Number) -> "EmulatedFloat":
        return self._rbinop(other, lambda a, b: float(np.divide(a, b)))

    def __pow__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a ** b)

    def __neg__(self) -> "EmulatedFloat":
        return self._make(-self._value)

    def __abs__(self) -> "EmulatedFloat":
        return self._make(abs(self._value))

    # -- comparisons (exact, on the emulated payloads) ------------------------
    # Every comparison coerces the other operand through the same _coerce
    # path as arithmetic, so raw ints/floats and numpy scalars (np.float32,
    # np.int64, ...) compare consistently with how they combine in _binop;
    # incompatible operands yield NotImplemented and fall back to Python's
    # default handling instead of raising from inside float().
    def __eq__(self, other: object) -> bool:
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._value == coerced

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __lt__(self, other: Number) -> bool:
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._value < coerced

    def __le__(self, other: Number) -> bool:
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._value <= coerced

    def __gt__(self, other: Number) -> bool:
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._value > coerced

    def __ge__(self, other: Number) -> bool:
        coerced = _try_coerce(other)
        if coerced is None:
            return NotImplemented
        return self._value >= coerced

    def __hash__(self) -> int:
        return hash(self._value)

    # -- elementary functions --------------------------------------------------
    def sqrt(self) -> "EmulatedFloat":
        return self._make(math.sqrt(self._value) if self._value >= 0 else math.nan)

    def exp(self) -> "EmulatedFloat":
        return self._make(np.exp(self._value))

    def log(self) -> "EmulatedFloat":
        return self._make(np.log(self._value) if self._value > 0 else -math.inf if self._value == 0 else math.nan)

    def sin(self) -> "EmulatedFloat":
        return self._make(math.sin(self._value))

    def cos(self) -> "EmulatedFloat":
        return self._make(math.cos(self._value))

    def fma(self, b: Number, c: Number) -> "EmulatedFloat":
        """Multiply-add rounded once into the target format.

        The product and sum are evaluated in binary64 (a single extra
        rounding relative to a true fused operation, negligible for the
        reduced precisions this library targets) and then rounded into
        ``fmt`` once, matching the single-rounding contract of
        ``mpfr_fma`` at the target precision.
        """
        return self._make(self._value * _coerce(b) + _coerce(c))


def emulated_math(fmt: FPFormat):
    """Return a tiny module-like namespace of elementary functions that
    operate on plain floats but round every result into ``fmt``.

    This mirrors RAPTOR's replacement of libm calls (``sqrt``, ``exp``, ...)
    with MPFR-backed wrappers.
    """

    def _wrap(fn: Callable[[float], float]) -> Callable[[float], float]:
        def wrapped(x: float) -> float:
            return float(quantize(fn(float(quantize(x, fmt))), fmt))

        wrapped.__name__ = fn.__name__
        return wrapped

    class _NS:
        sqrt = staticmethod(_wrap(math.sqrt))
        exp = staticmethod(_wrap(np.exp))
        log = staticmethod(_wrap(lambda x: math.log(x)))
        sin = staticmethod(_wrap(math.sin))
        cos = staticmethod(_wrap(math.cos))
        tan = staticmethod(_wrap(math.tan))
        atan = staticmethod(_wrap(math.atan))
        fabs = staticmethod(_wrap(math.fabs))

    return _NS
