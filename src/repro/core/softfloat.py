"""Scalar emulated floating-point values (the MPFR-variable analogue).

RAPTOR's runtime represents each truncated value as an ``mpfr_t`` with the
requested precision.  :class:`EmulatedFloat` plays that role here: a scalar
that stores its payload in binary64 but guarantees that the payload is always
exactly representable in its :class:`~repro.core.fpformat.FPFormat`, and whose
arithmetic rounds every intermediate result to that format.

The class exists mainly for API parity with the paper (op-mode array kernels
use :mod:`repro.core.opmode` instead, which is vectorised); it is also what
mem-mode uses for per-value bookkeeping of scalars.
"""
from __future__ import annotations

import math
from typing import Callable, Union

import numpy as np

from .fpformat import FP64, FPFormat
from .quantize import RoundingMode, quantize

__all__ = ["EmulatedFloat", "emulated_math"]

Number = Union[int, float, "EmulatedFloat"]


def _coerce(value: Number) -> float:
    if isinstance(value, EmulatedFloat):
        return value.value
    return float(value)


class EmulatedFloat:
    """A floating-point scalar emulated at an arbitrary reduced precision.

    Parameters
    ----------
    value:
        Initial value; it is rounded into ``fmt`` immediately.
    fmt:
        Target format.  Defaults to binary64 (no-op emulation).
    rounding:
        Rounding mode applied after every operation.
    """

    __slots__ = ("_value", "fmt", "rounding")

    def __init__(
        self,
        value: Number = 0.0,
        fmt: FPFormat = FP64,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> None:
        self.fmt = fmt
        self.rounding = rounding
        self._value = float(quantize(_coerce(value), fmt, rounding))

    # -- basic protocol ------------------------------------------------------
    @property
    def value(self) -> float:
        """The binary64 payload (always representable in ``fmt``)."""
        return self._value

    def __float__(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EmulatedFloat({self._value!r}, fmt=e{self.fmt.exp_bits}m{self.fmt.man_bits})"

    def _make(self, raw: float) -> "EmulatedFloat":
        out = EmulatedFloat.__new__(EmulatedFloat)
        out.fmt = self.fmt
        out.rounding = self.rounding
        out._value = float(quantize(raw, self.fmt, self.rounding))
        return out

    # -- arithmetic ----------------------------------------------------------
    def _binop(self, other: Number, op: Callable[[float, float], float]) -> "EmulatedFloat":
        return self._make(op(self._value, _coerce(other)))

    def _rbinop(self, other: Number, op: Callable[[float, float], float]) -> "EmulatedFloat":
        return self._make(op(_coerce(other), self._value))

    def __add__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other: Number) -> "EmulatedFloat":
        return self._rbinop(other, lambda a, b: a - b)

    def __mul__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: float(np.divide(a, b)))

    def __rtruediv__(self, other: Number) -> "EmulatedFloat":
        return self._rbinop(other, lambda a, b: float(np.divide(a, b)))

    def __pow__(self, other: Number) -> "EmulatedFloat":
        return self._binop(other, lambda a, b: a ** b)

    def __neg__(self) -> "EmulatedFloat":
        return self._make(-self._value)

    def __abs__(self) -> "EmulatedFloat":
        return self._make(abs(self._value))

    # -- comparisons (exact, on the emulated payloads) ------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, EmulatedFloat)):
            return self._value == _coerce(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __lt__(self, other: Number) -> bool:
        return self._value < _coerce(other)

    def __le__(self, other: Number) -> bool:
        return self._value <= _coerce(other)

    def __gt__(self, other: Number) -> bool:
        return self._value > _coerce(other)

    def __ge__(self, other: Number) -> bool:
        return self._value >= _coerce(other)

    def __hash__(self) -> int:
        return hash(self._value)

    # -- elementary functions --------------------------------------------------
    def sqrt(self) -> "EmulatedFloat":
        return self._make(math.sqrt(self._value) if self._value >= 0 else math.nan)

    def exp(self) -> "EmulatedFloat":
        return self._make(np.exp(self._value))

    def log(self) -> "EmulatedFloat":
        return self._make(np.log(self._value) if self._value > 0 else -math.inf if self._value == 0 else math.nan)

    def sin(self) -> "EmulatedFloat":
        return self._make(math.sin(self._value))

    def cos(self) -> "EmulatedFloat":
        return self._make(math.cos(self._value))

    def fma(self, b: Number, c: Number) -> "EmulatedFloat":
        """Multiply-add rounded once into the target format.

        The product and sum are evaluated in binary64 (a single extra
        rounding relative to a true fused operation, negligible for the
        reduced precisions this library targets) and then rounded into
        ``fmt`` once, matching the single-rounding contract of
        ``mpfr_fma`` at the target precision.
        """
        return self._make(self._value * _coerce(b) + _coerce(c))


def emulated_math(fmt: FPFormat):
    """Return a tiny module-like namespace of elementary functions that
    operate on plain floats but round every result into ``fmt``.

    This mirrors RAPTOR's replacement of libm calls (``sqrt``, ``exp``, ...)
    with MPFR-backed wrappers.
    """

    def _wrap(fn: Callable[[float], float]) -> Callable[[float], float]:
        def wrapped(x: float) -> float:
            return float(quantize(fn(float(quantize(x, fmt))), fmt))

        wrapped.__name__ = fn.__name__
        return wrapped

    class _NS:
        sqrt = staticmethod(_wrap(math.sqrt))
        exp = staticmethod(_wrap(np.exp))
        log = staticmethod(_wrap(lambda x: math.log(x)))
        sin = staticmethod(_wrap(math.sin))
        cos = staticmethod(_wrap(math.cos))
        tan = staticmethod(_wrap(math.tan))
        atan = staticmethod(_wrap(math.atan))
        fabs = staticmethod(_wrap(math.fabs))

    return _NS
