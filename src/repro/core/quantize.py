"""Vectorised quantisation of IEEE doubles to arbitrary reduced formats.

This is the reproduction's substitute for GNU MPFR: every truncated
floating-point operation is performed in binary64 and the *result* is rounded
to the requested :class:`~repro.core.fpformat.FPFormat` with a configurable
rounding mode (round-to-nearest-even by default, matching MPFR's
``MPFR_RNDN``).  For target precisions well below 52 mantissa bits — the
regime exercised by every experiment in the paper — this matches a correctly
rounded arbitrary-precision computation except for rare double-rounding
events, and it is fully vectorised over numpy arrays.

Subnormals, signed zeros, overflow-to-infinity and NaN propagation follow
IEEE-754 semantics for the target format.
"""
from __future__ import annotations

from typing import Union

import numpy as np

from .fpformat import FPFormat

__all__ = [
    "RoundingMode",
    "quantize",
    "quantize_like",
    "is_representable",
    "ulp",
    "quantization_error",
]

ArrayLike = Union[float, np.ndarray]


class RoundingMode:
    """Supported rounding modes (subset of MPFR's)."""

    NEAREST_EVEN = "nearest-even"
    TOWARD_ZERO = "toward-zero"
    UP = "up"
    DOWN = "down"

    ALL = (NEAREST_EVEN, TOWARD_ZERO, UP, DOWN)


def quantize(
    x: ArrayLike,
    fmt: FPFormat,
    rounding: str = RoundingMode.NEAREST_EVEN,
) -> np.ndarray:
    """Round ``x`` to the nearest value representable in ``fmt``.

    Parameters
    ----------
    x:
        Scalar or array of binary64 values (anything ``np.asarray`` accepts).
    fmt:
        Target format.
    rounding:
        One of :class:`RoundingMode`.

    Returns
    -------
    numpy.ndarray
        Array of binary64 values, every element exactly representable in
        ``fmt`` (or ±inf on overflow, NaN propagated).  Scalars come back as
        0-d arrays; use ``float(...)`` if a Python float is needed.
    """
    if rounding not in RoundingMode.ALL:
        raise ValueError(f"unknown rounding mode: {rounding!r}")

    arr = np.asarray(x, dtype=np.float64)
    if fmt.is_fp64() and rounding == RoundingMode.NEAREST_EVEN:
        return arr.copy()

    out = arr.copy()
    finite = np.isfinite(arr) & (arr != 0.0)
    if not np.any(finite):
        return out

    vals = arr[finite]
    sign = np.signbit(vals)
    mag = np.abs(vals)

    # Decompose |x| = m * 2**e with m in [0.5, 1).  The unbiased exponent of
    # the leading significand bit is then E = e - 1 and the significand is
    # s = 2*m in [1, 2).
    m, e = np.frexp(mag)
    E = e - 1

    # Effective precision: man_bits fraction bits for normals; values whose
    # exponent falls below emin lose one bit per binade (gradual underflow).
    prec = fmt.man_bits - np.maximum(fmt.emin - E, 0)

    # Scale so the last retained fraction bit sits at the units place:
    # scaled = s * 2**prec = m * 2**(prec + 1).
    scaled = np.ldexp(m, prec + 1)
    if rounding == RoundingMode.NEAREST_EVEN:
        rounded = np.rint(scaled)
    elif rounding == RoundingMode.TOWARD_ZERO:
        rounded = np.trunc(scaled)
    elif rounding == RoundingMode.UP:
        rounded = np.where(sign, np.floor(scaled), np.ceil(scaled))
    else:  # DOWN
        rounded = np.where(sign, np.ceil(scaled), np.floor(scaled))

    q = np.ldexp(rounded, E - prec)
    q = np.where(sign, -q, q)

    # Overflow handling: magnitudes beyond the largest finite value become
    # ±inf under nearest/away-from-zero directions, and are clamped to the
    # largest finite value under toward-zero (as in IEEE-754 / MPFR).
    over = np.abs(q) > fmt.max_value
    if np.any(over):
        if rounding == RoundingMode.TOWARD_ZERO:
            q = np.where(over, np.copysign(fmt.max_value, q), q)
        elif rounding == RoundingMode.UP:
            q = np.where(over & ~sign, np.inf, q)
            q = np.where(over & sign, -fmt.max_value, q)
        elif rounding == RoundingMode.DOWN:
            q = np.where(over & sign, -np.inf, q)
            q = np.where(over & ~sign, fmt.max_value, q)
        else:
            q = np.where(over, np.copysign(np.inf, q), q)

    # Preserve the sign of values that underflowed to zero.
    q = np.where((q == 0.0) & sign, -0.0, q)

    out[finite] = q
    return out


def quantize_like(x: ArrayLike, fmt: FPFormat, template: np.ndarray) -> np.ndarray:
    """Quantise ``x`` and reshape/broadcast it to the shape of ``template``."""
    q = quantize(x, fmt)
    return np.broadcast_to(q, np.shape(template)).copy()


def is_representable(x: ArrayLike, fmt: FPFormat) -> np.ndarray:
    """Element-wise test whether ``x`` is exactly representable in ``fmt``."""
    arr = np.asarray(x, dtype=np.float64)
    q = quantize(arr, fmt)
    same = (q == arr) | (np.isnan(arr) & np.isnan(q))
    return np.asarray(same)


def ulp(x: ArrayLike, fmt: FPFormat) -> np.ndarray:
    """Unit in the last place of ``fmt`` at magnitude ``|x|``.

    For zero and subnormal magnitudes this returns the smallest subnormal
    spacing ``2**(emin - man_bits)``.
    """
    arr = np.abs(np.asarray(x, dtype=np.float64))
    out = np.full(arr.shape, fmt.min_subnormal, dtype=np.float64)
    normal = arr >= fmt.min_normal
    if np.any(normal):
        _, e = np.frexp(arr[normal])
        out_n = np.ldexp(1.0, (e - 1) - fmt.man_bits)
        out[normal] = out_n
    inf_or_nan = ~np.isfinite(arr)
    if np.any(inf_or_nan):
        out = np.where(inf_or_nan, np.nan, out)
    return out


def quantization_error(x: ArrayLike, fmt: FPFormat) -> np.ndarray:
    """Absolute rounding error committed by quantising ``x`` to ``fmt``."""
    arr = np.asarray(x, dtype=np.float64)
    q = quantize(arr, fmt)
    err = np.abs(q - arr)
    return np.where(np.isfinite(arr) & ~np.isfinite(q), np.inf, err)
