"""Configuration-file-driven truncation filters.

Section 7.3 of the paper lists "support function filtering using a
configuration file (similar to profilers)" as a planned usability
improvement over the manual region annotations.  This module implements that
extension for the reproduction: a small text format that names the modules
(or module prefixes) to include in / exclude from truncation, together with
the truncation spec, and a parser that turns it into a ready-to-use
:class:`~repro.core.selective.TruncationPolicy`.

Format (one directive per line, ``#`` comments allowed)::

    # truncate 64-bit ops to e5m14 everywhere except the EOS
    truncate 64_to_5_14
    mode op
    threshold 1e-6
    include hydro
    include incomp.advection
    exclude eos

``include`` lines restrict truncation to the listed module labels (prefix
match on dotted names); with no ``include`` line every module is eligible.
``exclude`` lines always win over includes.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional

from .config import Mode, TruncationConfig
from .runtime import RaptorRuntime
from .selective import PredicatePolicy, TruncationPolicy

__all__ = ["FilterSpec", "parse_filter_text", "load_filter_file", "policy_from_filter"]


@dataclass
class FilterSpec:
    """Parsed contents of a filter configuration."""

    config: TruncationConfig
    includes: List[str] = field(default_factory=list)
    excludes: List[str] = field(default_factory=list)

    def matches(self, module: Optional[str]) -> bool:
        """Whether operations of ``module`` should be truncated."""
        name = module or ""
        for pattern in self.excludes:
            if _prefix_match(name, pattern):
                return False
        if not self.includes:
            return True
        return any(_prefix_match(name, pattern) for pattern in self.includes)


def _prefix_match(name: str, pattern: str) -> bool:
    """Dotted-prefix match: pattern "hydro" matches "hydro" and "hydro.recon"."""
    return name == pattern or name.startswith(pattern + ".") or name.startswith(pattern + ":")


def parse_filter_text(text: str) -> FilterSpec:
    """Parse the filter-file format described in the module docstring."""
    truncate_spec: Optional[str] = None
    mode = Mode.OP
    threshold = 1e-6
    includes: List[str] = []
    excludes: List[str] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        directive, args = parts[0].lower(), parts[1:]
        if directive == "truncate":
            if len(args) != 1:
                raise ValueError(f"line {lineno}: 'truncate' expects one spec argument")
            truncate_spec = args[0]
        elif directive == "mode":
            if len(args) != 1 or args[0] not in ("op", "mem"):
                raise ValueError(f"line {lineno}: 'mode' expects 'op' or 'mem'")
            mode = Mode(args[0])
        elif directive == "threshold":
            if len(args) != 1:
                raise ValueError(f"line {lineno}: 'threshold' expects one value")
            threshold = float(args[0])
        elif directive == "include":
            if len(args) != 1:
                raise ValueError(f"line {lineno}: 'include' expects one module name")
            includes.append(args[0])
        elif directive == "exclude":
            if len(args) != 1:
                raise ValueError(f"line {lineno}: 'exclude' expects one module name")
            excludes.append(args[0])
        else:
            raise ValueError(f"line {lineno}: unknown directive {directive!r}")

    if truncate_spec is None:
        raise ValueError("filter file contains no 'truncate' directive")
    config = TruncationConfig.from_spec(truncate_spec, mode=mode, deviation_threshold=threshold)
    return FilterSpec(config=config, includes=includes, excludes=excludes)


def load_filter_file(path) -> FilterSpec:
    """Read and parse a filter configuration file."""
    return parse_filter_text(Path(path).read_text(encoding="utf-8"))


def policy_from_filter(
    spec: FilterSpec,
    runtime: Optional[RaptorRuntime] = None,
) -> TruncationPolicy:
    """Build a truncation policy that honours the filter's include/exclude rules."""

    def predicate(module, level, max_level, state) -> bool:
        return spec.matches(module)

    return PredicatePolicy(spec.config, predicate, runtime=runtime)
