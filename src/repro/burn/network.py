"""Simplified carbon-detonation reaction network.

The Cellular workload couples compressible hydrodynamics to nuclear burning
of pure carbon with an astrophysical EOS.  The paper notes the burn module's
ODEs are "particularly stiff and sensitive to numerical perturbation", which
is why the EOS — not the burner — was chosen for truncation.

This module provides a single-rate carbon-burning network with the same
character: an Arrhenius-like, extremely temperature-sensitive reaction rate
integrated with a sub-cycled exponential (stiff-stable) update.  It supplies
the energy release that drives the detonation in
:mod:`repro.workloads.cellular`.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.opmode import FPContext, FullPrecisionContext

__all__ = ["CarbonBurnNetwork"]


@dataclass
class CarbonBurnNetwork:
    """Single-species carbon burning: ``dX/dt = -X * R(T)``.

    Parameters
    ----------
    rate_prefactor:
        Overall rate normalisation (1/s at T9 = 1 for X = 1).
    t9_exponent:
        Power-law part of the temperature sensitivity.
    activation_t9:
        Exponential sensitivity scale: the rate carries
        ``exp(-activation_t9 / T9^(1/3))`` like the C12+C12 fit.
    q_value:
        Specific energy release per unit burned mass fraction (erg/g).
    ignition_t9:
        Below this temperature the rate is cut off (keeps the cold fuel inert).
    """

    rate_prefactor: float = 4.0e4
    t9_exponent: float = 3.0
    activation_t9: float = 84.165
    q_value: float = 5.6e17
    ignition_t9: float = 0.6

    # ------------------------------------------------------------------
    def rate(self, temperature: np.ndarray, ctx: Optional[FPContext] = None) -> np.ndarray:
        """Reaction rate R(T) in 1/s (vectorised)."""
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        t9 = ctx.mul(ctx.const(1e-9), temperature, "burn:t9")
        t9_plain = np.maximum(ctx.asplain(t9), 1e-4)
        # power-law and exponential screening factors
        power = ctx.power(ctx.const(t9_plain), ctx.const(self.t9_exponent), "burn:t9_pow")
        arg = ctx.mul(
            ctx.const(-self.activation_t9),
            ctx.power(ctx.const(t9_plain), ctx.const(-1.0 / 3.0), "burn:t9_cbrt"),
            "burn:exp_arg",
        )
        screen = ctx.exp(arg, "burn:screen")
        raw = ctx.mul(ctx.const(self.rate_prefactor), ctx.mul(power, screen, "burn:rate_core"), "burn:rate")
        # ignition cutoff: pure control flow on plain values
        return ctx.where(t9_plain >= self.ignition_t9, raw, ctx.zeros_like(raw))

    # ------------------------------------------------------------------
    def burn(
        self,
        mass_fraction: np.ndarray,
        temperature: np.ndarray,
        dt: float,
        ctx: Optional[FPContext] = None,
        substeps: int = 4,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the fuel mass fraction over ``dt``.

        Uses the exact exponential solution of the linear ODE over each
        substep with the rate frozen at the current temperature — an
        L-stable update that tolerates the stiffness of the rate.

        Returns
        -------
        (new_mass_fraction, specific_energy_release)
        """
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        x = ctx.const(np.asarray(mass_fraction, dtype=np.float64))
        x_initial = ctx.asplain(x).copy()
        sub_dt = ctx.const(dt / max(substeps, 1))
        for _ in range(max(substeps, 1)):
            r = self.rate(temperature, ctx)
            decay = ctx.exp(ctx.mul(ctx.neg(r, "burn:neg_rate"), sub_dt, "burn:rdt"), "burn:decay")
            x = ctx.mul(x, decay, "burn:new_x")
        x_new = ctx.clip_nonnegative(x, 0.0)
        burned = ctx.sub(ctx.const(x_initial), x_new, "burn:burned")
        energy = ctx.mul(ctx.const(self.q_value), burned, "burn:energy")
        return ctx.asplain(x_new), ctx.asplain(energy)

    # ------------------------------------------------------------------
    def burning_timescale(self, temperature: float) -> float:
        """e-folding time of the fuel at a given temperature (diagnostic)."""
        r = float(np.max(self.rate(np.asarray([temperature], dtype=float))))
        return np.inf if r <= 0 else 1.0 / r
