"""Simplified nuclear-burning network (Cellular detonation substrate)."""
from .network import CarbonBurnNetwork

__all__ = ["CarbonBurnNetwork"]
