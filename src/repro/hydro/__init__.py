"""Compressible hydrodynamics solver (analogue of Flash-X's Spark solver)."""
from .eos import GammaLawEOS
from .reconstruction import SCHEMES, reconstruct
from .riemann import SOLVERS, euler_flux, hll_flux, hllc_flux
from .solver import ContextProvider, HydroSolver, default_context_provider

__all__ = [
    "GammaLawEOS",
    "reconstruct",
    "SCHEMES",
    "euler_flux",
    "hll_flux",
    "hllc_flux",
    "SOLVERS",
    "HydroSolver",
    "ContextProvider",
    "default_context_provider",
]
