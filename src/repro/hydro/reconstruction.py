"""Interface-state reconstruction schemes.

The Spark solver in Flash-X reconstructs the variation of the solution
inside each cell before handing left/right interface states to the Riemann
solver.  Three schemes are provided, in increasing order of accuracy and
cost:

* ``pcm``   — piecewise constant (first order; mainly for tests),
* ``plm``   — piecewise linear with minmod limiting (second order),
* ``weno5`` — fifth-order Weighted Essentially Non-Oscillatory (the scheme
  the paper uses for the Bubble advection operators and the highest-order
  option for the compressible runs).

All arithmetic is expressed through the numerics context obtained from the
kernel-plane layer (:mod:`repro.kernels`), so the reconstruction stage can
be truncated, shadow-tracked (mem-mode "Recon" module of Table 2) or
excluded, independently of the other solver stages.  When the active
context is on the fused binary64 fast plane (``ctx.fused``),
:func:`reconstruct` dispatches to the pre-fused numpy stencils of
:mod:`repro.kernels.fused` instead of the op-by-op path — bit-identical
results, zero per-op dispatch; on the fused truncating plane
(``ctx.fused_trunc``) it dispatches to the quantize-at-op-boundary
stencils of :mod:`repro.kernels.trunc`.

The functions operate on 2-D block arrays including guard cells along the
sweep axis and return the left/right states at the ``n+1`` interior faces.
"""
from __future__ import annotations

from typing import Tuple

from ..kernels import FPContext, fused, trunc

__all__ = ["reconstruct", "SCHEMES"]

_WENO_EPS = 1e-6


def _shift(u, axis: int, offset: int, ng: int, n: int):
    """Cells ``i + offset`` for the cell range used by face reconstruction.

    The face index f = 0..n corresponds to cells ``ng - 1 + f`` (left side of
    the face) so a window of length ``n + 1`` starting at ``ng - 1 + offset``
    is extracted along ``axis``.
    """
    start = ng - 1 + offset
    stop = start + n + 1
    if axis == 0:
        return u[start:stop, :]
    return u[:, start:stop]


def _pcm(u, axis: int, ng: int, n: int, ctx: FPContext):
    left = _shift(u, axis, 0, ng, n)
    right = _shift(u, axis, 1, ng, n)
    # piecewise constant: the interface states are the adjacent cell values
    return left, right


def _minmod(a, b, ctx: FPContext):
    """minmod(a, b): 0 where signs differ, otherwise the smaller magnitude."""
    same_sign = ctx.mul(a, b, "recon:minmod_ab") > 0.0
    mag = ctx.where(abs_lt(a, b, ctx), a, b)
    zero = ctx.zeros_like(mag)
    return ctx.where(same_sign, mag, zero)


def abs_lt(a, b, ctx: FPContext):
    """|a| < |b| as a boolean array (no FLOPs counted: predicate only)."""
    return ctx.asplain(ctx.abs(a, "recon:abs_a")) < ctx.asplain(ctx.abs(b, "recon:abs_b"))


def _plm(u, axis: int, ng: int, n: int, ctx: FPContext):
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)

    # limited slopes in the cells left and right of each face
    dl_left = ctx.sub(uc, um1, "recon:dl_left")
    dr_left = ctx.sub(up1, uc, "recon:dr_left")
    slope_left = _minmod(dl_left, dr_left, ctx)

    dl_right = ctx.sub(up1, uc, "recon:dl_right")
    dr_right = ctx.sub(up2, up1, "recon:dr_right")
    slope_right = _minmod(dl_right, dr_right, ctx)

    half = ctx.const(0.5)
    left = ctx.add(uc, ctx.mul(half, slope_left, "recon:half_sl"), "recon:left")
    right = ctx.sub(up1, ctx.mul(half, slope_right, "recon:half_sr"), "recon:right")
    return left, right


def _weno5_edge(um2, um1, u0, up1, up2, ctx: FPContext):
    """Jiang–Shu WENO5 reconstruction of the right-edge value of cell 0."""
    c = ctx.const

    q0 = ctx.mul(
        c(1.0 / 6.0),
        ctx.add(
            ctx.sub(ctx.mul(c(2.0), um2, "recon:w_q0a"), ctx.mul(c(7.0), um1, "recon:w_q0b"), "recon:w_q0c"),
            ctx.mul(c(11.0), u0, "recon:w_q0d"),
            "recon:w_q0",
        ),
        "recon:w_q0e",
    )
    q1 = ctx.mul(
        c(1.0 / 6.0),
        ctx.add(
            ctx.sub(ctx.mul(c(5.0), u0, "recon:w_q1a"), um1, "recon:w_q1b"),
            ctx.mul(c(2.0), up1, "recon:w_q1c"),
            "recon:w_q1",
        ),
        "recon:w_q1d",
    )
    q2 = ctx.mul(
        c(1.0 / 6.0),
        ctx.sub(
            ctx.add(ctx.mul(c(2.0), u0, "recon:w_q2a"), ctx.mul(c(5.0), up1, "recon:w_q2b"), "recon:w_q2c"),
            up2,
            "recon:w_q2",
        ),
        "recon:w_q2d",
    )

    # smoothness indicators
    d1_0 = ctx.add(ctx.sub(um2, ctx.mul(c(2.0), um1, "recon:w_b0a"), "recon:w_b0b"), u0, "recon:w_b0c")
    d2_0 = ctx.add(ctx.sub(um2, ctx.mul(c(4.0), um1, "recon:w_b0d"), "recon:w_b0e"), ctx.mul(c(3.0), u0, "recon:w_b0f"), "recon:w_b0g")
    beta0 = ctx.add(
        ctx.mul(c(13.0 / 12.0), ctx.mul(d1_0, d1_0, "recon:w_b0h"), "recon:w_b0i"),
        ctx.mul(c(0.25), ctx.mul(d2_0, d2_0, "recon:w_b0j"), "recon:w_b0k"),
        "recon:w_beta0",
    )

    d1_1 = ctx.add(ctx.sub(um1, ctx.mul(c(2.0), u0, "recon:w_b1a"), "recon:w_b1b"), up1, "recon:w_b1c")
    d2_1 = ctx.sub(um1, up1, "recon:w_b1d")
    beta1 = ctx.add(
        ctx.mul(c(13.0 / 12.0), ctx.mul(d1_1, d1_1, "recon:w_b1e"), "recon:w_b1f"),
        ctx.mul(c(0.25), ctx.mul(d2_1, d2_1, "recon:w_b1g"), "recon:w_b1h"),
        "recon:w_beta1",
    )

    d1_2 = ctx.add(ctx.sub(u0, ctx.mul(c(2.0), up1, "recon:w_b2a"), "recon:w_b2b"), up2, "recon:w_b2c")
    d2_2 = ctx.add(ctx.sub(ctx.mul(c(3.0), u0, "recon:w_b2d"), ctx.mul(c(4.0), up1, "recon:w_b2e"), "recon:w_b2f"), up2, "recon:w_b2g")
    beta2 = ctx.add(
        ctx.mul(c(13.0 / 12.0), ctx.mul(d1_2, d1_2, "recon:w_b2h"), "recon:w_b2i"),
        ctx.mul(c(0.25), ctx.mul(d2_2, d2_2, "recon:w_b2j"), "recon:w_b2k"),
        "recon:w_beta2",
    )

    eps = c(_WENO_EPS)
    w0 = ctx.div(c(0.1), ctx.square(ctx.add(eps, beta0, "recon:w_a0a"), "recon:w_a0b"), "recon:w_alpha0")
    w1 = ctx.div(c(0.6), ctx.square(ctx.add(eps, beta1, "recon:w_a1a"), "recon:w_a1b"), "recon:w_alpha1")
    w2 = ctx.div(c(0.3), ctx.square(ctx.add(eps, beta2, "recon:w_a2a"), "recon:w_a2b"), "recon:w_alpha2")

    wsum = ctx.add(ctx.add(w0, w1, "recon:w_sum01"), w2, "recon:w_sum")
    num = ctx.add(
        ctx.add(ctx.mul(w0, q0, "recon:w_n0"), ctx.mul(w1, q1, "recon:w_n1"), "recon:w_n01"),
        ctx.mul(w2, q2, "recon:w_n2"),
        "recon:w_num",
    )
    return ctx.div(num, wsum, "recon:w_edge")


def _weno5(u, axis: int, ng: int, n: int, ctx: FPContext):
    um2 = _shift(u, axis, -2, ng, n)
    um1 = _shift(u, axis, -1, ng, n)
    uc = _shift(u, axis, 0, ng, n)
    up1 = _shift(u, axis, 1, ng, n)
    up2 = _shift(u, axis, 2, ng, n)
    up3 = _shift(u, axis, 3, ng, n)

    # left state at face i+1/2: right-edge value of cell i
    left = _weno5_edge(um2, um1, uc, up1, up2, ctx)
    # right state at face i+1/2: left-edge value of cell i+1 (mirror)
    right = _weno5_edge(up3, up2, up1, uc, um1, ctx)
    return left, right


SCHEMES = {"pcm": _pcm, "plm": _plm, "weno5": _weno5}


def reconstruct(
    u,
    axis: int,
    ng: int,
    n_faces_minus_1: int,
    ctx: FPContext,
    scheme: str = "plm",
) -> Tuple[object, object]:
    """Left/right interface states at the interior faces along ``axis``.

    Parameters
    ----------
    u:
        Block array (guard cells included along ``axis``).
    axis:
        0 for an x-sweep, 1 for a y-sweep.
    ng:
        Guard-cell width of ``u`` along ``axis`` (>= 2 for plm, >= 3 for weno5).
    n_faces_minus_1:
        Number of interior cells along the sweep (there are ``n+1`` faces).
    ctx:
        Numerics context (op-mode, mem-mode, or full precision).
    scheme:
        "pcm", "plm" or "weno5".

    The fused branches serve direct callers holding a fast-plane context;
    the hydro solver's own fast paths never reach them (``advance_block``
    short-circuits into :func:`repro.kernels.flux.advance` /
    :func:`repro.kernels.trunc.advance`, which invoke the fused stencils
    with workspace-threaded scratch keys themselves).
    """
    try:
        fn = SCHEMES[scheme]
    except KeyError as exc:
        raise ValueError(f"unknown reconstruction scheme {scheme!r}") from exc
    if scheme == "weno5" and ng < 3:
        raise ValueError("weno5 needs at least 3 guard cells")
    if scheme == "plm" and ng < 2:
        raise ValueError("plm needs at least 2 guard cells")
    if getattr(ctx, "fused", False):
        return fused.FUSED_SCHEMES[scheme](u, axis, ng, n_faces_minus_1)
    if getattr(ctx, "fused_trunc", False):
        return trunc.TRUNC_SCHEMES[scheme](
            u, axis, ng, n_faces_minus_1, fmt=ctx.fmt, rounding=ctx.rounding
        )
    return fn(u, axis, ng, n_faces_minus_1, ctx)
