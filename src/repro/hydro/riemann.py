"""Approximate Riemann solvers (HLL, HLLE, HLLC).

The Riemann solver resolves the discontinuity between the reconstructed
left/right interface states into a numerical flux.  It is the second of the
Spark solver components exercised by the mem-mode debugging experiment
(Table 2: the "Riemann" module), and its arithmetic therefore also goes
through the numerics context.

Three solvers are provided: ``hll`` (Davis wave-speed estimates), ``hlle``
(the Einfeldt variant — Roe-averaged wave speeds on the same HLL
combination) and ``hllc`` (restores the contact wave).  When the active
context is on the fused binary64 fast plane (``ctx.fused``), each solver
dispatches to its pre-fused straight-line twin in
:mod:`repro.kernels.flux` — bit-identical results, zero per-op dispatch;
on the fused truncating plane (``ctx.fused_trunc``) it dispatches to the
quantize-at-op-boundary twin in :mod:`repro.kernels.trunc`.

States are passed as dictionaries of face arrays with keys ``dens``,
``velx``, ``vely``, ``pres`` where ``velx`` denotes the velocity normal to
the face and ``vely`` the transverse velocity (the solver swaps components
before calling for y-sweeps).  Returned fluxes are dictionaries with keys
``dens``, ``momn``, ``momt``, ``ener`` (normal/transverse momentum).
"""
from __future__ import annotations

from typing import Dict

from ..kernels import FPContext
from ..kernels import flux as _fused_flux
from ..kernels import trunc as _trunc_flux
from .eos import GammaLawEOS

__all__ = ["euler_flux", "hll_flux", "hllc_flux", "hlle_flux", "SOLVERS"]


def _conserved(state: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    dens, velx, vely, pres = state["dens"], state["velx"], state["vely"], state["pres"]
    momn = ctx.mul(dens, velx, "riemann:momn")
    momt = ctx.mul(dens, vely, "riemann:momt")
    ener = eos.total_energy(dens, velx, vely, pres, ctx)
    return {"dens": dens, "momn": momn, "momt": momt, "ener": ener}


def euler_flux(state: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    """Physical Euler flux normal to the face for a primitive state."""
    dens, velx, vely, pres = state["dens"], state["velx"], state["vely"], state["pres"]
    cons = _conserved(state, eos, ctx)
    f_dens = cons["momn"]
    f_momn = ctx.add(ctx.mul(cons["momn"], velx, "riemann:f_momn_a"), pres, "riemann:f_momn")
    f_momt = ctx.mul(cons["momt"], velx, "riemann:f_momt")
    f_ener = ctx.mul(ctx.add(cons["ener"], pres, "riemann:f_ener_a"), velx, "riemann:f_ener")
    return {"dens": f_dens, "momn": f_momn, "momt": f_momt, "ener": f_ener}


def _wave_speeds(left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext):
    """Davis wave-speed estimates S_L, S_R."""
    cl = eos.sound_speed(left["dens"], left["pres"], ctx)
    cr = eos.sound_speed(right["dens"], right["pres"], ctx)
    sl = ctx.minimum(
        ctx.sub(left["velx"], cl, "riemann:ul_m_cl"),
        ctx.sub(right["velx"], cr, "riemann:ur_m_cr"),
        "riemann:sl",
    )
    sr = ctx.maximum(
        ctx.add(left["velx"], cl, "riemann:ul_p_cl"),
        ctx.add(right["velx"], cr, "riemann:ur_p_cr"),
        "riemann:sr",
    )
    return sl, sr


def _einfeldt_wave_speeds(left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext):
    """Einfeldt wave-speed estimates from Roe averages (the HLLE choice).

    S_L = min(ul - cl, u_roe - c_roe), S_R = max(ur + cr, u_roe + c_roe)
    with the Roe-averaged velocity and sound speed (Einfeldt's eta2 = 1/2
    velocity-jump correction).
    """
    cl = eos.sound_speed(left["dens"], left["pres"], ctx)
    cr = eos.sound_speed(right["dens"], right["pres"], ctx)
    sql = ctx.sqrt(left["dens"], "riemann:sql")
    sqr = ctx.sqrt(right["dens"], "riemann:sqr")
    wsum = ctx.add(sql, sqr, "riemann:roe_wsum")
    u_roe = ctx.div(
        ctx.add(
            ctx.mul(sql, left["velx"], "riemann:sql_ul"),
            ctx.mul(sqr, right["velx"], "riemann:sqr_ur"),
            "riemann:roe_num",
        ),
        wsum,
        "riemann:u_roe",
    )
    cl2 = ctx.mul(cl, cl, "riemann:cl2")
    cr2 = ctx.mul(cr, cr, "riemann:cr2")
    c2_bar = ctx.div(
        ctx.add(
            ctx.mul(sql, cl2, "riemann:sql_cl2"),
            ctx.mul(sqr, cr2, "riemann:sqr_cr2"),
            "riemann:c2_num",
        ),
        wsum,
        "riemann:c2_bar",
    )
    du = ctx.sub(right["velx"], left["velx"], "riemann:du_roe")
    eta = ctx.mul(
        ctx.const(0.5),
        ctx.div(
            ctx.mul(sql, sqr, "riemann:sqlr"),
            ctx.mul(wsum, wsum, "riemann:wsum2"),
            "riemann:eta_div",
        ),
        "riemann:eta",
    )
    c_roe = ctx.sqrt(
        ctx.add(
            c2_bar,
            ctx.mul(eta, ctx.mul(du, du, "riemann:du2"), "riemann:eta_du2"),
            "riemann:c_roe2",
        ),
        "riemann:c_roe",
    )
    sl = ctx.minimum(
        ctx.sub(left["velx"], cl, "riemann:ul_m_cl"),
        ctx.sub(u_roe, c_roe, "riemann:uroe_m_c"),
        "riemann:sl",
    )
    sr = ctx.maximum(
        ctx.add(right["velx"], cr, "riemann:ur_p_cr"),
        ctx.add(u_roe, c_roe, "riemann:uroe_p_c"),
        "riemann:sr",
    )
    return sl, sr


def _hll_from_speeds(sl, sr, left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    """HLL flux combination for given wave-speed estimates."""
    ul = _conserved(left, eos, ctx)
    ur = _conserved(right, eos, ctx)
    fl = euler_flux(left, eos, ctx)
    fr = euler_flux(right, eos, ctx)

    use_left = ctx.asplain(sl) >= 0.0
    use_right = ctx.asplain(sr) <= 0.0
    denom = ctx.sub(sr, sl, "riemann:sr_m_sl")

    flux: Dict = {}
    for comp in ("dens", "momn", "momt", "ener"):
        num = ctx.add(
            ctx.sub(
                ctx.mul(sr, fl[comp], "riemann:sr_fl"),
                ctx.mul(sl, fr[comp], "riemann:sl_fr"),
                "riemann:flux_diff",
            ),
            ctx.mul(
                ctx.mul(sl, sr, "riemann:sl_sr"),
                ctx.sub(ur[comp], ul[comp], "riemann:du"),
                "riemann:slsr_du",
            ),
            "riemann:hll_num",
        )
        middle = ctx.div(num, denom, "riemann:hll_flux")
        flux[comp] = ctx.where(use_left, fl[comp], ctx.where(use_right, fr[comp], middle))
    return flux


def hll_flux(left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    """Harten–Lax–van Leer flux (Davis wave speeds)."""
    if getattr(ctx, "fused", False):
        return _fused_flux.hll_flux(left, right, eos.gamma)
    if getattr(ctx, "fused_trunc", False):
        return _trunc_flux.hll_flux(left, right, eos.gamma, fmt=ctx.fmt, rounding=ctx.rounding)
    sl, sr = _wave_speeds(left, right, eos, ctx)
    return _hll_from_speeds(sl, sr, left, right, eos, ctx)


def hlle_flux(left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    """HLLE flux: the HLL combination with Einfeldt wave speeds."""
    if getattr(ctx, "fused", False):
        return _fused_flux.hlle_flux(left, right, eos.gamma)
    if getattr(ctx, "fused_trunc", False):
        return _trunc_flux.hlle_flux(left, right, eos.gamma, fmt=ctx.fmt, rounding=ctx.rounding)
    sl, sr = _einfeldt_wave_speeds(left, right, eos, ctx)
    return _hll_from_speeds(sl, sr, left, right, eos, ctx)


def hllc_flux(left: Dict, right: Dict, eos: GammaLawEOS, ctx: FPContext) -> Dict:
    """HLLC flux (restores the contact wave missing from HLL)."""
    if getattr(ctx, "fused", False):
        return _fused_flux.hllc_flux(left, right, eos.gamma)
    if getattr(ctx, "fused_trunc", False):
        return _trunc_flux.hllc_flux(left, right, eos.gamma, fmt=ctx.fmt, rounding=ctx.rounding)
    sl, sr = _wave_speeds(left, right, eos, ctx)
    ul = _conserved(left, eos, ctx)
    ur = _conserved(right, eos, ctx)
    fl = euler_flux(left, eos, ctx)
    fr = euler_flux(right, eos, ctx)

    dl, dr = left["dens"], right["dens"]
    vl, vr = left["velx"], right["velx"]
    pl, pr = left["pres"], right["pres"]

    # contact (star) speed
    dl_slvl = ctx.mul(dl, ctx.sub(sl, vl, "riemann:sl_m_vl"), "riemann:dl_slvl")
    dr_srvr = ctx.mul(dr, ctx.sub(sr, vr, "riemann:sr_m_vr"), "riemann:dr_srvr")
    num = ctx.add(
        ctx.sub(pr, pl, "riemann:dp"),
        ctx.sub(ctx.mul(dl_slvl, vl, "riemann:dl_slvl_vl"), ctx.mul(dr_srvr, vr, "riemann:dr_srvr_vr"), "riemann:mom_diff"),
        "riemann:star_num",
    )
    den = ctx.sub(dl_slvl, dr_srvr, "riemann:star_den")
    s_star = ctx.div(num, den, "riemann:s_star")

    def star_state(state, cons, s_k, d_slv):
        """Conserved state in the star region behind wave ``s_k``."""
        factor = ctx.div(d_slv, ctx.sub(s_k, s_star, "riemann:sk_m_star"), "riemann:star_factor")
        d_star = factor
        momn_star = ctx.mul(factor, s_star, "riemann:momn_star")
        momt_star = ctx.mul(factor, state["vely"], "riemann:momt_star")
        # energy in the star region
        e_over_d = ctx.div(cons["ener"], state["dens"], "riemann:e_over_d")
        p_term = ctx.div(
            state["pres"],
            ctx.mul(state["dens"], ctx.sub(s_k, state["velx"], "riemann:sk_m_v"), "riemann:d_skv"),
            "riemann:p_term",
        )
        bracket = ctx.add(
            e_over_d,
            ctx.mul(
                ctx.sub(s_star, state["velx"], "riemann:star_m_v"),
                ctx.add(s_star, p_term, "riemann:star_p_term"),
                "riemann:bracket_mul",
            ),
            "riemann:bracket",
        )
        ener_star = ctx.mul(factor, bracket, "riemann:ener_star")
        return {"dens": d_star, "momn": momn_star, "momt": momt_star, "ener": ener_star}

    ul_star = star_state(left, ul, sl, dl_slvl)
    ur_star = star_state(right, ur, sr, dr_srvr)

    sl_plain = ctx.asplain(sl)
    sr_plain = ctx.asplain(sr)
    s_star_plain = ctx.asplain(s_star)
    region_l = sl_plain >= 0.0
    region_ls = (sl_plain < 0.0) & (s_star_plain >= 0.0)
    region_rs = (s_star_plain < 0.0) & (sr_plain > 0.0)

    flux: Dict = {}
    for comp in ("dens", "momn", "momt", "ener"):
        fl_star = ctx.add(
            fl[comp],
            ctx.mul(sl, ctx.sub(ul_star[comp], ul[comp], "riemann:dul_star"), "riemann:sl_dul"),
            "riemann:fl_star",
        )
        fr_star = ctx.add(
            fr[comp],
            ctx.mul(sr, ctx.sub(ur_star[comp], ur[comp], "riemann:dur_star"), "riemann:sr_dur"),
            "riemann:fr_star",
        )
        out = ctx.where(region_l, fl[comp], fr[comp])
        out = ctx.where(region_ls, fl_star, out)
        out = ctx.where(region_rs, fr_star, out)
        flux[comp] = out
    return flux


SOLVERS = {"hll": hll_flux, "hllc": hllc_flux, "hlle": hlle_flux}
