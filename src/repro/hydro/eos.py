"""Gamma-law equation of state for the compressible hydro solver.

All arithmetic goes through a numerics context so the EOS participates in
the truncation experiments exactly like the rest of the solver (it is one of
the modules the paper truncates selectively in the Cellular study; for the
Sedov/Sod hydro experiments the ideal-gas EOS below is used).

When the supplied context is on the fused binary64 fast plane
(``ctx.fused``), every helper dispatches to its straight-line numpy twin in
:mod:`repro.kernels.flux` — bit-identical values, zero per-op dispatch; on
the fused truncating plane (``ctx.fused_trunc``) it dispatches to the
quantize-at-op-boundary twin in :mod:`repro.kernels.trunc`.
"""
from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import FPContext, FullPrecisionContext
from ..kernels import flux as _fused_flux
from ..kernels import trunc as _trunc_flux

__all__ = ["GammaLawEOS"]


class GammaLawEOS:
    """Ideal-gas (gamma-law) EOS: ``p = (gamma - 1) rho e_int``.

    Parameters
    ----------
    gamma:
        Ratio of specific heats (1.4 for Sod/Sedov in Flash-X defaults).
    pressure_floor, density_floor:
        Small positive floors (Flash-X's ``smallp``/``smlrho``) that keep
        aggressively truncated runs from producing negative pressures or
        densities.
    """

    def __init__(
        self,
        gamma: float = 1.4,
        pressure_floor: float = 1e-12,
        density_floor: float = 1e-12,
    ) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        self.gamma = float(gamma)
        self.pressure_floor = float(pressure_floor)
        self.density_floor = float(density_floor)

    # ------------------------------------------------------------------
    def pressure_from_internal_energy(self, dens, eint, ctx: Optional[FPContext] = None):
        """p = (gamma - 1) * rho * e_int (with the pressure floor applied)."""
        if getattr(ctx, "fused", False):
            return _fused_flux.eos_pressure_from_internal_energy(
                dens, eint, self.gamma, self.pressure_floor
            )
        if getattr(ctx, "fused_trunc", False):
            return _trunc_flux.eos_pressure_from_internal_energy(
                dens, eint, self.gamma, self.pressure_floor, fmt=ctx.fmt, rounding=ctx.rounding
            )
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        pres = ctx.mul(ctx.const(self.gamma - 1.0), ctx.mul(dens, eint, "eos:rho_e"), "eos:pres")
        return ctx.maximum(pres, ctx.const(self.pressure_floor), "eos:floor")

    def internal_energy_from_pressure(self, dens, pres, ctx: Optional[FPContext] = None):
        """e_int = p / ((gamma - 1) rho)."""
        if getattr(ctx, "fused", False):
            return _fused_flux.eos_internal_energy(dens, pres, self.gamma)
        if getattr(ctx, "fused_trunc", False):
            return _trunc_flux.eos_internal_energy(
                dens, pres, self.gamma, fmt=ctx.fmt, rounding=ctx.rounding
            )
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        denom = ctx.mul(ctx.const(self.gamma - 1.0), dens, "eos:gm1_rho")
        return ctx.div(pres, denom, "eos:eint")

    def sound_speed(self, dens, pres, ctx: Optional[FPContext] = None):
        """c = sqrt(gamma * p / rho)."""
        if getattr(ctx, "fused", False):
            return _fused_flux.eos_sound_speed(dens, pres, self.gamma)
        if getattr(ctx, "fused_trunc", False):
            return _trunc_flux.eos_sound_speed(
                dens, pres, self.gamma, fmt=ctx.fmt, rounding=ctx.rounding
            )
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        ratio = ctx.div(ctx.mul(ctx.const(self.gamma), pres, "eos:gp"), dens, "eos:gp_rho")
        return ctx.sqrt(ratio, "eos:cs")

    def total_energy(self, dens, velx, vely, pres, ctx: Optional[FPContext] = None):
        """Total energy density E = rho e_int + 0.5 rho (u^2 + v^2)."""
        if getattr(ctx, "fused", False):
            return _fused_flux.eos_total_energy(dens, velx, vely, pres, self.gamma)
        if getattr(ctx, "fused_trunc", False):
            return _trunc_flux.eos_total_energy(
                dens, velx, vely, pres, self.gamma, fmt=ctx.fmt, rounding=ctx.rounding
            )
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        eint = self.internal_energy_from_pressure(dens, pres, ctx)
        ke = ctx.mul(
            ctx.const(0.5),
            ctx.mul(
                dens,
                ctx.add(ctx.mul(velx, velx, "eos:u2"), ctx.mul(vely, vely, "eos:v2"), "eos:kin"),
                "eos:rho_kin",
            ),
            "eos:ke",
        )
        return ctx.add(ctx.mul(dens, eint, "eos:rho_eint"), ke, "eos:etot")

    def pressure_from_total_energy(self, dens, momx, momy, ener, ctx: Optional[FPContext] = None):
        """Recover pressure from conserved variables (with floors)."""
        if getattr(ctx, "fused", False):
            return _fused_flux.eos_pressure_from_total_energy(
                dens, momx, momy, ener, self.gamma, self.pressure_floor, self.density_floor
            )
        if getattr(ctx, "fused_trunc", False):
            return _trunc_flux.eos_pressure_from_total_energy(
                dens, momx, momy, ener, self.gamma, self.pressure_floor, self.density_floor,
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        dens_f = ctx.maximum(dens, ctx.const(self.density_floor), "eos:rho_floor")
        velx = ctx.div(momx, dens_f, "eos:u")
        vely = ctx.div(momy, dens_f, "eos:v")
        ke = ctx.mul(
            ctx.const(0.5),
            ctx.add(ctx.mul(momx, velx, "eos:mu_u"), ctx.mul(momy, vely, "eos:mv_v"), "eos:kin"),
            "eos:ke",
        )
        eint_dens = ctx.sub(ener, ke, "eos:rho_eint")
        pres = ctx.mul(ctx.const(self.gamma - 1.0), eint_dens, "eos:pres")
        return ctx.maximum(pres, ctx.const(self.pressure_floor), "eos:pres_floor")

    # ------------------------------------------------------------------
    def apply_floors(self, dens: np.ndarray, pres: np.ndarray):
        """Plain-numpy floors (used on full-precision stored state)."""
        return (
            np.maximum(dens, self.density_floor),
            np.maximum(pres, self.pressure_floor),
        )
