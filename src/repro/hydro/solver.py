"""Unsplit finite-volume compressible hydrodynamics solver (Spark analogue).

The solver advances the 2-D compressible Euler equations on the AMR grid of
:mod:`repro.amr`.  It is deliberately organised in the same modular stages as
Flash-X's Spark solver, because the mem-mode debugging experiment (Table 2)
fences off individual stages:

* ``recon``   — interface-state reconstruction (:mod:`repro.hydro.reconstruction`),
* ``riemann`` — approximate Riemann solver (:mod:`repro.hydro.riemann`),
* ``update``  — flux divergence and conserved-variable update.

Each stage performs its floating-point work through a numerics context
obtained from a *context provider*, which is how all truncation policies
(global, AMR cutoff, module-selective, mem-mode) plug in without the solver
knowing anything about them.
"""
from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..amr.grid import AMRGrid
from ..kernels import FPContext, FullPrecisionContext, ShadowContext
from ..kernels import flux as fused_flux
from ..kernels import grid as grid_kernels
from ..kernels import trunc as trunc_flux
from ..kernels.scratch import (
    Workspace,
    batching_enabled,
    grid_plane_enabled,
    make_workspace,
)
from .eos import GammaLawEOS
from .reconstruction import reconstruct
from .riemann import SOLVERS

__all__ = ["HydroSolver", "ContextProvider", "default_context_provider"]

#: signature of the context provider: (module, level, max_level) -> FPContext
ContextProvider = Callable[[str, Optional[int], Optional[int]], FPContext]

PRIMITIVE_VARS = ("dens", "velx", "vely", "pres")


def default_context_provider(module: str, level=None, max_level=None) -> FPContext:
    """Full-precision provider used when no truncation policy is active."""
    return FullPrecisionContext(module=module)


class HydroSolver:
    """Compressible Euler solver on block-AMR grids.

    Parameters
    ----------
    eos:
        Gamma-law EOS (defaults to gamma = 1.4).
    reconstruction:
        "pcm", "plm" (default) or "weno5".
    riemann:
        "hll", "hlle" or "hllc" (default).
    cfl:
        CFL number for :meth:`compute_dt`.
    rk_stages:
        1 (forward Euler) or 2 (SSP-RK2, default).
    gravity:
        Constant body acceleration ``(gx, gy)``; a source term
        ``d(rho v)/dt = rho g``, ``dE/dt = rho v . g`` is applied through the
        update-stage numerics context (needed by the Rayleigh–Taylor
        workload).  The default ``(0, 0)`` adds no operations, so
        gravity-free runs are bit-identical to the pre-gravity solver.
    module:
        Module label under which the solver requests its numerics contexts
        ("hydro" by convention; policies match on it).
    scratch:
        Use a preallocated :class:`~repro.kernels.scratch.Workspace` for the
        fused fast-plane pipeline (bit-identical; ``None`` follows the
        ``RAPTOR_FAST_NO_SCRATCH`` environment switch, default on).
    batch_blocks:
        On the fast plane, stack same-shaped blocks of one AMR level into a
        single batched kernel invocation per substep (bit-identical;
        ``None`` follows ``RAPTOR_FAST_NO_BATCH``, default on).
    batch_dt:
        Compute the CFL step as one stacked ``(nblocks, nx, ny)`` reduction
        (:func:`repro.kernels.grid.compute_dt`) instead of looping blocks
        (bit-identical; ``None`` follows ``RAPTOR_FAST_NO_GRID``, default
        on).
    """

    def __init__(
        self,
        eos: Optional[GammaLawEOS] = None,
        reconstruction: str = "plm",
        riemann: str = "hllc",
        cfl: float = 0.4,
        rk_stages: int = 2,
        gravity: Tuple[float, float] = (0.0, 0.0),
        module: str = "hydro",
        scratch: Optional[bool] = None,
        batch_blocks: Optional[bool] = None,
        batch_dt: Optional[bool] = None,
    ) -> None:
        if riemann not in SOLVERS:
            raise ValueError(f"unknown riemann solver {riemann!r}")
        if rk_stages not in (1, 2):
            raise ValueError("rk_stages must be 1 or 2")
        self.eos = eos if eos is not None else GammaLawEOS()
        self.reconstruction = reconstruction
        self.riemann = riemann
        self.cfl = float(cfl)
        self.rk_stages = int(rk_stages)
        self.gravity = (float(gravity[0]), float(gravity[1]))
        self.module = module
        self.batch_blocks = batching_enabled() if batch_blocks is None else bool(batch_blocks)
        self.batch_dt = grid_plane_enabled() if batch_dt is None else bool(batch_dt)
        if scratch is None:
            self._workspace: Optional[Workspace] = make_workspace()
        else:
            self._workspace = Workspace() if scratch else None

    # ------------------------------------------------------------------
    # time step (full-precision diagnostic, as in the paper's fixed-dt runs)
    # ------------------------------------------------------------------
    def compute_dt(self, grid: AMRGrid) -> float:
        """Global CFL time step over all leaf blocks.

        The batched path (``batch_dt``, default) stacks every leaf interior
        into one ``(nblocks, nx, ny)`` reduction; the per-block loop below
        is the differential reference.  Both share the fused EOS
        sound-speed helper of :mod:`repro.kernels.flux` — a single source
        of truth for the floor/sound-speed math — and are bit-identical.
        """
        if self.batch_dt:
            return grid_kernels.compute_dt(grid, self.eos, self.cfl, ws=self._workspace)
        return self._compute_dt_per_block(grid)

    def _compute_dt_per_block(self, grid: AMRGrid) -> float:
        """Per-block CFL reduction (the reference twin of the batched path)."""
        dt = np.inf
        for block in grid.blocks():
            dens = block.interior_view("dens")
            velx = block.interior_view("velx")
            vely = block.interior_view("vely")
            pres = block.interior_view("pres")
            dens_f, pres_f = self.eos.apply_floors(dens, pres)
            cs = fused_flux.eos_sound_speed(dens_f, pres_f, self.eos.gamma)
            sx = np.max(np.abs(velx) + cs)
            sy = np.max(np.abs(vely) + cs)
            speed = max(sx / block.dx, sy / block.dy, 1e-30)
            dt = min(dt, 1.0 / speed)
        return self.cfl * float(dt)

    # ------------------------------------------------------------------
    # per-block update
    # ------------------------------------------------------------------
    def _stage_contexts(self, ctx: FPContext) -> Dict[str, FPContext]:
        """Derive per-stage contexts (mem-mode gets scoped module labels so
        individual stages can be excluded / attributed; op-mode reuses the
        block context)."""
        if isinstance(ctx, ShadowContext):
            return {
                "recon": ctx.scoped("recon"),
                "riemann": ctx.scoped("riemann"),
                "update": ctx.scoped("update"),
                "base": ctx,
            }
        return {"recon": ctx, "riemann": ctx, "update": ctx, "base": ctx}

    def _lift(self, ctx: FPContext, arr: np.ndarray):
        """Region-entry conversion of block data into the context's world."""
        if isinstance(ctx, ShadowContext):
            return ctx.lift(arr)
        if ctx.truncating:
            return ctx.const(arr)
        return arr

    def _directional_flux(self, prims: Dict, axis: int, ng: int, n: int, stages: Dict) -> Dict:
        """Fluxes at the ``n+1`` interior faces along ``axis``."""
        recon_ctx = stages["recon"]
        riemann_ctx = stages["riemann"]

        normal, transverse = ("velx", "vely") if axis == 0 else ("vely", "velx")
        left: Dict = {}
        right: Dict = {}
        for target, source in (("dens", "dens"), ("velx", normal), ("vely", transverse), ("pres", "pres")):
            l, r = reconstruct(prims[source], axis, ng, n, recon_ctx, self.reconstruction)
            left[target] = l
            right[target] = r

        # keep reconstructed density/pressure physical
        left["dens"] = recon_ctx.maximum(left["dens"], recon_ctx.const(self.eos.density_floor), "recon:floor_d")
        right["dens"] = recon_ctx.maximum(right["dens"], recon_ctx.const(self.eos.density_floor), "recon:floor_d")
        left["pres"] = recon_ctx.maximum(left["pres"], recon_ctx.const(self.eos.pressure_floor), "recon:floor_p")
        right["pres"] = recon_ctx.maximum(right["pres"], recon_ctx.const(self.eos.pressure_floor), "recon:floor_p")

        flux = SOLVERS[self.riemann](left, right, self.eos, riemann_ctx)
        if axis == 0:
            return {"dens": flux["dens"], "momx": flux["momn"], "momy": flux["momt"], "ener": flux["ener"]}
        return {"dens": flux["dens"], "momx": flux["momt"], "momy": flux["momn"], "ener": flux["ener"]}

    def advance_block(
        self,
        block,
        dt: float,
        ctx: FPContext,
    ) -> Dict[str, np.ndarray]:
        """One flux-divergence update of a single block.

        ``block.data`` must have its guard cells filled.  Returns the new
        interior primitive variables as plain binary64 arrays (the AMR grid
        stores plain arrays regardless of the instrumentation in use).

        On the fused fast plane (``ctx.fused``) the whole update —
        reconstruct → wave speeds → flux → conserved update — runs through
        the pre-fused pipeline of :mod:`repro.kernels.flux` without a
        single context dispatch, bit-identical to the op-by-op path.  On
        the fused *truncating* plane (``ctx.fused_trunc``) the same
        pipeline runs through :mod:`repro.kernels.trunc`, quantised at
        every op boundary — bit-identical to the optimized instrumented
        truncating path.
        """
        ng, nxb, nyb = block.ng, block.nxb, block.nyb
        if getattr(ctx, "fused", False):
            prims = {name: block.data[name] for name in PRIMITIVE_VARS}
            return self._advance_fused(prims, dt, block.dx, block.dy, ng, nxb, nyb)
        if getattr(ctx, "fused_trunc", False):
            prims = {name: block.data[name] for name in PRIMITIVE_VARS}
            return self._advance_fused_trunc(prims, dt, block.dx, block.dy, ng, nxb, nyb, ctx)
        stages = self._stage_contexts(ctx)
        update_ctx = stages["update"]

        prims = {name: self._lift(stages["base"], block.data[name]) for name in PRIMITIVE_VARS}

        # x-sweep uses interior rows in y; y-sweep interior columns in x
        prims_x = {k: v[:, ng:ng + nyb] for k, v in prims.items()}
        prims_y = {k: v[ng:ng + nxb, :] for k, v in prims.items()}
        flux_x = self._directional_flux(prims_x, 0, ng, nxb, stages)
        flux_y = self._directional_flux(prims_y, 1, ng, nyb, stages)

        # interior primitive / conserved state
        interior = {k: v[ng:ng + nxb, ng:ng + nyb] for k, v in prims.items()}
        dens, velx, vely, pres = (interior[k] for k in PRIMITIVE_VARS)
        momx = update_ctx.mul(dens, velx, "update:momx")
        momy = update_ctx.mul(dens, vely, "update:momy")
        ener = self.eos.total_energy(dens, velx, vely, pres, update_ctx)
        cons = {"dens": dens, "momx": momx, "momy": momy, "ener": ener}

        dtdx = update_ctx.const(dt / block.dx)
        dtdy = update_ctx.const(dt / block.dy)
        new_cons: Dict = {}
        for comp in ("dens", "momx", "momy", "ener"):
            fx = flux_x[comp]
            fy = flux_y[comp]
            div_x = update_ctx.sub(fx[1:, :], fx[:-1, :], "update:div_x")
            div_y = update_ctx.sub(fy[:, 1:], fy[:, :-1], "update:div_y")
            change = update_ctx.add(
                update_ctx.mul(dtdx, div_x, "update:dtdx_div"),
                update_ctx.mul(dtdy, div_y, "update:dtdy_div"),
                "update:div",
            )
            new_cons[comp] = update_ctx.sub(cons[comp], change, "update:new_u")

        # constant-gravity source term (skipped entirely when gravity is off
        # so existing workloads keep their exact operation stream)
        gx, gy = self.gravity
        if gx != 0.0 or gy != 0.0:
            # dt*g is a scalar, so fold it into one constant: one multiply
            # per cell per source term instead of two (this is the hot path,
            # and extra context ops would also inflate the reported counters)
            if gx != 0.0:
                dtgx = update_ctx.const(dt * gx)
                src_mx = update_ctx.mul(dens, dtgx, "update:src_mx")
                new_cons["momx"] = update_ctx.add(new_cons["momx"], src_mx, "update:grav_mx")
                src_ex = update_ctx.mul(momx, dtgx, "update:src_ex")
                new_cons["ener"] = update_ctx.add(new_cons["ener"], src_ex, "update:grav_ex")
            if gy != 0.0:
                dtgy = update_ctx.const(dt * gy)
                src_my = update_ctx.mul(dens, dtgy, "update:src_my")
                new_cons["momy"] = update_ctx.add(new_cons["momy"], src_my, "update:grav_my")
                src_ey = update_ctx.mul(momy, dtgy, "update:src_ey")
                new_cons["ener"] = update_ctx.add(new_cons["ener"], src_ey, "update:grav_ey")

        # conserved -> primitive, with floors (the "update" stage of Spark)
        new_dens = update_ctx.maximum(
            new_cons["dens"], update_ctx.const(self.eos.density_floor), "update:floor_d"
        )
        new_velx = update_ctx.div(new_cons["momx"], new_dens, "update:velx")
        new_vely = update_ctx.div(new_cons["momy"], new_dens, "update:vely")
        new_pres = self.eos.pressure_from_total_energy(
            new_dens, new_cons["momx"], new_cons["momy"], new_cons["ener"], update_ctx
        )

        return {
            "dens": update_ctx.asplain(new_dens),
            "velx": update_ctx.asplain(new_velx),
            "vely": update_ctx.asplain(new_vely),
            "pres": update_ctx.asplain(new_pres),
        }

    def _advance_fused(self, prims: Dict, dt: float, dx: float, dy: float,
                       ng: int, nxb: int, nyb: int) -> Dict[str, np.ndarray]:
        """The fully fused block (or block-stack) update of the fast plane."""
        return fused_flux.advance(
            prims, dt, dx, dy, ng, nxb, nyb,
            scheme=self.reconstruction,
            solver=self.riemann,
            gamma=self.eos.gamma,
            dens_floor=self.eos.density_floor,
            pres_floor=self.eos.pressure_floor,
            gravity=self.gravity,
            ws=self._workspace,
        )

    def _advance_fused_trunc(self, prims: Dict, dt: float, dx: float, dy: float,
                             ng: int, nxb: int, nyb: int, ctx: FPContext) -> Dict[str, np.ndarray]:
        """The fully fused truncating block (or block-stack) update."""
        return trunc_flux.advance(
            prims, dt, dx, dy, ng, nxb, nyb,
            scheme=self.reconstruction,
            solver=self.riemann,
            gamma=self.eos.gamma,
            dens_floor=self.eos.density_floor,
            pres_floor=self.eos.pressure_floor,
            gravity=self.gravity,
            fmt=ctx.fmt,
            rounding=ctx.rounding,
            ws=self._workspace,
        )

    # ------------------------------------------------------------------
    # grid-level stepping
    # ------------------------------------------------------------------
    def _substep(self, grid: AMRGrid, dt: float, provider: ContextProvider) -> None:
        """One forward-Euler substep over all leaves (guard cells refilled).

        Blocks whose context rides a fused plane (binary64 or truncating)
        are stacked per AMR level — and, for the truncating plane, per
        (format, rounding) signature — into one ``(nblocks, nx, ny)``
        batched kernel invocation (element-wise ufuncs are independent per
        slot, so the batched update is bit-identical to the per-block
        loop); everything else — instrumented truncating, shadow and
        counting contexts — takes the per-block op-by-op path.
        """
        max_level = grid.finest_level
        keys = grid.sorted_keys()
        contexts = {key: provider(self.module, key[0], max_level) for key in keys}
        if self._workspace is not None:
            # quiescent point: no scratch value is live between substeps, so
            # a regrid-heavy run cannot accumulate buffer families unboundedly
            self._workspace.trim()

        batched: Dict[tuple, list] = {}
        if self.batch_blocks:
            for key in keys:
                ctx = contexts[key]
                if getattr(ctx, "fused", False):
                    batched.setdefault((key[0], "b64"), []).append(key)
                elif getattr(ctx, "fused_trunc", False):
                    sig = (key[0], "trunc", ctx.fmt.exp_bits, ctx.fmt.man_bits, ctx.rounding)
                    batched.setdefault(sig, []).append(key)
            # a single block gains nothing from stacking
            batched = {sig: group for sig, group in batched.items() if len(group) > 1}

        updates: Dict = {}
        for sig in sorted(batched):
            group = batched[sig]
            updates.update(
                self._advance_level_batched(grid, group, dt, ctx=contexts[group[0]])
            )
        in_batch = {key for group in batched.values() for key in group}
        for key in keys:
            if key in in_batch:
                continue
            updates[key] = self.advance_block(grid.leaves[key], dt, contexts[key])

        for key, prims in updates.items():
            block = grid.leaves[key]
            for name, values in prims.items():
                block.set_interior(name, values)
        grid.fill_guard_cells(list(PRIMITIVE_VARS))

    def _advance_level_batched(self, grid: AMRGrid, group, dt: float, ctx=None) -> Dict:
        """Advance same-level fused blocks as one stacked kernel invocation.

        ``ctx`` is the (shared) context of the group: a truncating
        fast-plane context routes the stack through the fused truncating
        pipeline, anything else through the binary64 one.
        """
        blocks = [grid.leaves[key] for key in group]
        first = blocks[0]
        shape = (len(blocks), *first.shape_with_guards)
        ws = self._workspace
        prims: Dict[str, np.ndarray] = {}
        for name in PRIMITIVE_VARS:
            stack = ws.out(("stack", name), shape) if ws is not None else np.empty(shape)
            for i, block in enumerate(blocks):
                stack[i] = block.data[name]
            prims[name] = stack
        if getattr(ctx, "fused_trunc", False):
            new = self._advance_fused_trunc(
                prims, dt, first.dx, first.dy, first.ng, first.nxb, first.nyb, ctx
            )
        else:
            new = self._advance_fused(
                prims, dt, first.dx, first.dy, first.ng, first.nxb, first.nyb
            )
        return {
            key: {name: new[name][i] for name in PRIMITIVE_VARS}
            for i, key in enumerate(group)
        }

    def _conserved_interior(self, block) -> Dict[str, np.ndarray]:
        dens = block.interior_view("dens").copy()
        velx = block.interior_view("velx").copy()
        vely = block.interior_view("vely").copy()
        pres = block.interior_view("pres").copy()
        eint = pres / ((self.eos.gamma - 1.0) * dens)
        ener = dens * eint + 0.5 * dens * (velx ** 2 + vely ** 2)
        return {"dens": dens, "momx": dens * velx, "momy": dens * vely, "ener": ener}

    def _write_conserved(self, block, cons: Dict[str, np.ndarray]) -> None:
        dens = np.maximum(cons["dens"], self.eos.density_floor)
        velx = cons["momx"] / dens
        vely = cons["momy"] / dens
        eint_dens = cons["ener"] - 0.5 * dens * (velx ** 2 + vely ** 2)
        pres = np.maximum((self.eos.gamma - 1.0) * eint_dens, self.eos.pressure_floor)
        block.set_interior("dens", dens)
        block.set_interior("velx", velx)
        block.set_interior("vely", vely)
        block.set_interior("pres", pres)

    def step(
        self,
        grid: AMRGrid,
        dt: float,
        provider: ContextProvider = default_context_provider,
    ) -> None:
        """Advance the whole grid by ``dt``.

        With ``rk_stages == 2`` the SSP-RK2 combination
        ``U^{n+1} = 1/2 U^n + 1/2 (U^1 + dt L(U^1))`` is used; the averaging
        is performed on conserved variables at storage precision.
        """
        if self.rk_stages == 1:
            self._substep(grid, dt, provider)
            return

        old_cons = {key: self._conserved_interior(grid.leaves[key]) for key in grid.sorted_keys()}
        self._substep(grid, dt, provider)
        self._substep(grid, dt, provider)
        for key, cons0 in old_cons.items():
            block = grid.leaves[key]
            cons2 = self._conserved_interior(block)
            blended = {
                comp: 0.5 * cons0[comp] + 0.5 * cons2[comp] for comp in cons0
            }
            self._write_conserved(block, blended)
        grid.fill_guard_cells(list(PRIMITIVE_VARS))

    def evolve(
        self,
        grid: AMRGrid,
        t_end: float,
        provider: ContextProvider = default_context_provider,
        fixed_dt: Optional[float] = None,
        max_steps: int = 100000,
        regrid_interval: int = 0,
        refine_vars=("dens", "pres"),
        refine_cutoff: float = 0.8,
        derefine_cutoff: float = 0.2,
        callback: Optional[Callable[[int, float, AMRGrid], None]] = None,
    ) -> Dict[str, float]:
        """Evolve to ``t_end``; optionally regrid every ``regrid_interval`` steps.

        Returns a small summary dict (steps taken, final time, final dt).
        """
        t = 0.0
        step_count = 0
        dt = fixed_dt if fixed_dt is not None else self.compute_dt(grid)
        while t < t_end - 1e-14 and step_count < max_steps:
            if fixed_dt is None:
                dt = self.compute_dt(grid)
            dt = min(dt, t_end - t)
            self.step(grid, dt, provider)
            t += dt
            step_count += 1
            if regrid_interval and step_count % regrid_interval == 0:
                grid.regrid(list(refine_vars), refine_cutoff, derefine_cutoff)
            if callback is not None:
                callback(step_count, t, grid)
        return {"steps": float(step_count), "time": float(t), "dt": float(dt)}
