"""Floating-point-unit performance-density model (Table 4, Section 7.2).

The paper estimates how much floating-point throughput a unit of chip area
provides at each precision, using published numbers for the open-source
FPNew RISC-V FPU, and extrapolates to arbitrary precisions.  A hypothetical
CPU is then assembled from one FP64 unit and one lower-precision unit whose
areas are fixed by a typical FP64:FP32 compute-capability ratio of 1:2
(Fugaku's A64FX).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.fpformat import FP8_E5M2, FP16, FP32, FP64, FPFormat

__all__ = [
    "FPUSpec",
    "FPNEW_TABLE",
    "performance_density",
    "normalized_performance_density",
    "area_ratio",
    "HybridFPUConfig",
    "table4_rows",
]


@dataclass(frozen=True)
class FPUSpec:
    """One row of Table 4: an FPU implementation at a given precision."""

    fmt: FPFormat
    gflops: float
    area_kge: float  # kilo gate-equivalents

    @property
    def density(self) -> float:
        """Raw performance density, GFLOP/s per kGE."""
        return self.gflops / self.area_kge


#: Table 4 of the paper (data from FPNew, Mach et al. 2021).
FPNEW_TABLE: Dict[str, FPUSpec] = {
    "fp64": FPUSpec(FP64, 3.17, 53.0),
    "fp32": FPUSpec(FP32, 6.33, 40.0),
    "fp16": FPUSpec(FP16, 12.67, 29.0),
    "fp8": FPUSpec(FP8_E5M2, 25.33, 23.0),
}


def _log_fit() -> Tuple[float, float]:
    """Least-squares fit of log2(density) versus log2(storage width)."""
    widths = np.array([spec.fmt.total_bits for spec in FPNEW_TABLE.values()], dtype=float)
    densities = np.array([spec.density for spec in FPNEW_TABLE.values()], dtype=float)
    slope, intercept = np.polyfit(np.log2(widths), np.log2(densities), 1)
    return float(slope), float(intercept)


_SLOPE, _INTERCEPT = _log_fit()


def performance_density(fmt: FPFormat) -> float:
    """Performance density (GFLOP/s per kGE) of an FPU for ``fmt``.

    The four FPNew data points are reproduced exactly; any other format is
    extrapolated from the power-law fit of density versus storage width
    (the "extrapolate these values to get a performance density estimate for
    FPUs of any given precision" step of Section 7.2).
    """
    for spec in FPNEW_TABLE.values():
        if spec.fmt.total_bits == fmt.total_bits:
            return spec.density
    width = max(fmt.total_bits, 4)
    return float(2.0 ** (_INTERCEPT + _SLOPE * np.log2(width)))


def normalized_performance_density(fmt: FPFormat) -> float:
    """Performance density normalised to the FP64 unit (the last column of
    Table 4: fp64 → 1.00, fp32 → 2.65, fp16 → 7.30, fp8 → 18.41)."""
    return performance_density(fmt) / FPNEW_TABLE["fp64"].density


def area_ratio(compute_ratio_low_to_dbl: float = 2.0, low_fmt: FPFormat = FP32) -> float:
    """Area ratio ``A_dbl : A_low`` implied by a peak-compute ratio.

    With FP64:FP32 peak compute of 1:2 (A64FX) and the FPNew densities this
    gives ≈1.3–1.4, matching the paper's quoted 1.39.
    """
    p_dbl = performance_density(FP64)
    p_low = performance_density(low_fmt)
    # A_dbl * P_dbl : A_low * P_low = 1 : compute_ratio  =>  A_dbl/A_low
    return (1.0 / compute_ratio_low_to_dbl) * (p_low / p_dbl)


@dataclass
class HybridFPUConfig:
    """A two-unit FPU configuration: one FP64 unit plus one reduced unit.

    The areas are fixed once (from the FP64:FP32 1:2 reference machine) and
    the reduced unit's *precision* is then varied — the paper's assumption
    that "the areas dedicated to each unit remain the same".

    Areas are expressed in arbitrary units with ``area_low = 1``.
    """

    low_fmt: FPFormat
    area_dbl: float
    area_low: float
    #: peak GFLOP/s per unit area of the FP64 unit
    density_dbl: float
    #: peak GFLOP/s per unit area of the reduced-precision unit
    density_low: float

    @classmethod
    def from_reference(
        cls,
        low_fmt: FPFormat,
        compute_ratio_low_to_dbl: float = 2.0,
        reference_low_fmt: FPFormat = FP32,
    ) -> "HybridFPUConfig":
        """Build the hypothetical processor of Section 7.2.

        The area split is fixed by the *reference* machine (FP64:FP32 = 1:2);
        the reduced unit is then re-targeted to ``low_fmt`` (the truncation
        target), keeping the areas unchanged.
        """
        ratio = area_ratio(compute_ratio_low_to_dbl, reference_low_fmt)
        return cls(
            low_fmt=low_fmt,
            area_dbl=ratio,
            area_low=1.0,
            density_dbl=performance_density(FP64),
            density_low=performance_density(low_fmt),
        )

    @property
    def peak_dbl(self) -> float:
        """Peak throughput of the FP64 unit (GFLOP/s in model units)."""
        return self.area_dbl * self.density_dbl

    @property
    def peak_low(self) -> float:
        """Peak throughput of the reduced-precision unit."""
        return self.area_low * self.density_low

    def time_for(self, n_dbl_ops: float, n_low_ops: float) -> float:
        """Model execution time: no parallelism across units, each class of
        operations runs on its unit at that unit's peak (Section 7.2)."""
        time = 0.0
        if n_dbl_ops > 0:
            time += n_dbl_ops / self.peak_dbl
        if n_low_ops > 0:
            time += n_low_ops / self.peak_low
        return time


def table4_rows() -> list:
    """Regenerate the rows of Table 4 (used by the benchmark harness)."""
    rows = []
    for name, spec in FPNEW_TABLE.items():
        rows.append(
            {
                "type": name,
                "exp_bits": spec.fmt.exp_bits,
                "man_bits": spec.fmt.man_bits,
                "gflops": spec.gflops,
                "area_kge": spec.area_kge,
                "perf_density_normalized": round(normalized_performance_density(spec.fmt), 2),
            }
        )
    return rows
