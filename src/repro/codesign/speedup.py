"""Estimated speedups from truncation (Figure 8, Section 7.2).

Two estimates are produced from the operation and memory counters collected
by the RAPTOR runtime:

* **compute-bound**: execution time is the sum over precisions of
  ``N_i / (A_i * P_i)`` on the two-unit hypothetical processor
  (:class:`~repro.codesign.fpu_model.HybridFPUConfig`); the speedup is
  relative to running every operation on the FP64 unit.
* **memory-bound**: execution time is proportional to the bytes moved;
  truncated values are assumed stored at the target width, so their traffic
  shrinks by ``target_bits / 64``.

A roofline model decides which of the two numbers is the relevant
prediction for a given workload.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.fpformat import FP32, FPFormat
from ..core.runtime import RaptorRuntime
from .fpu_model import HybridFPUConfig
from .roofline import FUGAKU_BANDWIDTH_GBS, RooflineModel

__all__ = [
    "SpeedupEstimate",
    "estimate_speedup",
    "speedup_compute_bound",
    "speedup_memory_bound",
    "A64FX_FP64_PEAK_GFLOPS",
]

#: FP64 peak of the reference machine (Fugaku's A64FX, ~3.4 TFLOP/s per node);
#: used only to place the roofline ridge point in absolute units.
A64FX_FP64_PEAK_GFLOPS: float = 3379.2


def speedup_compute_bound(
    n_truncated_ops: float,
    n_full_ops: float,
    target_fmt: FPFormat,
    compute_ratio_low_to_dbl: float = 2.0,
    reference_low_fmt: FPFormat = FP32,
) -> float:
    """Compute-bound speedup of the mixed-precision run over all-FP64.

    ``n_truncated_ops`` execute on the reduced-precision unit (re-targeted
    to ``target_fmt``), ``n_full_ops`` on the FP64 unit; the baseline runs
    all ``n_truncated_ops + n_full_ops`` operations on the FP64 unit.
    """
    config = HybridFPUConfig.from_reference(
        target_fmt, compute_ratio_low_to_dbl, reference_low_fmt
    )
    total = n_truncated_ops + n_full_ops
    if total <= 0:
        return 1.0
    baseline = total / config.peak_dbl
    mixed = config.time_for(n_full_ops, n_truncated_ops)
    if mixed <= 0:
        return 1.0
    return baseline / mixed


def speedup_memory_bound(
    truncated_bytes: float,
    full_bytes: float,
    target_fmt: FPFormat,
) -> float:
    """Memory-bound speedup: runtime is a linear function of bytes moved.

    Bytes attributed to truncated regions shrink by ``total_bits / 64`` when
    the values are stored at the target width; full-precision bytes are
    unchanged.
    """
    total = truncated_bytes + full_bytes
    if total <= 0:
        return 1.0
    shrink = target_fmt.total_bits / 64.0
    reduced = truncated_bytes * shrink + full_bytes
    if reduced <= 0:
        return 1.0
    return total / reduced


@dataclass
class SpeedupEstimate:
    """Both speedup estimates plus the roofline classification."""

    target_fmt: FPFormat
    truncated_ops: float
    full_ops: float
    truncated_bytes: float
    full_bytes: float
    compute_bound: float
    memory_bound: float
    bound: str

    @property
    def predicted(self) -> float:
        """The estimate selected by the roofline classification."""
        return self.compute_bound if self.bound == "compute" else self.memory_bound


def estimate_speedup(
    runtime: RaptorRuntime,
    target_fmt: FPFormat,
    compute_ratio_low_to_dbl: float = 2.0,
    reference_low_fmt: FPFormat = FP32,
    bandwidth_gbs: float = FUGAKU_BANDWIDTH_GBS,
    roofline: Optional[RooflineModel] = None,
) -> SpeedupEstimate:
    """Build a :class:`SpeedupEstimate` from a profiled run.

    This is the end-to-end path used for Figure 8: run the workload under a
    truncation policy with op and memory counting enabled, then feed the
    runtime's counters and the truncation target here.
    """
    n_trunc, n_full = float(runtime.ops.truncated), float(runtime.ops.full)
    b_trunc, b_full = float(runtime.mem.truncated), float(runtime.mem.full)

    if roofline is None:
        # The HybridFPUConfig works in relative (per-area) units; to place
        # the ridge point in absolute units, anchor the FP64 unit's peak to
        # the reference machine (A64FX) as the paper does.
        roofline = RooflineModel(A64FX_FP64_PEAK_GFLOPS, bandwidth_gbs)

    total_flops = n_trunc + n_full
    total_bytes = b_trunc + b_full
    bound = roofline.classify(total_flops, total_bytes) if total_bytes > 0 else "compute"

    return SpeedupEstimate(
        target_fmt=target_fmt,
        truncated_ops=n_trunc,
        full_ops=n_full,
        truncated_bytes=b_trunc,
        full_bytes=b_full,
        compute_bound=speedup_compute_bound(
            n_trunc, n_full, target_fmt, compute_ratio_low_to_dbl, reference_low_fmt
        ),
        memory_bound=speedup_memory_bound(b_trunc, b_full, target_fmt),
        bound=bound,
    )
