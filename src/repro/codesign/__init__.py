"""Hardware co-design model (Section 7.2 of the paper)."""
from .fpu_model import (
    FPNEW_TABLE,
    FPUSpec,
    HybridFPUConfig,
    area_ratio,
    normalized_performance_density,
    performance_density,
    table4_rows,
)
from .roofline import FUGAKU_BANDWIDTH_GBS, RooflineModel
from .speedup import (
    SpeedupEstimate,
    estimate_speedup,
    speedup_compute_bound,
    speedup_memory_bound,
)

__all__ = [
    "FPUSpec",
    "FPNEW_TABLE",
    "performance_density",
    "normalized_performance_density",
    "area_ratio",
    "HybridFPUConfig",
    "table4_rows",
    "RooflineModel",
    "FUGAKU_BANDWIDTH_GBS",
    "SpeedupEstimate",
    "estimate_speedup",
    "speedup_compute_bound",
    "speedup_memory_bound",
]
