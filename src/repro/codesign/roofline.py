"""Roofline model used to decide compute- versus memory-bound (Section 7.2).

The paper builds a roofline for its hypothetical processor, assuming a
memory bandwidth of 1024 GB/s (Fugaku's A64FX HBM2), and uses it to predict
whether a workload's speedup should be taken from the compute-bound or the
memory-bound estimate.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RooflineModel", "FUGAKU_BANDWIDTH_GBS"]

#: HBM2 bandwidth of Fugaku's A64FX, GB/s (the value assumed in the paper).
FUGAKU_BANDWIDTH_GBS: float = 1024.0


@dataclass
class RooflineModel:
    """A classic two-parameter roofline.

    Parameters
    ----------
    peak_gflops:
        Peak floating-point throughput in GFLOP/s (model units are arbitrary
        as long as they are consistent with ``operational intensity``).
    bandwidth_gbs:
        Peak memory bandwidth in GB/s.
    """

    peak_gflops: float
    bandwidth_gbs: float = FUGAKU_BANDWIDTH_GBS

    @property
    def ridge_point(self) -> float:
        """Operational intensity (FLOP/byte) at which the roofline bends."""
        return self.peak_gflops / self.bandwidth_gbs

    def operational_intensity(self, flops: float, bytes_moved: float) -> float:
        """FLOPs per byte of memory traffic."""
        if bytes_moved <= 0:
            return float("inf")
        return flops / bytes_moved

    def attainable_gflops(self, operational_intensity: float) -> float:
        """Attainable performance at a given operational intensity."""
        return min(self.peak_gflops, self.bandwidth_gbs * operational_intensity)

    def is_compute_bound(self, flops: float, bytes_moved: float) -> bool:
        """True when the workload sits on the flat (compute) part of the roof."""
        return self.operational_intensity(flops, bytes_moved) >= self.ridge_point

    def classify(self, flops: float, bytes_moved: float) -> str:
        """"compute" or "memory", for report output."""
        return "compute" if self.is_compute_bound(flops, bytes_moved) else "memory"
