"""Simulated communicator: mpi4py-style reductions without MPI.

Only the operations the workloads actually need are provided: rank-local
contributions are combined with ``allreduce``-style semantics, executed
serially and deterministically.  The API mirrors mpi4py's lowercase
(pickle-based) methods so the examples read like the real thing; if mpi4py
is installed and the program is launched under ``mpiexec``, the same
workload code can be pointed at a real communicator instead.
"""
from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = ["SimulatedComm", "REDUCTION_OPS"]

REDUCTION_OPS: Dict[str, Callable] = {
    "sum": lambda values: np.sum(values, axis=0),
    "max": lambda values: np.max(values, axis=0),
    "min": lambda values: np.min(values, axis=0),
}


class SimulatedComm:
    """A deterministic, in-process stand-in for an MPI communicator.

    Rank-local values are passed in as a list indexed by rank; the
    "collective" combines them exactly once, in rank order, so results are
    reproducible and independent of any real parallel execution.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self._size = int(size)

    # ------------------------------------------------------------------
    def Get_size(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def _check(self, per_rank: Sequence) -> None:
        if len(per_rank) != self._size:
            raise ValueError(
                f"expected one contribution per rank ({self._size}), got {len(per_rank)}"
            )

    def allreduce(self, per_rank_values: Sequence, op: str = "sum"):
        """Combine one contribution per rank; every rank gets the result."""
        self._check(per_rank_values)
        if op not in REDUCTION_OPS:
            raise ValueError(f"unknown reduction op {op!r}")
        values = [np.asarray(v) for v in per_rank_values]
        return REDUCTION_OPS[op](values)

    def allgather(self, per_rank_values: Sequence) -> List:
        """Each rank contributes one value; everyone receives the full list."""
        self._check(per_rank_values)
        return list(per_rank_values)

    def bcast(self, value, root: int = 0):
        """Broadcast is the identity in a simulated communicator."""
        if not (0 <= root < self._size):
            raise ValueError(f"root {root} out of range")
        return value
