"""Task-execution backends for the precision-sweep engine.

Sweep points are embarrassingly parallel: each one runs an independent
simulation and returns a picklable result.  :class:`ProcessPoolBackend`
fans tasks out over a :class:`concurrent.futures.ProcessPoolExecutor`;
:class:`SerialBackend` runs them in-process.  Both return results in task
order, so a sweep produces the same :class:`~repro.experiments.SweepResult`
regardless of the backend or the number of workers — the property the
engine's tests pin down.  This backend-independence is also what makes
sweep *sharding* free-form: shards of one grid may run on different hosts
with different backends and still merge bit-identically
(see ``docs/architecture.md``).

The process backend degrades gracefully: if worker processes cannot be
created (restricted sandboxes, missing semaphores) or the pool breaks
mid-flight, the remaining tasks are executed serially and a warning is
emitted instead of failing the sweep.  A worker killed abruptly (crash,
OOM) is retried in a fresh pool rather than rerun in the parent; completed
results sitting in the broken pool's futures are salvaged, never recomputed.
A task that deterministically kills fresh pools is surfaced as
:class:`~concurrent.futures.process.BrokenProcessPool` — or, in *collect*
mode, recorded as a :class:`TaskFault` sentinel so the rest of the batch
still completes.

On top of that sits the fault-tolerance surface used by
``SweepSpec(point_timeout=..., retries=..., on_error="collect")``:

* ``timeout`` — a per-task deadline enforced with
  ``future.result(timeout=...)`` while waiting on the frontier task.  On
  expiry the hung workers are killed (they cannot be cancelled — the task
  is already running), completed results are salvaged, and the pool is
  rebuilt for the remaining tasks.
* ``retries`` — how many fresh-pool rebuilds a crashing frontier task is
  granted before the crash is treated as deterministic (default 1, today's
  behaviour), with exponential backoff between rebuilds when the caller
  set it explicitly.  Retries only ever apply to *transient* executor
  failures (broken pool, pool creation); a task that raises an ordinary
  exception is never rerun — deterministic solver errors must surface,
  not multiply.
* ``collect`` — instead of raising, resolve timed-out and
  deterministically-crashing tasks to :class:`TaskFault` records.  To
  attribute a crash to the right task when several suspects share a pool,
  the backend degrades to *isolation*: each remaining task runs in its own
  single-worker pool, where "the pool broke" identifies the culprit
  exactly.
* ``on_result`` — a callback fired exactly once per task, as each result
  resolves (completion, salvage, or fault).  The checkpoint journal hangs
  off this: a result is on disk even if the parent dies before ``map``
  returns.

Entry points
------------
* :func:`run_tasks` — map a function over tasks on a backend chosen by
  name (``"serial"`` / ``"process"``) or instance; the one call sites use.
* :func:`get_backend` — resolve a backend name to an instance.
* ``RAPTOR_FORCE_SERIAL=1`` — environment switch forcing the serial path
  (CI runners without usable process pools).
* ``RAPTOR_MAX_WORKERS=n`` — environment cap on process-pool workers when
  the caller does not pass ``max_workers`` explicitly (lets CI and shared
  hosts bound the fan-out of sweeps and adaptive cliff searches without
  touching every call site).
"""
from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "TaskFault",
    "TaskTimeoutError",
    "get_backend",
    "run_tasks",
]

T = TypeVar("T")
R = TypeVar("R")

#: environment switch forcing the serial path (useful on CI runners where
#: process pools are unavailable or undesirable)
_FORCE_SERIAL_ENV = "RAPTOR_FORCE_SERIAL"

#: environment cap on process-pool workers (applies only when the caller
#: does not pass ``max_workers`` explicitly)
_MAX_WORKERS_ENV = "RAPTOR_MAX_WORKERS"

#: payload-won't-pickle errors: CPython reports these as PicklingError,
#: TypeError ("cannot pickle '_thread.lock'") or AttributeError ("Can't
#: pickle local object") depending on the object
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


@dataclass(frozen=True)
class TaskFault:
    """Executor-level failure sentinel returned in *collect* mode.

    Stands in the result list for a task the executor could not complete:
    a hung task killed at its ``timeout`` deadline, or a task that kept
    breaking fresh pools.  Callers translate these into their own failure
    records (the sweep engine turns them into ``PointFailure``); the
    executor deliberately knows nothing about task semantics.
    """

    kind: str  # "timeout" | "worker-crash"
    index: int  # position in the submitted task list
    message: str
    elapsed: float = 0.0
    retries: int = 0


class TaskTimeoutError(TimeoutError):
    """A task exceeded its deadline (raise mode); the hung worker was killed."""

    def __init__(self, index: int, elapsed: float, timeout: float) -> None:
        super().__init__(
            f"task {index} exceeded its {timeout:g}s timeout "
            f"(waited {elapsed:.1f}s); hung worker(s) killed"
        )
        self.index = index
        self.elapsed = elapsed
        self.timeout = timeout


def _env_truthy(value: Optional[str]) -> bool:
    """Interpret an environment-variable value as a boolean switch."""
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _env_worker_cap() -> Optional[int]:
    """The RAPTOR_MAX_WORKERS cap, or ``None`` when unset or unusable."""
    raw = os.environ.get(_MAX_WORKERS_ENV)
    if raw is None:
        return None
    try:
        cap = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {_MAX_WORKERS_ENV}={raw!r}", RuntimeWarning, stacklevel=3
        )
        return None
    return cap if cap >= 1 else None


def _backoff_sleep(attempt: int) -> None:
    """Exponential backoff before rebuilding a pool (explicit retries only):
    0.1s, 0.2s, 0.4s, ... capped at 2s — enough for a transient resource
    squeeze (OOM-killer pressure, fork storms) to pass, short enough not to
    dominate a sweep."""
    time.sleep(min(0.1 * (2 ** max(attempt - 1, 0)), 2.0))


class ExecutionBackend:
    """Maps ``fn`` over ``tasks``, returning results in task order.

    All backends accept the fault-tolerance keywords; the serial backend
    ignores ``timeout``/``retries`` (nothing to kill or rebuild in-process)
    but honours ``on_result``.
    """

    name = "abstract"

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        collect: bool = False,
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List[R]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """In-process execution (also the fallback of the process backend)."""

    name = "serial"

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        collect: bool = False,
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List[R]:
        if timeout is not None and tasks:
            warnings.warn(
                "the serial backend cannot enforce a point timeout (the task "
                "runs in this process; there is no worker to kill) — running "
                "without a deadline; use backend='process' to enforce it",
                RuntimeWarning,
                stacklevel=2,
            )
        results: List[R] = []
        for pos, task in enumerate(tasks):
            value = fn(task)
            if on_result is not None:
                on_result(pos, value)
            results.append(value)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Execution on a :class:`ProcessPoolExecutor`.

    Results are gathered from the futures in submission order, so the output
    list order is deterministic no matter how the OS schedules the workers.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def _effective_workers(self, n_tasks: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = _env_worker_cap() or (os.cpu_count() or 1)
        return max(1, min(limit, n_tasks))

    # ------------------------------------------------------------------
    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """SIGKILL the pool's workers.  A *hung* task cannot be cancelled —
        it is already running — so reclaiming the worker is the only way to
        enforce a deadline."""
        for proc in list(getattr(pool, "_processes", {}).values() or []):
            try:
                proc.kill()
            except Exception:
                pass

    @staticmethod
    def _salvage(
        submitted: Dict[int, Future],
        resolved: Dict[int, object],
        resolve: Callable[[int, object], None],
        skip: Optional[int] = None,
    ) -> int:
        """Harvest results that completed before the pool broke or timed
        out, so the rebuilt pool only reruns genuinely unfinished tasks.
        Futures that completed *with an exception* are left pending: rerun,
        the task re-raises deterministically on the normal gather path."""
        salvaged = 0
        for pos, future in submitted.items():
            if pos in resolved or pos == skip:
                continue
            if not future.done() or future.cancelled():
                continue
            try:
                if future.exception(timeout=0) is not None:
                    continue
                value = future.result(timeout=0)
            except Exception:
                continue
            resolve(pos, value)
            salvaged += 1
        return salvaged

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        collect: bool = False,
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List[R]:
        if not tasks:
            return []
        serial = SerialBackend()
        if _env_truthy(os.environ.get(_FORCE_SERIAL_ENV)):
            return serial.map(fn, tasks, timeout=timeout, on_result=on_result)
        workers = self._effective_workers(len(tasks))
        if workers == 1 and timeout is None:
            # in-process shortcut for the single-worker case — unless a
            # deadline was requested, which only a killable pool can enforce
            return serial.map(fn, tasks, on_result=on_result)

        # how many fresh-pool rebuilds a crashing frontier task is granted;
        # the default (retries=None) matches the historical behaviour of
        # "one retry, no backoff"
        allowed = 1 if retries is None else retries
        do_backoff = retries is not None

        resolved: Dict[int, object] = {}

        def resolve(pos: int, value: object) -> None:
            resolved[pos] = value
            if on_result is not None:
                on_result(pos, value)

        def run_serially(positions: List[int], exc: BaseException) -> None:
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                f"running {len(positions)} remaining task(s) serially",
                RuntimeWarning,
                stacklevel=3,
            )
            for pos in positions:
                resolve(pos, fn(tasks[pos]))

        pending: List[int] = list(range(len(tasks)))
        crash_rounds: Dict[int, int] = {}  # frontier position -> broken-pool rounds
        creation_failures = 0
        while pending:
            try:
                pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
            except (OSError, ValueError, RuntimeError) as exc:
                # pool creation fails in sandboxes without /dev/shm or fork;
                # with explicit retries it is also how fork-storm pressure
                # shows up, so grant the same bounded retry budget before
                # degrading.  Serial execution in-process is safe here
                # because nothing ran yet that could have crashed a worker.
                creation_failures += 1
                if do_backoff and creation_failures <= allowed:
                    warnings.warn(
                        f"process pool creation failed ({type(exc).__name__}: {exc}); "
                        f"retry {creation_failures}/{allowed} after backoff",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    _backoff_sleep(creation_failures)
                    continue
                run_serially(pending, exc)
                pending = []
                break

            submitted: Dict[int, Future] = {}
            rebuild = False
            try:
                for pos in pending:
                    submitted[pos] = pool.submit(fn, tasks[pos])
                for pos in pending:
                    future = submitted[pos]
                    waited_from = time.monotonic()
                    try:
                        value = future.result(timeout=timeout)
                    except FutureTimeoutError:
                        if future.done():
                            # the task itself raised a TimeoutError — an
                            # ordinary task error, not a hang
                            raise
                        elapsed = time.monotonic() - waited_from
                        self._kill_workers(pool)
                        salvaged = self._salvage(submitted, resolved, resolve, skip=pos)
                        pool.shutdown(wait=False, cancel_futures=True)
                        if not collect:
                            raise TaskTimeoutError(pos, elapsed, timeout) from None
                        resolve(
                            pos,
                            TaskFault(
                                kind="timeout",
                                index=pos,
                                message=(
                                    f"exceeded the {timeout:g}s point timeout "
                                    f"(waited {elapsed:.1f}s); hung worker(s) killed"
                                ),
                                elapsed=elapsed,
                            ),
                        )
                        pending = [p for p in pending if p not in resolved]
                        warnings.warn(
                            f"task {pos} exceeded its {timeout:g}s timeout; killed "
                            f"hung worker(s), salvaged {salvaged} completed "
                            f"result(s), retrying {len(pending)} remaining task(s) "
                            "in a fresh pool",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        rebuild = True
                        break
                    except _PICKLE_ERRORS as exc:
                        # the payload would not pickle — a plain programming
                        # problem, safe to finish serially.  A TypeError /
                        # AttributeError raised inside fn lands here too; the
                        # serial rerun re-raises it unchanged, so correctness
                        # is preserved at the cost of the rerun.
                        pool.shutdown(wait=False, cancel_futures=True)
                        run_serially([p for p in pending if p not in resolved], exc)
                        pending = []
                        rebuild = True
                        break
                    except BrokenProcessPool as exc:
                        # A worker died (crash, OOM kill).  Never rerun the
                        # suspect task in the parent process — whatever killed
                        # the worker would then kill the whole run.  Salvage
                        # what completed, then retry the rest in a fresh pool;
                        # a frontier task that keeps breaking fresh pools
                        # without progress is treated as deterministic.
                        salvaged = self._salvage(submitted, resolved, resolve)
                        pool.shutdown(wait=False)
                        pending = [p for p in pending if p not in resolved]
                        frontier = pending[0]
                        rounds = crash_rounds.get(frontier, 0) + 1
                        crash_rounds[frontier] = rounds
                        if rounds > allowed:
                            if not collect:
                                raise
                            # several suspects may share the pool when it
                            # breaks; isolate to attribute the crash (and any
                            # concurrent hang) to the right task exactly
                            self._isolate(
                                fn, tasks, pending, timeout, allowed, resolve, crash_rounds
                            )
                            pending = []
                        else:
                            warnings.warn(
                                f"process pool broke ({exc}); salvaged {salvaged} "
                                f"completed result(s), retrying {len(pending)} "
                                "remaining task(s) in a fresh pool",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                            if do_backoff:
                                _backoff_sleep(rounds)
                        rebuild = True
                        break
                    else:
                        resolve(pos, value)
            except BaseException:
                # a task exception (raise mode), TaskTimeoutError, or a
                # deterministic BrokenProcessPool is propagating: abandon the
                # pool without waiting — its workers may already be dead
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            if not rebuild:
                pool.shutdown()
                pending = []
        return [resolved[pos] for pos in range(len(tasks))]

    def _isolate(
        self,
        fn,
        tasks,
        positions: List[int],
        timeout: Optional[float],
        allowed: int,
        resolve: Callable[[int, object], None],
        crash_rounds: Dict[int, int],
    ) -> None:
        """Collect-mode endgame: run each remaining task in its own
        single-worker pool.  With one suspect per pool, "the pool broke"
        convicts that task, and a deadline expiry is a hang of that task —
        attribution is exact, at the cost of a pool per task."""
        warnings.warn(
            f"repeated pool crashes with no progress; isolating the remaining "
            f"{len(positions)} task(s) in single-worker pools to attribute the fault",
            RuntimeWarning,
            stacklevel=3,
        )
        for pos in positions:
            while True:
                try:
                    pool = ProcessPoolExecutor(max_workers=1)
                except (OSError, ValueError, RuntimeError) as exc:
                    run_exc = exc
                    warnings.warn(
                        f"process pool unavailable ({type(run_exc).__name__}: {run_exc}); "
                        "running isolated task serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    resolve(pos, fn(tasks[pos]))
                    break
                future = pool.submit(fn, tasks[pos])
                waited_from = time.monotonic()
                try:
                    value = future.result(timeout=timeout)
                except FutureTimeoutError:
                    if future.done():
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    elapsed = time.monotonic() - waited_from
                    self._kill_workers(pool)
                    pool.shutdown(wait=False, cancel_futures=True)
                    resolve(
                        pos,
                        TaskFault(
                            kind="timeout",
                            index=pos,
                            message=(
                                f"exceeded the {timeout:g}s point timeout "
                                f"(waited {elapsed:.1f}s); hung worker(s) killed"
                            ),
                            elapsed=elapsed,
                            retries=crash_rounds.get(pos, 0),
                        ),
                    )
                    break
                except _PICKLE_ERRORS as exc:
                    pool.shutdown(wait=False, cancel_futures=True)
                    run_serially_exc = exc
                    warnings.warn(
                        f"task {pos} would not pickle ({type(run_serially_exc).__name__}: "
                        f"{run_serially_exc}); running it serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    resolve(pos, fn(tasks[pos]))
                    break
                except BrokenProcessPool as exc:
                    pool.shutdown(wait=False)
                    rounds = crash_rounds.get(pos, 0) + 1
                    crash_rounds[pos] = rounds
                    if rounds > allowed:
                        resolve(
                            pos,
                            TaskFault(
                                kind="worker-crash",
                                index=pos,
                                message=(
                                    f"worker died ({exc}) in {rounds} consecutive "
                                    "pool(s); treating the crash as deterministic"
                                ),
                                retries=rounds - 1,
                            ),
                        )
                        break
                    warnings.warn(
                        f"isolated worker for task {pos} died ({exc}); "
                        f"retry {rounds}/{allowed} in a fresh pool",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    _backoff_sleep(rounds)
                else:
                    pool.shutdown()
                    resolve(pos, value)
                    break

    def describe(self) -> str:
        return f"process(max_workers={self.max_workers or 'auto'})"


BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}


def get_backend(backend, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend instance from an instance or a name."""
    if isinstance(backend, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                "max_workers only applies when the backend is given by name; "
                "configure the backend instance instead"
            )
        return backend
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None
    if cls is ProcessPoolBackend:
        return cls(max_workers=max_workers)
    return cls()


def run_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    backend="serial",
    max_workers: Optional[int] = None,
    *,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    collect: bool = False,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``tasks`` on the chosen backend, in task order.

    ``timeout`` / ``retries`` / ``collect`` / ``on_result`` are the
    fault-tolerance surface documented on :class:`ProcessPoolBackend`; the
    defaults reproduce the historical behaviour exactly.
    """
    return get_backend(backend, max_workers=max_workers).map(
        fn, tasks, timeout=timeout, retries=retries, collect=collect, on_result=on_result
    )
