"""Task-execution backends for the precision-sweep engine.

Sweep points are embarrassingly parallel: each one runs an independent
simulation and returns a picklable result.  :class:`ProcessPoolBackend`
fans tasks out over a :class:`concurrent.futures.ProcessPoolExecutor`;
:class:`SerialBackend` runs them in-process.  Both return results in task
order, so a sweep produces the same :class:`~repro.experiments.SweepResult`
regardless of the backend or the number of workers — the property the
engine's tests pin down.  This backend-independence is also what makes
sweep *sharding* free-form: shards of one grid may run on different hosts
with different backends and still merge bit-identically
(see ``docs/architecture.md``).

The process backend degrades gracefully: if worker processes cannot be
created (restricted sandboxes, missing semaphores) or the pool breaks
mid-flight, the remaining tasks are executed serially and a warning is
emitted instead of failing the sweep.  A worker killed abruptly (crash,
OOM) is retried in a fresh pool rather than rerun in the parent; a task
that deterministically kills fresh pools is surfaced as
:class:`~concurrent.futures.process.BrokenProcessPool`.

Entry points
------------
* :func:`run_tasks` — map a function over tasks on a backend chosen by
  name (``"serial"`` / ``"process"``) or instance; the one call sites use.
* :func:`get_backend` — resolve a backend name to an instance.
* ``RAPTOR_FORCE_SERIAL=1`` — environment switch forcing the serial path
  (CI runners without usable process pools).
* ``RAPTOR_MAX_WORKERS=n`` — environment cap on process-pool workers when
  the caller does not pass ``max_workers`` explicitly (lets CI and shared
  hosts bound the fan-out of sweeps and adaptive cliff searches without
  touching every call site).
"""
from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "run_tasks",
]

T = TypeVar("T")
R = TypeVar("R")

#: environment switch forcing the serial path (useful on CI runners where
#: process pools are unavailable or undesirable)
_FORCE_SERIAL_ENV = "RAPTOR_FORCE_SERIAL"

#: environment cap on process-pool workers (applies only when the caller
#: does not pass ``max_workers`` explicitly)
_MAX_WORKERS_ENV = "RAPTOR_MAX_WORKERS"


def _env_truthy(value: Optional[str]) -> bool:
    """Interpret an environment-variable value as a boolean switch."""
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _env_worker_cap() -> Optional[int]:
    """The RAPTOR_MAX_WORKERS cap, or ``None`` when unset or unusable."""
    raw = os.environ.get(_MAX_WORKERS_ENV)
    if raw is None:
        return None
    try:
        cap = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {_MAX_WORKERS_ENV}={raw!r}", RuntimeWarning, stacklevel=3
        )
        return None
    return cap if cap >= 1 else None


class ExecutionBackend:
    """Maps ``fn`` over ``tasks``, returning results in task order."""

    name = "abstract"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """In-process execution (also the fallback of the process backend)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [fn(task) for task in tasks]


class ProcessPoolBackend(ExecutionBackend):
    """Execution on a :class:`ProcessPoolExecutor`.

    Results are gathered from the futures in submission order, so the output
    list order is deterministic no matter how the OS schedules the workers.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def _effective_workers(self, n_tasks: int) -> int:
        limit = self.max_workers
        if limit is None:
            limit = _env_worker_cap() or (os.cpu_count() or 1)
        return max(1, min(limit, n_tasks))

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        if not tasks:
            return []
        if _env_truthy(os.environ.get(_FORCE_SERIAL_ENV)):
            return SerialBackend().map(fn, tasks)
        workers = self._effective_workers(len(tasks))
        if workers == 1:
            return SerialBackend().map(fn, tasks)

        results: List[R] = []
        remaining = list(tasks)
        stalled_at: Optional[int] = None  # result count at the last zero-progress break
        while remaining:
            try:
                pool = ProcessPoolExecutor(max_workers=min(workers, len(remaining)))
            except (OSError, ValueError, RuntimeError) as exc:
                # pool creation fails in sandboxes without /dev/shm or fork;
                # serial execution in-process is safe here because nothing
                # ran yet that could have crashed a worker
                return results + self._fall_back(fn, remaining, exc)
            gathered_before = len(results)
            try:
                with pool:
                    futures = [pool.submit(fn, task) for task in remaining]
                    for future in futures:
                        results.append(future.result())
                return results
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # the payload would not pickle — CPython reports this as
                # PicklingError, TypeError ("cannot pickle '_thread.lock'")
                # or AttributeError ("Can't pickle local object") depending
                # on the object — a plain programming problem, safe to
                # finish serially.  A TypeError/AttributeError raised inside
                # fn lands here too; the serial rerun re-raises it unchanged,
                # so correctness is preserved at the cost of the rerun.
                completed = len(results) - gathered_before
                return results + self._fall_back(fn, remaining[completed:], exc)
            except BrokenProcessPool as exc:
                # A worker died (crash, OOM kill).  Never rerun the suspect
                # task in the parent process — whatever killed the worker
                # would then kill the whole run.  Retry the remaining tasks
                # in a fresh pool; if the frontier task breaks a fresh pool
                # without any progress twice, treat the crash as
                # deterministic and surface it.
                completed = len(results) - gathered_before
                if completed == 0 and stalled_at == len(results):
                    raise
                stalled_at = len(results) if completed == 0 else None
                remaining = remaining[completed:]
                warnings.warn(
                    f"process pool broke ({exc}); retrying {len(remaining)} "
                    "remaining task(s) in a fresh pool",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return results

    def _fall_back(self, fn, tasks, exc) -> List[R]:
        warnings.warn(
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            f"running {len(tasks)} remaining task(s) serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return SerialBackend().map(fn, tasks)

    def describe(self) -> str:
        return f"process(max_workers={self.max_workers or 'auto'})"


BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}


def get_backend(backend, max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend instance from an instance or a name."""
    if isinstance(backend, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                "max_workers only applies when the backend is given by name; "
                "configure the backend instance instead"
            )
        return backend
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        ) from None
    if cls is ProcessPoolBackend:
        return cls(max_workers=max_workers)
    return cls()


def run_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    backend="serial",
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``tasks`` on the chosen backend, in task order."""
    return get_backend(backend, max_workers=max_workers).map(fn, tasks)
