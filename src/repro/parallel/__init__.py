"""Domain-decomposition substrate (simulated MPI ranks) and the
task-execution backends used by the precision-sweep engine."""
from .comm import REDUCTION_OPS, SimulatedComm
from .decomposition import BlockDistribution, morton_index
from .executor import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    run_tasks,
)

__all__ = [
    "BlockDistribution",
    "morton_index",
    "SimulatedComm",
    "REDUCTION_OPS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BACKENDS",
    "get_backend",
    "run_tasks",
]
