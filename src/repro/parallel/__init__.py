"""Domain-decomposition substrate (simulated MPI ranks)."""
from .comm import REDUCTION_OPS, SimulatedComm
from .decomposition import BlockDistribution, morton_index

__all__ = ["BlockDistribution", "morton_index", "SimulatedComm", "REDUCTION_OPS"]
