"""Domain decomposition of AMR blocks over (simulated) MPI ranks.

The paper runs Flash-X with 1–32 MPI ranks and notes that the
parallelisation does not affect the truncation results: the domain is split
over ranks, truncated physics routines operate cell-locally, and no MPI
collectives are called inside truncated regions.  This module reproduces
the decomposition side of that statement — blocks are assigned to ranks
along a Morton (Z-order) space-filling curve exactly like PARAMESH — so the
examples and tests can demonstrate rank-independence of the results without
requiring an MPI installation.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..amr.block import BlockKey
from ..amr.grid import AMRGrid

__all__ = ["morton_index", "BlockDistribution"]


def morton_index(key: BlockKey) -> int:
    """Morton (Z-order) index of a block, interleaving the bits of (ix, iy).

    Finer blocks sort close to their parents, which keeps each rank's share
    spatially compact — the same load-balancing idea PARAMESH uses.
    """
    level, ix, iy = key
    code = 0
    for bit in range(level + 1):
        code |= ((ix >> bit) & 1) << (2 * bit)
        code |= ((iy >> bit) & 1) << (2 * bit + 1)
    # order primarily by position, then by level so parents precede children
    return (code << 5) | level


@dataclass
class BlockDistribution:
    """Assignment of leaf blocks to ``n_ranks`` simulated ranks."""

    n_ranks: int
    assignment: Dict[BlockKey, int]

    @classmethod
    def from_grid(cls, grid: AMRGrid, n_ranks: int) -> "BlockDistribution":
        """Distribute the grid's leaves over ranks in Morton order, giving
        each rank a contiguous chunk of the space-filling curve."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        keys = sorted(grid.leaves.keys(), key=morton_index)
        n = len(keys)
        assignment: Dict[BlockKey, int] = {}
        base, extra = divmod(n, n_ranks)
        start = 0
        for rank in range(n_ranks):
            count = base + (1 if rank < extra else 0)
            for key in keys[start:start + count]:
                assignment[key] = rank
            start += count
        return cls(n_ranks=n_ranks, assignment=assignment)

    # ------------------------------------------------------------------
    def rank_of(self, key: BlockKey) -> int:
        return self.assignment[key]

    def blocks_for(self, rank: int) -> List[BlockKey]:
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return sorted([k for k, r in self.assignment.items() if r == rank])

    def counts(self) -> List[int]:
        """Number of blocks per rank."""
        counts = [0] * self.n_ranks
        for rank in self.assignment.values():
            counts[rank] += 1
        return counts

    @property
    def imbalance(self) -> float:
        """max/mean block count (1.0 = perfectly balanced)."""
        counts = self.counts()
        nonzero = [c for c in counts]
        mean = sum(nonzero) / max(len(nonzero), 1)
        return max(nonzero) / mean if mean > 0 else 1.0

    def __len__(self) -> int:
        return len(self.assignment)
