"""Deterministic test harnesses for the fault-tolerance layer.

This package is test infrastructure, not physics: it is excluded from the
reference-cache solver fingerprint (see
``repro.experiments.cache._NON_PHYSICS_PACKAGES``) so editing an injector
never invalidates cached physics references.
"""
from .faults import (
    Fault,
    FaultInjected,
    FaultPlan,
    clear_fault_plan,
    current_fault_plan,
    maybe_inject,
)

__all__ = [
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "clear_fault_plan",
    "current_fault_plan",
    "maybe_inject",
]
