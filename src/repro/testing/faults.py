"""Plan-driven, deterministic fault injection for sweep tests.

The fault-tolerance layer (per-point failure isolation, timeouts, hung-worker
kill, crash-safe resume) is only trustworthy if every failure path can be
exercised on demand, in-process *and* inside pool workers.  This module
provides that:

* A :class:`FaultPlan` is a set of :class:`Fault` triggers — *raise an
  exception*, *hang*, or *SIGKILL the current process* — each bound to an
  injection site (``"point"``, ``"reference"``, ``"cell"``, or any string a
  test chooses) and a key (e.g. the sweep-point index).
* :meth:`FaultPlan.installed` publishes the plan through the
  ``RAPTOR_FAULT_PLAN`` environment variable as JSON, so pool workers —
  which inherit the parent's environment regardless of start method — see
  the same plan without any pickling cooperation from the executor.
* Production code calls :func:`maybe_inject` at its injection sites.  With
  no plan installed this is a single ``os.environ.get`` — cheap enough to
  leave in the hot path permanently.
* Bounded triggers (``times=1`` — "fire once, ever, across all processes")
  are counted through exclusive marker-file creation in the plan's
  ``marker_dir``: the first process to create ``<site>-<key>-<n>`` wins that
  firing.  This is what makes *transient* faults expressible — a worker that
  is SIGKILLed exactly once, then succeeds on retry — and it survives the
  injected process dying immediately afterwards.

Nothing here is imported by production code except :func:`maybe_inject`.
"""
from __future__ import annotations

import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "clear_fault_plan",
    "current_fault_plan",
    "maybe_inject",
]

#: environment variable carrying the JSON-encoded plan across process
#: boundaries (pool workers inherit it)
FAULT_PLAN_ENV = "RAPTOR_FAULT_PLAN"

_KINDS = ("raise", "hang", "kill")


class FaultInjected(RuntimeError):
    """The exception raised by ``kind="raise"`` faults."""


@dataclass(frozen=True)
class Fault:
    """One trigger of a :class:`FaultPlan`.

    Parameters
    ----------
    site:
        Name of the injection site (``"point"``, ``"reference"``,
        ``"cell"``, or whatever string the call site uses).
    key:
        Site-specific identity, e.g. the sweep-point index.  Compared as a
        string so integer and string keys spell the same trigger.
    kind:
        ``"raise"`` → raise :class:`FaultInjected`;
        ``"hang"`` → ``time.sleep(seconds)``;
        ``"kill"`` → ``SIGKILL`` the current process (no cleanup, no
        exception — exactly what an OOM kill looks like to the parent).
    times:
        How many firings, counted across *all* processes sharing the plan
        (``None`` = unlimited, i.e. deterministic).  ``times=1`` models a
        transient fault that disappears on retry.
    seconds:
        Sleep duration for ``kind="hang"``.
    message:
        Exception text for ``kind="raise"``.
    """

    site: str
    key: object
    kind: str = "raise"
    times: Optional[int] = 1
    seconds: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {_KINDS}")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        # keys travel through JSON as strings; normalise eagerly so a plan
        # compares equal across the environment-variable round trip
        object.__setattr__(self, "key", str(self.key))

    def matches(self, site: str, key: object) -> bool:
        return self.site == site and str(self.key) == str(key)

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "key": str(self.key),
            "kind": self.kind,
            "times": self.times,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, JSON-round-trippable set of faults plus the directory
    where cross-process firing counters live."""

    faults: Tuple[Fault, ...] = ()
    marker_dir: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        bounded = [f for f in self.faults if f.times is not None]
        if bounded and not self.marker_dir:
            raise ValueError(
                "a plan with bounded faults (times is not None) needs a "
                "marker_dir to count firings across processes"
            )

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [f.to_dict() for f in self.faults], "marker_dir": self.marker_dir}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            faults=tuple(Fault.from_dict(f) for f in data["faults"]),
            marker_dir=data.get("marker_dir"),
        )

    @contextmanager
    def installed(self):
        """Publish the plan via ``RAPTOR_FAULT_PLAN`` for this process and
        every child it spawns; restore the previous value on exit."""
        previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self.to_json()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = previous


def current_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None``.  Malformed plans raise — a broken
    injection harness must never silently disable itself."""
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    return FaultPlan.from_json(raw)


def clear_fault_plan() -> None:
    """Remove any installed plan from this process's environment."""
    os.environ.pop(FAULT_PLAN_ENV, None)


def _claim_firing(fault: Fault, marker_dir: str) -> bool:
    """Atomically claim one of the fault's remaining firings.

    Firing ``n`` is represented by the exclusive creation of a marker file;
    ``O_CREAT | O_EXCL`` makes each firing claimable by exactly one process,
    and the files persist even if the claimant SIGKILLs itself on the next
    line — which is precisely the semantics a ``times=1`` kill fault needs.
    """
    assert fault.times is not None
    os.makedirs(marker_dir, exist_ok=True)
    stem = f"{fault.site}-{fault.key}-{fault.kind}"
    for firing in range(fault.times):
        path = os.path.join(marker_dir, f"{stem}-{firing}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return True
    return False


def maybe_inject(site: str, key: object) -> None:
    """Fire any installed fault matching ``(site, key)``.

    The no-plan fast path is one environment lookup, so production call
    sites (``_execute_point``, ``_execute_reference``, ``_execute_cliff``)
    keep this unconditionally.
    """
    if FAULT_PLAN_ENV not in os.environ:
        return
    plan = current_fault_plan()
    if plan is None:
        return
    for fault in plan.faults:
        if not fault.matches(site, key):
            continue
        if fault.times is not None and not _claim_firing(fault, plan.marker_dir):
            continue
        if fault.kind == "raise":
            raise FaultInjected(f"{fault.message} (site={site}, key={key})")
        if fault.kind == "hang":
            time.sleep(fault.seconds)
        elif fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
