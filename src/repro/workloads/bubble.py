"""Rising-bubble workload (incompressible multiphase, Figure 1).

The paper starts from the Re = 35 solution at t = 3 and then runs the
truncation experiments at Re = 3500 from t = 3 to t = 4, truncating the
advection and diffusion operators of the Navier–Stokes solver with three
strategies: everywhere, and with the M−1 / M−2 interface-distance cutoffs.
Low (4-bit) and moderate (12-bit) mantissas are compared through the shape
of the interface (deformation, splitting, satellite bubbles).

This workload reproduces that protocol on the uniform-grid solver of
:mod:`repro.incomp`: a short spin-up takes the place of the archived t = 3
state, and the truncation phase records interface snapshots, centroid,
gas volume and fragment count.

Two entry points drive the same machinery:

* :meth:`BubbleWorkload.run` — the scenario protocol.  A
  :class:`~repro.core.selective.TruncationPolicy` is mapped onto the
  Figure 1 strategies: ``None`` / no-truncation → the reference,
  :class:`~repro.core.selective.AMRCutoffPolicy` → the M−l
  interface-distance cutoffs, any other truncating policy → everywhere.
* :meth:`BubbleWorkload.run_strategy` — the paper's native
  (strategy, mantissa) parameterisation, used by the Figure 1 benchmark.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.config import TruncationConfig
from ..core.fpformat import FPFormat
from ..core.opmode import FullPrecisionContext, TruncatedContext
from ..core.runtime import RaptorRuntime
from ..core.selective import AMRCutoffPolicy, NoTruncationPolicy, TruncationPolicy
from ..incomp.solver import BubbleConfig, BubbleSolver
from .registry import register_workload
from .scenario import Outcome, Scenario

__all__ = ["BubbleExperimentConfig", "BubbleWorkload", "STRATEGIES"]

#: truncation strategies of Figure 1
STRATEGIES = ("none", "everywhere", "cutoff-1", "cutoff-2")


@dataclass
class BubbleExperimentConfig:
    """Parameters of the Figure 1 experiment."""

    solver: BubbleConfig = field(default_factory=lambda: BubbleConfig(
        nx=32, ny=48, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
        reynolds=3500.0, advection_scheme="weno5", reinit_interval=5,
    ))
    #: pseudo-AMR depth used for the interface-distance cutoffs
    max_level: int = 3
    #: length of the spin-up phase standing in for the archived t=3 state
    spin_up_time: float = 0.2
    #: physical length of the truncation phase (t = 3 .. 4 in the paper)
    truncation_time: float = 0.3
    #: snapshot times (relative to the start of the truncation phase)
    snapshot_times: tuple = (0.1, 0.2, 0.3)
    fixed_dt: float = 0.004
    exp_bits: int = 8

    @property
    def finest_cells(self):
        """Covering-grid shape, for the reference cache's content address."""
        return (self.solver.nx, self.solver.ny)


@register_workload
class BubbleWorkload(Scenario):
    """Driver for the Figure 1 truncation-strategy comparison."""

    name = "bubble"
    config_class = BubbleExperimentConfig
    kind = "bubble"
    error_variables = ("phi", "centroid")
    default_error_variables = ("phi",)
    default_modules = ("advection", "diffusion")
    #: default cliff threshold on the mean interface deviation |phi - phi_ref|
    cliff_threshold = 0.02

    def __init__(self, config: Optional[BubbleExperimentConfig] = None) -> None:
        self.config = config or BubbleExperimentConfig()
        self._spun_up_state = None

    # ------------------------------------------------------------------
    def _fresh_solver(self, plane: str = "auto") -> BubbleSolver:
        cfg = self.config
        solver = BubbleSolver(cfg.solver, plane=plane)
        if self._spun_up_state is None:
            solver.run(t_end=cfg.spin_up_time, fixed_dt=cfg.fixed_dt)
            self._spun_up_state = {
                "velx": solver.velx.copy(),
                "vely": solver.vely.copy(),
                "pres": solver.pres.copy(),
                "phi": solver.levelset.phi.copy(),
                "time": solver.time,
                # step_count phases the periodic level-set reinitialisation;
                # restoring it keeps restored runs bit-identical to the run
                # that continued straight out of the spin-up
                "step_count": solver.step_count,
            }
        else:
            solver.velx = self._spun_up_state["velx"].copy()
            solver.vely = self._spun_up_state["vely"].copy()
            solver.pres = self._spun_up_state["pres"].copy()
            solver.levelset.phi = self._spun_up_state["phi"].copy()
            solver.time = self._spun_up_state["time"]
            solver.step_count = self._spun_up_state["step_count"]
        return solver

    def _cutoff_mask_fn(self, cutoff: int) -> Callable[[BubbleSolver], np.ndarray]:
        cfg = self.config

        def mask(solver: BubbleSolver) -> np.ndarray:
            levels = solver.levelset.level_map(cfg.max_level)
            return levels <= (cfg.max_level - cutoff)

        return mask

    def _mask_fn(self, strategy: str):
        if strategy == "everywhere":
            return None  # truncate every cell
        return self._cutoff_mask_fn(int(strategy.split("-")[1]))

    # ------------------------------------------------------------------
    def run(
        self,
        policy: Optional[TruncationPolicy] = None,
        runtime: Optional[RaptorRuntime] = None,
    ) -> Outcome:
        """Run the truncation phase under a truncation policy.

        ``policy=None`` (or a no-op policy) is the full-precision
        reference.  An :class:`AMRCutoffPolicy` maps to the paper's
        interface-distance cutoff strategy (the level-set band standing in
        for the AMR hierarchy); every other truncating policy truncates
        the advection and diffusion operators everywhere.
        """
        rt = runtime if runtime is not None else RaptorRuntime(self.name)
        pol = policy if policy is not None else NoTruncationPolicy(runtime=rt)
        adv = pol.context_for(module="advection")
        diff = pol.context_for(module="diffusion")
        # the solver's fast path is "no context"; full-precision contexts
        # would change nothing numerically, so map them back to None
        adv_ctx = None if isinstance(adv, FullPrecisionContext) else adv
        diff_ctx = None if isinstance(diff, FullPrecisionContext) else diff
        mask_fn = None
        strategy = "none"
        if adv_ctx is not None or diff_ctx is not None:
            strategy = "everywhere"
            if isinstance(pol, AMRCutoffPolicy) and pol.cutoff > 0:
                strategy = f"cutoff-{pol.cutoff}"
                mask_fn = self._cutoff_mask_fn(pol.cutoff)
            covered = [m for m, c in (("advection", adv_ctx), ("diffusion", diff_ctx)) if c is not None]
            if len(covered) == 1:
                # a policy truncating only one operator family is not any
                # Figure 1 strategy; label the actual coverage so grouped
                # outcomes don't merge genuinely different runs
                strategy = f"{strategy}[{covered[0]}]"
        return self._execute(
            adv_ctx, diff_ctx, mask_fn, rt, strategy, pol.describe(),
            plane=getattr(pol, "plane", "auto"),
        )

    def run_strategy(
        self, strategy: str, man_bits: int, runtime: Optional[RaptorRuntime] = None
    ) -> Outcome:
        """Run one (strategy, mantissa) combination of Figure 1.

        ``strategy`` is one of :data:`STRATEGIES`; ``man_bits`` is ignored
        for the "none" (reference) strategy.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        cfg = self.config
        rt = runtime if runtime is not None else RaptorRuntime(f"bubble-{strategy}-{man_bits}")
        if strategy == "none":
            adv_ctx = diff_ctx = None
            mask_fn = None
        else:
            fmt = FPFormat(cfg.exp_bits, man_bits)
            adv_ctx = TruncatedContext(fmt, runtime=rt, module="advection")
            diff_ctx = TruncatedContext(fmt, runtime=rt, module="diffusion")
            mask_fn = self._mask_fn(strategy)
        return self._execute(adv_ctx, diff_ctx, mask_fn, rt, strategy, f"{strategy}@m{man_bits}")

    # ------------------------------------------------------------------
    def _execute(
        self,
        adv_ctx,
        diff_ctx,
        mask_fn,
        rt: RaptorRuntime,
        strategy: str,
        policy_label: str,
        plane: str = "auto",
    ) -> Outcome:
        cfg = self.config
        solver = self._fresh_solver(plane)

        snapshots: Dict[float, np.ndarray] = {}
        centroids: List[float] = []
        start_time = solver.time
        remaining = sorted(cfg.snapshot_times)

        def callback(s: BubbleSolver) -> None:
            centroids.append(s.bubble_centroid()[1])
            while remaining and s.time - start_time >= remaining[0] - 1e-9:
                snapshots[remaining.pop(0)] = s.levelset.phi.copy()

        solver.run(
            t_end=cfg.truncation_time,
            advection_ctx=adv_ctx,
            diffusion_ctx=diff_ctx,
            truncate_mask_fn=mask_fn,
            fixed_dt=cfg.fixed_dt,
            callback=callback,
        )
        # guarantee a final snapshot even if snapshot_times exceed the run
        snapshots.setdefault(cfg.truncation_time, solver.levelset.phi.copy())

        snap_times = sorted(snapshots)
        state: Dict[str, np.ndarray] = {
            "phi": snapshots[snap_times[-1]],
            "centroid": np.asarray(centroids, dtype=np.float64),
            "snapshot_times": np.asarray(snap_times, dtype=np.float64),
        }
        for i, t in enumerate(snap_times):
            state[f"phi_snap{i}"] = snapshots[t]
        return Outcome(
            workload=self.name,
            state=state,
            time=solver.time,
            info={
                "gas_volume": float(solver.gas_volume()),
                "fragments": float(solver.interface_fragment_count()),
                "centroid_rise": float(centroids[-1] - centroids[0]) if centroids else 0.0,
            },
            kind=self.kind,
            metadata={"workload": self.name, "strategy": strategy, "policy": policy_label},
            runtime=rt,
        )

    # ------------------------------------------------------------------
    def error(self, outcome: Outcome, reference: Outcome) -> float:
        """Mean |phi - phi_ref| over the final snapshot (the interface-shape
        metric behind Figure 1)."""
        return float(np.mean(np.abs(outcome.state["phi"] - reference.state["phi"])))

    # ------------------------------------------------------------------
    def truncation_config(self, man_bits: int) -> TruncationConfig:
        """The op-mode configuration the strategies correspond to."""
        return TruncationConfig.mantissa(man_bits, exp_bits=self.config.exp_bits)
