"""Rising-bubble workload (incompressible multiphase, Figure 1).

The paper starts from the Re = 35 solution at t = 3 and then runs the
truncation experiments at Re = 3500 from t = 3 to t = 4, truncating the
advection and diffusion operators of the Navier–Stokes solver with three
strategies: everywhere, and with the M−1 / M−2 interface-distance cutoffs.
Low (4-bit) and moderate (12-bit) mantissas are compared through the shape
of the interface (deformation, splitting, satellite bubbles).

This workload reproduces that protocol on the uniform-grid solver of
:mod:`repro.incomp`: a short spin-up takes the place of the archived t = 3
state, and the truncation phase records interface snapshots, centroid,
gas volume and fragment count for each strategy/mantissa combination.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.config import TruncationConfig
from ..core.fpformat import FPFormat
from ..core.opmode import TruncatedContext
from ..core.runtime import RaptorRuntime
from ..incomp.solver import BubbleConfig, BubbleSolver
from .registry import register_workload

__all__ = ["BubbleExperimentConfig", "BubbleRunResult", "BubbleWorkload", "STRATEGIES"]

#: truncation strategies of Figure 1
STRATEGIES = ("none", "everywhere", "cutoff-1", "cutoff-2")


@dataclass
class BubbleExperimentConfig:
    """Parameters of the Figure 1 experiment."""

    solver: BubbleConfig = field(default_factory=lambda: BubbleConfig(
        nx=32, ny=48, xlim=(-1.0, 1.0), ylim=(-1.0, 2.0),
        reynolds=3500.0, advection_scheme="weno5", reinit_interval=5,
    ))
    #: pseudo-AMR depth used for the interface-distance cutoffs
    max_level: int = 3
    #: length of the spin-up phase standing in for the archived t=3 state
    spin_up_time: float = 0.2
    #: physical length of the truncation phase (t = 3 .. 4 in the paper)
    truncation_time: float = 0.3
    #: snapshot times (relative to the start of the truncation phase)
    snapshot_times: tuple = (0.1, 0.2, 0.3)
    fixed_dt: float = 0.004
    exp_bits: int = 8


@dataclass
class BubbleRunResult:
    """Diagnostics of one strategy/mantissa combination."""

    strategy: str
    man_bits: int
    snapshots: Dict[float, np.ndarray]
    centroid_history: List[float]
    gas_volume: float
    fragments: int
    runtime: RaptorRuntime

    def interface_deviation(self, reference: "BubbleRunResult") -> float:
        """Mean |phi - phi_ref| over the final snapshot (interface-shape metric)."""
        t = max(self.snapshots)
        return float(np.mean(np.abs(self.snapshots[t] - reference.snapshots[t])))


@register_workload
class BubbleWorkload:
    """Driver for the Figure 1 truncation-strategy comparison."""

    name = "bubble"
    config_class = BubbleExperimentConfig

    def __init__(self, config: Optional[BubbleExperimentConfig] = None) -> None:
        self.config = config or BubbleExperimentConfig()
        self._spun_up_state = None

    # ------------------------------------------------------------------
    def _fresh_solver(self) -> BubbleSolver:
        cfg = self.config
        solver = BubbleSolver(cfg.solver)
        if self._spun_up_state is None:
            solver.run(t_end=cfg.spin_up_time, fixed_dt=cfg.fixed_dt)
            self._spun_up_state = {
                "velx": solver.velx.copy(),
                "vely": solver.vely.copy(),
                "pres": solver.pres.copy(),
                "phi": solver.levelset.phi.copy(),
                "time": solver.time,
            }
        else:
            solver.velx = self._spun_up_state["velx"].copy()
            solver.vely = self._spun_up_state["vely"].copy()
            solver.pres = self._spun_up_state["pres"].copy()
            solver.levelset.phi = self._spun_up_state["phi"].copy()
            solver.time = self._spun_up_state["time"]
        return solver

    def _mask_fn(self, strategy: str):
        cfg = self.config
        if strategy == "everywhere":
            return None  # truncate every cell
        cutoff = int(strategy.split("-")[1])

        def mask(solver: BubbleSolver) -> np.ndarray:
            levels = solver.levelset.level_map(cfg.max_level)
            return levels <= (cfg.max_level - cutoff)

        return mask

    # ------------------------------------------------------------------
    def run(self, strategy: str, man_bits: int, runtime: Optional[RaptorRuntime] = None) -> BubbleRunResult:
        """Run the truncation phase with one strategy/mantissa combination.

        ``strategy`` is one of :data:`STRATEGIES`; ``man_bits`` is ignored
        for the "none" (reference) strategy.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        cfg = self.config
        rt = runtime if runtime is not None else RaptorRuntime(f"bubble-{strategy}-{man_bits}")
        solver = self._fresh_solver()

        if strategy == "none":
            adv_ctx = diff_ctx = None
            mask_fn = None
        else:
            fmt = FPFormat(cfg.exp_bits, man_bits)
            adv_ctx = TruncatedContext(fmt, runtime=rt, module="advection")
            diff_ctx = TruncatedContext(fmt, runtime=rt, module="diffusion")
            mask_fn = self._mask_fn(strategy)

        snapshots: Dict[float, np.ndarray] = {}
        centroids: List[float] = []
        start_time = solver.time
        remaining = sorted(cfg.snapshot_times)

        def callback(s: BubbleSolver) -> None:
            centroids.append(s.bubble_centroid()[1])
            while remaining and s.time - start_time >= remaining[0] - 1e-9:
                snapshots[remaining.pop(0)] = s.levelset.phi.copy()

        solver.run(
            t_end=cfg.truncation_time,
            advection_ctx=adv_ctx,
            diffusion_ctx=diff_ctx,
            truncate_mask_fn=mask_fn,
            fixed_dt=cfg.fixed_dt,
            callback=callback,
        )
        # guarantee a final snapshot even if snapshot_times exceed the run
        snapshots.setdefault(cfg.truncation_time, solver.levelset.phi.copy())

        return BubbleRunResult(
            strategy=strategy,
            man_bits=man_bits,
            snapshots=snapshots,
            centroid_history=centroids,
            gas_volume=solver.gas_volume(),
            fragments=solver.interface_fragment_count(),
            runtime=rt,
        )

    # ------------------------------------------------------------------
    def truncation_config(self, man_bits: int) -> TruncationConfig:
        """The op-mode configuration the strategies correspond to."""
        return TruncationConfig.mantissa(man_bits, exp_bits=self.config.exp_bits)
