"""Rayleigh–Taylor fingering workload.

A heavy fluid sits on top of a light fluid in a constant downward
gravitational field; a single-mode velocity perturbation at the interface
grows into the classic interpenetrating fingers.  The setup is the standard
single-mode RT box (periodic in x, reflecting walls in y, hydrostatic
initial pressure), exercising both of the hooks the new scenarios added to
the substrate: mixed per-axis boundary conditions in the AMR grid and the
gravity source term of the hydro solver.

Buoyancy-driven fingering is the canonical proxy for the plume dynamics of
white-dwarf deflagration studies, complementing the shear-driven
Kelvin–Helmholtz workload.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .base import CompressibleConfig, CompressibleWorkload

__all__ = ["RayleighTaylorConfig", "RayleighTaylorWorkload"]


@dataclass
class RayleighTaylorConfig(CompressibleConfig):
    """Single-mode RT parameters (heavy-over-light, hydrostatic start)."""

    heavy_density: float = 2.0
    light_density: float = 1.0
    #: y-position of the unperturbed interface
    interface_position: float = 0.5
    #: pressure at the interface (sets the overall sound speed)
    interface_pressure: float = 2.5
    #: gravitational acceleration magnitude (acts in -y)
    gravity_magnitude: float = 0.1
    #: amplitude of the single-mode vertical velocity perturbation
    perturbation_amplitude: float = 0.01
    #: Gaussian width of the perturbation envelope around the interface
    perturbation_width: float = 0.05
    boundary: Dict[str, str] = field(
        default_factory=lambda: {"x": "periodic", "y": "reflect"}
    )
    #: leave None to derive (0, -gravity_magnitude); an explicit vector —
    #: including (0, 0) for a gravity-free run — is honoured as given, but
    #: must point straight down (the hydrostatic initial condition assumes
    #: gravity acts in -y)
    gravity: Optional[Tuple[float, float]] = None
    gamma: float = 1.4
    t_end: float = 0.5

    def __post_init__(self) -> None:
        if self.gravity is None:
            self.gravity = (0.0, -abs(self.gravity_magnitude))
        else:
            gx, gy = self.gravity
            if gx != 0.0 or gy > 0.0:
                raise ValueError(
                    "RayleighTaylorConfig.gravity must point straight down "
                    f"(gx == 0, gy <= 0) to match the hydrostatic initial "
                    f"condition; got {self.gravity!r}"
                )
            # keep the magnitude knob consistent for diagnostics
            self.gravity_magnitude = -gy


class RayleighTaylorWorkload(CompressibleWorkload):
    """2-D single-mode Rayleigh–Taylor instability in a closed vertical box."""

    name = "rayleigh-taylor"
    aliases = ("rt",)
    config_class = RayleighTaylorConfig

    def __init__(self, config: Optional[RayleighTaylorConfig] = None) -> None:
        super().__init__(config or RayleighTaylorConfig())

    def domain(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        return (0.0, 1.0), (0.0, 1.0)

    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        cfg: RayleighTaylorConfig = self.config  # type: ignore[assignment]
        g = abs(cfg.gravity_magnitude)
        yi = cfg.interface_position
        heavy = y >= yi

        dens = np.where(heavy, cfg.heavy_density, cfg.light_density)
        # hydrostatic equilibrium dp/dy = -rho g, continuous across the
        # interface where p = interface_pressure
        pres = np.where(
            heavy,
            cfg.interface_pressure - cfg.heavy_density * g * (y - yi),
            cfg.interface_pressure - cfg.light_density * g * (y - yi),
        )
        vely = cfg.perturbation_amplitude * np.cos(2.0 * np.pi * x) * np.exp(
            -((y - yi) ** 2) / (2.0 * cfg.perturbation_width ** 2)
        )
        return {
            "dens": dens,
            "velx": np.zeros_like(x),
            "vely": vely,
            "pres": pres,
        }

    # ------------------------------------------------------------------
    def finger_amplitude(self, run) -> float:
        """Half the spread of the mixed region around the interface: how far
        the heaviest fluid has fallen / the lightest risen (finger growth
        diagnostic)."""
        cfg: RayleighTaylorConfig = self.config  # type: ignore[assignment]
        dens = run.checkpoint["dens"]
        _, y = run.grid.uniform_coordinates(cfg.max_level)
        mid = 0.5 * (cfg.heavy_density + cfg.light_density)
        heavy_rows = np.any(dens >= mid, axis=0)
        light_rows = np.any(dens < mid, axis=0)
        if not np.any(heavy_rows) or not np.any(light_rows):
            return 0.0
        spike_tip = float(y[np.argmax(heavy_rows)])      # lowest heavy fluid
        bubble_tip = float(y[y.size - 1 - np.argmax(light_rows[::-1])])  # highest light fluid
        return 0.5 * max(bubble_tip - spike_tip, 0.0)
