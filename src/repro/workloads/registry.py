"""String-keyed workload registry.

Every workload class self-registers under its ``name`` attribute (the
compressible workloads do this automatically through
``CompressibleWorkload.__init_subclass__``; the incompressible and reacting
workloads register explicitly).  The precision-sweep engine of
:mod:`repro.experiments` — and any benchmark or example script — resolves
workloads by name through this registry instead of hard-coding imports, so
adding a scenario is a one-file change.

Aliases let the command-line friendly short names ("kh", "rt", …) resolve to
the same class as the canonical name.  :func:`canonical_name` is the
alias-resolving entry point; everything keyed by workload downstream — the
sweep grid, per-workload configs, and the reference cache's
content-addressed keys (:func:`repro.experiments.cache.reference_key`) —
canonicalises through it, so ``"kh"`` and ``"kelvin-helmholtz"`` always
denote one workload, one config, one cache entry.

The registry currently holds seven scenarios (sod, sedov,
kelvin-helmholtz, rayleigh-taylor, double-blast, cellular, bubble); the
gallery in ``docs/workloads.md`` describes each one, and
``docs/experiments.md`` documents the registration protocol for new
scenarios.

Public API
----------
* :func:`register_workload` / :func:`unregister_workload` — add/remove a
  class, directly or as a decorator; duplicate names raise
  :class:`DuplicateWorkloadError`.
* :func:`canonical_name` / :func:`get_workload_class` /
  :func:`create_workload` — alias-aware lookup and instantiation; unknown
  names raise :class:`UnknownWorkloadError` listing every registered
  workload.
* :func:`available_workloads` / :func:`workload_aliases` /
  :func:`describe_workloads` — introspection.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

__all__ = [
    "DuplicateWorkloadError",
    "UnknownWorkloadError",
    "register_workload",
    "unregister_workload",
    "canonical_name",
    "get_workload_class",
    "create_workload",
    "available_workloads",
    "workload_aliases",
    "describe_workloads",
]


class DuplicateWorkloadError(ValueError):
    """A different class is already registered under the requested name."""


class UnknownWorkloadError(KeyError):
    """No workload is registered under the requested name."""

    def __init__(self, name: str, known: Tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown workload {name!r}; registered workloads are: "
            + (", ".join(known) if known else "<none>")
        )

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


#: canonical name -> workload class
_REGISTRY: Dict[str, type] = {}
#: alias -> canonical name
_ALIASES: Dict[str, str] = {}


def _normalise(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def _same_class(a: type, b: type) -> bool:
    """True when ``a`` and ``b`` are the same class, also across re-imports
    of the defining module (same qualified name)."""
    return a is b or (a.__module__, a.__qualname__) == (b.__module__, b.__qualname__)


def register_workload(
    cls: Optional[type] = None,
    *,
    name: Optional[str] = None,
    aliases: Tuple[str, ...] = (),
):
    """Register a workload class, usable directly or as a decorator.

    ``name`` defaults to the class's ``name`` attribute.  Registering the
    same class twice is a no-op (module re-imports are harmless); registering
    a *different* class under an existing name raises
    :class:`DuplicateWorkloadError`.
    """

    def _register(klass: type) -> type:
        key = _normalise(name if name is not None else getattr(klass, "name", ""))
        if not key:
            raise ValueError(
                f"workload class {klass.__qualname__} has no 'name' attribute "
                "and no explicit name was given"
            )
        canonical = _ALIASES.get(key, key)
        existing = _REGISTRY.get(canonical)
        if existing is not None and not _same_class(existing, klass):
            raise DuplicateWorkloadError(
                f"workload name {key!r} is already registered to "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        if canonical != key:
            # `key` is currently an alias of the same class: the registration
            # is already in effect under the canonical name; adding a second
            # canonical entry would double-list the workload
            key = canonical
        _REGISTRY[key] = klass
        for alias in aliases:
            akey = _normalise(alias)
            target = _ALIASES.get(akey)
            owner = _REGISTRY.get(target) if target is not None else _REGISTRY.get(akey)
            if owner is not None and not _same_class(owner, klass):
                raise DuplicateWorkloadError(
                    f"workload alias {akey!r} collides with an existing registration"
                )
            _ALIASES[akey] = key
        return klass

    if cls is not None:
        return _register(cls)
    return _register


def unregister_workload(name: str) -> None:
    """Remove a registration (test helper)."""
    key = _normalise(name)
    key = _ALIASES.get(key, key)
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key or a == key]:
        del _ALIASES[alias]


def available_workloads() -> Tuple[str, ...]:
    """Sorted canonical names of all registered workloads."""
    return tuple(sorted(_REGISTRY))


def workload_aliases() -> Dict[str, str]:
    """Mapping alias -> canonical name (copy)."""
    return dict(_ALIASES)


def describe_workloads() -> List[Dict[str, object]]:
    """One summary row per registered workload, in canonical-name order.

    Each row carries the canonical name, its aliases, the config class
    name, the scenario ``kind``, the error variables of the scenario
    protocol, whether the class satisfies that protocol, and the first
    line of the class docstring as a one-line description.
    """
    from .scenario import is_scenario

    aliases_by_canonical: Dict[str, List[str]] = {}
    for alias, target in _ALIASES.items():
        if alias != target:
            aliases_by_canonical.setdefault(target, []).append(alias)
    rows: List[Dict[str, object]] = []
    for name in available_workloads():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        config_class = getattr(cls, "config_class", None)
        rows.append(
            {
                "name": name,
                "aliases": tuple(sorted(aliases_by_canonical.get(name, ()))),
                "config_class": config_class.__name__ if config_class is not None else "-",
                "kind": getattr(cls, "kind", "-"),
                "error_variables": tuple(getattr(cls, "error_variables", ())),
                "sweepable": is_scenario(cls),
                "description": doc[0] if doc else "",
            }
        )
    return rows


def canonical_name(name: str) -> str:
    """Resolve a name or alias to the canonical registry name."""
    key = _normalise(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise UnknownWorkloadError(name, available_workloads())
    return key


def get_workload_class(name: str) -> type:
    """Resolve a workload name (or alias) to its class."""
    return _REGISTRY[canonical_name(name)]


def create_workload(name: str, config=None, **config_kwargs):
    """Instantiate a registered workload.

    ``config`` (a ready-made config object) and ``config_kwargs`` (fields of
    the workload's ``config_class``) are mutually exclusive.
    """
    cls = get_workload_class(name)
    if config is not None:
        if config_kwargs:
            raise ValueError("pass either a config object or config kwargs, not both")
        return cls(config)
    if config_kwargs:
        config_class = getattr(cls, "config_class", None)
        if config_class is None:
            raise TypeError(
                f"workload {name!r} does not declare a config_class; "
                "pass a ready-made config object instead"
            )
        return cls(config_class(**config_kwargs))
    return cls()
