"""The unified scenario protocol: one result type, one error contract.

Every workload in the registry — the compressible AMR runs, the cellular
detonation, and the bubble level-set experiment — implements the same small
surface, which is what lets the sweep engine, the reference cache, the
sharding machinery, and the adaptive cliff search treat all of them
uniformly:

* ``run(policy=None, runtime=None) -> Outcome`` — execute under a
  truncation policy (``None`` = full-precision reference behaviour);
* ``reference() -> Outcome`` — the full-precision reference run;
* ``error(outcome, reference) -> float`` — the workload's scalar error
  metric (sfocu L1 for the compressible workloads, detonation-front
  deviation for cellular, interface deviation for bubble);
* ``acceptable(outcome, reference, threshold=None) -> bool`` — the failure
  predicate of the adaptive cliff search: an error threshold, a physics
  invariant (cellular's "the detonation still propagates and the EOS still
  converges"), or both.

Class attributes complete the contract: ``kind`` tags the scenario family,
``error_variables`` lists the state variables sfocu norms can be requested
for, ``default_error_variables`` is what a sweep reports when the spec
leaves ``variables=None``, and ``cliff_threshold`` is the default failure
threshold of :func:`repro.experiments.adaptive.find_cliff`.

:class:`Outcome` is the common result every scenario returns.  Its
serializable core (``state`` — a dict of float64 arrays — plus ``time``,
``info``, ``runtime_snapshot``) is exactly what the
:class:`~repro.experiments.cache.ReferenceCache` round-trips through
``.npz`` and what crosses process boundaries; the live ``runtime`` / ``grid``
handles are conveniences for in-process callers and are dropped by
:meth:`Outcome.detach`.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.runtime import RaptorRuntime
from ..io.checkpoint import Checkpoint

__all__ = ["Outcome", "Scenario", "is_scenario", "scenario_protocol_errors"]


@dataclass(eq=False)
class Outcome:
    """Everything one scenario execution produces.

    The first five fields are the serializable core (plain arrays, floats
    and JSON-ready dicts); ``runtime`` and ``grid`` are live in-process
    handles that :meth:`detach` strips before an outcome is pickled to
    another process or written to the reference cache.
    """

    workload: str
    state: Dict[str, np.ndarray]
    time: float = 0.0
    info: Dict[str, float] = field(default_factory=dict)
    runtime_snapshot: Optional[dict] = None
    kind: str = "compressible"
    metadata: Dict[str, object] = field(default_factory=dict)
    runtime: Optional[RaptorRuntime] = field(default=None, repr=False)
    grid: Optional[object] = field(default=None, repr=False)

    # -- uniform views -------------------------------------------------------
    @property
    def checkpoint(self) -> Checkpoint:
        """The state as a :class:`~repro.io.checkpoint.Checkpoint` (the
        repo-wide comparison / persistence container)."""
        cached = self.__dict__.get("_checkpoint")
        if cached is None:
            cached = Checkpoint.from_arrays(self.state, time=self.time, metadata=self.metadata)
            self.__dict__["_checkpoint"] = cached
        return cached

    def snapshot(self) -> dict:
        """The op/mem counter snapshot, from the live runtime when present."""
        if self.runtime is not None:
            return self.runtime.snapshot()
        return self.runtime_snapshot or {}

    def detach(self) -> "Outcome":
        """A copy safe to pickle or cache: counters frozen into
        ``runtime_snapshot``, live runtime and grid handles dropped."""
        return replace(self, runtime=None, grid=None, runtime_snapshot=self.snapshot())

    # -- counters ------------------------------------------------------------
    @property
    def truncated_fraction(self) -> float:
        if self.runtime is not None:
            return self.runtime.ops.truncated_fraction
        ops = self.snapshot().get("ops", {})
        total = ops.get("truncated", 0) + ops.get("full", 0)
        return ops.get("truncated", 0) / total if total else 0.0

    def giga_flops(self) -> Tuple[float, float]:
        """(truncated, full) scalar-operation counts in units of 1e9."""
        if self.runtime is not None:
            return self.runtime.giga_flops()
        ops = self.snapshot().get("ops", {})
        return ops.get("truncated", 0) / 1e9, ops.get("full", 0) / 1e9

    # -- error norms ---------------------------------------------------------
    def l1_error(self, reference: "Outcome", variable: str = "dens") -> float:
        """sfocu L1 error of ``variable`` against a reference outcome."""
        from ..io.sfocu import compare

        report = compare(self.checkpoint, reference.checkpoint, [variable])
        return report.l1(variable)

    def errors(
        self, reference: "Outcome", variables: Sequence[str] = ("dens", "velx")
    ) -> Dict[str, float]:
        from ..io.sfocu import compare

        report = compare(self.checkpoint, reference.checkpoint, list(variables))
        return {name: report.l1(name) for name in variables}


class Scenario:
    """Base class (and documentation of the protocol) for sweepable
    scenarios.

    Subclasses must provide ``name``, ``config_class``, and
    :meth:`run`; :meth:`reference` and :meth:`acceptable` have protocol
    defaults.  Duck-typed implementations that do not inherit from this
    class are equally valid — :func:`is_scenario` checks the surface, not
    the ancestry.
    """

    name: str = ""
    config_class: Optional[type] = None
    #: scenario family tag, recorded in outcomes and cache entries
    kind: str = "generic"
    #: state variables sfocu norms may be requested for
    error_variables: Tuple[str, ...] = ()
    #: variables a sweep reports when the spec leaves ``variables=None``
    default_error_variables: Tuple[str, ...] = ()
    #: the physics modules a truncation policy must cover to affect this
    #: scenario — the default policy of the adaptive cliff search targets
    #: these, so a cellular search truncates the EOS, not "hydro"
    default_modules: Tuple[str, ...] = ()
    #: default failure threshold of the adaptive cliff search
    cliff_threshold: float = 1e-3

    def run(self, policy=None, runtime=None) -> Outcome:
        raise NotImplementedError

    def reference(self, plane: Optional[str] = None, **kwargs) -> Outcome:
        """Full-precision reference run.

        ``plane=None`` (or ``"instrumented"``) keeps the classic counting
        reference (op counting enabled).  ``"fast"`` / ``"auto"`` execute on
        the fused binary64 fast plane of :mod:`repro.kernels` — the final
        state is bit-identical but the counters are not recorded, so the
        detached/cached snapshot holds zeros.  The experiment engine
        requests the fast plane by default (it compares references by
        state and never reads their counters); callers that study the
        reference's own op counts should keep the instrumented default.
        """
        if plane is None or plane == "instrumented":
            return self.run(policy=None, **kwargs)
        from ..core.selective import NoTruncationPolicy
        from ..kernels import validate_plane

        validate_plane(plane)
        runtime = kwargs.pop("runtime", None)
        rt = runtime if runtime is not None else RaptorRuntime(self.name or "reference")
        policy = NoTruncationPolicy(
            runtime=rt, count_ops=False, track_memory=False, plane="fast"
        )
        return self.run(policy=policy, runtime=rt, **kwargs)

    def error(self, outcome: Outcome, reference: Outcome) -> float:
        """Scalar error metric of ``outcome`` against ``reference``."""
        raise NotImplementedError

    def acceptable(
        self, outcome: Outcome, reference: Outcome, threshold: Optional[float] = None
    ) -> bool:
        """The cliff-search failure predicate: by default, the scalar error
        stays within the threshold.  Scenarios with a physics invariant
        (e.g. cellular's detonation propagation) override this."""
        limit = self.cliff_threshold if threshold is None else threshold
        return self.error(outcome, reference) <= limit

    def evaluate(
        self, outcome: Outcome, reference: Outcome, threshold: Optional[float] = None
    ) -> Tuple[float, bool]:
        """``(error, acceptable)`` in one call.  When :meth:`acceptable` is
        the protocol default (a pure threshold on :meth:`error`), the error
        is computed once and reused — sfocu comparisons are the expensive
        part for grid-state scenarios.  Overridden predicates are honoured
        unchanged."""
        error = float(self.error(outcome, reference))
        if type(self).acceptable is Scenario.acceptable:
            limit = self.cliff_threshold if threshold is None else threshold
            return error, error <= limit
        return error, bool(self.acceptable(outcome, reference, threshold=threshold))


#: (attribute, why it is required) — the checkable protocol surface
_PROTOCOL_SURFACE = (
    ("run", "run(policy=..., runtime=...) -> Outcome"),
    ("reference", "reference() -> Outcome"),
    ("error", "error(outcome, reference) -> float"),
    ("acceptable", "acceptable(outcome, reference, threshold=...) -> bool"),
    ("error_variables", "tuple of state variables error norms apply to"),
    ("default_error_variables", "variables reported when a spec leaves variables=None"),
)


def scenario_protocol_errors(cls: type) -> Tuple[str, ...]:
    """Human-readable list of protocol violations of ``cls`` (empty when
    the class satisfies the scenario protocol)."""
    problems = []
    for attribute, description in _PROTOCOL_SURFACE:
        if not hasattr(cls, attribute):
            problems.append(f"missing {attribute!r} ({description})")
        elif attribute in ("run", "reference", "error", "acceptable") and not callable(
            getattr(cls, attribute)
        ):
            problems.append(f"{attribute!r} is not callable ({description})")
    return tuple(problems)


def is_scenario(cls: type) -> bool:
    """Whether ``cls`` satisfies the scenario protocol (duck-typed)."""
    return not scenario_protocol_errors(cls)
