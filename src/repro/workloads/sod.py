"""Sod shock-tube workload (compressible hydrodynamics, Figure 6b / 7b).

A density/pressure jump along a vertical plane launches a right-moving shock
and contact discontinuity and a left-moving rarefaction.  Compared to Sedov
the solution profile is less sharp and stretches across coarser AMR blocks,
which is why Hypothesis 1 expects the M − l cutoff strategy to help less —
the behaviour reproduced by the Figure 7b benchmark.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import CompressibleConfig, CompressibleWorkload

__all__ = ["SodConfig", "SodWorkload"]


@dataclass
class SodConfig(CompressibleConfig):
    """Sod-specific parameters (classic Sod 1978 states by default)."""

    left_density: float = 1.0
    left_pressure: float = 1.0
    right_density: float = 0.125
    right_pressure: float = 0.1
    #: x-position of the initial discontinuity plane
    interface_position: float = 0.5
    t_end: float = 0.12


class SodWorkload(CompressibleWorkload):
    """2-D Sod shock tube: the jump lies along the vertical (y) plane."""

    name = "sod"
    config_class = SodConfig

    def __init__(self, config: Optional[SodConfig] = None) -> None:
        super().__init__(config or SodConfig())

    def domain(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        return (0.0, 1.0), (0.0, 1.0)

    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        cfg: SodConfig = self.config  # type: ignore[assignment]
        left = x < cfg.interface_position
        dens = np.where(left, cfg.left_density, cfg.right_density)
        pres = np.where(left, cfg.left_pressure, cfg.right_pressure)
        return {
            "dens": dens,
            "velx": np.zeros_like(x),
            "vely": np.zeros_like(x),
            "pres": pres,
        }

    # ------------------------------------------------------------------
    def shock_position(self, run) -> float:
        """x-position of the right-moving shock (steepest density gradient
        right of the initial interface)."""
        dens = run.checkpoint["dens"]
        profile = dens.mean(axis=1)
        x, _ = run.grid.uniform_coordinates(self.config.max_level)
        grad = np.abs(np.gradient(profile, x))
        right = x > self.config.interface_position  # type: ignore[attr-defined]
        if not np.any(right):
            return float(x[int(np.argmax(grad))])
        idx = np.argmax(np.where(right, grad, 0.0))
        return float(x[idx])
