"""Kelvin–Helmholtz shear-instability workload.

A double shear layer on a fully periodic unit square: a dense band moving
right through a lighter counter-flowing background, seeded with a
single-mode transverse velocity perturbation localised at the two
interfaces.  The rolls that develop are carried by fine AMR blocks tracking
the vortex sheets while most of the volume stays laminar, which makes the
workload an interesting middle ground between Sedov (sharp, localised
features) and Sod (extended smooth profiles) for the AMR-cutoff truncation
strategy.

Instability-driven mixing layers of this kind dominate the deflagration
phase of white-dwarf detonation models, which is why the precision-sweep
experiments add them to the original four scenarios.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import CompressibleConfig, CompressibleWorkload

__all__ = ["KelvinHelmholtzConfig", "KelvinHelmholtzWorkload"]


@dataclass
class KelvinHelmholtzConfig(CompressibleConfig):
    """Double-shear-layer parameters (Athena-style KH setup)."""

    #: density of the central band / the outer background
    band_density: float = 2.0
    background_density: float = 1.0
    #: +x speed of the band, -x speed of the background
    shear_velocity: float = 0.5
    #: uniform initial pressure
    pressure: float = 2.5
    #: y-positions of the two shear interfaces
    interfaces: Tuple[float, float] = (0.25, 0.75)
    #: amplitude of the transverse velocity perturbation
    perturbation_amplitude: float = 0.01
    #: number of perturbation wavelengths across the domain
    perturbation_modes: int = 2
    #: Gaussian width of the perturbation envelope around each interface
    perturbation_width: float = 0.05
    boundary: str = "periodic"
    t_end: float = 0.2


class KelvinHelmholtzWorkload(CompressibleWorkload):
    """2-D Kelvin–Helmholtz double shear layer on the periodic unit square."""

    name = "kelvin-helmholtz"
    aliases = ("kh",)
    config_class = KelvinHelmholtzConfig

    def __init__(self, config: Optional[KelvinHelmholtzConfig] = None) -> None:
        super().__init__(config or KelvinHelmholtzConfig())

    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        cfg: KelvinHelmholtzConfig = self.config  # type: ignore[assignment]
        y_lo, y_hi = cfg.interfaces
        band = (y >= y_lo) & (y < y_hi)

        dens = np.where(band, cfg.band_density, cfg.background_density)
        velx = np.where(band, cfg.shear_velocity, -cfg.shear_velocity)
        envelope = np.exp(-((y - y_lo) ** 2) / (2.0 * cfg.perturbation_width ** 2)) + np.exp(
            -((y - y_hi) ** 2) / (2.0 * cfg.perturbation_width ** 2)
        )
        vely = cfg.perturbation_amplitude * np.sin(
            2.0 * np.pi * cfg.perturbation_modes * x
        ) * envelope
        return {
            "dens": dens,
            "velx": velx,
            "vely": vely,
            "pres": np.full_like(x, cfg.pressure),
        }

    # ------------------------------------------------------------------
    def mixing_width(self, run) -> float:
        """Extent in y over which the horizontally averaged density lies
        strictly between the band and background values (roll-up diagnostic)."""
        cfg: KelvinHelmholtzConfig = self.config  # type: ignore[assignment]
        dens = run.checkpoint["dens"]
        profile = dens.mean(axis=0)
        _, y = run.grid.uniform_coordinates(cfg.max_level)
        lo = min(cfg.band_density, cfg.background_density)
        hi = max(cfg.band_density, cfg.background_density)
        margin = 0.05 * (hi - lo)
        mixed = (profile > lo + margin) & (profile < hi - margin)
        if not np.any(mixed):
            return 0.0
        dy = float(y[1] - y[0]) if y.size > 1 else 0.0
        return float(np.count_nonzero(mixed)) * dy
