"""The four evaluation workloads of the paper (Section 4)."""
from .base import CompressibleConfig, CompressibleWorkload, WorkloadRun
from .bubble import STRATEGIES, BubbleExperimentConfig, BubbleRunResult, BubbleWorkload
from .cellular import CellularConfig, CellularResult, CellularWorkload
from .sedov import SedovConfig, SedovWorkload
from .sod import SodConfig, SodWorkload

__all__ = [
    "CompressibleConfig",
    "CompressibleWorkload",
    "WorkloadRun",
    "SedovConfig",
    "SedovWorkload",
    "SodConfig",
    "SodWorkload",
    "CellularConfig",
    "CellularResult",
    "CellularWorkload",
    "BubbleExperimentConfig",
    "BubbleRunResult",
    "BubbleWorkload",
    "STRATEGIES",
]
