"""The evaluation workloads: the paper's four plus the instability suite.

Importing this package populates :mod:`repro.workloads.registry`; resolve
workloads by name via :func:`get_workload_class` / :func:`create_workload`
instead of importing the classes directly.

Every workload implements the scenario protocol of
:mod:`repro.workloads.scenario` — ``run`` / ``reference`` return a common
:class:`Outcome` and ``error`` computes a workload-specific scalar metric —
which is what makes all of them sweepable, cacheable, shardable and
cliff-searchable through :mod:`repro.experiments`.
"""
from .base import PRIMITIVE_VARS, CompressibleConfig, CompressibleWorkload
from .bubble import STRATEGIES, BubbleExperimentConfig, BubbleWorkload
from .cellular import CellularConfig, CellularWorkload
from .double_blast import DoubleBlastConfig, DoubleBlastWorkload
from .kelvin_helmholtz import KelvinHelmholtzConfig, KelvinHelmholtzWorkload
from .rayleigh_taylor import RayleighTaylorConfig, RayleighTaylorWorkload
from .registry import (
    DuplicateWorkloadError,
    UnknownWorkloadError,
    available_workloads,
    canonical_name,
    create_workload,
    describe_workloads,
    get_workload_class,
    register_workload,
    unregister_workload,
    workload_aliases,
)
from .scenario import Outcome, Scenario, is_scenario, scenario_protocol_errors
from .sedov import SedovConfig, SedovWorkload
from .sod import SodConfig, SodWorkload

__all__ = [
    # the scenario protocol
    "Outcome",
    "Scenario",
    "is_scenario",
    "scenario_protocol_errors",
    "PRIMITIVE_VARS",
    # workloads
    "CompressibleConfig",
    "CompressibleWorkload",
    "SedovConfig",
    "SedovWorkload",
    "SodConfig",
    "SodWorkload",
    "KelvinHelmholtzConfig",
    "KelvinHelmholtzWorkload",
    "RayleighTaylorConfig",
    "RayleighTaylorWorkload",
    "DoubleBlastConfig",
    "DoubleBlastWorkload",
    "CellularConfig",
    "CellularWorkload",
    "BubbleExperimentConfig",
    "BubbleWorkload",
    "STRATEGIES",
    # registry
    "register_workload",
    "unregister_workload",
    "canonical_name",
    "get_workload_class",
    "create_workload",
    "available_workloads",
    "workload_aliases",
    "describe_workloads",
    "DuplicateWorkloadError",
    "UnknownWorkloadError",
]
