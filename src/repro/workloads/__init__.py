"""The evaluation workloads: the paper's four plus the instability suite.

Importing this package populates :mod:`repro.workloads.registry`; resolve
workloads by name via :func:`get_workload_class` / :func:`create_workload`
instead of importing the classes directly.
"""
from .base import CompressibleConfig, CompressibleWorkload, WorkloadRun
from .bubble import STRATEGIES, BubbleExperimentConfig, BubbleRunResult, BubbleWorkload
from .cellular import CellularConfig, CellularResult, CellularWorkload
from .double_blast import DoubleBlastConfig, DoubleBlastWorkload
from .kelvin_helmholtz import KelvinHelmholtzConfig, KelvinHelmholtzWorkload
from .rayleigh_taylor import RayleighTaylorConfig, RayleighTaylorWorkload
from .registry import (
    DuplicateWorkloadError,
    UnknownWorkloadError,
    available_workloads,
    create_workload,
    get_workload_class,
    register_workload,
    unregister_workload,
    workload_aliases,
)
from .sedov import SedovConfig, SedovWorkload
from .sod import SodConfig, SodWorkload

__all__ = [
    "CompressibleConfig",
    "CompressibleWorkload",
    "WorkloadRun",
    "SedovConfig",
    "SedovWorkload",
    "SodConfig",
    "SodWorkload",
    "KelvinHelmholtzConfig",
    "KelvinHelmholtzWorkload",
    "RayleighTaylorConfig",
    "RayleighTaylorWorkload",
    "DoubleBlastConfig",
    "DoubleBlastWorkload",
    "CellularConfig",
    "CellularResult",
    "CellularWorkload",
    "BubbleExperimentConfig",
    "BubbleRunResult",
    "BubbleWorkload",
    "STRATEGIES",
    # registry
    "register_workload",
    "unregister_workload",
    "get_workload_class",
    "create_workload",
    "available_workloads",
    "workload_aliases",
    "DuplicateWorkloadError",
    "UnknownWorkloadError",
]
