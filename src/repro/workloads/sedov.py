"""Sedov blast-wave workload (compressible hydrodynamics, Figure 6a / 7a).

A pressure spike is deposited at the centre of a quiescent domain; the blast
drives a radial shock outward while the material far from the shock stays
essentially undisturbed.  Hypothesis 1 predicts that excluding only the most
refined AMR blocks (which track the shock) from truncation keeps the error
small — the behaviour reproduced by the Figure 7a benchmark.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .base import CompressibleConfig, CompressibleWorkload

__all__ = ["SedovConfig", "SedovWorkload"]


@dataclass
class SedovConfig(CompressibleConfig):
    """Sedov-specific parameters on top of the shared configuration."""

    #: total blast energy deposited at t = 0
    blast_energy: float = 0.5
    #: radius of the initial energy deposit (in domain units)
    blast_radius: float = 0.08
    #: ambient density and pressure of the quiescent background
    ambient_density: float = 1.0
    ambient_pressure: float = 1e-3
    t_end: float = 0.05


class SedovWorkload(CompressibleWorkload):
    """2-D Sedov blast on the unit square with outflow boundaries."""

    name = "sedov"
    config_class = SedovConfig

    def __init__(self, config: Optional[SedovConfig] = None) -> None:
        super().__init__(config or SedovConfig())

    def domain(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        return (0.0, 1.0), (0.0, 1.0)

    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        cfg: SedovConfig = self.config  # type: ignore[assignment]
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
        inside = r2 <= cfg.blast_radius ** 2
        # pressure corresponding to the blast energy spread over the deposit
        # area for a gamma-law gas: E = p * A / (gamma - 1)
        area = np.pi * cfg.blast_radius ** 2
        p_blast = (cfg.gamma - 1.0) * cfg.blast_energy / area
        pres = np.where(inside, p_blast, cfg.ambient_pressure)
        return {
            "dens": np.full_like(x, cfg.ambient_density),
            "velx": np.zeros_like(x),
            "vely": np.zeros_like(x),
            "pres": pres,
        }

    # ------------------------------------------------------------------
    def shock_radius(self, run) -> float:
        """Approximate shock radius from the pressure maximum location
        (diagnostic used by tests and the Figure 6 benchmark)."""
        pres = run.checkpoint["pres"]
        x, y = run.grid.uniform_coordinates(run.grid.finest_level)
        # radius of the cells in the outer pressure peak
        centre = (0.5, 0.5)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        if pres.shape != xx.shape:
            x, y = run.grid.uniform_coordinates(self.config.max_level)
            xx, yy = np.meshgrid(x, y, indexing="ij")
        r = np.sqrt((xx - centre[0]) ** 2 + (yy - centre[1]) ** 2)
        threshold = 0.5 * float(np.max(pres))
        ring = pres >= threshold
        return float(np.max(r[ring])) if np.any(ring) else 0.0
