"""Cellular detonation workload (carbon burning + tabulated EOS).

The paper's Cellular study initialises a domain of pure carbon at stellar
densities, perturbs a small region to ignite the fuel, and follows the
over-driven detonation that propagates along x.  Hypothesis 2 ("the EOS is
table-based and therefore the most likely candidate for reduced precision")
is falsified: the Newton–Raphson extrapolation of the table stops converging
once the mantissa is truncated below ~42 bits, no matter how much the
tolerance is relaxed.

This reproduction drives a 1-D finite-volume Euler solver whose pressure and
temperature come from the synthetic Helmholtz table (inverted with
Newton–Raphson through a numerics context) and whose energy source comes
from the simplified carbon-burning network.  Truncating the ``eos`` module
reproduces the convergence collapse; the hydrodynamics itself runs in FP64,
exactly as in the paper's experiment (only the EOS module is truncated).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..burn.network import CarbonBurnNetwork
from ..core.opmode import FPContext, FullPrecisionContext
from ..core.runtime import RaptorRuntime
from ..core.selective import ModulePolicy, NoTruncationPolicy, TruncationPolicy
from ..eos.newton import NewtonSolverConfig, invert_energy
from ..eos.table import HelmholtzTable
from ..kernels import select_context
from .registry import register_workload
from .scenario import Outcome, Scenario

__all__ = ["CellularConfig", "CellularWorkload"]


@dataclass
class CellularConfig:
    """Parameters of the 1-D detonation."""

    n_cells: int = 96
    length: float = 256.0              # cm
    fuel_density: float = 1.0e7        # g/cm^3
    ambient_temperature: float = 2.0e8 # K
    ignition_temperature: float = 3.5e9
    ignition_fraction: float = 0.1     # fraction of the domain ignited at t=0
    cfl: float = 0.4
    n_steps: int = 40
    newton: NewtonSolverConfig = field(default_factory=NewtonSolverConfig)
    #: burning network retuned so the detonation develops within the short
    #: simulated time of the reproduction (see DESIGN.md)
    burn: CarbonBurnNetwork = field(
        default_factory=lambda: CarbonBurnNetwork(rate_prefactor=1e9, activation_t9=10.0)
    )

    @property
    def finest_cells(self):
        """Covering-grid shape, for the reference cache's content address."""
        return (self.n_cells,)


@register_workload
class CellularWorkload(Scenario):
    """1-D over-driven carbon detonation with a tabulated EOS."""

    name = "cellular"
    config_class = CellularConfig
    kind = "cellular"
    error_variables = ("dens", "velx", "eint", "temp", "fuel", "front_positions")
    default_error_variables = ("dens", "temp")
    default_modules = ("eos",)

    def __init__(self, config: Optional[CellularConfig] = None) -> None:
        self.config = config or CellularConfig()
        self.table = HelmholtzTable()

    # ------------------------------------------------------------------
    def _initial_state(self) -> Dict[str, np.ndarray]:
        cfg = self.config
        n = cfg.n_cells
        x = (np.arange(n) + 0.5) * (cfg.length / n)
        temp = np.full(n, cfg.ambient_temperature)
        temp[x < cfg.ignition_fraction * cfg.length] = cfg.ignition_temperature
        dens = np.full(n, cfg.fuel_density)
        eint = np.asarray(self.table.energy(dens, temp))
        return {
            "x": x,
            "dens": dens,
            "velx": np.zeros(n),
            "eint": eint,          # specific internal energy (erg/g)
            "temp": temp,
            "fuel": np.ones(n),
        }

    # ------------------------------------------------------------------
    def _eos_update(
        self,
        state: Dict[str, np.ndarray],
        ctx: FPContext,
    ):
        """Invert the table for temperature, then evaluate pressure."""
        result = invert_energy(
            self.table,
            state["dens"],
            state["eint"],
            state["temp"],
            self.config.newton,
            ctx,
        )
        state["temp"] = np.clip(result.temperature, 1.1e7, 9.5e9)
        pres = np.asarray(ctx.asplain(self.table.pressure(state["dens"], state["temp"], ctx)))
        return pres, result

    def _sound_speed(self, state: Dict[str, np.ndarray], pres: np.ndarray) -> np.ndarray:
        gamma_eff = 1.0 + pres / np.maximum(state["dens"] * state["eint"], 1e-300)
        gamma_eff = np.clip(gamma_eff, 1.05, 2.0)
        return np.sqrt(gamma_eff * pres / state["dens"])

    def _hydro_step(self, state: Dict[str, np.ndarray], pres: np.ndarray, dt: float, dx: float) -> None:
        """1-D HLL finite-volume update of (rho, rho u, rho E) in FP64."""
        dens, velx, eint = state["dens"], state["velx"], state["eint"]
        ener = dens * (eint + 0.5 * velx ** 2)
        cons = np.stack([dens, dens * velx, ener])

        def flux_of(d, u, p, e):
            return np.stack([d * u, d * u * u + p, (e + p) * u])

        # outflow ghost cells
        def pad(a):
            return np.concatenate([a[:1], a, a[-1:]])

        d_p, u_p, p_p, e_p = pad(dens), pad(velx), pad(pres), pad(ener)
        cs = self._sound_speed({"dens": d_p, "eint": pad(eint)}, p_p)

        dl, ul, pl, el, cl = d_p[:-1], u_p[:-1], p_p[:-1], e_p[:-1], cs[:-1]
        dr, ur, pr, er, cr = d_p[1:], u_p[1:], p_p[1:], e_p[1:], cs[1:]
        sl = np.minimum(ul - cl, ur - cr)
        sr = np.maximum(ul + cl, ur + cr)
        fl = flux_of(dl, ul, pl, el)
        fr = flux_of(dr, ur, pr, er)
        ul_c = np.stack([dl, dl * ul, el])
        ur_c = np.stack([dr, dr * ur, er])
        denom = np.where(np.abs(sr - sl) < 1e-30, 1e-30, sr - sl)
        f_hll = (sr * fl - sl * fr + sl * sr * (ur_c - ul_c)) / denom
        flux = np.where(sl >= 0, fl, np.where(sr <= 0, fr, f_hll))

        cons = cons - dt / dx * (flux[:, 1:] - flux[:, :-1])
        dens_new = np.maximum(cons[0], 1e3)
        velx_new = cons[1] / dens_new
        eint_new = np.maximum(cons[2] / dens_new - 0.5 * velx_new ** 2, 1e12)
        state["dens"], state["velx"], state["eint"] = dens_new, velx_new, eint_new

    def _front_position(self, state: Dict[str, np.ndarray]) -> float:
        """Rightmost location where a significant amount of fuel has burned."""
        burned = state["fuel"] < 0.9
        if not np.any(burned):
            return 0.0
        return float(np.max(state["x"][burned]))

    # ------------------------------------------------------------------
    def run(
        self,
        policy: Optional[TruncationPolicy] = None,
        runtime: Optional[RaptorRuntime] = None,
        n_steps: Optional[int] = None,
    ) -> Outcome:
        """Run the detonation under a truncation policy.

        The policy is consulted for the ``eos`` module only (the paper's
        module-selective truncation); burning and hydrodynamics run in FP64.
        """
        cfg = self.config
        rt = runtime if runtime is not None else RaptorRuntime(self.name)
        pol = policy if policy is not None else NoTruncationPolicy(runtime=rt)
        eos_ctx = pol.context_for(module="eos")
        # burning always runs untruncated, counted on *this run's* runtime
        # (the policy may have been built on another), but on the policy's
        # kernel plane so fast-plane reference runs stay fused end to end
        burn_ctx = select_context(
            FullPrecisionContext(runtime=rt, module="burn"),
            getattr(pol, "plane", "auto"),
        )

        state = self._initial_state()
        dx = cfg.length / cfg.n_cells

        times: List[float] = []
        fronts: List[float] = []
        failed = 0
        calls = 0
        t = 0.0
        steps = n_steps if n_steps is not None else cfg.n_steps
        for _ in range(steps):
            # 1. nuclear burning adds internal energy (FP64)
            fuel_new, de = cfg.burn.burn(state["fuel"], state["temp"], self._dt_guess(state, dx), burn_ctx)
            state["fuel"] = fuel_new
            state["eint"] = state["eint"] + de

            # 2. EOS inversion for temperature and pressure (truncation target)
            pres, newton = self._eos_update(state, eos_ctx)
            calls += 1
            if not newton.converged:
                failed += 1

            # 3. hydrodynamics (FP64)
            cs = self._sound_speed(state, pres)
            dt = cfg.cfl * dx / float(np.max(np.abs(state["velx"]) + cs))
            self._hydro_step(state, pres, dt, dx)

            t += dt
            times.append(t)
            fronts.append(self._front_position(state))

        fronts_arr = np.asarray(fronts, dtype=np.float64)
        propagated = len(fronts) >= 2 and fronts[-1] > fronts[0]
        return Outcome(
            workload=self.name,
            state={
                "x": state["x"],
                "dens": state["dens"],
                "velx": state["velx"],
                "eint": state["eint"],
                "temp": state["temp"],
                "fuel": state["fuel"],
                "front_positions": fronts_arr,
                "times": np.asarray(times, dtype=np.float64),
            },
            time=t,
            info={
                "eos_converged": float(failed == 0),
                "failed_newton_steps": float(failed),
                "total_newton_calls": float(calls),
                "final_burned_fraction": float(1.0 - np.mean(state["fuel"])),
                "detonation_propagated": float(propagated),
                "front_advance": float(fronts_arr[-1] - fronts_arr[0]) if len(fronts) else 0.0,
            },
            kind=self.kind,
            metadata={"workload": self.name, "policy": pol.describe()},
            runtime=rt,
        )

    # ------------------------------------------------------------------
    def error(self, outcome: Outcome, reference: Outcome) -> float:
        """Relative deviation of the final detonation-front position."""
        front = float(outcome.state["front_positions"][-1])
        ref_front = float(reference.state["front_positions"][-1])
        return abs(front - ref_front) / max(abs(ref_front), 1e-30)

    def acceptable(
        self, outcome: Outcome, reference: Outcome, threshold: Optional[float] = None
    ) -> bool:
        """Physics invariant of the paper's Hypothesis-2 study: the EOS
        inversion still converges and the detonation still propagates.  A
        threshold additionally bounds the front-position deviation."""
        if not (outcome.info.get("eos_converged") and outcome.info.get("detonation_propagated")):
            return False
        if threshold is not None:
            return self.error(outcome, reference) <= threshold
        return True

    def _dt_guess(self, state: Dict[str, np.ndarray], dx: float) -> float:
        pres = np.asarray(self.table.pressure(state["dens"], state["temp"]))
        cs = self._sound_speed(state, pres)
        return self.config.cfl * dx / float(np.max(np.abs(state["velx"]) + cs))

    # ------------------------------------------------------------------
    def eos_policy(self, man_bits: int, exp_bits: int = 11, runtime: Optional[RaptorRuntime] = None) -> ModulePolicy:
        """Convenience: the module-selective policy that truncates only the EOS."""
        from ..core.config import TruncationConfig

        return ModulePolicy(
            TruncationConfig.mantissa(man_bits, exp_bits=exp_bits),
            modules=["eos"],
            runtime=runtime,
        )
