"""Double-blast (Woodward–Colella-style) detonation-proxy workload.

Two strong pressure reservoirs at the ends of a closed tube launch blast
waves toward each other; they reflect off the walls, collide near the
middle and build the notoriously precision-hungry multiple-interaction
structure of the Woodward & Colella (1984) interacting-blast-wave problem.
The collision of the two fronts is a cheap 2-D proxy for the converging
detonation fronts of the white-dwarf double-detonation scenario, and the
extreme pressure ratios (1000 : 0.01) make it the hardest stress test in the
registry for truncated formats with few exponent bits.

Reflecting walls in x (the hook added for this scenario) and a periodic y
direction keep the problem effectively one-dimensional while still running
through the full 2-D AMR machinery.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .base import CompressibleConfig, CompressibleWorkload

__all__ = ["DoubleBlastConfig", "DoubleBlastWorkload"]


@dataclass
class DoubleBlastConfig(CompressibleConfig):
    """Woodward–Colella interacting-blast parameters (classic values)."""

    density: float = 1.0
    left_pressure: float = 1000.0
    right_pressure: float = 100.0
    ambient_pressure: float = 0.01
    #: x-extent of the left / right high-pressure reservoirs
    left_edge: float = 0.1
    right_edge: float = 0.9
    boundary: Dict[str, str] = field(
        default_factory=lambda: {"x": "reflect", "y": "periodic"}
    )
    #: the classic problem runs to t = 0.038; the default stops after the
    #: first wall reflections to keep sweeps laptop-fast
    t_end: float = 0.01


class DoubleBlastWorkload(CompressibleWorkload):
    """2-D double blast in a closed tube (reflecting x-walls)."""

    name = "double-blast"
    aliases = ("woodward-colella", "blast2")
    config_class = DoubleBlastConfig

    def __init__(self, config: Optional[DoubleBlastConfig] = None) -> None:
        super().__init__(config or DoubleBlastConfig())

    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        cfg: DoubleBlastConfig = self.config  # type: ignore[assignment]
        pres = np.full_like(x, cfg.ambient_pressure)
        pres = np.where(x < cfg.left_edge, cfg.left_pressure, pres)
        pres = np.where(x >= cfg.right_edge, cfg.right_pressure, pres)
        return {
            "dens": np.full_like(x, cfg.density),
            "velx": np.zeros_like(x),
            "vely": np.zeros_like(x),
            "pres": pres,
        }

    # ------------------------------------------------------------------
    def front_positions(self, run) -> Tuple[float, float]:
        """x-positions of the steepest pressure gradients left and right of
        the midpoint (the two blast fronts, before they merge)."""
        pres = run.checkpoint["pres"]
        profile = pres.mean(axis=1)
        x, _ = run.grid.uniform_coordinates(self.config.max_level)
        grad = np.abs(np.gradient(profile, x))
        left = x < 0.5
        left_front = float(x[int(np.argmax(np.where(left, grad, 0.0)))])
        right_front = float(x[int(np.argmax(np.where(~left, grad, 0.0)))])
        return left_front, right_front
