"""Common driver machinery for the compressible (AMR + hydro) workloads.

The Sedov and Sod workloads share everything except their initial
conditions: a block-AMR grid refined by the Löhner estimator, the Spark-like
hydro solver, a truncation policy plugged in as the solver's context
provider, and an sfocu comparison of the final state against the
full-precision reference — exactly the experimental loop of Section 5.

Every compressible workload implements the scenario protocol of
:mod:`repro.workloads.scenario`: ``run`` returns an :class:`Outcome` whose
state is the finest-level covering-grid checkpoint, and ``error`` is the
sfocu L1 norm of the density field.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..amr.grid import AMRGrid
from ..core.runtime import RaptorRuntime
from ..core.selective import NoTruncationPolicy, TruncationPolicy
from ..hydro.solver import HydroSolver
from ..io.checkpoint import Checkpoint
from .registry import register_workload
from .scenario import Outcome, Scenario

__all__ = ["CompressibleConfig", "CompressibleWorkload", "PRIMITIVE_VARS"]

PRIMITIVE_VARS = ("dens", "velx", "vely", "pres")


@dataclass
class CompressibleConfig:
    """Grid/solver configuration shared by the compressible workloads."""

    nxb: int = 8
    nyb: int = 8
    n_root_x: int = 2
    n_root_y: int = 2
    max_level: int = 3
    ng: int = 3
    #: "outflow" / "periodic" / "reflect", or {"x": kind, "y": kind}
    boundary: Union[str, Dict[str, str]] = "outflow"
    #: constant body acceleration (gx, gy); (0, 0) adds no source term
    gravity: Tuple[float, float] = (0.0, 0.0)
    gamma: float = 1.4
    reconstruction: str = "plm"
    riemann: str = "hllc"
    rk_stages: int = 1
    cfl: float = 0.4
    t_end: float = 0.05
    fixed_dt: Optional[float] = None
    regrid_interval: int = 4
    refine_vars: Tuple[str, ...] = ("dens", "pres")
    refine_cutoff: float = 0.55
    derefine_cutoff: float = 0.15

    @property
    def finest_cells(self) -> Tuple[int, int]:
        factor = 1 << (self.max_level - 1)
        return (self.n_root_x * self.nxb * factor, self.n_root_y * self.nyb * factor)


class CompressibleWorkload(Scenario):
    """Base class for the compressible (AMR + hydro) workloads.

    Concrete subclasses that define their own ``name`` are automatically
    registered in :mod:`repro.workloads.registry`; set
    ``register = False`` on a subclass to opt out (e.g. test doubles).
    ``aliases`` adds alternative registry names.
    """

    name = "compressible"
    config_class = CompressibleConfig
    register = True
    aliases: Tuple[str, ...] = ()
    kind = "compressible"
    error_variables = PRIMITIVE_VARS
    default_error_variables = ("dens",)
    default_modules = ("hydro",)
    #: the variable whose sfocu L1 norm is the scalar error metric
    error_variable = "dens"
    cliff_threshold = 1e-3

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # aliases uses own-dict lookup so a subclass does not re-register its
        # parent's aliases; register is plain attribute lookup (inherited
        # opt-outs propagate)
        if cls.register and "name" in cls.__dict__:
            register_workload(cls, aliases=cls.__dict__.get("aliases", ()))

    def __init__(self, config: Optional[CompressibleConfig] = None) -> None:
        self.config = config or self.config_class()

    # -- to be overridden by concrete workloads ------------------------------
    def initial_condition(self, x: np.ndarray, y: np.ndarray) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def domain(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        return (0.0, 1.0), (0.0, 1.0)

    # ------------------------------------------------------------------
    def build_grid(self) -> AMRGrid:
        cfg = self.config
        xlim, ylim = self.domain()
        grid = AMRGrid(
            list(PRIMITIVE_VARS),
            xlim=xlim,
            ylim=ylim,
            nxb=cfg.nxb,
            nyb=cfg.nyb,
            n_root_x=cfg.n_root_x,
            n_root_y=cfg.n_root_y,
            max_level=cfg.max_level,
            ng=cfg.ng,
            boundary=cfg.boundary,
        )
        grid.initialize_with_refinement(
            self.initial_condition,
            list(cfg.refine_vars),
            refine_cutoff=cfg.refine_cutoff,
            derefine_cutoff=cfg.derefine_cutoff,
        )
        return grid

    def build_solver(self) -> HydroSolver:
        cfg = self.config
        from ..hydro.eos import GammaLawEOS

        return HydroSolver(
            eos=GammaLawEOS(gamma=cfg.gamma),
            reconstruction=cfg.reconstruction,
            riemann=cfg.riemann,
            cfl=cfg.cfl,
            rk_stages=cfg.rk_stages,
            gravity=cfg.gravity,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        policy: Optional[TruncationPolicy] = None,
        runtime: Optional[RaptorRuntime] = None,
        t_end: Optional[float] = None,
        fixed_dt: Optional[float] = None,
        regrid: Optional[bool] = None,
    ) -> Outcome:
        """Execute the workload under a truncation policy.

        ``policy=None`` runs the full-precision reference (with operation
        counting still enabled so truncated fractions can be reported).
        """
        cfg = self.config
        rt = runtime if runtime is not None else RaptorRuntime(self.name)
        pol = policy if policy is not None else NoTruncationPolicy(runtime=rt)

        grid = self.build_grid()
        solver = self.build_solver()

        def provider(module, level=None, max_level=None):
            return pol.context_for(module=module, level=level, max_level=max_level)

        do_regrid = cfg.regrid_interval if (regrid is None or regrid) else 0
        summary = solver.evolve(
            grid,
            t_end=t_end if t_end is not None else cfg.t_end,
            provider=provider,
            fixed_dt=fixed_dt if fixed_dt is not None else cfg.fixed_dt,
            regrid_interval=do_regrid,
            refine_vars=cfg.refine_vars,
            refine_cutoff=cfg.refine_cutoff,
            derefine_cutoff=cfg.derefine_cutoff,
        )

        checkpoint = Checkpoint.from_grid(
            grid,
            variables=list(PRIMITIVE_VARS),
            time=summary["time"],
            metadata={"workload": self.name, "policy": pol.describe()},
            level=cfg.max_level,
        )
        info = dict(summary)
        info["n_leaves"] = float(grid.n_leaves)
        info["finest_level"] = float(grid.finest_level)
        return Outcome(
            workload=self.name,
            state=checkpoint.data,
            time=checkpoint.time,
            info=info,
            kind=self.kind,
            metadata=checkpoint.metadata,
            runtime=rt,
            grid=grid,
        )

    def error(self, outcome: Outcome, reference: Outcome) -> float:
        """sfocu L1 error of the density field (the paper's headline norm)."""
        return outcome.l1_error(reference, self.error_variable)
