"""Declarative precision-sweep experiments.

The paper's central experimental loop — sweep truncated floating-point
formats across whole simulations and per-module regions, measure the error
against a full-precision reference, and count the truncated / full
operations — is packaged here as a reusable engine:

>>> from repro.experiments import SweepSpec, PolicySpec, run_sweep
>>> result = run_sweep(SweepSpec(
...     workloads=["kelvin-helmholtz", "sedov"],
...     formats=["fp64", "fp32", "bf16", "fp16"],
...     policies=[PolicySpec.amr_cutoff(1, modules=("hydro",))],
...     backend="process",
... ))
>>> print(result.table())

The package splits into four modules:

* :mod:`~repro.experiments.spec`   — the declarative surface.
  :class:`SweepSpec` names workloads (registry keys), formats, and
  :class:`PolicySpec` truncation recipes; ``spec.shard(i, n)`` slices the
  expanded grid deterministically for multi-host execution.
* :mod:`~repro.experiments.engine` — execution.  :func:`run_sweep` runs
  one full-precision reference per workload, fans the grid out over
  :mod:`repro.parallel.executor`, and returns a :class:`SweepResult`
  (which also merges shard results via :meth:`SweepResult.merge` and
  persists them via ``save``/``load``).
* :mod:`~repro.experiments.cache`  — the reference-run cache.
  :class:`ReferenceCache` is a content-addressed, fingerprint-invalidated
  store (in-memory LRU over on-disk ``.npz``) consulted by ``run_sweep``
  so repeated sweeps launch zero reference tasks.
* :mod:`~repro.experiments.adaptive` — the precision-cliff search.
  :func:`find_cliff` bisects the mantissa axis of one (workload, policy)
  pair in O(log n) runs; :func:`run_adaptive_sweep` drives it across a
  workload × policy grid with the same cache/shard/backend machinery.
* :mod:`~repro.experiments.journal` — crash-safe checkpointing.
  ``run_sweep(spec, checkpoint=dir)`` journals every resolved point with
  atomic write-then-rename; rerunning the same spec resumes, executing
  only the missing points, bitwise identical to an uninterrupted run.

Fault tolerance is configured on the specs: ``on_error="collect"`` turns
failing points into structured :class:`PointFailure` records instead of
aborting the sweep, ``point_timeout`` bounds each point on the process
backend (hung workers are killed), and ``retries`` bounds fresh-pool
rebuilds for transiently crashing workers.  See the "Fault tolerance"
section of ``docs/architecture.md``.

All of this works uniformly across every registered workload because each
one implements the scenario protocol of :mod:`repro.workloads.scenario`
(``run``/``reference`` → :class:`~repro.workloads.scenario.Outcome`,
plus a workload-specific ``error`` metric and failure predicate).

See ``docs/experiments.md`` for the full protocol, ``docs/architecture.md``
for where each module sits in the system, and ``docs/workloads.md`` for the
scenario gallery.
"""
from .adaptive import (
    AdaptiveCell,
    AdaptiveResult,
    AdaptiveSpec,
    CliffEvaluation,
    CliffResult,
    find_cliff,
    run_adaptive_sweep,
)
from .cache import (
    CacheStats,
    ReferenceCache,
    ReferenceKey,
    reference_key,
    solver_fingerprint,
)
from .engine import (
    NonFiniteStateError,
    PointFailure,
    PointResult,
    ReferenceResult,
    SweepResult,
    checkpoint_signature,
    gather_references,
    nonfinite_variables,
    run_sweep,
)
from .journal import CheckpointMismatchError, SweepJournal, atomic_pickle
from .spec import PolicySpec, SweepPoint, SweepSpec, format_label, resolve_format

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "PolicySpec",
    "PointResult",
    "PointFailure",
    "NonFiniteStateError",
    "nonfinite_variables",
    "ReferenceResult",
    "SweepResult",
    "run_sweep",
    "gather_references",
    # crash-safe checkpoint/resume
    "SweepJournal",
    "CheckpointMismatchError",
    "checkpoint_signature",
    "atomic_pickle",
    "resolve_format",
    "format_label",
    "ReferenceCache",
    "ReferenceKey",
    "CacheStats",
    "reference_key",
    "solver_fingerprint",
    # adaptive cliff search
    "AdaptiveCell",
    "AdaptiveSpec",
    "AdaptiveResult",
    "CliffEvaluation",
    "CliffResult",
    "find_cliff",
    "run_adaptive_sweep",
]
