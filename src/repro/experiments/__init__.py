"""Declarative precision-sweep experiments.

The paper's central experimental loop — sweep truncated floating-point
formats across whole simulations and per-module regions, measure the error
against a full-precision reference, and count the truncated / full
operations — is packaged here as a reusable engine:

>>> from repro.experiments import SweepSpec, PolicySpec, run_sweep
>>> result = run_sweep(SweepSpec(
...     workloads=["kelvin-helmholtz", "sedov"],
...     formats=["fp64", "fp32", "bf16", "fp16"],
...     policies=[PolicySpec.amr_cutoff(1, modules=("hydro",))],
...     backend="process",
... ))
>>> print(result.table())

See ``docs/experiments.md`` for the full protocol, including how to add a
workload to the registry.
"""
from .engine import PointResult, ReferenceResult, SweepResult, run_sweep
from .spec import PolicySpec, SweepPoint, SweepSpec, format_label, resolve_format

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "PolicySpec",
    "PointResult",
    "ReferenceResult",
    "SweepResult",
    "run_sweep",
    "resolve_format",
    "format_label",
]
