"""Content-addressed cache for full-precision reference runs.

The single most expensive redundant step of a precision sweep is the
full-precision reference trajectory: every ``run_sweep`` of the same
(workload, config) pair recomputes an identical FP64 run before any
truncated point executes.  This module caches those references so a warm
sweep launches **zero** reference tasks.

Keying
------
A cached entry is addressed by a :class:`ReferenceKey` derived purely from
the sweep inputs — never from anything produced by the run itself:

* ``workload`` — the *canonical* registry name, so ``"kh"`` and
  ``"kelvin-helmholtz"`` share one entry;
* ``config_hash`` — SHA-256 over the fully resolved config dataclass
  (defaults included), so two kwarg spellings of the same effective
  configuration also share one entry;
* ``grid_shape`` — the finest covering-grid cells (every workload config
  exposes ``finest_cells``: 2-D for compressible AMR, 1-D for the cellular
  detonation, (nx, ny) for the bubble solver), kept explicit in the key
  (and the filename) so operators can see at a glance which resolution an
  entry holds;
* ``n_steps`` — the config's explicit step count when it has one (the
  cellular detonation), else the fixed step count when the config pins
  ``fixed_dt`` against a time horizon (``t_end`` for the compressible
  workloads, ``truncation_time`` for bubble), ``0`` for adaptive time
  stepping (where the step count is an output, and already determined by
  the hashed config).

Invalidation
------------
Every entry stores the :func:`solver_fingerprint` current at write time — a
SHA-256 over the source of all physics packages (``core``, ``amr``,
``hydro``, ``eos``, ``burn``, ``incomp``, ``kernels``, ``workloads``,
``io``) plus ``repro.__version__``.  A lookup whose stored fingerprint does not match
the running code **deletes the entry and reports a miss**: stale physics
can never be served, and no manual cache-busting is required after editing
a solver file.

Layout
------
:class:`ReferenceCache` is a two-level store: an in-memory LRU
(:class:`MemoryLRU`, default 8 entries) in front of an on-disk ``.npz``
backend (:class:`NpzReferenceStore`).  Either level can be disabled.  The
disk format reuses the checkpoint convention (`var_*` arrays + JSON
metadata) and round-trips the reference state bit-exactly, which is what
keeps warm-cache sweep metrics bitwise identical to cold ones.

See ``docs/architecture.md`` for where the cache sits in a sweep's data
flow, and ``docs/experiments.md`` for usage from ``run_sweep``.
"""
from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "CacheStats",
    "MemoryLRU",
    "NpzReferenceStore",
    "ReferenceCache",
    "ReferenceKey",
    "reference_key",
    "solver_fingerprint",
]

#: subpackages of ``repro`` excluded from the physics fingerprint on
#: purpose: they orchestrate runs but cannot change the numbers a
#: reference run produces.  Everything else — including any subpackage
#: added after this module was written — participates: the list of
#: physics packages is enumerated from the installed tree at call time,
#: so a new kernels/solver package can never be silently left out of
#: cache invalidation.  ``kernels`` is included: the fast planes are
#: contractually bit-identical, but a bug there must invalidate caches.
_NON_PHYSICS_PACKAGES = frozenset({"experiments", "parallel", "codesign", "testing"})

_fingerprint_cache: Optional[str] = None


def _physics_packages(root: Path) -> List[str]:
    """The ``repro`` subpackages whose source participates in the physics
    fingerprint: every importable subpackage not on the orchestration
    exclude-list, discovered dynamically."""
    return sorted(
        entry.name
        for entry in root.iterdir()
        if entry.is_dir()
        and (entry / "__init__.py").is_file()
        and entry.name not in _NON_PHYSICS_PACKAGES
    )


def solver_fingerprint(refresh: bool = False) -> str:
    """SHA-256 fingerprint of the physics code currently importable.

    Hashes ``repro.__version__`` plus the source bytes of every ``.py`` file
    in the physics subpackages (sorted path order, path names included so
    file renames also invalidate).  The result is memoised per process;
    pass ``refresh=True`` to force a re-read (test helper).
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None and not refresh:
        return _fingerprint_cache
    import repro

    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    root = Path(repro.__file__).parent
    for package in _physics_packages(root):
        for path in sorted((root / package).glob("**/*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
    _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReferenceKey:
    """Content address of one reference trajectory."""

    workload: str
    config_hash: str
    grid_shape: Tuple[int, ...]
    n_steps: int

    def filename(self) -> str:
        """Stable, human-scannable entry filename."""
        shape = "x".join(str(n) for n in self.grid_shape) or "noshape"
        return f"{self.workload}-{shape}-s{self.n_steps}-{self.config_hash[:16]}.npz"

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "config_hash": self.config_hash,
            "grid_shape": list(self.grid_shape),
            "n_steps": self.n_steps,
        }


def _config_digest(config: object) -> str:
    """Deterministic SHA-256 of a (possibly nested) config object."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def reference_key(
    workload: str,
    config_kwargs: Optional[Mapping[str, object]] = None,
    *,
    config: Optional[object] = None,
) -> ReferenceKey:
    """Build the cache key of a workload's reference run.

    The key is computed from the *resolved* config — either the workload's
    ``config_class`` instantiated with ``config_kwargs`` (so passing
    default values explicitly yields the same key as omitting them), or a
    ready-made ``config`` object (the spelling used when the caller holds
    a workload instance rather than a name + kwargs).
    """
    from ..workloads.registry import canonical_name, get_workload_class

    canonical = canonical_name(workload)
    if config is None:
        cls = get_workload_class(canonical)
        config_class = getattr(cls, "config_class", None)
        if config_class is not None:
            config = config_class(**dict(config_kwargs or {}))
        else:
            config = dict(config_kwargs or {})
    elif config_kwargs:
        raise ValueError("pass either config_kwargs or a config object, not both")

    shape = getattr(config, "finest_cells", ())
    grid_shape = tuple(int(n) for n in shape) if shape else ()

    # explicit step counts (cellular) win; otherwise a pinned dt against a
    # time horizon (t_end for compressible, truncation_time for bubble)
    n_steps = int(getattr(config, "n_steps", 0) or 0)
    if not n_steps:
        fixed_dt = getattr(config, "fixed_dt", None)
        horizon = getattr(config, "t_end", None) or getattr(config, "truncation_time", None)
        if fixed_dt and horizon:
            n_steps = int(round(float(horizon) / float(fixed_dt)))

    return ReferenceKey(
        workload=canonical,
        config_hash=_config_digest(config),
        grid_shape=grid_shape,
        n_steps=n_steps,
    )


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Counters of one cache's lifetime (both levels combined)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s), "
            f"{self.invalidations} invalidation(s)"
        )


# ---------------------------------------------------------------------------
# in-memory LRU level
# ---------------------------------------------------------------------------
class MemoryLRU:
    """Bounded in-memory map of :class:`ReferenceKey` → reference result.

    Eviction is least-recently-*used*: a ``get`` refreshes an entry's
    position.  ``max_entries=0`` disables the level (every ``put`` is a
    no-op), which the sweep engine uses when references are too large to
    keep resident.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: "OrderedDict[ReferenceKey, object]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ReferenceKey) -> bool:
        return key in self._entries

    def get(self, key: ReferenceKey):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: ReferenceKey, value) -> None:
        if self.max_entries == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: ReferenceKey) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------------------
# on-disk .npz level
# ---------------------------------------------------------------------------
class NpzReferenceStore:
    """Directory of ``.npz`` reference entries, one file per key.

    Each file stores the reference state arrays bit-exactly (``var_*``
    float64 entries), the final time, and a JSON metadata blob carrying the
    key, the run info, the runtime snapshot and the solver fingerprint of
    the writer.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory).expanduser()

    # -- paths ---------------------------------------------------------
    def path_for(self, key: ReferenceKey) -> Path:
        return self.directory / key.filename()

    def entries(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        # exclude in-flight writer tmp files (named *.tmp.npz, see write())
        return sorted(
            path for path in self.directory.glob("*.npz")
            if not path.name.endswith(".tmp.npz")
        )

    # -- io ------------------------------------------------------------
    @staticmethod
    def _read_errors() -> tuple:
        """Exception classes that mean "entry unreadable", not "bug"."""
        import zipfile

        return (OSError, ValueError, KeyError, json.JSONDecodeError, zipfile.BadZipFile)

    def write(self, key: ReferenceKey, reference, fingerprint: str) -> Path:
        from ..io.checkpoint import Checkpoint

        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        # an entry *is* a checkpoint — the repo-wide .npz convention of
        # repro.io.checkpoint; the cache-specific fields travel as metadata
        checkpoint = Checkpoint.from_arrays(
            reference.state,
            time=reference.time,
            metadata={
                "key": key.to_dict(),
                "fingerprint": fingerprint,
                "workload": reference.workload,
                "kind": getattr(reference, "kind", "compressible"),
                "info": reference.info,
                # snapshot() freezes live counters; detached outcomes hand
                # back their stored runtime_snapshot unchanged
                "runtime_snapshot": reference.snapshot(),
            },
        )
        # write-then-rename with a per-writer tmp name, so a crashed writer
        # never leaves a half-entry and concurrent writers (shards sharing a
        # cache dir that miss the same key) cannot interleave or race the
        # rename — last atomic replace wins with a complete file either way
        # (.npz suffix because numpy appends it to bare save paths)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp.npz", dir=self.directory
        )
        os.close(fd)
        try:
            checkpoint.save(tmp_name)
            Path(tmp_name).replace(path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return path

    def read(self, key: ReferenceKey):
        """Load an entry, or return ``None`` when absent/corrupt.

        A corrupt/truncated entry (a hard kill predating the atomic-write
        discipline, disk error) is a *miss*, not a crash: the file is
        deleted with a :class:`RuntimeWarning` so the recompute can store a
        clean replacement instead of tripping over the same bytes forever.

        Returns ``(reference, fingerprint)``; fingerprint checking is the
        caller's job (the cache front-end), so corrupt and stale entries
        can be counted separately.
        """
        from ..io.checkpoint import Checkpoint
        from ..workloads.scenario import Outcome

        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            checkpoint = Checkpoint.load(path)
        except self._read_errors() as exc:
            warnings.warn(
                f"deleting corrupt reference-cache entry {path.name} "
                f"({type(exc).__name__}: {exc}); the reference will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
            path.unlink(missing_ok=True)
            return None
        meta = checkpoint.metadata
        reference = Outcome(
            workload=meta.get("workload", key.workload),
            info=meta.get("info", {}),
            runtime_snapshot=meta.get("runtime_snapshot", {}),
            state=checkpoint.data,
            time=checkpoint.time,
            kind=meta.get("kind", "compressible"),
        )
        return reference, meta.get("fingerprint", "")

    def read_fingerprint(self, key: ReferenceKey) -> Optional[str]:
        """The stored solver fingerprint of an entry — without materialising
        its state arrays (npz members load lazily) — or ``None`` when the
        entry is absent or unreadable.  Keeps membership tests cheap for
        multi-megabyte references."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                if "_metadata" not in npz.files:
                    return None
                meta = json.loads(bytes(npz["_metadata"].tobytes()).decode("utf-8"))
        except self._read_errors():
            return None
        return meta.get("fingerprint", "")

    def delete(self, key: ReferenceKey) -> None:
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> int:
        n = 0
        for path in self.entries():
            path.unlink()
            n += 1
        return n


# ---------------------------------------------------------------------------
# the two-level cache
# ---------------------------------------------------------------------------
class ReferenceCache:
    """Two-level (memory LRU over ``.npz`` directory) reference cache.

    >>> cache = ReferenceCache("~/.cache/raptor-refs")
    >>> result = run_sweep(spec, cache=cache)          # cold: misses + stores
    >>> result = run_sweep(spec, cache=cache)          # warm: zero ref tasks
    >>> cache.stats.describe()
    '1 hit(s), 1 miss(es), 1 store(s), 0 invalidation(s)'

    ``directory=None`` gives a memory-only cache (useful in tests and for
    repeated sweeps inside one process); ``max_memory_entries=0`` gives a
    disk-only cache.
    """

    def __init__(
        self,
        directory=None,
        max_memory_entries: int = 8,
        fingerprint: Optional[str] = None,
    ) -> None:
        if directory is None and max_memory_entries == 0:
            raise ValueError("cache needs at least one level: a directory or memory entries")
        self.memory = MemoryLRU(max_memory_entries)
        self.disk = NpzReferenceStore(directory) if directory is not None else None
        self.fingerprint = fingerprint if fingerprint is not None else solver_fingerprint()
        self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """Lifetime counters, with LRU evictions folded in from the memory
        level (a copy — mutate nothing through it)."""
        return dataclasses.replace(self._stats, evictions=self.memory.evictions)

    # ------------------------------------------------------------------
    def get(self, key: ReferenceKey):
        """The cached reference for ``key``, or ``None`` on miss.

        A disk entry written under a different solver fingerprint is
        deleted (counted as an invalidation) and reported as a miss.
        """
        entry = self.memory.get(key)
        if entry is not None:
            self._stats.hits += 1
            return entry
        if self.disk is not None:
            loaded = self.disk.read(key)
            if loaded is not None:
                reference, fingerprint = loaded
                if fingerprint != self.fingerprint:
                    self.disk.delete(key)
                    self.memory.discard(key)
                    self._stats.invalidations += 1
                else:
                    self.memory.put(key, reference)
                    self._stats.hits += 1
                    return reference
        self._stats.misses += 1
        return None

    def put(self, key: ReferenceKey, reference) -> None:
        """Store a freshly computed reference under ``key`` in both levels."""
        self.memory.put(key, reference)
        if self.disk is not None:
            self.disk.write(key, reference, self.fingerprint)
        self._stats.stores += 1

    def __contains__(self, key: ReferenceKey) -> bool:
        """Whether :meth:`get` would hit — membership is fingerprint-aware,
        so a stale disk entry is not 'in' the cache."""
        if key in self.memory:
            return True
        if self.disk is None:
            return False
        return self.disk.read_fingerprint(key) == self.fingerprint

    # ------------------------------------------------------------------
    def invalidate(self, key: ReferenceKey) -> None:
        """Explicitly drop one entry from both levels."""
        self.memory.discard(key)
        if self.disk is not None:
            self.disk.delete(key)
        self._stats.invalidations += 1

    def clear(self) -> None:
        """Drop every entry from both levels."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    def describe(self) -> str:
        where = str(self.disk.directory) if self.disk is not None else "memory-only"
        return f"ReferenceCache({where}, lru={self.memory.max_entries})"
