"""Declarative description of a precision sweep.

A :class:`SweepSpec` names *what* to sweep — workloads (by registry name),
target floating-point formats, and truncation policies — and *how* to run it
(error variables, rounding mode, execution backend).  The engine in
:mod:`repro.experiments.engine` expands the spec into a deterministic grid of
:class:`SweepPoint` s and executes them.

Everything here is picklable by construction so sweep points can cross
process boundaries untouched.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import TruncationConfig
from ..core.fpformat import FPFormat, STANDARD_FORMATS
from ..core.quantize import RoundingMode
from ..core.runtime import RaptorRuntime
from ..core.selective import (
    AMRCutoffPolicy,
    GlobalPolicy,
    ModulePolicy,
    NoTruncationPolicy,
    TruncationPolicy,
)

__all__ = [
    "PolicySpec",
    "SweepPoint",
    "SweepSpec",
    "resolve_format",
    "format_label",
    "config_kwargs_for",
    "validate_workload_list",
    "validate_alias_keyed_mapping",
    "validate_config_overrides",
    "validate_fault_tolerance",
]

_POLICY_KINDS = ("none", "global", "amr-cutoff", "module")


def resolve_format(fmt: Union[str, FPFormat]) -> FPFormat:
    """Resolve a format given as an :class:`FPFormat`, a standard name
    ("fp64", "bf16", …) or an ``eXmY`` spec string ("e11m18")."""
    if isinstance(fmt, FPFormat):
        return fmt
    if not isinstance(fmt, str):
        raise TypeError(f"format must be an FPFormat or a string, got {type(fmt).__name__}")
    key = fmt.strip().lower()
    if key in STANDARD_FORMATS:
        return STANDARD_FORMATS[key]
    if key.startswith("e") and "m" in key:
        exp_part, _, man_part = key[1:].partition("m")
        try:
            return FPFormat(int(exp_part), int(man_part))
        except ValueError:
            pass
    raise ValueError(
        f"unknown format {fmt!r}; use one of {sorted(STANDARD_FORMATS)} or an "
        "'e<exp>m<man>' spec such as 'e11m18'"
    )


def format_label(fmt: FPFormat) -> str:
    """Short display name of a format."""
    return fmt.name or f"e{fmt.exp_bits}m{fmt.man_bits}"


def config_kwargs_for(
    workload_configs: Mapping[str, Mapping[str, object]], workload: str
) -> Dict[str, object]:
    """Config overrides for a workload, matching names alias-aware.

    Shared by :class:`SweepSpec` and the adaptive-search spec so both
    resolve ``{"kh": ...}`` and ``{"kelvin-helmholtz": ...}`` to the same
    overrides.
    """
    direct = workload_configs.get(workload)
    if direct is not None:
        return dict(direct)
    from ..workloads.registry import canonical_name

    target = canonical_name(workload)
    for name, kwargs in workload_configs.items():
        if canonical_name(name) == target:
            return dict(kwargs)
    return {}


def validate_workload_list(workloads: Sequence[str], what: str) -> set:
    """Canonicalise and protocol-check a workload list; returns the set of
    canonical names.  Shared by :meth:`SweepSpec.validate` and
    :meth:`~repro.experiments.adaptive.AdaptiveSpec.validate` so the rules
    cannot drift: aliases deduplicate, unknown names raise with the
    registry listing, and registered-but-not-sweepable classes are
    rejected with the missing protocol surface spelled out."""
    from ..workloads.registry import canonical_name, get_workload_class
    from ..workloads.scenario import scenario_protocol_errors

    if not workloads:
        raise ValueError(f"{what} needs at least one workload")
    seen = set()
    for name in workloads:
        canonical = canonical_name(name)
        if canonical in seen:
            raise ValueError(
                f"duplicate workload {name!r} (canonical name {canonical!r}) in {what}"
            )
        seen.add(canonical)
        cls = get_workload_class(name)
        problems = scenario_protocol_errors(cls)
        if problems:
            raise ValueError(
                f"workload {name!r} ({cls.__qualname__}) does not implement the "
                f"scenario (sweep) protocol: {'; '.join(problems)}; it is "
                "registered for name-based lookup but cannot be swept yet"
            )
    return seen


def validate_alias_keyed_mapping(
    mapping: Mapping[str, object], canonical_workloads: set, what: str
) -> None:
    """Check a per-workload mapping (configs, thresholds): every key must
    resolve to a swept workload, and no two keys may denote the same one."""
    from ..workloads.registry import canonical_name

    resolved: Dict[str, str] = {}
    for name in mapping:
        canonical = canonical_name(name)
        if canonical not in canonical_workloads:
            raise ValueError(f"{what} mentions {name!r}, which is not in workloads")
        if canonical in resolved:
            raise ValueError(
                f"{what} keys {resolved[canonical]!r} and {name!r} both refer "
                f"to workload {canonical!r}"
            )
        resolved[canonical] = name


def validate_fault_tolerance(
    on_error: str, point_timeout: Optional[float], retries: Optional[int]
) -> None:
    """Check the fault-tolerance knobs shared by :class:`SweepSpec` and
    :class:`~repro.experiments.adaptive.AdaptiveSpec`."""
    if on_error not in ("raise", "collect"):
        raise ValueError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
    if point_timeout is not None and not point_timeout > 0:
        raise ValueError(f"point_timeout must be > 0 seconds (or None), got {point_timeout!r}")
    if retries is not None and retries < 0:
        raise ValueError(f"retries must be >= 0 (or None for the default), got {retries!r}")


def validate_config_overrides(workload_configs: Mapping[str, Mapping[str, object]]) -> None:
    """Probe each override against its workload's ``config_class`` so
    typo'd field names fail at validation time, not inside a worker."""
    from ..workloads.registry import get_workload_class

    for name, kwargs in workload_configs.items():
        config_class = getattr(get_workload_class(name), "config_class", None)
        if config_class is not None:
            try:
                config_class(**kwargs)
            except TypeError as exc:
                raise ValueError(f"invalid workload_configs for {name!r}: {exc}") from None


@dataclass(frozen=True)
class PolicySpec:
    """Picklable recipe for a truncation policy.

    ``kind`` is one of:

    * ``"none"``       — full-precision reference behaviour,
    * ``"global"``     — truncate everywhere (or all of ``modules``),
    * ``"amr-cutoff"`` — the paper's M−``cutoff`` refinement-level strategy,
    * ``"module"``     — truncate only the listed physics modules.

    The target format is *not* part of the policy: the engine combines each
    policy with each format of the sweep grid.
    """

    kind: str = "global"
    cutoff: int = 0
    modules: Optional[Tuple[str, ...]] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise ValueError(f"unknown policy kind {self.kind!r}; choose from {_POLICY_KINDS}")
        if self.cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        if self.kind == "module" and not self.modules:
            raise ValueError("policy kind 'module' requires a non-empty modules tuple")
        if self.modules is not None:
            object.__setattr__(self, "modules", tuple(self.modules))

    # -- convenience constructors ------------------------------------------
    @classmethod
    def none(cls) -> "PolicySpec":
        return cls(kind="none", label="none")

    @classmethod
    def everywhere(cls, modules: Optional[Sequence[str]] = None) -> "PolicySpec":
        return cls(kind="global", modules=tuple(modules) if modules else None)

    @classmethod
    def amr_cutoff(cls, cutoff: int, modules: Optional[Sequence[str]] = None) -> "PolicySpec":
        return cls(kind="amr-cutoff", cutoff=cutoff, modules=tuple(modules) if modules else None)

    @classmethod
    def module(cls, *modules: str) -> "PolicySpec":
        return cls(kind="module", modules=tuple(modules))

    # ----------------------------------------------------------------------
    def describe(self) -> str:
        if self.label:
            return self.label
        mods = f"[{','.join(self.modules)}]" if self.modules else ""
        if self.kind == "none":
            return "none"
        if self.kind == "amr-cutoff":
            return f"M-{self.cutoff}{mods}"
        if self.kind == "module":
            return f"module{mods}"
        return f"global{mods}"

    def build(
        self,
        fmt: FPFormat,
        runtime: RaptorRuntime,
        rounding: str = RoundingMode.NEAREST_EVEN,
        plane: str = "auto",
        count_ops: bool = True,
    ) -> TruncationPolicy:
        """Materialise the policy for one sweep point.

        ``plane`` selects the kernel plane of the policy's contexts (see
        :mod:`repro.kernels`).  With the default ``count_ops=True``,
        truncated contexts record op counts and therefore always stay
        instrumented; ``count_ops=False`` builds non-counting contexts
        throughout, which makes the policy's truncated contexts eligible
        for the fused truncating plane under ``plane="fast"|"auto"``
        (bit-identical states, no counters)."""
        if self.kind == "none":
            return NoTruncationPolicy(
                runtime=runtime, count_ops=count_ops, track_memory=count_ops, plane=plane
            )
        config = TruncationConfig(
            targets={64: fmt}, rounding=rounding,
            count_ops=count_ops, track_memory=count_ops,
        )
        if self.kind == "amr-cutoff":
            return AMRCutoffPolicy(
                config, cutoff=self.cutoff, modules=self.modules, runtime=runtime, plane=plane
            )
        if self.kind == "module":
            assert self.modules is not None
            return ModulePolicy(config, modules=self.modules, runtime=runtime, plane=plane)
        # "global": optionally restricted to modules
        if self.modules:
            return ModulePolicy(config, modules=self.modules, runtime=runtime, plane=plane)
        return GlobalPolicy(config, runtime=runtime, plane=plane)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid, in deterministic enumeration order."""

    index: int
    workload: str
    fmt: FPFormat
    policy: PolicySpec

    @property
    def format_name(self) -> str:
        return format_label(self.fmt)

    def describe(self) -> str:
        return f"{self.workload} @ {self.format_name} / {self.policy.describe()}"


@dataclass
class SweepSpec:
    """Declarative precision sweep: workloads × formats × policies.

    Parameters
    ----------
    workloads:
        Registry names (or aliases) of the workloads to sweep.
    formats:
        Target formats — :class:`FPFormat` objects, standard names or
        ``eXmY`` strings.
    policies:
        Truncation policies combined with every format.  Default: truncate
        the hydro module everywhere.
    workload_configs:
        Per-workload overrides, keyed by the name used in ``workloads``;
        values are keyword arguments for the workload's ``config_class``.
    variables:
        State variables whose error norms (vs. the full-precision
        reference) each point reports.  ``None`` (the default) reports
        each workload's own ``default_error_variables``, which is the only
        spelling that works for sweeps mixing scenario kinds (e.g.
        compressible + bubble); an explicit tuple must be available on
        every swept workload.
    rounding:
        Rounding mode of the truncated operations.
    plane:
        Kernel plane of the non-truncating contexts
        (:mod:`repro.kernels`): ``"auto"`` (default) runs reference tasks
        on the fused binary64 fast plane and keeps counting contexts
        instrumented; ``"fast"`` additionally runs every full-precision
        context of the sweep points on the fast plane (bit-identical
        states, those counters dropped); ``"instrumented"`` disables the
        fast plane everywhere.
    backend / max_workers:
        Execution backend ("serial" or "process") and its worker cap.
    keep_states:
        Also return the final uniform-grid state of every point (larger
        results; off by default).
    count_point_ops:
        Record op/mem counters in the sweep points (default).  ``False``
        builds every point policy non-counting, which routes truncated
        contexts onto the fused truncating plane under
        ``plane="fast"|"auto"`` — bit-identical states, much faster, but
        the point snapshots carry zeroed counters.
    cache_dir:
        Directory of the on-disk reference cache (see
        :mod:`repro.experiments.cache`).  ``None`` disables caching unless
        a cache object is passed to ``run_sweep`` directly.
    shard_index / shard_count:
        This spec's slice of the expanded grid.  The default ``0 / 1`` is
        the whole grid; :meth:`shard` produces the partitioned copies.
    on_error:
        ``"raise"`` (default): the first failing point aborts the sweep,
        today's behaviour.  ``"collect"``: failing points — exceptions,
        non-finite blow-ups, timeouts, crashing workers — become structured
        :class:`~repro.experiments.engine.PointFailure` records on
        ``SweepResult.failures`` while the healthy points complete
        bit-identically to a fault-free run.
    point_timeout:
        Per-point deadline in seconds, enforced by the process backend
        (hung workers are killed and the pool rebuilt); the serial backend
        cannot enforce it and warns.  ``None`` (default) disables it.
    retries:
        Fresh-pool rebuilds granted to a task whose worker keeps dying
        (transient crash / OOM), with exponential backoff between rebuilds.
        ``None`` (default) keeps the historical one-retry-no-backoff
        behaviour; deterministic solver errors are never retried.
    """

    workloads: Sequence[str] = ("sedov",)
    formats: Sequence[Union[str, FPFormat]] = ("fp64", "fp32", "bf16", "fp16")
    policies: Sequence[PolicySpec] = (PolicySpec(kind="global", modules=("hydro",)),)
    workload_configs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    variables: Optional[Tuple[str, ...]] = None
    rounding: str = RoundingMode.NEAREST_EVEN
    plane: str = "auto"
    backend: str = "serial"
    max_workers: Optional[int] = None
    keep_states: bool = False
    count_point_ops: bool = True
    cache_dir: Optional[str] = None
    shard_index: int = 0
    shard_count: int = 1
    on_error: str = "raise"
    point_timeout: Optional[float] = None
    retries: Optional[int] = None

    def __setstate__(self, state) -> None:
        # specs pickled before the fault-tolerance fields existed (old
        # shard/result files) default them on load
        self.__dict__.update(state)
        for name, default in (("on_error", "raise"), ("point_timeout", None), ("retries", None)):
            self.__dict__.setdefault(name, default)

    # ------------------------------------------------------------------
    def resolved_formats(self) -> Tuple[FPFormat, ...]:
        return tuple(resolve_format(f) for f in self.formats)

    def validate(self) -> None:
        """Check the spec before execution (fail fast, not in a worker)."""
        from ..workloads.registry import get_workload_class

        if not self.formats:
            raise ValueError("SweepSpec needs at least one format")
        if not self.policies:
            raise ValueError("SweepSpec needs at least one policy")
        if self.rounding not in RoundingMode.ALL:
            raise ValueError(f"unknown rounding mode {self.rounding!r}")
        from ..kernels import validate_plane

        validate_plane(self.plane)
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not (0 <= self.shard_index < self.shard_count):
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )
        if self.variables is not None and not self.variables:
            raise ValueError(
                "SweepSpec needs at least one error variable "
                "(or variables=None for per-workload defaults)"
            )
        validate_fault_tolerance(self.on_error, self.point_timeout, self.retries)
        seen = validate_workload_list(self.workloads, "SweepSpec")
        if self.variables is not None:
            for name in self.workloads:
                known = tuple(getattr(get_workload_class(name), "error_variables", ()))
                unknown = [v for v in self.variables if v not in known]
                if unknown:
                    raise ValueError(
                        f"unknown error variable(s) {unknown} for workload {name!r}; "
                        f"its outcomes carry {list(known)} — pass variables=None to "
                        "use each workload's own defaults"
                    )
        self.resolved_formats()
        validate_alias_keyed_mapping(self.workload_configs, seen, "workload_configs")
        validate_config_overrides(self.workload_configs)

    def full_grid(self) -> Tuple[SweepPoint, ...]:
        """The *complete* sweep grid (ignoring sharding), in deterministic
        order: workload → policy → format."""
        formats = self.resolved_formats()
        grid = []
        index = 0
        for workload in self.workloads:
            for policy in self.policies:
                for fmt in formats:
                    grid.append(SweepPoint(index=index, workload=workload, fmt=fmt, policy=policy))
                    index += 1
        return tuple(grid)

    def points(self) -> Tuple[SweepPoint, ...]:
        """This spec's slice of the grid.

        With the default ``shard_index=0, shard_count=1`` this is the whole
        grid.  A sharded spec keeps every ``shard_count``-th point starting
        at ``shard_index`` — a strided partition, so consecutive (same
        workload, similar cost) points spread across shards and the shards
        stay load-balanced.  Global point indices are preserved, which is
        what lets :meth:`SweepResult.merge` reassemble shard outputs in the
        original grid order.
        """
        grid = self.full_grid()
        if self.shard_count == 1:
            return grid
        return tuple(p for p in grid if p.index % self.shard_count == self.shard_index)

    def shard(self, index: int, count: int) -> "SweepSpec":
        """The ``index``-th of ``count`` deterministic grid partitions.

        Every point of :meth:`full_grid` lands in exactly one shard, so
        running all ``count`` shards (on any mix of hosts/backends) and
        merging with :meth:`~repro.experiments.engine.SweepResult.merge`
        reproduces the unsharded sweep bit for bit.
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not (0 <= index < count):
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        if (self.shard_index, self.shard_count) != (0, 1):
            raise ValueError("spec is already sharded; shard the unsharded base spec")
        return replace(self, shard_index=index, shard_count=count)

    def unsharded(self) -> "SweepSpec":
        """The base spec covering the whole grid (identity when unsharded)."""
        if (self.shard_index, self.shard_count) == (0, 1):
            return self
        return replace(self, shard_index=0, shard_count=1)

    def config_kwargs(self, workload: str) -> Dict[str, object]:
        """Config overrides for a workload, matching names alias-aware."""
        return config_kwargs_for(self.workload_configs, workload)

    def variables_for(self, workload: str) -> Tuple[str, ...]:
        """The error variables reported for one workload's points: the
        spec's explicit tuple, or the workload's own defaults when the
        spec leaves ``variables=None``."""
        if self.variables is not None:
            return tuple(self.variables)
        from ..workloads.registry import get_workload_class

        return tuple(get_workload_class(workload).default_error_variables)

    def with_backend(self, backend: str, max_workers: Optional[int] = None) -> "SweepSpec":
        """A copy of the spec running on a different backend."""
        return replace(self, backend=backend, max_workers=max_workers)
