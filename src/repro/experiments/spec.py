"""Declarative description of a precision sweep.

A :class:`SweepSpec` names *what* to sweep — workloads (by registry name),
target floating-point formats, and truncation policies — and *how* to run it
(error variables, rounding mode, execution backend).  The engine in
:mod:`repro.experiments.engine` expands the spec into a deterministic grid of
:class:`SweepPoint` s and executes them.

Everything here is picklable by construction so sweep points can cross
process boundaries untouched.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import TruncationConfig
from ..core.fpformat import FPFormat, STANDARD_FORMATS
from ..core.quantize import RoundingMode
from ..core.runtime import RaptorRuntime
from ..core.selective import (
    AMRCutoffPolicy,
    GlobalPolicy,
    ModulePolicy,
    NoTruncationPolicy,
    TruncationPolicy,
)

__all__ = ["PolicySpec", "SweepPoint", "SweepSpec", "resolve_format", "format_label"]

_POLICY_KINDS = ("none", "global", "amr-cutoff", "module")


def resolve_format(fmt: Union[str, FPFormat]) -> FPFormat:
    """Resolve a format given as an :class:`FPFormat`, a standard name
    ("fp64", "bf16", …) or an ``eXmY`` spec string ("e11m18")."""
    if isinstance(fmt, FPFormat):
        return fmt
    if not isinstance(fmt, str):
        raise TypeError(f"format must be an FPFormat or a string, got {type(fmt).__name__}")
    key = fmt.strip().lower()
    if key in STANDARD_FORMATS:
        return STANDARD_FORMATS[key]
    if key.startswith("e") and "m" in key:
        exp_part, _, man_part = key[1:].partition("m")
        try:
            return FPFormat(int(exp_part), int(man_part))
        except ValueError:
            pass
    raise ValueError(
        f"unknown format {fmt!r}; use one of {sorted(STANDARD_FORMATS)} or an "
        "'e<exp>m<man>' spec such as 'e11m18'"
    )


def format_label(fmt: FPFormat) -> str:
    """Short display name of a format."""
    return fmt.name or f"e{fmt.exp_bits}m{fmt.man_bits}"


@dataclass(frozen=True)
class PolicySpec:
    """Picklable recipe for a truncation policy.

    ``kind`` is one of:

    * ``"none"``       — full-precision reference behaviour,
    * ``"global"``     — truncate everywhere (or all of ``modules``),
    * ``"amr-cutoff"`` — the paper's M−``cutoff`` refinement-level strategy,
    * ``"module"``     — truncate only the listed physics modules.

    The target format is *not* part of the policy: the engine combines each
    policy with each format of the sweep grid.
    """

    kind: str = "global"
    cutoff: int = 0
    modules: Optional[Tuple[str, ...]] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise ValueError(f"unknown policy kind {self.kind!r}; choose from {_POLICY_KINDS}")
        if self.cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        if self.kind == "module" and not self.modules:
            raise ValueError("policy kind 'module' requires a non-empty modules tuple")
        if self.modules is not None:
            object.__setattr__(self, "modules", tuple(self.modules))

    # -- convenience constructors ------------------------------------------
    @classmethod
    def none(cls) -> "PolicySpec":
        return cls(kind="none", label="none")

    @classmethod
    def everywhere(cls, modules: Optional[Sequence[str]] = None) -> "PolicySpec":
        return cls(kind="global", modules=tuple(modules) if modules else None)

    @classmethod
    def amr_cutoff(cls, cutoff: int, modules: Optional[Sequence[str]] = None) -> "PolicySpec":
        return cls(kind="amr-cutoff", cutoff=cutoff, modules=tuple(modules) if modules else None)

    @classmethod
    def module(cls, *modules: str) -> "PolicySpec":
        return cls(kind="module", modules=tuple(modules))

    # ----------------------------------------------------------------------
    def describe(self) -> str:
        if self.label:
            return self.label
        mods = f"[{','.join(self.modules)}]" if self.modules else ""
        if self.kind == "none":
            return "none"
        if self.kind == "amr-cutoff":
            return f"M-{self.cutoff}{mods}"
        if self.kind == "module":
            return f"module{mods}"
        return f"global{mods}"

    def build(
        self,
        fmt: FPFormat,
        runtime: RaptorRuntime,
        rounding: str = RoundingMode.NEAREST_EVEN,
    ) -> TruncationPolicy:
        """Materialise the policy for one sweep point."""
        if self.kind == "none":
            return NoTruncationPolicy(runtime=runtime)
        config = TruncationConfig(targets={64: fmt}, rounding=rounding)
        if self.kind == "amr-cutoff":
            return AMRCutoffPolicy(config, cutoff=self.cutoff, modules=self.modules, runtime=runtime)
        if self.kind == "module":
            assert self.modules is not None
            return ModulePolicy(config, modules=self.modules, runtime=runtime)
        # "global": optionally restricted to modules
        if self.modules:
            return ModulePolicy(config, modules=self.modules, runtime=runtime)
        return GlobalPolicy(config, runtime=runtime)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid, in deterministic enumeration order."""

    index: int
    workload: str
    fmt: FPFormat
    policy: PolicySpec

    @property
    def format_name(self) -> str:
        return format_label(self.fmt)

    def describe(self) -> str:
        return f"{self.workload} @ {self.format_name} / {self.policy.describe()}"


@dataclass
class SweepSpec:
    """Declarative precision sweep: workloads × formats × policies.

    Parameters
    ----------
    workloads:
        Registry names (or aliases) of the workloads to sweep.
    formats:
        Target formats — :class:`FPFormat` objects, standard names or
        ``eXmY`` strings.
    policies:
        Truncation policies combined with every format.  Default: truncate
        the hydro module everywhere.
    workload_configs:
        Per-workload overrides, keyed by the name used in ``workloads``;
        values are keyword arguments for the workload's ``config_class``.
    variables:
        Checkpoint variables whose error norms (vs. the full-precision
        reference) each point reports.
    rounding:
        Rounding mode of the truncated operations.
    backend / max_workers:
        Execution backend ("serial" or "process") and its worker cap.
    keep_states:
        Also return the final uniform-grid state of every point (larger
        results; off by default).
    cache_dir:
        Directory of the on-disk reference cache (see
        :mod:`repro.experiments.cache`).  ``None`` disables caching unless
        a cache object is passed to ``run_sweep`` directly.
    shard_index / shard_count:
        This spec's slice of the expanded grid.  The default ``0 / 1`` is
        the whole grid; :meth:`shard` produces the partitioned copies.
    """

    workloads: Sequence[str] = ("sedov",)
    formats: Sequence[Union[str, FPFormat]] = ("fp64", "fp32", "bf16", "fp16")
    policies: Sequence[PolicySpec] = (PolicySpec(kind="global", modules=("hydro",)),)
    workload_configs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    variables: Tuple[str, ...] = ("dens",)
    rounding: str = RoundingMode.NEAREST_EVEN
    backend: str = "serial"
    max_workers: Optional[int] = None
    keep_states: bool = False
    cache_dir: Optional[str] = None
    shard_index: int = 0
    shard_count: int = 1

    # ------------------------------------------------------------------
    def resolved_formats(self) -> Tuple[FPFormat, ...]:
        return tuple(resolve_format(f) for f in self.formats)

    def validate(self) -> None:
        """Check the spec before execution (fail fast, not in a worker)."""
        from ..workloads.registry import canonical_name, get_workload_class

        if not self.workloads:
            raise ValueError("SweepSpec needs at least one workload")
        if not self.formats:
            raise ValueError("SweepSpec needs at least one format")
        if not self.policies:
            raise ValueError("SweepSpec needs at least one policy")
        if self.rounding not in RoundingMode.ALL:
            raise ValueError(f"unknown rounding mode {self.rounding!r}")
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not (0 <= self.shard_index < self.shard_count):
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )
        if not self.variables:
            raise ValueError("SweepSpec needs at least one error variable")
        from ..workloads.base import PRIMITIVE_VARS

        unknown = [v for v in self.variables if v not in PRIMITIVE_VARS]
        if unknown:
            raise ValueError(
                f"unknown error variable(s) {unknown}; compressible checkpoints "
                f"carry {list(PRIMITIVE_VARS)}"
            )
        seen = set()
        for name in self.workloads:
            # resolve aliases so "kh" and "kelvin-helmholtz" count as the
            # same workload; raises UnknownWorkloadError with the registry
            # listing for unknown names
            canonical = canonical_name(name)
            if canonical in seen:
                raise ValueError(
                    f"duplicate workload {name!r} (canonical name {canonical!r}) in sweep"
                )
            seen.add(canonical)
            cls = get_workload_class(name)
            if not (hasattr(cls, "reference") and hasattr(cls, "run")):
                raise ValueError(
                    f"workload {name!r} ({cls.__qualname__}) does not implement the "
                    "sweep protocol (reference() / run(policy=..., runtime=...)); "
                    "it is registered for name-based lookup but cannot be swept yet"
                )
        self.resolved_formats()
        seen_configs: Dict[str, str] = {}
        for name, kwargs in self.workload_configs.items():
            # alias-aware, like the workloads list itself: a config keyed
            # 'kelvin-helmholtz' applies to a sweep of 'kh' and vice versa
            canonical = canonical_name(name)
            if canonical not in seen:
                raise ValueError(
                    f"workload_configs mentions {name!r}, which is not in workloads"
                )
            if canonical in seen_configs:
                raise ValueError(
                    f"workload_configs keys {seen_configs[canonical]!r} and {name!r} "
                    f"both refer to workload {canonical!r}"
                )
            seen_configs[canonical] = name
            # probe the config constructor so typo'd field names fail here
            # rather than deep inside a worker process
            config_class = getattr(get_workload_class(name), "config_class", None)
            if config_class is not None:
                try:
                    config_class(**kwargs)
                except TypeError as exc:
                    raise ValueError(
                        f"invalid workload_configs for {name!r}: {exc}"
                    ) from None

    def full_grid(self) -> Tuple[SweepPoint, ...]:
        """The *complete* sweep grid (ignoring sharding), in deterministic
        order: workload → policy → format."""
        formats = self.resolved_formats()
        grid = []
        index = 0
        for workload in self.workloads:
            for policy in self.policies:
                for fmt in formats:
                    grid.append(SweepPoint(index=index, workload=workload, fmt=fmt, policy=policy))
                    index += 1
        return tuple(grid)

    def points(self) -> Tuple[SweepPoint, ...]:
        """This spec's slice of the grid.

        With the default ``shard_index=0, shard_count=1`` this is the whole
        grid.  A sharded spec keeps every ``shard_count``-th point starting
        at ``shard_index`` — a strided partition, so consecutive (same
        workload, similar cost) points spread across shards and the shards
        stay load-balanced.  Global point indices are preserved, which is
        what lets :meth:`SweepResult.merge` reassemble shard outputs in the
        original grid order.
        """
        grid = self.full_grid()
        if self.shard_count == 1:
            return grid
        return tuple(p for p in grid if p.index % self.shard_count == self.shard_index)

    def shard(self, index: int, count: int) -> "SweepSpec":
        """The ``index``-th of ``count`` deterministic grid partitions.

        Every point of :meth:`full_grid` lands in exactly one shard, so
        running all ``count`` shards (on any mix of hosts/backends) and
        merging with :meth:`~repro.experiments.engine.SweepResult.merge`
        reproduces the unsharded sweep bit for bit.
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not (0 <= index < count):
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        if (self.shard_index, self.shard_count) != (0, 1):
            raise ValueError("spec is already sharded; shard the unsharded base spec")
        return replace(self, shard_index=index, shard_count=count)

    def unsharded(self) -> "SweepSpec":
        """The base spec covering the whole grid (identity when unsharded)."""
        if (self.shard_index, self.shard_count) == (0, 1):
            return self
        return replace(self, shard_index=0, shard_count=1)

    def config_kwargs(self, workload: str) -> Dict[str, object]:
        """Config overrides for a workload, matching names alias-aware."""
        direct = self.workload_configs.get(workload)
        if direct is not None:
            return dict(direct)
        from ..workloads.registry import canonical_name

        target = canonical_name(workload)
        for name, kwargs in self.workload_configs.items():
            if canonical_name(name) == target:
                return dict(kwargs)
        return {}

    def with_backend(self, backend: str, max_workers: Optional[int] = None) -> "SweepSpec":
        """A copy of the spec running on a different backend."""
        return replace(self, backend=backend, max_workers=max_workers)
