"""The precision-sweep engine: ``SweepSpec`` → ``SweepResult``.

The engine expands a :class:`~repro.experiments.spec.SweepSpec` into a grid
of sweep points (workload × policy × format), runs one full-precision
reference per workload, executes every point against that reference, and
rolls the per-point operation / memory counters up into a single profile.

Execution goes through :mod:`repro.parallel.executor`; because each point is
a pure function of its task description, the serial and process-pool
backends produce identical results point for point, and results always come
back in grid order.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fpformat import FPFormat
from ..core.report import format_table
from ..core.runtime import RaptorRuntime
from ..io.checkpoint import Checkpoint
from ..io.sfocu import compare
from ..parallel.executor import run_tasks
from ..workloads.registry import create_workload
from .spec import PolicySpec, SweepPoint, SweepSpec, format_label

__all__ = ["PointResult", "ReferenceResult", "SweepResult", "run_sweep"]


# ---------------------------------------------------------------------------
# task payloads (picklable; shipped to worker processes)
# ---------------------------------------------------------------------------
@dataclass
class _ReferenceTask:
    workload: str
    config_kwargs: Dict[str, object]


@dataclass
class _PointTask:
    point: SweepPoint
    config_kwargs: Dict[str, object]
    variables: Tuple[str, ...]
    rounding: str
    reference_state: Dict[str, np.ndarray]
    reference_time: float
    keep_state: bool


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class ReferenceResult:
    """Full-precision reference run of one workload."""

    workload: str
    info: Dict[str, float]
    runtime_snapshot: dict
    state: Dict[str, np.ndarray]
    time: float

    def checkpoint(self) -> Checkpoint:
        return Checkpoint.from_arrays(self.state, time=self.time)


@dataclass
class PointResult:
    """Error metrics and counter roll-up of one sweep point."""

    index: int
    workload: str
    format_name: str
    fmt: FPFormat
    policy: str
    errors: Dict[str, Dict[str, float]]
    truncated_fraction: float
    ops: Dict[str, int]
    mem: Dict[str, int]
    module_ops: Dict[str, Dict[str, int]]
    info: Dict[str, float]
    runtime_snapshot: dict = field(repr=False)
    state: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    def l1(self, variable: str = "dens") -> float:
        return self.errors[variable]["l1"]

    def linf(self, variable: str = "dens") -> float:
        return self.errors[variable]["linf"]

    @property
    def giga_ops(self) -> Tuple[float, float]:
        """(truncated, full) scalar-operation counts in units of 1e9."""
        return self.ops["truncated"] / 1e9, self.ops["full"] / 1e9

    def metrics_key(self) -> tuple:
        """Everything that must match bit-for-bit across backends."""
        return (
            self.index,
            self.workload,
            self.format_name,
            self.policy,
            tuple(sorted((v, tuple(sorted(norms.items()))) for v, norms in self.errors.items())),
            self.truncated_fraction,
            tuple(sorted(self.ops.items())),
            tuple(sorted(self.mem.items())),
            tuple(
                (module, tuple(sorted(counters.items())))
                for module, counters in sorted(self.module_ops.items())
            ),
            tuple(sorted(self.info.items())),
        )


@dataclass
class SweepResult:
    """All points of a sweep, in grid order, plus per-workload references."""

    spec: SweepSpec
    points: List[PointResult]
    references: Dict[str, ReferenceResult]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def select(
        self,
        workload: Optional[str] = None,
        fmt: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> List[PointResult]:
        """Points matching the given workload name / format label / policy
        description (all optional)."""
        out = []
        for p in self.points:
            if workload is not None and p.workload != workload:
                continue
            if fmt is not None and p.format_name != fmt:
                continue
            if policy is not None and p.policy != policy:
                continue
            out.append(p)
        return out

    def rollup(self) -> RaptorRuntime:
        """Merged op/mem counters over all points (references excluded)."""
        total = RaptorRuntime("sweep-rollup")
        for p in self.points:
            total.merge_snapshot(p.runtime_snapshot)
        return total

    def table(self, variable: str = "dens") -> str:
        """Human-readable summary table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.workload,
                    p.policy,
                    p.format_name,
                    f"{p.l1(variable):.3e}" if variable in p.errors else "n/a",
                    f"{p.truncated_fraction:.1%}",
                    f"{p.giga_ops[0]:.4f}",
                    f"{p.giga_ops[1]:.4f}",
                ]
            )
        return format_table(
            ["workload", "policy", "format", f"L1({variable})", "trunc ops", "Gops trunc", "Gops full"],
            rows,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable summary (states and snapshots omitted)."""
        return {
            "workloads": list(self.spec.workloads),
            "formats": [format_label(f) for f in self.spec.resolved_formats()],
            "policies": [p.describe() for p in self.spec.policies],
            "backend": self.spec.backend,
            "points": [
                {
                    "index": p.index,
                    "workload": p.workload,
                    "format": p.format_name,
                    "policy": p.policy,
                    "errors": p.errors,
                    "truncated_fraction": p.truncated_fraction,
                    "ops": p.ops,
                    "mem": p.mem,
                    "info": p.info,
                }
                for p in self.points
            ],
        }


# ---------------------------------------------------------------------------
# task execution (module-level so tasks pickle under every start method)
# ---------------------------------------------------------------------------
def _execute_reference(task: _ReferenceTask) -> ReferenceResult:
    workload = create_workload(task.workload, **task.config_kwargs)
    run = workload.reference()
    state = {name: np.asarray(run.checkpoint[name]) for name in run.checkpoint.variables()}
    return ReferenceResult(
        workload=task.workload,
        info=dict(run.info),
        runtime_snapshot=run.runtime.snapshot(),
        state=state,
        time=run.checkpoint.time,
    )


def _execute_point(task: _PointTask) -> PointResult:
    point = task.point
    workload = create_workload(point.workload, **task.config_kwargs)
    runtime = RaptorRuntime(f"{point.workload}-{point.format_name}-{point.policy.describe()}")
    policy = point.policy.build(point.fmt, runtime, rounding=task.rounding)
    run = workload.run(policy=policy, runtime=runtime)

    reference = Checkpoint.from_arrays(task.reference_state, time=task.reference_time)
    report = compare(run.checkpoint, reference, list(task.variables))
    errors = {
        name: {
            "l1": report[name].l1,
            "l2": report[name].l2,
            "linf": report[name].linf,
        }
        for name in task.variables
    }

    # the snapshot is the single source of the counters; PointResult's
    # ops/mem/module_ops fields alias into it so they cannot desynchronize
    snapshot = runtime.snapshot()
    return PointResult(
        index=point.index,
        workload=point.workload,
        format_name=point.format_name,
        fmt=point.fmt,
        policy=point.policy.describe(),
        errors=errors,
        truncated_fraction=runtime.ops.truncated_fraction,
        ops=snapshot["ops"],
        mem=snapshot["mem"],
        module_ops=snapshot["modules"],
        info=dict(run.info),
        runtime_snapshot=snapshot,
        state=(
            {name: np.asarray(run.checkpoint[name]) for name in run.checkpoint.variables()}
            if task.keep_state
            else None
        ),
    )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute a precision sweep described by ``spec``.

    Phase 1 runs the full-precision reference of every workload; phase 2
    fans the sweep points out over the chosen backend, comparing each
    truncated run against its workload's reference.  Results come back in
    the deterministic grid order of :meth:`SweepSpec.points`.
    """
    spec.validate()
    points = spec.points()

    reference_tasks = [
        _ReferenceTask(workload=name, config_kwargs=spec.config_kwargs(name))
        for name in spec.workloads
    ]
    references = {
        ref.workload: ref
        for ref in run_tasks(
            _execute_reference, reference_tasks, backend=spec.backend, max_workers=spec.max_workers
        )
    }

    # every task carries its workload's reference arrays; at the checkpoint
    # sizes these experiments use (tens to hundreds of KB) re-pickling the
    # reference per point is cheaper than coordinating a per-worker cache —
    # revisit if sweeps move to large grids (see ROADMAP: sharding/caching)
    point_tasks = [
        _PointTask(
            point=point,
            config_kwargs=spec.config_kwargs(point.workload),
            variables=spec.variables,
            rounding=spec.rounding,
            reference_state=references[point.workload].state,
            reference_time=references[point.workload].time,
            keep_state=spec.keep_states,
        )
        for point in points
    ]
    results = run_tasks(
        _execute_point, point_tasks, backend=spec.backend, max_workers=spec.max_workers
    )
    return SweepResult(spec=spec, points=list(results), references=references)
