"""The precision-sweep engine: ``SweepSpec`` → ``SweepResult``.

The engine expands a :class:`~repro.experiments.spec.SweepSpec` into a grid
of sweep points (workload × policy × format), runs one full-precision
reference per workload, executes every point against that reference, and
rolls the per-point operation / memory counters up into a single profile.

Execution goes through :mod:`repro.parallel.executor`; because each point is
a pure function of its task description, the serial and process-pool
backends produce identical results point for point, and results always come
back in grid order.

Two scale features sit on top of that core loop:

* **Reference caching** — ``run_sweep(spec, cache=...)`` (or
  ``spec.cache_dir``) consults :mod:`repro.experiments.cache` before
  launching reference tasks; a warm cache launches zero of them.
* **Sharding** — ``spec.shard(i, n)`` runs a deterministic slice of the
  grid, and :meth:`SweepResult.merge` reassembles shard outputs (points,
  references, and counter roll-ups) bit-identically to the unsharded run.
"""
from __future__ import annotations

import hashlib
import inspect
import pickle
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.fpformat import FPFormat
from ..core.report import format_table
from ..core.runtime import RaptorRuntime
from ..io.sfocu import compare
from ..kernels import reference_plane
from ..parallel.executor import TaskFault, run_tasks
from ..testing.faults import maybe_inject
from ..workloads.base import CompressibleWorkload
from ..workloads.registry import create_workload
from ..workloads.scenario import Outcome
from .cache import ReferenceCache, reference_key
from .journal import SweepJournal, atomic_pickle
from .spec import PolicySpec, SweepPoint, SweepSpec, format_label

__all__ = [
    "NonFiniteStateError",
    "PointFailure",
    "PointResult",
    "ReferenceResult",
    "SweepResult",
    "checkpoint_signature",
    "run_reference",
    "run_sweep",
    "gather_references",
]

#: every scenario returns the unified :class:`~repro.workloads.scenario.Outcome`;
#: a detached outcome *is* the reference record the cache and the result carry
ReferenceResult = Outcome


# ---------------------------------------------------------------------------
# task payloads (picklable; shipped to worker processes)
# ---------------------------------------------------------------------------
@dataclass
class _ReferenceTask:
    workload: str
    config_kwargs: Dict[str, object]
    plane: str = "auto"
    on_error: str = "raise"


@dataclass
class _PointTask:
    point: SweepPoint
    config_kwargs: Dict[str, object]
    variables: Tuple[str, ...]
    rounding: str
    reference_state: Dict[str, np.ndarray]
    reference_time: float
    keep_state: bool
    plane: str = "auto"
    count_ops: bool = True
    on_error: str = "raise"


# ---------------------------------------------------------------------------
# failures
# ---------------------------------------------------------------------------
class NonFiniteStateError(RuntimeError):
    """A truncated run produced NaN/Inf in its final state (blow-up).

    Only raised under ``on_error="collect"`` — the default raise mode keeps
    today's behaviour of letting non-finite values flow into the error
    norms, so default-path results stay bit-for-bit unchanged.
    """


def nonfinite_variables(state: Mapping[str, np.ndarray]) -> List[str]:
    """Names of state variables containing NaN/Inf, in state order."""
    return [
        name
        for name, values in state.items()
        if not np.isfinite(np.asarray(values)).all()
    ]


@dataclass
class PointFailure:
    """Structured, picklable record of one failed unit of sweep work.

    ``kind`` taxonomy:

    * ``"exception"``    — the point raised (solver error, bad config, …);
    * ``"blowup"``       — the run finished but its state is non-finite;
    * ``"timeout"``      — the point exceeded ``point_timeout`` and its
      hung worker was killed;
    * ``"worker-crash"`` — the worker process died (SIGKILL/OOM) and kept
      dying on retry;
    * ``"reference"``    — the point never ran because its workload's
      reference failed (the reference's own failure is recorded with
      ``index=-1``).

    ``index`` is the global sweep-point index (``-1`` for a reference
    failure itself; the adaptive engine stores cell indices).  Equality for
    bitwise result comparison goes through :meth:`failure_key`, which —
    like ``PointResult.metrics_key`` — excludes the machine-dependent
    ``seconds``.
    """

    index: int
    workload: str
    format_name: str
    policy: str
    kind: str
    exc_type: str = ""
    message: str = ""
    traceback: str = ""
    #: wall-clock seconds until the failure surfaced; machine-dependent,
    #: hence excluded from :meth:`failure_key`
    seconds: float = 0.0
    #: fresh-pool retries the task consumed before being declared failed
    retries: int = 0

    def failure_key(self) -> tuple:
        """Everything that must match across backends and resume runs."""
        return (
            self.index,
            self.workload,
            self.format_name,
            self.policy,
            self.kind,
            self.exc_type,
            self.message,
        )

    def describe(self) -> str:
        what = f"{self.exc_type}: {self.message}" if self.exc_type else self.message
        return (
            f"point {self.index} ({self.workload} @ {self.format_name} / "
            f"{self.policy}) failed [{self.kind}] {what}"
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": self.workload,
            "format": self.format_name,
            "policy": self.policy,
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "seconds": self.seconds,
            "retries": self.retries,
        }


def _exception_failure(
    exc: BaseException,
    *,
    index: int,
    workload: str,
    format_name: str,
    policy: str,
    seconds: float,
) -> PointFailure:
    kind = "blowup" if isinstance(exc, NonFiniteStateError) else "exception"
    return PointFailure(
        index=index,
        workload=workload,
        format_name=format_name,
        policy=policy,
        kind=kind,
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback=traceback.format_exc(),
        seconds=seconds,
    )


def _fault_failure(
    fault: TaskFault, *, index: int, workload: str, format_name: str, policy: str
) -> PointFailure:
    """Translate an executor-level :class:`TaskFault` sentinel (timeout,
    deterministic worker crash) into the engine's failure record."""
    return PointFailure(
        index=index,
        workload=workload,
        format_name=format_name,
        policy=policy,
        kind=fault.kind,
        exc_type="",
        message=fault.message,
        seconds=fault.elapsed,
        retries=fault.retries,
    )


def _reference_failure_for_point(point: SweepPoint, ref_failure: PointFailure) -> PointFailure:
    """The failure recorded for a point whose workload reference failed."""
    return PointFailure(
        index=point.index,
        workload=point.workload,
        format_name=point.format_name,
        policy=point.policy.describe(),
        kind="reference",
        exc_type=ref_failure.exc_type,
        message=f"reference failed [{ref_failure.kind}]: {ref_failure.message}",
    )


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class PointResult:
    """Error metrics and counter roll-up of one sweep point."""

    index: int
    workload: str
    format_name: str
    fmt: FPFormat
    policy: str
    errors: Dict[str, Dict[str, float]]
    #: the workload's own scalar error metric (sfocu L1 for compressible,
    #: detonation-front deviation for cellular, interface deviation for
    #: bubble) — comparable within a workload, not across kinds
    scalar_error: float
    truncated_fraction: float
    ops: Dict[str, int]
    mem: Dict[str, int]
    module_ops: Dict[str, Dict[str, int]]
    info: Dict[str, float]
    runtime_snapshot: dict = field(repr=False)
    #: wall-clock seconds this point took in its worker (run + comparison);
    #: machine-dependent, hence deliberately *not* part of :meth:`metrics_key`
    seconds: float = 0.0
    state: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    def l1(self, variable: str = "dens") -> float:
        return self.errors[variable]["l1"]

    def linf(self, variable: str = "dens") -> float:
        return self.errors[variable]["linf"]

    @property
    def giga_ops(self) -> Tuple[float, float]:
        """(truncated, full) scalar-operation counts in units of 1e9."""
        return self.ops["truncated"] / 1e9, self.ops["full"] / 1e9

    def metrics_key(self) -> tuple:
        """Everything that must match bit-for-bit across backends."""
        return (
            self.index,
            self.workload,
            self.format_name,
            self.policy,
            tuple(sorted((v, tuple(sorted(norms.items()))) for v, norms in self.errors.items())),
            self.scalar_error,
            self.truncated_fraction,
            tuple(sorted(self.ops.items())),
            tuple(sorted(self.mem.items())),
            tuple(
                (module, tuple(sorted(counters.items())))
                for module, counters in sorted(self.module_ops.items())
            ),
            tuple(sorted(self.info.items())),
        )


@dataclass
class SweepResult:
    """All points of a sweep, in grid order, plus per-workload references.

    For a sharded spec the points are that shard's slice of the grid (global
    indices preserved); :meth:`merge` recombines shard results into the
    result of the unsharded sweep.
    """

    spec: SweepSpec
    points: List[PointResult]
    references: Dict[str, ReferenceResult]
    #: reference-cache counters of this run ({"hits": ..., "misses": ...,
    #: "stores": ..., "invalidations": ..., "evictions": ...}); None when
    #: the run was uncached
    cache_stats: Optional[Dict[str, int]] = None
    #: wall-clock seconds of the ``run_sweep`` call that produced this
    #: result.  :meth:`merge` *sums* shard values, so for a merged result
    #: this is the aggregate compute time across shards, not the elapsed
    #: time of any one host.
    elapsed_seconds: float = 0.0
    #: failed points of an ``on_error="collect"`` sweep, in grid order;
    #: always empty in raise mode (the sweep would have raised instead)
    failures: List[PointFailure] = field(default_factory=list)

    def __setstate__(self, state) -> None:
        # results pickled before the fault-tolerance layer carry no
        # failures field; default it so old shard files keep loading
        self.__dict__.update(state)
        self.__dict__.setdefault("failures", [])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def total_point_seconds(self) -> float:
        """Summed per-point worker wall-clock (references excluded)."""
        return float(sum(p.seconds for p in self.points))

    def __iter__(self):
        return iter(self.points)

    def select(
        self,
        workload: Optional[str] = None,
        fmt: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> List[PointResult]:
        """Points matching the given workload name / format label / policy
        description (all optional)."""
        out = []
        for p in self.points:
            if workload is not None and p.workload != workload:
                continue
            if fmt is not None and p.format_name != fmt:
                continue
            if policy is not None and p.policy != policy:
                continue
            out.append(p)
        return out

    def select_failures(
        self,
        workload: Optional[str] = None,
        fmt: Optional[str] = None,
        policy: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[PointFailure]:
        """Failures matching the given workload / format label / policy
        description / failure kind (all optional)."""
        out = []
        for f in self.failures:
            if workload is not None and f.workload != workload:
                continue
            if fmt is not None and f.format_name != fmt:
                continue
            if policy is not None and f.policy != policy:
                continue
            if kind is not None and f.kind != kind:
                continue
            out.append(f)
        return out

    def rollup(self) -> RaptorRuntime:
        """Merged op/mem counters over all points (references excluded)."""
        total = RaptorRuntime("sweep-rollup")
        for p in self.points:
            total.merge_snapshot(p.runtime_snapshot)
        return total

    def table(self, variable: str = "dens") -> str:
        """Human-readable summary table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.workload,
                    p.policy,
                    p.format_name,
                    f"{p.l1(variable):.3e}" if variable in p.errors else "n/a",
                    f"{p.scalar_error:.3e}",
                    f"{p.truncated_fraction:.1%}",
                    f"{p.giga_ops[0]:.4f}",
                    f"{p.giga_ops[1]:.4f}",
                ]
            )
        text = format_table(
            [
                "workload",
                "policy",
                "format",
                f"L1({variable})",
                "scalar err",
                "trunc ops",
                "Gops trunc",
                "Gops full",
            ],
            rows,
        )
        if self.failures:
            failure_rows = [
                [
                    str(f.index),
                    f.workload,
                    f.policy,
                    f.format_name,
                    f.kind,
                    f.exc_type or "-",
                    f.message[:60],
                ]
                for f in self.failures
            ]
            text += "\n\nfailed points:\n" + format_table(
                ["index", "workload", "policy", "format", "kind", "error", "message"],
                failure_rows,
            )
        return text

    def to_dict(self) -> dict:
        """JSON-serialisable summary (states and snapshots omitted)."""
        return {
            "workloads": list(self.spec.workloads),
            "formats": [format_label(f) for f in self.spec.resolved_formats()],
            "policies": [p.describe() for p in self.spec.policies],
            "plane": self.spec.plane,
            "backend": self.spec.backend,
            "shard": [self.spec.shard_index, self.spec.shard_count],
            "cache": self.cache_stats,
            "elapsed_seconds": self.elapsed_seconds,
            "points": [
                {
                    "index": p.index,
                    "workload": p.workload,
                    "format": p.format_name,
                    "policy": p.policy,
                    "errors": p.errors,
                    "scalar_error": p.scalar_error,
                    "truncated_fraction": p.truncated_fraction,
                    "ops": p.ops,
                    "mem": p.mem,
                    "info": p.info,
                    "seconds": p.seconds,
                }
                for p in self.points
            ],
            "failures": [f.to_dict() for f in self.failures],
        }

    # ------------------------------------------------------------------
    # shard persistence + recombination
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Persist the full result (points, references, snapshots) to disk.

        The format is a pickle of the result object — everything in a
        :class:`SweepResult` is picklable by construction because it
        crosses process boundaries during parallel execution.  Only load
        files you produced yourself (pickle executes code on load).

        The write is atomic (tempfile + rename, the reference cache's
        discipline): a crash mid-save leaves either the previous file or
        the new one, never a torn pickle that :meth:`load` chokes on.
        """
        return atomic_pickle(self, path)

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Load a result written by :meth:`save`."""
        with open(Path(path), "rb") as fh:
            result = pickle.load(fh)
        if not isinstance(result, cls):
            raise TypeError(f"{path} does not contain a SweepResult (got {type(result).__name__})")
        return result

    @staticmethod
    def _merge_signature(spec: SweepSpec) -> tuple:
        """What must agree across shards for a merge to be meaningful: the
        full grid, the error protocol, and the per-workload configs.
        Backend and worker count deliberately excluded — metrics are
        backend-independent, so shards may run on heterogeneous hosts."""
        base = spec.unsharded()
        return (
            base.full_grid(),
            base.variables,
            base.rounding,
            # the kernel plane changes which contexts feed the counters, so
            # shards of one sweep must agree on it (states would match, the
            # merged counter roll-up would not)
            base.plane,
            # non-counting points carry zeroed counters, so shards of one
            # sweep must also agree on whether points count at all
            base.count_point_ops,
            tuple((w, sorted(base.config_kwargs(w).items())) for w in base.workloads),
        )

    @classmethod
    def merge(cls, *results: "SweepResult") -> "SweepResult":
        """Recombine shard results into the unsharded sweep result.

        Accepts the shard results in any order (pass them unpacked or as a
        single iterable).  Requires that all shards came from the same base
        spec, that no global point index appears twice, and that the union
        covers the full grid — so the merged result is bit-identical
        (points, per-workload references, and the :meth:`rollup` counters,
        which :meth:`~repro.core.runtime.RaptorRuntime.merge_snapshot`
        accumulates from the per-point snapshots) to a serial unsharded
        run.  Cache statistics are summed across shards.
        """
        if len(results) == 1 and not isinstance(results[0], cls):
            results = tuple(results[0])
        if not results:
            raise ValueError("merge needs at least one SweepResult")
        signature = cls._merge_signature(results[0].spec)
        for other in results[1:]:
            if cls._merge_signature(other.spec) != signature:
                raise ValueError(
                    "cannot merge results from different sweeps (grid, variables, "
                    "rounding or workload configs disagree)"
                )

        merged_points: Dict[int, PointResult] = {}
        merged_failures: Dict[int, PointFailure] = {}
        reference_failures: List[PointFailure] = []
        references: Dict[str, ReferenceResult] = {}
        for result in results:
            for point in result.points:
                if point.index in merged_points or point.index in merged_failures:
                    raise ValueError(
                        f"point index {point.index} appears in more than one shard"
                    )
                merged_points[point.index] = point
            for failure in result.failures:
                if failure.index < 0:
                    # a reference failure is not a grid point; shards of the
                    # same workload may each record one — keep the first
                    if not any(
                        f.failure_key() == failure.failure_key() for f in reference_failures
                    ):
                        reference_failures.append(failure)
                    continue
                if failure.index in merged_points or failure.index in merged_failures:
                    raise ValueError(
                        f"point index {failure.index} appears in more than one shard"
                    )
                merged_failures[failure.index] = failure
            for name, ref in result.references.items():
                references.setdefault(name, ref)

        base = results[0].spec.unsharded()
        expected = [p.index for p in base.full_grid()]
        # a failed point still covers its grid cell — merge must not demand
        # that some other shard recompute it
        missing = sorted(set(expected) - set(merged_points) - set(merged_failures))
        if missing:
            raise ValueError(
                f"merged shards do not cover the full grid; missing point "
                f"indices {missing} — run the remaining shard(s) first"
            )

        stats_list = [r.cache_stats for r in results if r.cache_stats is not None]
        cache_stats = None
        if stats_list:
            cache_stats = {
                key: sum(stats.get(key, 0) for stats in stats_list)
                for key in sorted({key for stats in stats_list for key in stats})
            }
        return cls(
            spec=base,
            points=[merged_points[index] for index in expected if index in merged_points],
            references=references,
            cache_stats=cache_stats,
            elapsed_seconds=float(sum(r.elapsed_seconds for r in results)),
            failures=reference_failures
            + [merged_failures[index] for index in expected if index in merged_failures],
        )


# ---------------------------------------------------------------------------
# task execution (module-level so tasks pickle under every start method)
# ---------------------------------------------------------------------------
def run_reference(workload, plane: str = "auto") -> Outcome:
    """Execute a workload's full-precision reference on the requested
    kernel plane (``"auto"`` resolves to the fused fast plane).  The
    substitution is free for the engine because it never consumes
    reference counters — point metrics come exclusively from the point
    runs, and references are compared by state; a fast-plane reference
    simply freezes zeroed counters into its detached snapshot.

    Duck-typed scenarios whose ``reference()`` predates kernel planes are
    executed unchanged on the instrumented plane.  Only an explicit
    ``plane`` parameter opts in — a bare ``**kwargs`` signature (the old
    protocol default forwarded kwargs straight into ``run``) must not
    receive the keyword.
    """
    resolved = reference_plane(plane)
    try:
        parameters = inspect.signature(workload.reference).parameters
    except (TypeError, ValueError):
        parameters = {}
    if "plane" in parameters:
        return workload.reference(plane=resolved)
    return workload.reference()


def _execute_reference(task: _ReferenceTask):
    if task.on_error != "collect":
        maybe_inject("reference", task.workload)
        return _run_reference_task(task)
    started = time.perf_counter()
    try:
        maybe_inject("reference", task.workload)
        return _run_reference_task(task)
    except Exception as exc:
        return _exception_failure(
            exc,
            index=-1,
            workload=task.workload,
            format_name="-",
            policy="-",
            seconds=time.perf_counter() - started,
        )


def _run_reference_task(task: _ReferenceTask) -> ReferenceResult:
    workload = create_workload(task.workload, **task.config_kwargs)
    outcome = run_reference(workload, plane=task.plane).detach()
    # key the result by the name the spec used (possibly an alias), so the
    # engine's reference lookup matches its points
    outcome.workload = task.workload
    return outcome


def _execute_point(task: _PointTask):
    started = time.perf_counter()
    if task.on_error != "collect":
        maybe_inject("point", task.point.index)
        return _run_point_task(task, started)
    point = task.point
    try:
        maybe_inject("point", point.index)
        return _run_point_task(task, started, check_finite=True)
    except Exception as exc:
        return _exception_failure(
            exc,
            index=point.index,
            workload=point.workload,
            format_name=point.format_name,
            policy=point.policy.describe(),
            seconds=time.perf_counter() - started,
        )


def _run_point_task(task: _PointTask, started: float, check_finite: bool = False) -> PointResult:
    point = task.point
    workload = create_workload(point.workload, **task.config_kwargs)
    runtime = RaptorRuntime(f"{point.workload}-{point.format_name}-{point.policy.describe()}")
    policy = point.policy.build(
        point.fmt, runtime, rounding=task.rounding, plane=task.plane, count_ops=task.count_ops
    )
    run = workload.run(policy=policy, runtime=runtime)
    if check_finite:
        # collect mode reports a blow-up as a structured failure instead of
        # letting NaN/Inf flow into the error norms downstream
        bad = nonfinite_variables(run.state)
        if bad:
            raise NonFiniteStateError(
                f"non-finite values in final state variable(s) {bad} at "
                f"t={run.time:g} — the truncated run blew up"
            )

    reference = Outcome(
        workload=point.workload,
        state=task.reference_state,
        time=task.reference_time,
        kind=getattr(workload, "kind", "compressible"),
    )
    report = compare(run.checkpoint, reference.checkpoint, list(task.variables))
    errors = {
        name: {
            "l1": report[name].l1,
            "l2": report[name].l2,
            "linf": report[name].linf,
        }
        for name in task.variables
    }
    # the compressible scalar error is the L1 of error_variable — already in
    # the report when that variable was requested, so skip the second
    # covering-grid comparison (only when error() is not overridden)
    error_variable = getattr(workload, "error_variable", None)
    if (
        error_variable in errors
        and type(workload).error is CompressibleWorkload.error
    ):
        scalar_error = errors[error_variable]["l1"]
    else:
        scalar_error = float(workload.error(run, reference))

    # the snapshot is the single source of the counters; PointResult's
    # ops/mem/module_ops fields alias into it so they cannot desynchronize
    snapshot = runtime.snapshot()
    return PointResult(
        index=point.index,
        workload=point.workload,
        format_name=point.format_name,
        fmt=point.fmt,
        policy=point.policy.describe(),
        errors=errors,
        scalar_error=scalar_error,
        truncated_fraction=runtime.ops.truncated_fraction,
        ops=snapshot["ops"],
        mem=snapshot["mem"],
        module_ops=snapshot["modules"],
        info=dict(run.info),
        runtime_snapshot=snapshot,
        seconds=time.perf_counter() - started,
        state=(
            {name: np.asarray(run.checkpoint[name]) for name in run.checkpoint.variables()}
            if task.keep_state
            else None
        ),
    )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
def _resolve_cache(
    spec, cache: Union[ReferenceCache, str, None]
) -> Optional[ReferenceCache]:
    """The cache to use for a sweep: an explicit object, a directory given
    by path (argument or ``spec.cache_dir``), or none."""
    if isinstance(cache, ReferenceCache):
        return cache
    directory = cache if cache is not None else spec.cache_dir
    if directory is None:
        return None
    return ReferenceCache(directory)


def checkpoint_signature(spec: SweepSpec) -> str:
    """Identity of a sweep for checkpoint/resume purposes.

    Built on the shard-merge signature (grid, error protocol, plane,
    counting mode, workload configs) plus the fields that change what a
    journaled :class:`PointResult` *contains* (``keep_states``) or which
    points this spec runs (the shard slice).  Backend, worker count,
    timeout and retry settings are deliberately excluded: results are
    backend-independent, so a sweep may be resumed on a different backend
    or with different fault-tolerance settings and still complete
    bit-identically.
    """
    payload = (
        SweepResult._merge_signature(spec),
        spec.keep_states,
        spec.shard_index,
        spec.shard_count,
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def gather_references(
    names: Sequence[str],
    config_kwargs_fn,
    cache: Optional[ReferenceCache] = None,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    plane: str = "auto",
    on_error: str = "raise",
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> Dict[str, Union[ReferenceResult, PointFailure]]:
    """Phase 1 of every experiment: one full-precision reference per
    workload, served from ``cache`` when possible and computed on the
    execution backend otherwise — by default on the fused fast plane
    (``plane="auto"``; see :func:`run_reference`), which is bit-identical
    and several times faster than the counting reference path.  Shared by
    :func:`run_sweep` and the adaptive cliff search
    (:mod:`repro.experiments.adaptive`).

    With ``on_error="collect"`` a failing reference maps its workload name
    to a :class:`PointFailure` (``index=-1``) instead of raising; failed
    references are never cached."""
    references: Dict[str, Union[ReferenceResult, PointFailure]] = {}
    if cache is not None:
        keys = {name: reference_key(name, config_kwargs_fn(name)) for name in names}
        missing = []
        for name in names:
            cached = cache.get(keys[name])
            if cached is not None:
                references[name] = cached
            else:
                missing.append(name)
    else:
        keys = {}
        missing = list(names)

    reference_tasks = [
        _ReferenceTask(
            workload=name, config_kwargs=config_kwargs_fn(name), plane=plane, on_error=on_error
        )
        for name in missing
    ]
    outcomes = run_tasks(
        _execute_reference,
        reference_tasks,
        backend=backend,
        max_workers=max_workers,
        timeout=timeout,
        retries=retries,
        collect=(on_error == "collect"),
    )
    for task, ref in zip(reference_tasks, outcomes):
        if isinstance(ref, TaskFault):
            ref = _fault_failure(
                ref, index=-1, workload=task.workload, format_name="-", policy="-"
            )
        if isinstance(ref, PointFailure):
            references[task.workload] = ref
            continue
        references[ref.workload] = ref
        if cache is not None:
            cache.put(keys[ref.workload], ref)
    return references


def run_sweep(
    spec: SweepSpec,
    cache: Union[ReferenceCache, str, None] = None,
    checkpoint: Union[str, Path, None] = None,
) -> SweepResult:
    """Execute a precision sweep described by ``spec``.

    Phase 1 obtains the full-precision reference of every workload — from
    ``cache`` when one is given (a :class:`~repro.experiments.cache.ReferenceCache`
    or a directory path; ``spec.cache_dir`` is the declarative spelling) and
    by running reference tasks otherwise; with a warm cache zero reference
    tasks launch.  Phase 2 fans the sweep points out over the chosen
    backend, comparing each truncated run against its workload's reference.
    Results come back in the deterministic grid order of
    :meth:`SweepSpec.points` (the shard's slice when the spec is sharded).

    ``checkpoint`` names a journal directory making the sweep crash-safe:
    every completed point (and failure, in collect mode) is persisted with
    atomic write-then-rename as soon as it resolves.  Rerunning with the
    same spec and checkpoint loads the journal, runs only the missing
    points, and returns a result bitwise identical to an uninterrupted run
    (the same guarantee class as shard/merge).  A journal written by a
    different spec (grid, plane, configs, …) is rejected with
    :class:`~repro.experiments.journal.CheckpointMismatchError`.

    Fault tolerance is configured on the spec: ``on_error="collect"``
    isolates per-point failures into :attr:`SweepResult.failures`;
    ``point_timeout`` bounds each point on the process backend;
    ``retries`` bounds fresh-pool rebuilds for transient worker crashes.
    """
    spec.validate()
    started = time.perf_counter()
    points = spec.points()
    collect = spec.on_error == "collect"

    journal: Optional[SweepJournal] = None
    done: Dict[int, Union[PointResult, PointFailure]] = {}
    journal_refs: Dict[str, ReferenceResult] = {}
    if checkpoint is not None:
        journal = SweepJournal(checkpoint)
        journal.open(checkpoint_signature(spec), total_points=len(points))
        done = journal.load_points()
        journal_refs = journal.load_references()

    ref_cache = _resolve_cache(spec, cache)
    # cache stats reported on the result are *this run's* delta, so a cache
    # object shared across sweeps still yields per-run hit/miss numbers
    stats_before = ref_cache.stats.to_dict() if ref_cache is not None else None

    # a sharded spec may not touch every workload of the base spec; only
    # the workloads actually present in this slice need references.  On
    # resume, journaled references take priority — the very arrays the
    # journaled points were compared against — so a resumed run never
    # recomputes (or re-fetches) what the interrupted run already fixed.
    needed = list(dict.fromkeys(point.workload for point in points))
    references: Dict[str, ReferenceResult] = {
        name: ref for name, ref in journal_refs.items() if name in needed
    }
    gathered = gather_references(
        [name for name in needed if name not in references],
        spec.config_kwargs,
        cache=ref_cache,
        backend=spec.backend,
        max_workers=spec.max_workers,
        plane=spec.plane,
        on_error=spec.on_error,
        timeout=spec.point_timeout,
        retries=spec.retries,
    )
    ref_failures: Dict[str, PointFailure] = {}
    for name, ref in gathered.items():
        if isinstance(ref, PointFailure):
            ref_failures[name] = ref
        else:
            references[name] = ref
            if journal is not None:
                journal.record_reference(name, ref)

    failures: Dict[int, PointFailure] = {
        index: obj for index, obj in done.items() if isinstance(obj, PointFailure)
    }
    completed: Dict[int, PointResult] = {
        index: obj for index, obj in done.items() if isinstance(obj, PointResult)
    }
    todo = []
    for point in points:
        if point.index in done:
            continue
        if point.workload in ref_failures:
            failure = _reference_failure_for_point(point, ref_failures[point.workload])
            failures[point.index] = failure
            if journal is not None:
                journal.record_point(point.index, failure)
        else:
            todo.append(point)

    # every task carries its workload's reference arrays; at the checkpoint
    # sizes these experiments use (tens to hundreds of KB) re-pickling the
    # reference per point is cheaper than coordinating a per-worker cache —
    # revisit if sweeps move to large grids (see ROADMAP: sharding/caching)
    point_tasks = [
        _PointTask(
            point=point,
            config_kwargs=spec.config_kwargs(point.workload),
            variables=spec.variables_for(point.workload),
            rounding=spec.rounding,
            reference_state=references[point.workload].state,
            reference_time=references[point.workload].time,
            keep_state=spec.keep_states,
            plane=spec.plane,
            count_ops=spec.count_point_ops,
            on_error=spec.on_error,
        )
        for point in todo
    ]

    def _coerce(point: SweepPoint, value):
        if isinstance(value, TaskFault):
            return _fault_failure(
                value,
                index=point.index,
                workload=point.workload,
                format_name=point.format_name,
                policy=point.policy.describe(),
            )
        return value

    def on_result(pos: int, value) -> None:
        # fires as each point resolves, before map() returns — the journal
        # entry is on disk even if this process dies mid-sweep
        if journal is not None:
            journal.record_point(todo[pos].index, _coerce(todo[pos], value))

    results = run_tasks(
        _execute_point,
        point_tasks,
        backend=spec.backend,
        max_workers=spec.max_workers,
        timeout=spec.point_timeout,
        retries=spec.retries,
        collect=collect,
        on_result=on_result if journal is not None else None,
    )
    for pos, value in enumerate(results):
        value = _coerce(todo[pos], value)
        if isinstance(value, PointFailure):
            failures[todo[pos].index] = value
        else:
            completed[todo[pos].index] = value

    cache_stats = None
    if ref_cache is not None:
        after = ref_cache.stats.to_dict()
        cache_stats = {key: after[key] - stats_before[key] for key in after}
    return SweepResult(
        spec=spec,
        points=[completed[p.index] for p in points if p.index in completed],
        references=references,
        cache_stats=cache_stats,
        elapsed_seconds=time.perf_counter() - started,
        failures=[f for f in ref_failures.values()]
        + [failures[p.index] for p in points if p.index in failures],
    )
