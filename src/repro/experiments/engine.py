"""The precision-sweep engine: ``SweepSpec`` → ``SweepResult``.

The engine expands a :class:`~repro.experiments.spec.SweepSpec` into a grid
of sweep points (workload × policy × format), runs one full-precision
reference per workload, executes every point against that reference, and
rolls the per-point operation / memory counters up into a single profile.

Execution goes through :mod:`repro.parallel.executor`; because each point is
a pure function of its task description, the serial and process-pool
backends produce identical results point for point, and results always come
back in grid order.

Two scale features sit on top of that core loop:

* **Reference caching** — ``run_sweep(spec, cache=...)`` (or
  ``spec.cache_dir``) consults :mod:`repro.experiments.cache` before
  launching reference tasks; a warm cache launches zero of them.
* **Sharding** — ``spec.shard(i, n)`` runs a deterministic slice of the
  grid, and :meth:`SweepResult.merge` reassembles shard outputs (points,
  references, and counter roll-ups) bit-identically to the unsharded run.
"""
from __future__ import annotations

import inspect
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.fpformat import FPFormat
from ..core.report import format_table
from ..core.runtime import RaptorRuntime
from ..io.sfocu import compare
from ..kernels import reference_plane
from ..parallel.executor import run_tasks
from ..workloads.base import CompressibleWorkload
from ..workloads.registry import create_workload
from ..workloads.scenario import Outcome
from .cache import ReferenceCache, reference_key
from .spec import PolicySpec, SweepPoint, SweepSpec, format_label

__all__ = [
    "PointResult",
    "ReferenceResult",
    "SweepResult",
    "run_reference",
    "run_sweep",
    "gather_references",
]

#: every scenario returns the unified :class:`~repro.workloads.scenario.Outcome`;
#: a detached outcome *is* the reference record the cache and the result carry
ReferenceResult = Outcome


# ---------------------------------------------------------------------------
# task payloads (picklable; shipped to worker processes)
# ---------------------------------------------------------------------------
@dataclass
class _ReferenceTask:
    workload: str
    config_kwargs: Dict[str, object]
    plane: str = "auto"


@dataclass
class _PointTask:
    point: SweepPoint
    config_kwargs: Dict[str, object]
    variables: Tuple[str, ...]
    rounding: str
    reference_state: Dict[str, np.ndarray]
    reference_time: float
    keep_state: bool
    plane: str = "auto"
    count_ops: bool = True


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class PointResult:
    """Error metrics and counter roll-up of one sweep point."""

    index: int
    workload: str
    format_name: str
    fmt: FPFormat
    policy: str
    errors: Dict[str, Dict[str, float]]
    #: the workload's own scalar error metric (sfocu L1 for compressible,
    #: detonation-front deviation for cellular, interface deviation for
    #: bubble) — comparable within a workload, not across kinds
    scalar_error: float
    truncated_fraction: float
    ops: Dict[str, int]
    mem: Dict[str, int]
    module_ops: Dict[str, Dict[str, int]]
    info: Dict[str, float]
    runtime_snapshot: dict = field(repr=False)
    #: wall-clock seconds this point took in its worker (run + comparison);
    #: machine-dependent, hence deliberately *not* part of :meth:`metrics_key`
    seconds: float = 0.0
    state: Optional[Dict[str, np.ndarray]] = field(default=None, repr=False)

    def l1(self, variable: str = "dens") -> float:
        return self.errors[variable]["l1"]

    def linf(self, variable: str = "dens") -> float:
        return self.errors[variable]["linf"]

    @property
    def giga_ops(self) -> Tuple[float, float]:
        """(truncated, full) scalar-operation counts in units of 1e9."""
        return self.ops["truncated"] / 1e9, self.ops["full"] / 1e9

    def metrics_key(self) -> tuple:
        """Everything that must match bit-for-bit across backends."""
        return (
            self.index,
            self.workload,
            self.format_name,
            self.policy,
            tuple(sorted((v, tuple(sorted(norms.items()))) for v, norms in self.errors.items())),
            self.scalar_error,
            self.truncated_fraction,
            tuple(sorted(self.ops.items())),
            tuple(sorted(self.mem.items())),
            tuple(
                (module, tuple(sorted(counters.items())))
                for module, counters in sorted(self.module_ops.items())
            ),
            tuple(sorted(self.info.items())),
        )


@dataclass
class SweepResult:
    """All points of a sweep, in grid order, plus per-workload references.

    For a sharded spec the points are that shard's slice of the grid (global
    indices preserved); :meth:`merge` recombines shard results into the
    result of the unsharded sweep.
    """

    spec: SweepSpec
    points: List[PointResult]
    references: Dict[str, ReferenceResult]
    #: reference-cache counters of this run ({"hits": ..., "misses": ...,
    #: "stores": ..., "invalidations": ..., "evictions": ...}); None when
    #: the run was uncached
    cache_stats: Optional[Dict[str, int]] = None
    #: wall-clock seconds of the ``run_sweep`` call that produced this
    #: result.  :meth:`merge` *sums* shard values, so for a merged result
    #: this is the aggregate compute time across shards, not the elapsed
    #: time of any one host.
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def total_point_seconds(self) -> float:
        """Summed per-point worker wall-clock (references excluded)."""
        return float(sum(p.seconds for p in self.points))

    def __iter__(self):
        return iter(self.points)

    def select(
        self,
        workload: Optional[str] = None,
        fmt: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> List[PointResult]:
        """Points matching the given workload name / format label / policy
        description (all optional)."""
        out = []
        for p in self.points:
            if workload is not None and p.workload != workload:
                continue
            if fmt is not None and p.format_name != fmt:
                continue
            if policy is not None and p.policy != policy:
                continue
            out.append(p)
        return out

    def rollup(self) -> RaptorRuntime:
        """Merged op/mem counters over all points (references excluded)."""
        total = RaptorRuntime("sweep-rollup")
        for p in self.points:
            total.merge_snapshot(p.runtime_snapshot)
        return total

    def table(self, variable: str = "dens") -> str:
        """Human-readable summary table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.workload,
                    p.policy,
                    p.format_name,
                    f"{p.l1(variable):.3e}" if variable in p.errors else "n/a",
                    f"{p.scalar_error:.3e}",
                    f"{p.truncated_fraction:.1%}",
                    f"{p.giga_ops[0]:.4f}",
                    f"{p.giga_ops[1]:.4f}",
                ]
            )
        return format_table(
            [
                "workload",
                "policy",
                "format",
                f"L1({variable})",
                "scalar err",
                "trunc ops",
                "Gops trunc",
                "Gops full",
            ],
            rows,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable summary (states and snapshots omitted)."""
        return {
            "workloads": list(self.spec.workloads),
            "formats": [format_label(f) for f in self.spec.resolved_formats()],
            "policies": [p.describe() for p in self.spec.policies],
            "plane": self.spec.plane,
            "backend": self.spec.backend,
            "shard": [self.spec.shard_index, self.spec.shard_count],
            "cache": self.cache_stats,
            "elapsed_seconds": self.elapsed_seconds,
            "points": [
                {
                    "index": p.index,
                    "workload": p.workload,
                    "format": p.format_name,
                    "policy": p.policy,
                    "errors": p.errors,
                    "scalar_error": p.scalar_error,
                    "truncated_fraction": p.truncated_fraction,
                    "ops": p.ops,
                    "mem": p.mem,
                    "info": p.info,
                    "seconds": p.seconds,
                }
                for p in self.points
            ],
        }

    # ------------------------------------------------------------------
    # shard persistence + recombination
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Persist the full result (points, references, snapshots) to disk.

        The format is a pickle of the result object — everything in a
        :class:`SweepResult` is picklable by construction because it
        crosses process boundaries during parallel execution.  Only load
        files you produced yourself (pickle executes code on load).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Load a result written by :meth:`save`."""
        with open(Path(path), "rb") as fh:
            result = pickle.load(fh)
        if not isinstance(result, cls):
            raise TypeError(f"{path} does not contain a SweepResult (got {type(result).__name__})")
        return result

    @staticmethod
    def _merge_signature(spec: SweepSpec) -> tuple:
        """What must agree across shards for a merge to be meaningful: the
        full grid, the error protocol, and the per-workload configs.
        Backend and worker count deliberately excluded — metrics are
        backend-independent, so shards may run on heterogeneous hosts."""
        base = spec.unsharded()
        return (
            base.full_grid(),
            base.variables,
            base.rounding,
            # the kernel plane changes which contexts feed the counters, so
            # shards of one sweep must agree on it (states would match, the
            # merged counter roll-up would not)
            base.plane,
            # non-counting points carry zeroed counters, so shards of one
            # sweep must also agree on whether points count at all
            base.count_point_ops,
            tuple((w, sorted(base.config_kwargs(w).items())) for w in base.workloads),
        )

    @classmethod
    def merge(cls, *results: "SweepResult") -> "SweepResult":
        """Recombine shard results into the unsharded sweep result.

        Accepts the shard results in any order (pass them unpacked or as a
        single iterable).  Requires that all shards came from the same base
        spec, that no global point index appears twice, and that the union
        covers the full grid — so the merged result is bit-identical
        (points, per-workload references, and the :meth:`rollup` counters,
        which :meth:`~repro.core.runtime.RaptorRuntime.merge_snapshot`
        accumulates from the per-point snapshots) to a serial unsharded
        run.  Cache statistics are summed across shards.
        """
        if len(results) == 1 and not isinstance(results[0], cls):
            results = tuple(results[0])
        if not results:
            raise ValueError("merge needs at least one SweepResult")
        signature = cls._merge_signature(results[0].spec)
        for other in results[1:]:
            if cls._merge_signature(other.spec) != signature:
                raise ValueError(
                    "cannot merge results from different sweeps (grid, variables, "
                    "rounding or workload configs disagree)"
                )

        merged_points: Dict[int, PointResult] = {}
        references: Dict[str, ReferenceResult] = {}
        for result in results:
            for point in result.points:
                if point.index in merged_points:
                    raise ValueError(
                        f"point index {point.index} appears in more than one shard"
                    )
                merged_points[point.index] = point
            for name, ref in result.references.items():
                references.setdefault(name, ref)

        base = results[0].spec.unsharded()
        expected = [p.index for p in base.full_grid()]
        missing = sorted(set(expected) - set(merged_points))
        if missing:
            raise ValueError(
                f"merged shards do not cover the full grid; missing point "
                f"indices {missing} — run the remaining shard(s) first"
            )

        stats_list = [r.cache_stats for r in results if r.cache_stats is not None]
        cache_stats = None
        if stats_list:
            cache_stats = {
                key: sum(stats.get(key, 0) for stats in stats_list)
                for key in sorted({key for stats in stats_list for key in stats})
            }
        return cls(
            spec=base,
            points=[merged_points[index] for index in expected],
            references=references,
            cache_stats=cache_stats,
            elapsed_seconds=float(sum(r.elapsed_seconds for r in results)),
        )


# ---------------------------------------------------------------------------
# task execution (module-level so tasks pickle under every start method)
# ---------------------------------------------------------------------------
def run_reference(workload, plane: str = "auto") -> Outcome:
    """Execute a workload's full-precision reference on the requested
    kernel plane (``"auto"`` resolves to the fused fast plane).  The
    substitution is free for the engine because it never consumes
    reference counters — point metrics come exclusively from the point
    runs, and references are compared by state; a fast-plane reference
    simply freezes zeroed counters into its detached snapshot.

    Duck-typed scenarios whose ``reference()`` predates kernel planes are
    executed unchanged on the instrumented plane.  Only an explicit
    ``plane`` parameter opts in — a bare ``**kwargs`` signature (the old
    protocol default forwarded kwargs straight into ``run``) must not
    receive the keyword.
    """
    resolved = reference_plane(plane)
    try:
        parameters = inspect.signature(workload.reference).parameters
    except (TypeError, ValueError):
        parameters = {}
    if "plane" in parameters:
        return workload.reference(plane=resolved)
    return workload.reference()


def _execute_reference(task: _ReferenceTask) -> ReferenceResult:
    workload = create_workload(task.workload, **task.config_kwargs)
    outcome = run_reference(workload, plane=task.plane).detach()
    # key the result by the name the spec used (possibly an alias), so the
    # engine's reference lookup matches its points
    outcome.workload = task.workload
    return outcome


def _execute_point(task: _PointTask) -> PointResult:
    started = time.perf_counter()
    point = task.point
    workload = create_workload(point.workload, **task.config_kwargs)
    runtime = RaptorRuntime(f"{point.workload}-{point.format_name}-{point.policy.describe()}")
    policy = point.policy.build(
        point.fmt, runtime, rounding=task.rounding, plane=task.plane, count_ops=task.count_ops
    )
    run = workload.run(policy=policy, runtime=runtime)

    reference = Outcome(
        workload=point.workload,
        state=task.reference_state,
        time=task.reference_time,
        kind=getattr(workload, "kind", "compressible"),
    )
    report = compare(run.checkpoint, reference.checkpoint, list(task.variables))
    errors = {
        name: {
            "l1": report[name].l1,
            "l2": report[name].l2,
            "linf": report[name].linf,
        }
        for name in task.variables
    }
    # the compressible scalar error is the L1 of error_variable — already in
    # the report when that variable was requested, so skip the second
    # covering-grid comparison (only when error() is not overridden)
    error_variable = getattr(workload, "error_variable", None)
    if (
        error_variable in errors
        and type(workload).error is CompressibleWorkload.error
    ):
        scalar_error = errors[error_variable]["l1"]
    else:
        scalar_error = float(workload.error(run, reference))

    # the snapshot is the single source of the counters; PointResult's
    # ops/mem/module_ops fields alias into it so they cannot desynchronize
    snapshot = runtime.snapshot()
    return PointResult(
        index=point.index,
        workload=point.workload,
        format_name=point.format_name,
        fmt=point.fmt,
        policy=point.policy.describe(),
        errors=errors,
        scalar_error=scalar_error,
        truncated_fraction=runtime.ops.truncated_fraction,
        ops=snapshot["ops"],
        mem=snapshot["mem"],
        module_ops=snapshot["modules"],
        info=dict(run.info),
        runtime_snapshot=snapshot,
        seconds=time.perf_counter() - started,
        state=(
            {name: np.asarray(run.checkpoint[name]) for name in run.checkpoint.variables()}
            if task.keep_state
            else None
        ),
    )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
def _resolve_cache(
    spec, cache: Union[ReferenceCache, str, None]
) -> Optional[ReferenceCache]:
    """The cache to use for a sweep: an explicit object, a directory given
    by path (argument or ``spec.cache_dir``), or none."""
    if isinstance(cache, ReferenceCache):
        return cache
    directory = cache if cache is not None else spec.cache_dir
    if directory is None:
        return None
    return ReferenceCache(directory)


def gather_references(
    names: Sequence[str],
    config_kwargs_fn,
    cache: Optional[ReferenceCache] = None,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    plane: str = "auto",
) -> Dict[str, ReferenceResult]:
    """Phase 1 of every experiment: one full-precision reference per
    workload, served from ``cache`` when possible and computed on the
    execution backend otherwise — by default on the fused fast plane
    (``plane="auto"``; see :func:`run_reference`), which is bit-identical
    and several times faster than the counting reference path.  Shared by
    :func:`run_sweep` and the adaptive cliff search
    (:mod:`repro.experiments.adaptive`)."""
    references: Dict[str, ReferenceResult] = {}
    if cache is not None:
        keys = {name: reference_key(name, config_kwargs_fn(name)) for name in names}
        missing = []
        for name in names:
            cached = cache.get(keys[name])
            if cached is not None:
                references[name] = cached
            else:
                missing.append(name)
    else:
        keys = {}
        missing = list(names)

    reference_tasks = [
        _ReferenceTask(workload=name, config_kwargs=config_kwargs_fn(name), plane=plane)
        for name in missing
    ]
    for ref in run_tasks(
        _execute_reference, reference_tasks, backend=backend, max_workers=max_workers
    ):
        references[ref.workload] = ref
        if cache is not None:
            cache.put(keys[ref.workload], ref)
    return references


def run_sweep(
    spec: SweepSpec, cache: Union[ReferenceCache, str, None] = None
) -> SweepResult:
    """Execute a precision sweep described by ``spec``.

    Phase 1 obtains the full-precision reference of every workload — from
    ``cache`` when one is given (a :class:`~repro.experiments.cache.ReferenceCache`
    or a directory path; ``spec.cache_dir`` is the declarative spelling) and
    by running reference tasks otherwise; with a warm cache zero reference
    tasks launch.  Phase 2 fans the sweep points out over the chosen
    backend, comparing each truncated run against its workload's reference.
    Results come back in the deterministic grid order of
    :meth:`SweepSpec.points` (the shard's slice when the spec is sharded).
    """
    spec.validate()
    started = time.perf_counter()
    points = spec.points()
    ref_cache = _resolve_cache(spec, cache)
    # cache stats reported on the result are *this run's* delta, so a cache
    # object shared across sweeps still yields per-run hit/miss numbers
    stats_before = ref_cache.stats.to_dict() if ref_cache is not None else None

    # a sharded spec may not touch every workload of the base spec; only
    # the workloads actually present in this slice need references
    needed = list(dict.fromkeys(point.workload for point in points))
    references = gather_references(
        needed,
        spec.config_kwargs,
        cache=ref_cache,
        backend=spec.backend,
        max_workers=spec.max_workers,
        plane=spec.plane,
    )

    # every task carries its workload's reference arrays; at the checkpoint
    # sizes these experiments use (tens to hundreds of KB) re-pickling the
    # reference per point is cheaper than coordinating a per-worker cache —
    # revisit if sweeps move to large grids (see ROADMAP: sharding/caching)
    point_tasks = [
        _PointTask(
            point=point,
            config_kwargs=spec.config_kwargs(point.workload),
            variables=spec.variables_for(point.workload),
            rounding=spec.rounding,
            reference_state=references[point.workload].state,
            reference_time=references[point.workload].time,
            keep_state=spec.keep_states,
            plane=spec.plane,
            count_ops=spec.count_point_ops,
        )
        for point in points
    ]
    results = run_tasks(
        _execute_point, point_tasks, backend=spec.backend, max_workers=spec.max_workers
    )
    cache_stats = None
    if ref_cache is not None:
        after = ref_cache.stats.to_dict()
        cache_stats = {key: after[key] - stats_before[key] for key in after}
    return SweepResult(
        spec=spec,
        points=list(results),
        references=references,
        cache_stats=cache_stats,
        elapsed_seconds=time.perf_counter() - started,
    )
