"""Adaptive precision-cliff search: O(log n) bisection of the mantissa axis.

A fixed-grid sweep answers "how does the error grow as mantissa bits
shrink" with one run per grid point.  Most experimental questions only need
the *cliff* — the smallest mantissa width at which a workload still passes
its failure predicate (an error threshold, or a physics invariant such as
cellular's "the detonation still propagates and the EOS still converges").
Because pass/fail is monotone in the mantissa width for these workloads,
the cliff can be located by bisection with at most ``ceil(log2(n)) + 1``
runs over an ``n``-point grid instead of ``n`` runs.

Two entry points:

* :func:`find_cliff` — bisect one (workload, policy) pair.  Accepts a
  registry name or a workload instance; reuses the
  :class:`~repro.experiments.cache.ReferenceCache` for the full-precision
  reference.
* :func:`run_adaptive_sweep` — drive :func:`find_cliff` across a
  workload × policy grid (:class:`AdaptiveSpec`), fanning the independent
  cells out over :mod:`repro.parallel.executor` with the same
  deterministic-ordering, sharding (:meth:`AdaptiveSpec.shard` /
  :meth:`AdaptiveResult.merge`) and reference-cache guarantees as
  :func:`~repro.experiments.engine.run_sweep`.

Everything a bisection evaluates is a pure function of (workload config,
policy, mantissa bits), so serial and process backends — and any shard
partition — produce bitwise-identical cliff results.
"""
from __future__ import annotations

import math
import pickle
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.fpformat import FPFormat
from ..core.quantize import RoundingMode
from ..core.report import format_table
from ..core.runtime import RaptorRuntime
from ..parallel.executor import TaskFault, run_tasks
from ..testing.faults import maybe_inject
from ..workloads.registry import (
    UnknownWorkloadError,
    canonical_name,
    create_workload,
    get_workload_class,
)
from ..workloads.scenario import Outcome, scenario_protocol_errors
from .cache import ReferenceCache, reference_key
from .engine import (
    NonFiniteStateError,
    PointFailure,
    ReferenceResult,
    _exception_failure,
    _fault_failure,
    _resolve_cache,
    gather_references,
    nonfinite_variables,
    run_reference,
)
from .journal import atomic_pickle
from .spec import (
    PolicySpec,
    config_kwargs_for,
    validate_alias_keyed_mapping,
    validate_config_overrides,
    validate_fault_tolerance,
    validate_workload_list,
)

__all__ = [
    "AdaptiveCell",
    "AdaptiveSpec",
    "AdaptiveResult",
    "CliffEvaluation",
    "CliffResult",
    "default_policy_for",
    "find_cliff",
    "run_adaptive_sweep",
]


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class CliffEvaluation:
    """One bisection probe: a full workload run at one mantissa width.

    Under ``on_error="collect"`` a probe that raises (or blows up to
    non-finite state) becomes a *failed* evaluation — ``passed=False``,
    ``error=inf`` — carrying the structured
    :class:`~repro.experiments.engine.PointFailure` in ``failure``, so the
    bisection continues instead of aborting the whole cell.  Treating a
    crash as "past the cliff" is sound for the same monotonicity reason the
    bisection itself is: solver failures set in *below* the precision
    cliff, not above it.
    """

    man_bits: int
    error: float
    passed: bool
    truncated_fraction: float
    info: Dict[str, float] = field(default_factory=dict)
    failure: Optional[PointFailure] = None

    def __setstate__(self, state) -> None:
        # evaluations pickled before the fault-tolerance layer
        self.__dict__.update(state)
        self.__dict__.setdefault("failure", None)


@dataclass
class CliffResult:
    """Outcome of one (workload, policy) cliff search."""

    workload: str
    policy: PolicySpec
    exp_bits: int
    min_man_bits: int
    max_man_bits: int
    threshold: Optional[float]
    #: smallest mantissa width in range that passes the failure predicate,
    #: or ``None`` when even ``max_man_bits`` fails
    cliff_man_bits: Optional[int]
    #: probes in evaluation order (the bisection trace)
    evaluations: List[CliffEvaluation]
    #: global cell index in the adaptive grid (0 for standalone searches)
    index: int = 0

    @property
    def found(self) -> bool:
        return self.cliff_man_bits is not None

    @property
    def n_runs(self) -> int:
        return len(self.evaluations)

    @property
    def grid_points(self) -> int:
        """Size of the fixed grid the bisection replaces."""
        return self.max_man_bits - self.min_man_bits + 1

    @property
    def last_failing_bits(self) -> Optional[int]:
        """The widest mantissa observed to fail, or ``None`` when every
        probe passed (the cliff sits at or below ``min_man_bits``)."""
        failing = [e.man_bits for e in self.evaluations if not e.passed]
        return max(failing) if failing else None

    @property
    def probe_failures(self) -> List[PointFailure]:
        """Structured failures of probes that raised or blew up (collect
        mode only; empty for a clean search)."""
        return [e.failure for e in self.evaluations if e.failure is not None]

    def describe(self) -> str:
        where = f"m{self.cliff_man_bits}" if self.found else "not found in range"
        return (
            f"{self.workload} / {self.policy.describe()}: cliff {where} "
            f"({self.n_runs} runs vs {self.grid_points}-point grid)"
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "policy": self.policy.describe(),
            "exp_bits": self.exp_bits,
            "min_man_bits": self.min_man_bits,
            "max_man_bits": self.max_man_bits,
            "threshold": self.threshold,
            "cliff_man_bits": self.cliff_man_bits,
            "n_runs": self.n_runs,
            "grid_points": self.grid_points,
            "evaluations": [
                {
                    "man_bits": e.man_bits,
                    "error": e.error,
                    "passed": e.passed,
                    "truncated_fraction": e.truncated_fraction,
                    **({"failure": e.failure.to_dict()} if e.failure is not None else {}),
                }
                for e in self.evaluations
            ],
        }


# ---------------------------------------------------------------------------
# the bisection core
# ---------------------------------------------------------------------------
def bisect_cliff(
    evaluate: Callable[[int], CliffEvaluation],
    min_man_bits: int,
    max_man_bits: int,
) -> Tuple[Optional[int], List[CliffEvaluation]]:
    """Locate the smallest passing mantissa width in
    ``[min_man_bits, max_man_bits]`` assuming pass/fail is monotone.

    Probes ``max_man_bits`` first (1 run); if it fails there is no cliff in
    range.  Otherwise a standard bisection with a virtual failing bound at
    ``min_man_bits - 1`` needs ``ceil(log2(n))`` more probes for an
    ``n``-point range — ``ceil(log2(n)) + 1`` total, the engine-level
    guarantee the tests pin down.
    """
    if min_man_bits < 1:
        raise ValueError("min_man_bits must be >= 1")
    if max_man_bits < min_man_bits:
        raise ValueError("max_man_bits must be >= min_man_bits")
    evaluations: List[CliffEvaluation] = []

    def probe(bits: int) -> CliffEvaluation:
        evaluation = evaluate(bits)
        evaluations.append(evaluation)
        return evaluation

    if not probe(max_man_bits).passed:
        return None, evaluations
    lo, hi = min_man_bits - 1, max_man_bits  # invariant: fail(lo), pass(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid).passed:
            hi = mid
        else:
            lo = mid
    return hi, evaluations


def max_bisection_runs(min_man_bits: int, max_man_bits: int) -> int:
    """The run-count guarantee of :func:`bisect_cliff`:
    ``ceil(log2(n)) + 1`` for an ``n``-point mantissa range."""
    n = max_man_bits - min_man_bits + 1
    return (math.ceil(math.log2(n)) if n > 1 else 0) + 1


# ---------------------------------------------------------------------------
# single-cell search
# ---------------------------------------------------------------------------
def default_policy_for(workload) -> PolicySpec:
    """A global policy over the workload's own ``default_modules`` — the
    policy that actually exercises this scenario's truncation targets
    (hydro / eos / advection+diffusion).  A policy that misses them would
    truncate nothing and make every probe pass vacuously."""
    cls = get_workload_class(workload) if isinstance(workload, str) else type(workload)
    modules = tuple(getattr(cls, "default_modules", ())) or None
    return PolicySpec(kind="global", modules=modules)


def _evaluate_bits(
    workload,
    policy: PolicySpec,
    reference: Outcome,
    man_bits: int,
    exp_bits: int,
    rounding: str,
    threshold: Optional[float],
    plane: str = "auto",
    count_ops: bool = True,
    check_finite: bool = False,
) -> CliffEvaluation:
    runtime = RaptorRuntime(f"{workload.name}-cliff-m{man_bits}")
    built = policy.build(
        FPFormat(exp_bits, man_bits), runtime,
        rounding=rounding, plane=plane, count_ops=count_ops,
    )
    outcome = workload.run(policy=built, runtime=runtime)
    if check_finite:
        bad = nonfinite_variables(outcome.state)
        if bad:
            raise NonFiniteStateError(
                f"non-finite values in final state variable(s) {bad} at "
                f"t={outcome.time:g} — the m{man_bits} probe blew up"
            )
    evaluate = getattr(workload, "evaluate", None)
    if evaluate is not None:
        error, passed = evaluate(outcome, reference, threshold=threshold)
    else:
        # duck-typed scenario without the combined-evaluation shortcut
        error = float(workload.error(outcome, reference))
        passed = bool(workload.acceptable(outcome, reference, threshold=threshold))
    return CliffEvaluation(
        man_bits=man_bits,
        error=error,
        passed=passed,
        truncated_fraction=runtime.ops.truncated_fraction,
        info=dict(outcome.info),
    )


def find_cliff(
    workload,
    policy: Optional[PolicySpec] = None,
    *,
    config_kwargs: Optional[Mapping[str, object]] = None,
    min_man_bits: int = 2,
    max_man_bits: int = 52,
    exp_bits: int = 11,
    threshold: Optional[float] = None,
    rounding: str = RoundingMode.NEAREST_EVEN,
    cache: Union[ReferenceCache, str, None] = None,
    reference: Optional[Outcome] = None,
    index: int = 0,
    plane: str = "auto",
    count_ops: bool = True,
    on_error: str = "raise",
) -> CliffResult:
    """Bisect the mantissa axis of one (workload, policy) pair.

    ``workload`` is a registry name (then ``config_kwargs`` parameterise its
    ``config_class``) or a ready-made workload instance.  The failure
    predicate is the workload's :meth:`~repro.workloads.scenario.Scenario.acceptable`
    — an error threshold for the compressible and bubble scenarios, the
    detonation invariant for cellular — with ``threshold`` overriding the
    class default.  The full-precision ``reference`` is taken from the
    argument, from ``cache`` (a :class:`ReferenceCache` or a directory
    path), or computed on the spot (on the fused fast kernel plane unless
    ``plane="instrumented"``; ``plane`` likewise selects the plane of every
    probe's non-truncating contexts — see :mod:`repro.kernels`).

    ``on_error="collect"`` isolates probe failures: a probe that raises, or
    finishes with non-finite state, becomes a failed
    :class:`CliffEvaluation` carrying a structured ``failure`` record (see
    that class) and the bisection continues.  The default ``"raise"``
    preserves today's behaviour — the first probe exception aborts the
    search.
    """
    validate_fault_tolerance(on_error, None, None)
    if isinstance(workload, str):
        obj = create_workload(workload, **dict(config_kwargs or {}))
    else:
        if config_kwargs:
            raise ValueError("pass config_kwargs only with a workload name")
        obj = workload
    problems = scenario_protocol_errors(type(obj))
    if problems:
        raise ValueError(
            f"workload {obj!r} does not implement the scenario protocol: "
            + "; ".join(problems)
        )
    pol = policy if policy is not None else default_policy_for(obj)
    declared = tuple(getattr(obj, "default_modules", ()))
    if declared and pol.modules is not None and not set(declared) & set(pol.modules):
        # a policy restricted to modules this scenario never consults
        # truncates nothing: every probe passes trivially and the reported
        # "cliff" would sit vacuously at min_man_bits
        warnings.warn(
            f"policy {pol.describe()!r} does not cover any truncation target "
            f"of workload {obj.name!r} (default_modules={declared}); every "
            "probe will run untruncated and the reported cliff is vacuous",
            RuntimeWarning,
            stacklevel=2,
        )

    if reference is None:
        ref_cache = cache if isinstance(cache, ReferenceCache) else (
            ReferenceCache(cache) if cache is not None else None
        )
        key = None
        if ref_cache is not None:
            if isinstance(workload, str):
                key = reference_key(workload, config_kwargs)
            else:
                # a ready-made instance: key its live config directly; only
                # registered workloads are cacheable (the registry name is
                # part of the content address)
                try:
                    key = reference_key(obj.name, config=getattr(obj, "config", None))
                except UnknownWorkloadError:
                    key = None
        if key is not None:
            reference = ref_cache.get(key)
            if reference is None:
                reference = run_reference(obj, plane=plane).detach()
                ref_cache.put(key, reference)
        else:
            reference = run_reference(obj, plane=plane).detach()

    collect = on_error == "collect"

    def evaluate(bits: int) -> CliffEvaluation:
        if not collect:
            return _evaluate_bits(
                obj, pol, reference, bits, exp_bits, rounding, threshold,
                plane=plane, count_ops=count_ops,
            )
        probe_started = time.perf_counter()
        try:
            return _evaluate_bits(
                obj, pol, reference, bits, exp_bits, rounding, threshold,
                plane=plane, count_ops=count_ops, check_finite=True,
            )
        except Exception as exc:
            # a crashing/blowing-up probe counts as a failed width; the
            # bisection's monotonicity assumption covers it (failures set
            # in below the cliff) and the record keeps the evidence
            return CliffEvaluation(
                man_bits=bits,
                error=float("inf"),
                passed=False,
                truncated_fraction=0.0,
                failure=_exception_failure(
                    exc,
                    index=index,
                    workload=obj.name,
                    format_name=f"e{exp_bits}m{bits}",
                    policy=pol.describe(),
                    seconds=time.perf_counter() - probe_started,
                ),
            )

    cliff, evaluations = bisect_cliff(evaluate, min_man_bits, max_man_bits)
    return CliffResult(
        workload=obj.name,
        policy=pol,
        exp_bits=exp_bits,
        min_man_bits=min_man_bits,
        max_man_bits=max_man_bits,
        threshold=threshold,
        cliff_man_bits=cliff,
        evaluations=evaluations,
        index=index,
    )


# ---------------------------------------------------------------------------
# the adaptive grid
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveCell:
    """One cell of the adaptive grid, in deterministic enumeration order."""

    index: int
    workload: str
    policy: PolicySpec

    def describe(self) -> str:
        return f"{self.workload} / {self.policy.describe()}"


@dataclass
class AdaptiveSpec:
    """Declarative cliff search: workloads × policies, one bisection each.

    Mirrors :class:`~repro.experiments.spec.SweepSpec` — registry-name
    workloads, alias-aware per-workload configs, serial/process backends,
    cache directory, and deterministic ``shard(i, n)`` partitions — but the
    format axis is replaced by a mantissa *range* that each cell bisects.
    ``policies=None`` (the default) gives every workload one global policy
    over its own ``default_modules`` (hydro for compressible, eos for
    cellular, advection+diffusion for bubble) — a fixed policy list that
    misses a workload's modules would truncate nothing and report a
    meaningless cliff at ``min_man_bits``.  ``thresholds`` overrides the
    per-workload failure threshold (keyed alias-aware, like
    ``workload_configs``); ``threshold`` is a global override applied to
    every workload without a specific entry.
    """

    workloads: Sequence[str] = ("sedov",)
    policies: Optional[Sequence[PolicySpec]] = None
    min_man_bits: int = 2
    max_man_bits: int = 52
    exp_bits: int = 11
    threshold: Optional[float] = None
    thresholds: Mapping[str, float] = field(default_factory=dict)
    workload_configs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    rounding: str = RoundingMode.NEAREST_EVEN
    #: kernel plane of non-truncating contexts (references + untruncated
    #: probe modules); same semantics as :attr:`SweepSpec.plane`
    plane: str = "auto"
    #: record op/mem counters in the probes (default).  ``False`` builds
    #: non-counting probe policies, routing truncated probe contexts onto
    #: the fused truncating plane under ``plane="fast"|"auto"`` —
    #: bit-identical pass/fail decisions, much faster bisections, but
    #: ``truncated_fraction`` reads zero in the evaluations.
    count_probe_ops: bool = True
    backend: str = "serial"
    max_workers: Optional[int] = None
    cache_dir: Optional[str] = None
    shard_index: int = 0
    shard_count: int = 1
    #: ``"collect"`` isolates failures (probe-level inside each cell, plus
    #: cell/reference-level into :attr:`AdaptiveResult.failures`) instead of
    #: aborting the grid; same semantics as :attr:`SweepSpec.on_error`
    on_error: str = "raise"
    #: per-*cell* deadline in seconds on the process backend (a cell is one
    #: full bisection of up to ``ceil(log2 n)+1`` runs, so size it
    #: accordingly); ``None`` disables it
    point_timeout: Optional[float] = None
    #: fresh-pool rebuilds for transiently crashing cells; same semantics
    #: as :attr:`SweepSpec.retries`
    retries: Optional[int] = None

    def __setstate__(self, state) -> None:
        # specs pickled before the fault-tolerance fields existed
        self.__dict__.update(state)
        for name, default in (("on_error", "raise"), ("point_timeout", None), ("retries", None)):
            self.__dict__.setdefault(name, default)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec before execution (fail fast, not in a worker)."""
        from ..kernels import validate_plane

        validate_plane(self.plane)
        if self.policies is not None and not self.policies:
            raise ValueError(
                "AdaptiveSpec needs at least one policy "
                "(or policies=None for per-workload defaults)"
            )
        if self.min_man_bits < 1:
            raise ValueError("min_man_bits must be >= 1")
        if self.max_man_bits < self.min_man_bits:
            raise ValueError("max_man_bits must be >= min_man_bits")
        if self.exp_bits < 2:
            raise ValueError("exp_bits must be >= 2")
        if self.rounding not in RoundingMode.ALL:
            raise ValueError(f"unknown rounding mode {self.rounding!r}")
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not (0 <= self.shard_index < self.shard_count):
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )
        validate_fault_tolerance(self.on_error, self.point_timeout, self.retries)
        seen = validate_workload_list(self.workloads, "AdaptiveSpec")
        validate_alias_keyed_mapping(self.workload_configs, seen, "workload_configs")
        validate_alias_keyed_mapping(self.thresholds, seen, "thresholds")
        validate_config_overrides(self.workload_configs)

    # ------------------------------------------------------------------
    def policies_for(self, workload: str) -> Tuple[PolicySpec, ...]:
        """The policies of one workload's cells: the spec's explicit list,
        or — with ``policies=None`` — one global policy over the
        workload's own ``default_modules``."""
        if self.policies is not None:
            return tuple(self.policies)
        return (default_policy_for(workload),)

    def full_cells(self) -> Tuple[AdaptiveCell, ...]:
        """The complete workload × policy grid (ignoring sharding)."""
        cells = []
        index = 0
        for workload in self.workloads:
            for policy in self.policies_for(workload):
                cells.append(AdaptiveCell(index=index, workload=workload, policy=policy))
                index += 1
        return tuple(cells)

    def cells(self) -> Tuple[AdaptiveCell, ...]:
        """This spec's slice of the grid (strided partition, global indices
        preserved — the same scheme as :meth:`SweepSpec.points`)."""
        grid = self.full_cells()
        if self.shard_count == 1:
            return grid
        return tuple(c for c in grid if c.index % self.shard_count == self.shard_index)

    def shard(self, index: int, count: int) -> "AdaptiveSpec":
        """The ``index``-th of ``count`` deterministic grid partitions."""
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not (0 <= index < count):
            raise ValueError(f"shard index must be in [0, {count}), got {index}")
        if (self.shard_index, self.shard_count) != (0, 1):
            raise ValueError("spec is already sharded; shard the unsharded base spec")
        return replace(self, shard_index=index, shard_count=count)

    def unsharded(self) -> "AdaptiveSpec":
        if (self.shard_index, self.shard_count) == (0, 1):
            return self
        return replace(self, shard_index=0, shard_count=1)

    def config_kwargs(self, workload: str) -> Dict[str, object]:
        return config_kwargs_for(self.workload_configs, workload)

    def threshold_for(self, workload: str) -> Optional[float]:
        """The failure threshold of one workload: its ``thresholds`` entry
        (alias-aware), else the global ``threshold``, else ``None`` (the
        workload class default applies)."""
        target = canonical_name(workload)
        for name, value in self.thresholds.items():
            if canonical_name(name) == target:
                return value
        return self.threshold

    def with_backend(self, backend: str, max_workers: Optional[int] = None) -> "AdaptiveSpec":
        return replace(self, backend=backend, max_workers=max_workers)


# ---------------------------------------------------------------------------
# cell task (module-level so it pickles under every start method)
# ---------------------------------------------------------------------------
@dataclass
class _CliffTask:
    cell: AdaptiveCell
    config_kwargs: Dict[str, object]
    min_man_bits: int
    max_man_bits: int
    exp_bits: int
    threshold: Optional[float]
    rounding: str
    reference_state: dict
    reference_time: float
    reference_kind: str
    plane: str = "auto"
    count_ops: bool = True
    on_error: str = "raise"


def _execute_cliff(task: _CliffTask):
    cell = task.cell
    if task.on_error != "collect":
        maybe_inject("cell", cell.index)
        return _run_cliff_task(task)
    started = time.perf_counter()
    try:
        maybe_inject("cell", cell.index)
        return _run_cliff_task(task)
    except Exception as exc:
        # probe-level errors are already isolated inside find_cliff; what
        # lands here is cell-level (workload construction, a broken
        # evaluate(), an injected cell fault) — record it and move on
        return _exception_failure(
            exc,
            index=cell.index,
            workload=cell.workload,
            format_name=f"e{task.exp_bits}m[{task.min_man_bits},{task.max_man_bits}]",
            policy=cell.policy.describe(),
            seconds=time.perf_counter() - started,
        )


def _run_cliff_task(task: _CliffTask) -> CliffResult:
    cell = task.cell
    workload = create_workload(cell.workload, **task.config_kwargs)
    reference = Outcome(
        workload=cell.workload,
        state=task.reference_state,
        time=task.reference_time,
        kind=task.reference_kind,
    )
    return find_cliff(
        workload,
        cell.policy,
        min_man_bits=task.min_man_bits,
        max_man_bits=task.max_man_bits,
        exp_bits=task.exp_bits,
        threshold=task.threshold,
        rounding=task.rounding,
        reference=reference,
        index=cell.index,
        plane=task.plane,
        count_ops=task.count_ops,
        on_error=task.on_error,
    )


# ---------------------------------------------------------------------------
# the grid driver
# ---------------------------------------------------------------------------
@dataclass
class AdaptiveResult:
    """All cliff searches of an adaptive grid, in cell order."""

    spec: AdaptiveSpec
    cliffs: List[CliffResult]
    references: Dict[str, ReferenceResult]
    cache_stats: Optional[Dict[str, int]] = None
    #: failed cells (and references, ``index=-1``) of an
    #: ``on_error="collect"`` grid, in cell order; always empty in raise mode
    failures: List[PointFailure] = field(default_factory=list)

    def __setstate__(self, state) -> None:
        # results pickled before the fault-tolerance layer
        self.__dict__.update(state)
        self.__dict__.setdefault("failures", [])

    def __len__(self) -> int:
        return len(self.cliffs)

    def __iter__(self):
        return iter(self.cliffs)

    def select(self, workload: Optional[str] = None) -> List[CliffResult]:
        return [c for c in self.cliffs if workload is None or c.workload == workload]

    def select_failures(
        self, workload: Optional[str] = None, kind: Optional[str] = None
    ) -> List[PointFailure]:
        return [
            f
            for f in self.failures
            if (workload is None or f.workload == workload)
            and (kind is None or f.kind == kind)
        ]

    @property
    def total_runs(self) -> int:
        return sum(c.n_runs for c in self.cliffs)

    def table(self) -> str:
        rows = []
        for c in self.cliffs:
            at_cliff = next(
                (e for e in c.evaluations if e.man_bits == c.cliff_man_bits), None
            )
            rows.append(
                [
                    c.workload,
                    c.policy.describe(),
                    f"[{c.min_man_bits}, {c.max_man_bits}]",
                    f"m{c.cliff_man_bits}" if c.found else "none",
                    f"{at_cliff.error:.3e}" if at_cliff is not None else "n/a",
                    str(c.n_runs),
                    str(c.grid_points),
                ]
            )
        text = format_table(
            ["workload", "policy", "bits range", "cliff", "err@cliff", "runs", "grid"],
            rows,
        )
        if self.failures:
            failure_rows = [
                [
                    str(f.index),
                    f.workload,
                    f.policy,
                    f.kind,
                    f.exc_type or "-",
                    f.message[:60],
                ]
                for f in self.failures
            ]
            text += "\n\nfailed cells:\n" + format_table(
                ["index", "workload", "policy", "kind", "error", "message"], failure_rows
            )
        return text

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.spec.workloads),
            "policies": (
                [p.describe() for p in self.spec.policies]
                if self.spec.policies is not None
                else sorted({c.policy.describe() for c in self.cliffs})
            ),
            "bits_range": [self.spec.min_man_bits, self.spec.max_man_bits],
            "exp_bits": self.spec.exp_bits,
            "plane": self.spec.plane,
            "backend": self.spec.backend,
            "shard": [self.spec.shard_index, self.spec.shard_count],
            "cache": self.cache_stats,
            "total_runs": self.total_runs,
            "cliffs": [c.to_dict() for c in self.cliffs],
            "failures": [f.to_dict() for f in self.failures],
        }

    # -- shard persistence + recombination ------------------------------
    def save(self, path) -> Path:
        """Pickle the full result atomically (tempfile + rename; same
        caveats as :meth:`SweepResult.save`: only load files you produced
        yourself)."""
        return atomic_pickle(self, path)

    @classmethod
    def load(cls, path) -> "AdaptiveResult":
        with open(Path(path), "rb") as fh:
            result = pickle.load(fh)
        if not isinstance(result, cls):
            raise TypeError(
                f"{path} does not contain an AdaptiveResult (got {type(result).__name__})"
            )
        return result

    @staticmethod
    def _merge_signature(spec: AdaptiveSpec) -> tuple:
        base = spec.unsharded()
        return (
            base.full_cells(),
            base.min_man_bits,
            base.max_man_bits,
            base.exp_bits,
            base.threshold,
            tuple(sorted((canonical_name(k), v) for k, v in base.thresholds.items())),
            base.rounding,
            base.plane,
            base.count_probe_ops,
            tuple((w, sorted(base.config_kwargs(w).items())) for w in base.workloads),
        )

    @classmethod
    def merge(cls, *results: "AdaptiveResult") -> "AdaptiveResult":
        """Recombine shard results into the unsharded grid result —
        bit-identical to a serial unsharded run, like
        :meth:`SweepResult.merge`."""
        if len(results) == 1 and not isinstance(results[0], cls):
            results = tuple(results[0])
        if not results:
            raise ValueError("merge needs at least one AdaptiveResult")
        signature = cls._merge_signature(results[0].spec)
        for other in results[1:]:
            if cls._merge_signature(other.spec) != signature:
                raise ValueError(
                    "cannot merge results from different adaptive searches "
                    "(grid, bits range, thresholds, rounding or configs disagree)"
                )
        merged: Dict[int, CliffResult] = {}
        merged_failures: Dict[int, PointFailure] = {}
        reference_failures: List[PointFailure] = []
        references: Dict[str, ReferenceResult] = {}
        for result in results:
            for cliff in result.cliffs:
                if cliff.index in merged or cliff.index in merged_failures:
                    raise ValueError(f"cell index {cliff.index} appears in more than one shard")
                merged[cliff.index] = cliff
            for failure in result.failures:
                if failure.index < 0:
                    if not any(
                        f.failure_key() == failure.failure_key() for f in reference_failures
                    ):
                        reference_failures.append(failure)
                    continue
                if failure.index in merged or failure.index in merged_failures:
                    raise ValueError(
                        f"cell index {failure.index} appears in more than one shard"
                    )
                merged_failures[failure.index] = failure
            for name, ref in result.references.items():
                references.setdefault(name, ref)
        base = results[0].spec.unsharded()
        expected = [c.index for c in base.full_cells()]
        # a failed cell still covers its grid cell (same rule as SweepResult)
        missing = sorted(set(expected) - set(merged) - set(merged_failures))
        if missing:
            raise ValueError(
                f"merged shards do not cover the full grid; missing cell "
                f"indices {missing} — run the remaining shard(s) first"
            )
        stats_list = [r.cache_stats for r in results if r.cache_stats is not None]
        cache_stats = None
        if stats_list:
            cache_stats = {
                key: sum(stats.get(key, 0) for stats in stats_list)
                for key in sorted({key for stats in stats_list for key in stats})
            }
        return cls(
            spec=base,
            cliffs=[merged[index] for index in expected if index in merged],
            references=references,
            cache_stats=cache_stats,
            failures=reference_failures
            + [merged_failures[index] for index in expected if index in merged_failures],
        )


def run_adaptive_sweep(
    spec: AdaptiveSpec, cache: Union[ReferenceCache, str, None] = None
) -> AdaptiveResult:
    """Run one cliff search per (workload, policy) cell of ``spec``.

    Phase 1 resolves the full-precision references exactly like
    :func:`~repro.experiments.engine.run_sweep` (cache-aware, zero
    reference tasks when warm).  Phase 2 fans the independent bisections
    out over the chosen backend; results come back in deterministic cell
    order (the shard's slice when the spec is sharded).
    """
    spec.validate()
    cells = spec.cells()
    collect = spec.on_error == "collect"
    ref_cache = _resolve_cache(spec, cache)
    stats_before = ref_cache.stats.to_dict() if ref_cache is not None else None

    needed = list(dict.fromkeys(cell.workload for cell in cells))
    gathered = gather_references(
        needed,
        spec.config_kwargs,
        cache=ref_cache,
        backend=spec.backend,
        max_workers=spec.max_workers,
        plane=spec.plane,
        on_error=spec.on_error,
        timeout=spec.point_timeout,
        retries=spec.retries,
    )
    references: Dict[str, ReferenceResult] = {}
    ref_failures: Dict[str, PointFailure] = {}
    for name, ref in gathered.items():
        if isinstance(ref, PointFailure):
            ref_failures[name] = ref
        else:
            references[name] = ref

    failures: Dict[int, PointFailure] = {}
    todo = []
    for cell in cells:
        if cell.workload in ref_failures:
            ref_failure = ref_failures[cell.workload]
            failures[cell.index] = PointFailure(
                index=cell.index,
                workload=cell.workload,
                format_name=f"e{spec.exp_bits}m[{spec.min_man_bits},{spec.max_man_bits}]",
                policy=cell.policy.describe(),
                kind="reference",
                exc_type=ref_failure.exc_type,
                message=f"reference failed [{ref_failure.kind}]: {ref_failure.message}",
            )
        else:
            todo.append(cell)

    tasks = [
        _CliffTask(
            cell=cell,
            config_kwargs=spec.config_kwargs(cell.workload),
            min_man_bits=spec.min_man_bits,
            max_man_bits=spec.max_man_bits,
            exp_bits=spec.exp_bits,
            threshold=spec.threshold_for(cell.workload),
            rounding=spec.rounding,
            reference_state=references[cell.workload].state,
            reference_time=references[cell.workload].time,
            reference_kind=getattr(references[cell.workload], "kind", "compressible"),
            plane=spec.plane,
            count_ops=spec.count_probe_ops,
            on_error=spec.on_error,
        )
        for cell in todo
    ]
    outcomes = run_tasks(
        _execute_cliff,
        tasks,
        backend=spec.backend,
        max_workers=spec.max_workers,
        timeout=spec.point_timeout,
        retries=spec.retries,
        collect=collect,
    )
    cliffs: Dict[int, CliffResult] = {}
    for cell, outcome in zip(todo, outcomes):
        if isinstance(outcome, TaskFault):
            outcome = _fault_failure(
                outcome,
                index=cell.index,
                workload=cell.workload,
                format_name=f"e{spec.exp_bits}m[{spec.min_man_bits},{spec.max_man_bits}]",
                policy=cell.policy.describe(),
            )
        if isinstance(outcome, PointFailure):
            failures[cell.index] = outcome
        else:
            cliffs[cell.index] = outcome
    cache_stats = None
    if ref_cache is not None:
        after = ref_cache.stats.to_dict()
        cache_stats = {key: after[key] - stats_before[key] for key in after}
    return AdaptiveResult(
        spec=spec,
        cliffs=[cliffs[c.index] for c in cells if c.index in cliffs],
        references=references,
        cache_stats=cache_stats,
        failures=[f for f in ref_failures.values()]
        + [failures[c.index] for c in cells if c.index in failures],
    )
