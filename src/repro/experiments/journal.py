"""Crash-safe sweep checkpointing: the journal behind ``run_sweep(checkpoint=...)``.

A journal is a directory:

* ``journal.json`` — metadata: format version, the checkpoint signature of
  the owning spec (:func:`repro.experiments.engine.checkpoint_signature`),
  and the total point count, written once when the journal is created.
* ``point-<index>.pkl`` — one pickle per resolved sweep point, holding its
  ``PointResult`` (or ``PointFailure`` in collect mode), keyed by global
  grid index.
* ``reference-<workload>.pkl`` — one pickle per computed reference outcome.

Every file is written with the reference cache's discipline — tempfile in
the same directory, then atomic :meth:`Path.replace` — so a SIGKILL at any
instant leaves either no entry or a complete one, never a torn pickle.
That, plus the executor's ``on_result`` callback firing as each point
resolves, is what makes resume exact: rerunning the same spec against the
journal loads the recorded entries, runs only the missing points, and the
assembled result is bitwise identical to an uninterrupted run.

A journal created by a *different* spec (grid, plane, configs, shard slice,
``keep_states``) is rejected with :class:`CheckpointMismatchError` — mixing
points from two different sweeps must never produce a plausible-looking
result.  Corrupt entries (torn by a crash predating this module, disk
errors) are deleted with a warning and simply recomputed.
"""
from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
import warnings
from pathlib import Path
from typing import Dict

__all__ = [
    "CheckpointMismatchError",
    "SweepJournal",
    "atomic_pickle",
    "atomic_write_bytes",
]

_META_NAME = "journal.json"
_FORMAT_VERSION = 1
_POINT_RE = re.compile(r"^point-(\d+)\.pkl$")
_REFERENCE_PREFIX = "reference-"


class CheckpointMismatchError(ValueError):
    """The journal on disk belongs to a different sweep spec."""


def atomic_write_bytes(path, data: bytes) -> Path:
    """Write ``data`` to ``path`` via tempfile + rename (crash-atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_pickle(obj, path) -> Path:
    """Pickle ``obj`` to ``path`` atomically (used by the journal and by
    ``SweepResult.save`` / ``AdaptiveResult.save``)."""
    return atomic_write_bytes(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _load_entry(path: Path, what: str):
    """Unpickle one journal entry; a corrupt (torn, truncated) entry is
    deleted with a warning and reported as absent, so the resuming sweep
    recomputes it instead of crashing."""
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except Exception as exc:
        warnings.warn(
            f"deleting corrupt checkpoint {what} {path.name} "
            f"({type(exc).__name__}: {exc}); it will be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )
        path.unlink(missing_ok=True)
        return None


class SweepJournal:
    """Directory-backed journal of one (possibly interrupted) sweep."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory).expanduser()

    # ------------------------------------------------------------------
    def open(self, signature: str, total_points: int) -> None:
        """Bind the journal to a sweep: create the metadata file, or verify
        an existing journal was written by the same spec."""
        meta_path = self.directory / _META_NAME
        if meta_path.is_file():
            meta = _load_meta(meta_path)
            if meta.get("signature") != signature:
                raise CheckpointMismatchError(
                    f"checkpoint at {self.directory} was written by a different "
                    "sweep spec (grid, plane, configs, keep_states or shard "
                    "slice disagree); point a fresh directory at this sweep or "
                    "delete the stale journal"
                )
            return
        atomic_write_bytes(
            meta_path,
            json.dumps(
                {
                    "version": _FORMAT_VERSION,
                    "signature": signature,
                    "total_points": total_points,
                },
                indent=2,
            ).encode(),
        )

    # ------------------------------------------------------------------
    def record_point(self, index: int, obj) -> None:
        atomic_pickle(obj, self.directory / f"point-{index:06d}.pkl")

    def record_reference(self, workload: str, outcome) -> None:
        sanitized = re.sub(r"[^A-Za-z0-9_.-]", "_", workload)
        atomic_pickle(outcome, self.directory / f"{_REFERENCE_PREFIX}{sanitized}.pkl")

    # ------------------------------------------------------------------
    def load_points(self) -> Dict[int, object]:
        """Journaled point entries by global grid index."""
        out: Dict[int, object] = {}
        for path in sorted(self.directory.glob("point-*.pkl")):
            match = _POINT_RE.match(path.name)
            if match is None:
                continue
            obj = _load_entry(path, "point")
            if obj is not None:
                out[int(match.group(1))] = obj
        return out

    def load_references(self) -> Dict[str, object]:
        """Journaled reference outcomes by workload name (the name the
        recording spec used, carried inside the outcome)."""
        out: Dict[str, object] = {}
        for path in sorted(self.directory.glob(f"{_REFERENCE_PREFIX}*.pkl")):
            if path.suffix != ".pkl":
                continue
            obj = _load_entry(path, "reference")
            workload = getattr(obj, "workload", None)
            if obj is not None and workload:
                out[workload] = obj
        return out

    def completed_indices(self) -> list:
        """Indices with a journaled entry (no unpickling; cheap polling)."""
        return sorted(
            int(m.group(1))
            for m in (_POINT_RE.match(p.name) for p in self.directory.glob("point-*.pkl"))
            if m is not None
        )


def _load_meta(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointMismatchError(
            f"checkpoint metadata {path} is unreadable ({type(exc).__name__}: {exc}); "
            "delete the journal directory to start over"
        ) from exc
