"""Level-set interface tracking for the multiphase (Bubble) solver.

The Bubble workload tracks the air–water interface with a level-set function
phi: ``phi > 0`` in the gas phase, ``phi < 0`` in the liquid, ``phi = 0`` on
the interface.  This module provides:

* initialisation of a circular bubble,
* smoothed Heaviside / delta functions and phase-dependent material
  properties (density, viscosity),
* upwind (WENO-style) advection of phi through a numerics context so the
  advection operator can be truncated,
* PDE-based reinitialisation that restores the signed-distance property,
* the interface-distance-based refinement-level map that plays the role of
  the AMR hierarchy "centred around the interface" for the selective
  (M − l cutoff) truncation strategies of Figure 1.
"""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.opmode import FPContext, FullPrecisionContext
from ..kernels import bubble as kbubble

__all__ = ["LevelSet", "circle_level_set", "interface_level_map", "upwind_derivative"]


def upwind_derivative(
    f,
    velocity,
    spacing: float,
    axis: int,
    ctx: FPContext,
    boundary: str = "wrap",
    padded: Optional[np.ndarray] = None,
):
    """First-order upwind derivative of ``f`` along ``axis`` chosen by the
    sign of ``velocity`` — the single op-by-op implementation shared by the
    level-set transport (``boundary="wrap"``: periodic ``np.roll``
    neighbours) and the momentum stencil of the bubble solver
    (``boundary="edge"``: neighbours sliced from a caller-supplied
    edge padding of ``f``).

    Forward and backward differences are independent single-op
    computations, so the boundary mode is the *only* bitwise difference
    between the two historical call sites.
    """
    if boundary == "edge":
        sl_m = [slice(1, -1), slice(1, -1)]
        sl_p = [slice(1, -1), slice(1, -1)]
        sl_m[axis] = slice(0, -2)
        sl_p[axis] = slice(2, None)
        fm = padded[tuple(sl_m)]
        fp = padded[tuple(sl_p)]
    elif boundary == "wrap":
        plain = ctx.asplain(f)
        fm = np.roll(plain, 1, axis)
        fp = np.roll(plain, -1, axis)
    else:
        raise ValueError(f"unknown boundary mode {boundary!r}")
    inv = ctx.const(1.0 / spacing)
    bwd = ctx.mul(ctx.sub(f, fm, "adv:bwd_diff"), inv, "adv:bwd")
    fwd = ctx.mul(ctx.sub(fp, f, "adv:fwd_diff"), inv, "adv:fwd")
    return ctx.where(ctx.asplain(velocity) > 0.0, bwd, fwd)


def circle_level_set(x: np.ndarray, y: np.ndarray, center: Tuple[float, float], radius: float) -> np.ndarray:
    """Signed distance to a circle: positive inside (gas), negative outside."""
    return radius - np.sqrt((x - center[0]) ** 2 + (y - center[1]) ** 2)


def interface_level_map(phi: np.ndarray, dx: float, max_level: int, band_cells: float = 4.0) -> np.ndarray:
    """Pseudo-AMR refinement level for every cell, derived from the distance
    to the interface.

    Cells within ``band_cells * dx`` of the interface get ``max_level``; each
    doubling of the distance drops one level, down to level 1.  This mirrors
    how Flash-X's AMR concentrates the finest blocks around the interface and
    gives the Bubble experiment its M − l truncation cutoffs.
    """
    dist = np.abs(phi)
    levels = np.ones(phi.shape, dtype=np.int64)
    for level in range(max_level, 0, -1):
        width = band_cells * dx * 2.0 ** (max_level - level)
        levels = np.where((dist <= width) & (levels < level), level, levels)
    return levels


class LevelSet:
    """A level-set field on a uniform collocated grid.

    Standalone instances run the reference op-by-op / plain-numpy paths;
    the bubble solver opts its instance onto the fused bubble plane via
    :meth:`enable_fused`, which swaps every operator for its
    scratch-buffered bit-identical twin from :mod:`repro.kernels.bubble`.
    """

    def __init__(
        self,
        phi: np.ndarray,
        dx: float,
        dy: float,
        smoothing_cells: float = 1.5,
    ) -> None:
        self.phi = np.asarray(phi, dtype=np.float64).copy()
        self.dx = float(dx)
        self.dy = float(dy)
        self.eps = smoothing_cells * max(dx, dy)
        self._fused = False
        self._ws = None

    def enable_fused(self, ws=None) -> "LevelSet":
        """Route this instance's operators through the fused twins of
        :mod:`repro.kernels.bubble` (bit-identical; ``ws`` is the owning
        solver's scratch :class:`~repro.kernels.scratch.Workspace`)."""
        self._fused = True
        self._ws = ws
        return self

    # ------------------------------------------------------------------
    # phase indicators and material properties
    # ------------------------------------------------------------------
    def heaviside(self, phi: Optional[np.ndarray] = None) -> np.ndarray:
        """Smoothed Heaviside H(phi): 1 in the gas, 0 in the liquid."""
        p = self.phi if phi is None else phi
        if self._fused:
            return kbubble.heaviside(p, self.eps, ws=self._ws, key=("ls", "hv"))
        h = 0.5 * (1.0 + p / self.eps + np.sin(np.pi * p / self.eps) / np.pi)
        return np.clip(np.where(p > self.eps, 1.0, np.where(p < -self.eps, 0.0, h)), 0.0, 1.0)

    def delta(self, phi: Optional[np.ndarray] = None) -> np.ndarray:
        """Smoothed interface delta function."""
        p = self.phi if phi is None else phi
        if self._fused:
            return kbubble.delta(p, self.eps, ws=self._ws, key=("ls", "dl"))
        d = 0.5 / self.eps * (1.0 + np.cos(np.pi * p / self.eps))
        return np.where(np.abs(p) <= self.eps, d, 0.0)

    def density(self, rho_liquid: float, rho_gas: float) -> np.ndarray:
        """Phase-weighted density field."""
        if self._fused:
            return kbubble.material_field(
                self.phi, self.eps, rho_liquid, rho_gas, ws=self._ws, key=("ls", "rho")
            )
        h = self.heaviside()
        return rho_liquid + (rho_gas - rho_liquid) * h

    def viscosity(self, mu_liquid: float, mu_gas: float) -> np.ndarray:
        """Phase-weighted dynamic viscosity field."""
        if self._fused:
            return kbubble.material_field(
                self.phi, self.eps, mu_liquid, mu_gas, ws=self._ws, key=("ls", "mu")
            )
        h = self.heaviside()
        return mu_liquid + (mu_gas - mu_liquid) * h

    def volume(self, cell_area: float) -> float:
        """Gas-phase volume (area in 2-D)."""
        return float(np.sum(self.heaviside()) * cell_area)

    def interface_contour_mask(self, width: float = 0.0) -> np.ndarray:
        """Cells whose |phi| is below ``width`` (default: one cell size)."""
        w = width if width > 0 else max(self.dx, self.dy)
        return np.abs(self.phi) <= w

    def curvature(self) -> np.ndarray:
        """Interface curvature kappa = div(grad phi / |grad phi|) (central differences)."""
        if self._fused:
            return kbubble.curvature(self.phi, self.dx, self.dy, ws=self._ws, key=("ls", "curv"))
        phi = self.phi
        px = (np.roll(phi, -1, 0) - np.roll(phi, 1, 0)) / (2 * self.dx)
        py = (np.roll(phi, -1, 1) - np.roll(phi, 1, 1)) / (2 * self.dy)
        mag = np.sqrt(px ** 2 + py ** 2) + 1e-12
        nx, ny = px / mag, py / mag
        div = (np.roll(nx, -1, 0) - np.roll(nx, 1, 0)) / (2 * self.dx) + (
            np.roll(ny, -1, 1) - np.roll(ny, 1, 1)
        ) / (2 * self.dy)
        return div

    # ------------------------------------------------------------------
    # advection (truncatable)
    # ------------------------------------------------------------------
    @staticmethod
    def _upwind_derivative(phi, velocity, spacing: float, axis: int, ctx: FPContext):
        """First-order upwind derivative of phi along ``axis`` chosen by the
        sign of ``velocity`` (robust, monotone; the WENO5 machinery of the
        hydro solver is reused for the momentum advection instead, where the
        higher order matters more for the truncation study).  Delegates to
        the shared :func:`upwind_derivative` in its periodic-wrap mode."""
        return upwind_derivative(phi, velocity, spacing, axis, ctx, boundary="wrap")

    def advect(
        self,
        velx: np.ndarray,
        vely: np.ndarray,
        dt: float,
        ctx: Optional[FPContext] = None,
    ) -> None:
        """Advance phi by one advection step ``phi_t + u . grad(phi) = 0``."""
        ctx = ctx or FullPrecisionContext(count_ops=False, track_memory=False)
        if self._fused and ctx.fused:
            self.phi = kbubble.levelset_advect(
                self.phi, velx, vely, dt, self.dx, self.dy, ws=self._ws, key=("ls", "adv")
            )
            return
        if self._fused and ctx.fused_trunc:
            self.phi = kbubble.levelset_advect_trunc(
                self.phi, velx, vely, dt, self.dx, self.dy, ws=self._ws,
                key=("ls", "adv"), fmt=ctx.fmt, rounding=ctx.rounding,
            )
            return
        phi = ctx.const(self.phi)
        dpx = self._upwind_derivative(phi, velx, self.dx, 0, ctx)
        dpy = self._upwind_derivative(phi, vely, self.dy, 1, ctx)
        change = ctx.add(
            ctx.mul(velx, dpx, "adv:u_dpx"),
            ctx.mul(vely, dpy, "adv:v_dpy"),
            "adv:u_grad_phi",
        )
        new_phi = ctx.sub(phi, ctx.mul(ctx.const(dt), change, "adv:dt_change"), "adv:new_phi")
        self.phi = ctx.asplain(new_phi)

    # ------------------------------------------------------------------
    # reinitialisation (full precision: auxiliary numerics, not physics flux)
    # ------------------------------------------------------------------
    def reinitialize(self, iterations: int = 10, cfl: float = 0.3) -> None:
        """Restore the signed-distance property with the standard
        Sussman-style PDE reinitialisation ``phi_tau = S(phi0)(1 - |grad phi|)``."""
        if self._fused:
            self.phi = kbubble.reinitialize(
                self.phi, self.dx, self.dy, iterations, cfl, ws=self._ws, key=("ls", "reinit")
            )
            return
        phi0 = self.phi.copy()
        sgn = phi0 / np.sqrt(phi0 ** 2 + max(self.dx, self.dy) ** 2)
        dtau = cfl * min(self.dx, self.dy)
        phi = self.phi
        for _ in range(iterations):
            dxm = (phi - np.roll(phi, 1, 0)) / self.dx
            dxp = (np.roll(phi, -1, 0) - phi) / self.dx
            dym = (phi - np.roll(phi, 1, 1)) / self.dy
            dyp = (np.roll(phi, -1, 1) - phi) / self.dy
            # Godunov Hamiltonian
            grad_pos = np.sqrt(
                np.maximum(np.maximum(dxm, 0.0) ** 2, np.minimum(dxp, 0.0) ** 2)
                + np.maximum(np.maximum(dym, 0.0) ** 2, np.minimum(dyp, 0.0) ** 2)
            )
            grad_neg = np.sqrt(
                np.maximum(np.minimum(dxm, 0.0) ** 2, np.maximum(dxp, 0.0) ** 2)
                + np.maximum(np.minimum(dym, 0.0) ** 2, np.maximum(dyp, 0.0) ** 2)
            )
            grad = np.where(phi0 > 0, grad_pos, grad_neg)
            phi = phi - dtau * sgn * (grad - 1.0)
        self.phi = phi

    # ------------------------------------------------------------------
    def level_map(self, max_level: int, band_cells: float = 4.0) -> np.ndarray:
        """Interface-distance pseudo-AMR level for every cell."""
        return interface_level_map(self.phi, max(self.dx, self.dy), max_level, band_cells)
