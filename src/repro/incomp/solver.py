"""Incompressible multiphase solver for the rising-bubble benchmark.

This is the reproduction of the Flash-X incompressible Navier–Stokes +
level-set configuration used for the Bubble experiment (Figure 1):

* fractional-step (projection) method for the velocity field,
* WENO5 upwind-biased advection operators (the paper's truncation target),
* second-order central-difference diffusion operators (the other target),
* level-set interface tracking with reinitialisation,
* an interface-distance refinement-level map standing in for the AMR
  hierarchy, so the M − l cutoff truncation strategies apply per cell.

Simplifications relative to Flash-X (documented in DESIGN.md): a uniform
collocated grid instead of block AMR, a Boussinesq-style buoyancy force with
a constant-density projection instead of the full variable-density
ghost-fluid projection, and continuum-surface-force surface tension.  These
keep the code small and fast while preserving what the experiment measures:
how truncating the advection/diffusion operators at different mantissa
widths and interface-distance cutoffs changes the interface evolution.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..hydro.reconstruction import _weno5_edge
from ..kernels import FPContext, FullPrecisionContext, select_context
from ..kernels import bubble as kbubble
from ..kernels.fused import weno5_edge as _fused_weno5_edge
from ..kernels.trunc import weno5_edge as _trunc_weno5_edge
from ..kernels.grid import pad_edge
from ..kernels.scratch import bubble_plane_enabled, grid_plane_enabled, make_workspace
from .levelset import LevelSet, circle_level_set, upwind_derivative
from .poisson import PoissonSolver

__all__ = ["BubbleConfig", "BubbleSolver"]


@dataclass
class BubbleConfig:
    """Physical and numerical parameters of the rising-bubble benchmark.

    Defaults follow Section 4.2 of the paper: density ratio 1000, viscosity
    ratio 100, Fr = 1, We = 125, with the Reynolds number selectable
    (Re = 35 for the spin-up phase, Re = 3500 for the truncation study).
    """

    nx: int = 48
    ny: int = 72
    xlim: Tuple[float, float] = (-1.5, 1.5)
    ylim: Tuple[float, float] = (-1.5, 3.0)
    reynolds: float = 3500.0
    froude: float = 1.0
    weber: float = 125.0
    density_ratio: float = 1000.0
    viscosity_ratio: float = 100.0
    bubble_center: Tuple[float, float] = (0.0, 0.0)
    bubble_diameter: float = 1.0
    advection_scheme: str = "weno5"  # or "upwind"
    surface_tension: bool = True
    reinit_interval: int = 5
    cfl: float = 0.25

    @property
    def dx(self) -> float:
        return (self.xlim[1] - self.xlim[0]) / self.nx

    @property
    def dy(self) -> float:
        return (self.ylim[1] - self.ylim[0]) / self.ny

    @property
    def gravity(self) -> float:
        return 1.0 / self.froude ** 2

    @property
    def sigma(self) -> float:
        return 1.0 / self.weber

    @property
    def nu_liquid(self) -> float:
        return 1.0 / self.reynolds


class BubbleSolver:
    """Fractional-step multiphase solver on a uniform collocated grid.

    ``plane`` selects the kernel plane of the solver's *internal*
    full-precision evaluations (spin-up, the untruncated side of blended
    cells): the default ``"auto"`` rides the fused fast plane — the
    internal context records nothing, so the substitution is a pure,
    bit-identical win — while ``"instrumented"`` keeps every operation on
    the classic op-by-op plane (the diagnostic escape hatch).
    """

    def __init__(self, config: Optional[BubbleConfig] = None, plane: str = "auto") -> None:
        self.config = config or BubbleConfig()
        cfg = self.config
        x = cfg.xlim[0] + (np.arange(cfg.nx) + 0.5) * cfg.dx
        y = cfg.ylim[0] + (np.arange(cfg.ny) + 0.5) * cfg.dy
        self.x, self.y = np.meshgrid(x, y, indexing="ij")
        self.velx = np.zeros((cfg.nx, cfg.ny))
        self.vely = np.zeros((cfg.nx, cfg.ny))
        self.pres = np.zeros((cfg.nx, cfg.ny))
        phi0 = circle_level_set(self.x, self.y, cfg.bubble_center, cfg.bubble_diameter / 2.0)
        self.levelset = LevelSet(phi0, cfg.dx, cfg.dy)
        self.poisson = PoissonSolver(cfg.nx, cfg.ny, cfg.dx, cfg.dy)
        self.time = 0.0
        self.step_count = 0
        # non-counting by construction, so "auto" substitutes the fused
        # fast plane (bit-identical) and "instrumented" keeps the op-by-op
        # path
        self._full_ctx = select_context(
            FullPrecisionContext(count_ops=False, track_memory=False), plane
        )
        # preallocated scratch for the fused WENO5 edge evaluations
        # (bit-identical; dropped on pickle/deepcopy)
        self._workspace = make_workspace()
        # scratch-buffered edge paddings for the stencil operators
        # (bit-identical pure copies; RAPTOR_FAST_NO_GRID restores np.pad)
        self._grid_pad = grid_plane_enabled()
        # the fused bubble plane: whole-operator twins from
        # repro.kernels.bubble replace the op-by-op paths — context-bearing
        # operators only for fused contexts, context-free glue (forces,
        # projection, reinit, material fields) on every plane
        # (bit-identical; RAPTOR_FAST_NO_BUBBLE restores the classic paths)
        self._fused_bubble = bubble_plane_enabled()
        if self._fused_bubble:
            self.levelset.enable_fused(self._workspace)

    def _pad(self, f: np.ndarray, n: int, key: str = "f") -> np.ndarray:
        """Edge-replicated padding of ``f`` by ``n`` cells.

        On the fused grid plane the padding lands in a workspace buffer
        keyed per call site (``key``), so simultaneously-live paddings
        (e.g. the two in :meth:`diffusion_term`) never alias; each buffer
        is only valid until the same site pads again, which the operators
        satisfy by consuming the padding within one evaluation.
        """
        if self._grid_pad:
            return pad_edge(f, n, ws=self._workspace, key=("pad", key))
        return np.pad(f, n, mode="edge")

    # ------------------------------------------------------------------
    # differential operators (these are the truncation targets)
    # ------------------------------------------------------------------
    def _weno5_derivative(self, f: np.ndarray, vel: np.ndarray, spacing: float, axis: int, ctx: FPContext, which: str = "f"):
        """Upwind-biased WENO5 approximation of d f / d axis.

        ``which`` namespaces the scratch keys per call site (the u- and
        v-momentum derivatives are simultaneously live in :meth:`step`).
        On the fused bubble plane fused contexts run the whole-operator
        twins of :mod:`repro.kernels.bubble`; otherwise only the edge
        reconstruction is fused and the selection/difference ops go through
        ``ctx`` (which keeps instrumented counters byte-identical).
        """
        padded = self._pad(f, 3, "weno")
        if self._fused_bubble and ctx.fused:
            return kbubble.weno5_derivative(
                padded, vel, spacing, axis, ws=self._workspace, key=("adv", which, axis)
            )
        if self._fused_bubble and ctx.fused_trunc:
            return kbubble.weno5_derivative_trunc(
                padded, vel, spacing, axis, ws=self._workspace, key=("adv", which, axis),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )

        def cells(offset):
            sl = [slice(3, -3), slice(3, -3)]
            sl[axis] = slice(3 + offset, padded.shape[axis] - 3 + offset)
            return padded[tuple(sl)]

        um3, um2, um1 = cells(-3), cells(-2), cells(-1)
        u0, up1, up2, up3 = cells(0), cells(1), cells(2), cells(3)

        if getattr(ctx, "fused", False):
            # each call site gets its own scratch key: all four edge values
            # stay live until the upwind selection below
            ws = self._workspace
            edge = lambda a, b, c, d, e, k: _fused_weno5_edge(
                a, b, c, d, e, ws=ws, key=("adv", axis, k)
            )
        elif getattr(ctx, "fused_trunc", False):
            ws = self._workspace
            edge = lambda a, b, c, d, e, k: _trunc_weno5_edge(
                a, b, c, d, e, ws=ws, key=("adv", axis, k),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        else:
            edge = lambda a, b, c, d, e, k: _weno5_edge(a, b, c, d, e, ctx)

        # face values at i-1/2 and i+1/2, biased by the wind direction
        left_minus = edge(um3, um2, um1, u0, up1, "lm")   # from the left at i-1/2
        left_plus = edge(um2, um1, u0, up1, up2, "lp")    # from the left at i+1/2
        right_minus = edge(up1, u0, um1, um2, um3, "rm")  # from the right at i-1/2
        right_plus = edge(up2, up1, u0, um1, um2, "rp")   # from the right at i+1/2

        upwind = ctx.asplain(vel) > 0.0
        f_minus = ctx.where(upwind, left_minus, right_minus)
        f_plus = ctx.where(upwind, left_plus, right_plus)
        return ctx.mul(
            ctx.sub(f_plus, f_minus, "adv:face_diff"),
            ctx.const(1.0 / spacing),
            "adv:weno_deriv",
        )

    def _upwind_derivative(self, f: np.ndarray, vel: np.ndarray, spacing: float, axis: int, ctx: FPContext, which: str = "f"):
        padded = self._pad(f, 1, "upwind")
        if self._fused_bubble and ctx.fused:
            return kbubble.upwind_derivative(
                f, vel, spacing, axis, "edge", padded,
                ws=self._workspace, key=("uadv", which, axis),
            )
        if self._fused_bubble and ctx.fused_trunc:
            return kbubble.upwind_derivative_trunc(
                f, vel, spacing, axis, "edge", padded,
                ws=self._workspace, key=("uadv", which, axis),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        return upwind_derivative(f, vel, spacing, axis, ctx, boundary="edge", padded=padded)

    def advection_term(self, f: np.ndarray, ctx: FPContext, which: str = "f") -> np.ndarray:
        """u . grad(f) with the configured scheme, through ``ctx``.

        On the fused bubble plane the WENO5 scheme batches both axis
        derivatives into one stacked edge reconstruction
        (:func:`repro.kernels.bubble.weno5_derivative_pair`) — bit-identical
        per batch row to the per-axis twins."""
        if (
            self._fused_bubble
            and self.config.advection_scheme == "weno5"
            and (ctx.fused or ctx.fused_trunc)
        ):
            cfg = self.config
            ws = self._workspace
            padded = self._pad(f, 3, "weno")
            if ctx.fused:
                fx, fy = kbubble.weno5_derivative_pair(
                    padded, self.velx, self.vely, cfg.dx, cfg.dy,
                    ws=ws, key=("adv", which),
                )
                return kbubble.advection_term(
                    fx, fy, self.velx, self.vely, ws=ws, key=("adv", which)
                )
            fx, fy = kbubble.weno5_derivative_pair_trunc(
                padded, self.velx, self.vely, cfg.dx, cfg.dy,
                ws=ws, key=("adv", which), fmt=ctx.fmt, rounding=ctx.rounding,
            )
            return kbubble.advection_term_trunc(
                fx, fy, self.velx, self.vely, ws=ws, key=("adv", which),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        deriv = (
            self._weno5_derivative
            if self.config.advection_scheme == "weno5"
            else self._upwind_derivative
        )
        fx = deriv(f, self.velx, self.config.dx, 0, ctx, which)
        fy = deriv(f, self.vely, self.config.dy, 1, ctx, which)
        if self._fused_bubble and ctx.fused:
            return kbubble.advection_term(
                fx, fy, self.velx, self.vely, ws=self._workspace, key=("adv", which)
            )
        if self._fused_bubble and ctx.fused_trunc:
            return kbubble.advection_term_trunc(
                fx, fy, self.velx, self.vely, ws=self._workspace, key=("adv", which),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        out = ctx.add(
            ctx.mul(ctx.const(self.velx), fx, "adv:u_fx"),
            ctx.mul(ctx.const(self.vely), fy, "adv:v_fy"),
            "adv:total",
        )
        return ctx.asplain(out)

    def diffusion_term(self, f: np.ndarray, viscosity: np.ndarray, ctx: FPContext, which: str = "f") -> np.ndarray:
        """div(nu grad f) with second-order central differences, through ``ctx``."""
        cfg = self.config
        fp = self._pad(f, 1, "diff_f")
        nup = self._pad(viscosity, 1, "diff_nu")
        if self._fused_bubble and ctx.fused:
            return kbubble.diffusion_term(
                f, viscosity, fp, nup, cfg.dx, cfg.dy,
                ws=self._workspace, key=("diff", which),
            )
        if self._fused_bubble and ctx.fused_trunc:
            return kbubble.diffusion_term_trunc(
                f, viscosity, fp, nup, cfg.dx, cfg.dy,
                ws=self._workspace, key=("diff", which),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )

        def shifted(arr, di, dj):
            return arr[1 + di:arr.shape[0] - 1 + di, 1 + dj:arr.shape[1] - 1 + dj]

        out = ctx.zeros_like(f)
        for (di, dj, spacing) in ((1, 0, cfg.dx), (-1, 0, cfg.dx), (0, 1, cfg.dy), (0, -1, cfg.dy)):
            nu_face = ctx.mul(
                ctx.const(0.5),
                ctx.add(ctx.const(viscosity), ctx.const(shifted(nup, di, dj)), "diff:nu_sum"),
                "diff:nu_face",
            )
            grad = ctx.mul(
                ctx.sub(ctx.const(shifted(fp, di, dj)), ctx.const(f), "diff:df"),
                ctx.const(1.0 / spacing ** 2),
                "diff:grad",
            )
            out = ctx.add(out, ctx.mul(nu_face, grad, "diff:flux"), "diff:accum")
        return ctx.asplain(out)

    # ------------------------------------------------------------------
    # selective (per-cell) truncation support
    # ------------------------------------------------------------------
    def _maybe_blend(
        self,
        op: Callable[[FPContext], np.ndarray],
        ctx: FPContext,
        truncate_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Evaluate ``op`` under ``ctx``; where ``truncate_mask`` is False the
        full-precision evaluation is used instead (the per-cell analogue of
        the per-block M − l cutoff)."""
        truncated = op(ctx)
        if truncate_mask is None or not ctx.truncating:
            return truncated
        if truncate_mask.all():
            return truncated
        reference = op(self._full_ctx)
        return np.where(truncate_mask, truncated, reference)

    # ------------------------------------------------------------------
    # forces (full precision: not a truncation target in the paper)
    # ------------------------------------------------------------------
    def _buoyancy(self) -> np.ndarray:
        cfg = self.config
        if self._fused_bubble:
            ls = self.levelset
            return kbubble.buoyancy(
                ls.phi, ls.eps, cfg.gravity, 1.0 / cfg.density_ratio,
                ws=self._workspace, key=("buoy",),
            )
        rho = self.levelset.density(1.0, 1.0 / cfg.density_ratio)
        return cfg.gravity * (1.0 - rho)

    def _surface_tension(self) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        if not cfg.surface_tension:
            if self._fused_bubble and self._workspace is not None:
                zeros = self._workspace.out(("st", "zero"), self.pres.shape)
                zeros.fill(0.0)
            else:
                zeros = np.zeros_like(self.pres)
            return zeros, zeros
        if self._fused_bubble:
            ls = self.levelset
            return kbubble.surface_tension(
                ls.phi, ls.eps, cfg.sigma, cfg.dx, cfg.dy,
                ws=self._workspace, key=("st",),
            )
        kappa = self.levelset.curvature()
        delta = self.levelset.delta()
        phi = self.levelset.phi
        gx = np.gradient(phi, cfg.dx, axis=0)
        gy = np.gradient(phi, cfg.dy, axis=1)
        mag = np.sqrt(gx ** 2 + gy ** 2) + 1e-12
        fx = cfg.sigma * kappa * delta * gx / mag
        fy = cfg.sigma * kappa * delta * gy / mag
        return fx, fy

    # ------------------------------------------------------------------
    def stable_dt(self) -> float:
        cfg = self.config
        umax = float(np.max(np.abs(self.velx)) + np.max(np.abs(self.vely))) + 1e-6
        adv_dt = cfg.cfl * min(cfg.dx, cfg.dy) / umax
        visc = cfg.nu_liquid * max(1.0, cfg.viscosity_ratio / cfg.density_ratio)
        diff_dt = 0.2 * min(cfg.dx, cfg.dy) ** 2 / max(visc, 1e-12)
        grav_dt = cfg.cfl * np.sqrt(min(cfg.dx, cfg.dy) / max(cfg.gravity, 1e-12))
        return float(min(adv_dt, diff_dt, grav_dt))

    def _apply_velocity_bcs(self) -> None:
        # no-slip solid walls on all four sides
        for arr in (self.velx, self.vely):
            arr[0, :] = 0.0
            arr[-1, :] = 0.0
            arr[:, 0] = 0.0
            arr[:, -1] = 0.0

    # ------------------------------------------------------------------
    def step(
        self,
        dt: float,
        advection_ctx: Optional[FPContext] = None,
        diffusion_ctx: Optional[FPContext] = None,
        truncate_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Advance velocity, pressure and the interface by ``dt``.

        ``advection_ctx`` / ``diffusion_ctx`` control the precision of the
        two operator families (the paper truncates both); ``truncate_mask``
        optionally restricts truncation to the cells where it is True
        (the M − l interface-distance cutoff of Figure 1).
        """
        cfg = self.config
        self._pending_dt = dt
        adv_ctx = advection_ctx or self._full_ctx
        diff_ctx = diffusion_ctx or self._full_ctx

        mu = self.levelset.viscosity(cfg.nu_liquid, cfg.nu_liquid * cfg.viscosity_ratio / cfg.density_ratio)

        adv_u = self._maybe_blend(lambda c: self.advection_term(self.velx, c, "u"), adv_ctx, truncate_mask)
        adv_v = self._maybe_blend(lambda c: self.advection_term(self.vely, c, "v"), adv_ctx, truncate_mask)
        diff_u = self._maybe_blend(lambda c: self.diffusion_term(self.velx, mu, c, "u"), diff_ctx, truncate_mask)
        diff_v = self._maybe_blend(lambda c: self.diffusion_term(self.vely, mu, c, "v"), diff_ctx, truncate_mask)

        fx_st, fy_st = self._surface_tension()
        buoy = self._buoyancy()

        if self._fused_bubble:
            # fused glue, bit-identical to the expressions below: the
            # operator results are owned by this step (scratch buffers or
            # fresh blends), so the force/velocity assembly runs in place;
            # only ustar/vstar — the new state — are fresh allocations
            t = np.negative(adv_u, out=adv_u)
            t = np.add(t, diff_u, out=t)
            t = np.add(t, fx_st, out=t)
            t = np.multiply(dt, t, out=t)
            ustar = np.add(self.velx, t)
            t = np.negative(adv_v, out=adv_v)
            t = np.add(t, diff_v, out=t)
            t = np.add(t, fy_st, out=t)
            t = np.add(t, buoy, out=t)
            t = np.multiply(dt, t, out=t)
            vstar = np.add(self.vely, t)
        else:
            ustar = self.velx + dt * (-adv_u + diff_u + fx_st)
            vstar = self.vely + dt * (-adv_v + diff_v + fy_st + buoy)

        self.velx, self.vely = ustar, vstar
        self._apply_velocity_bcs()

        # projection: make the velocity field divergence free
        if self._fused_bubble:
            ws = self._workspace
            ga = kbubble.gradient_axis(self.velx, cfg.dx, 0, ws=ws, key=("proj", "dx"))
            gb = kbubble.gradient_axis(self.vely, cfg.dy, 1, ws=ws, key=("proj", "dy"))
            div = np.add(ga, gb, out=ga)
            div = np.divide(div, dt, out=div)
            self.pres = self.poisson.solve(div, ws=ws)
            gx, gy = self.poisson.gradient(self.pres, ws=ws)
            # velx/vely are the fresh ustar/vstar, so the correction may
            # run in place
            t = np.multiply(dt, gx, out=gx)
            np.subtract(self.velx, t, out=self.velx)
            t = np.multiply(dt, gy, out=gy)
            np.subtract(self.vely, t, out=self.vely)
        else:
            div = np.gradient(self.velx, cfg.dx, axis=0) + np.gradient(self.vely, cfg.dy, axis=1)
            self.pres = self.poisson.solve(div / dt)
            gx, gy = self.poisson.gradient(self.pres)
            self.velx = self.velx - dt * gx
            self.vely = self.vely - dt * gy
        self._apply_velocity_bcs()

        # interface transport (advection operator: truncation target)
        phi_op = lambda c: self._advect_levelset(c)
        new_phi = self._maybe_blend(phi_op, adv_ctx, truncate_mask)
        self.levelset.phi = new_phi
        self.step_count += 1
        self.time += dt
        if cfg.reinit_interval and self.step_count % cfg.reinit_interval == 0:
            self.levelset.reinitialize(iterations=5)

        self._last_dt = dt

    def _advect_levelset(self, ctx: FPContext) -> np.ndarray:
        cfg = self.config
        if self._fused_bubble and ctx.fused:
            # the twins read phi and return a fresh array, so the defensive
            # LevelSet copy of the op-by-op path is unnecessary
            return kbubble.levelset_advect(
                self.levelset.phi, self.velx, self.vely, self._pending_dt,
                cfg.dx, cfg.dy, ws=self._workspace, key=("ls", "adv"),
            )
        if self._fused_bubble and ctx.fused_trunc:
            return kbubble.levelset_advect_trunc(
                self.levelset.phi, self.velx, self.vely, self._pending_dt,
                cfg.dx, cfg.dy, ws=self._workspace, key=("ls", "adv"),
                fmt=ctx.fmt, rounding=ctx.rounding,
            )
        ls = LevelSet(self.levelset.phi, cfg.dx, cfg.dy)
        ls.advect(self.velx, self.vely, self._pending_dt, ctx)
        return ls.phi

    # ------------------------------------------------------------------
    def run(
        self,
        t_end: float,
        advection_ctx: Optional[FPContext] = None,
        diffusion_ctx: Optional[FPContext] = None,
        truncate_mask_fn: Optional[Callable[["BubbleSolver"], np.ndarray]] = None,
        fixed_dt: Optional[float] = None,
        max_steps: int = 100000,
        callback: Optional[Callable[["BubbleSolver"], None]] = None,
    ) -> Dict[str, float]:
        """Advance the simulation to ``t_end`` (relative to the current time)."""
        target = self.time + t_end
        steps = 0
        while self.time < target - 1e-12 and steps < max_steps:
            dt = fixed_dt if fixed_dt is not None else self.stable_dt()
            dt = min(dt, target - self.time)
            mask = truncate_mask_fn(self) if truncate_mask_fn is not None else None
            self._pending_dt = dt
            self.step(dt, advection_ctx, diffusion_ctx, mask)
            steps += 1
            if callback is not None:
                callback(self)
        return {"steps": float(steps), "time": float(self.time)}

    # ------------------------------------------------------------------
    # diagnostics used by the Figure 1 benchmark
    # ------------------------------------------------------------------
    def interface_mask(self) -> np.ndarray:
        return self.levelset.interface_contour_mask()

    def gas_volume(self) -> float:
        return self.levelset.volume(self.config.dx * self.config.dy)

    def bubble_centroid(self) -> Tuple[float, float]:
        h = self.levelset.heaviside()
        total = float(np.sum(h)) + 1e-300
        return float(np.sum(h * self.x) / total), float(np.sum(h * self.y) / total)

    def interface_fragment_count(self) -> int:
        """Number of disconnected gas regions (bubble splitting diagnostic)."""
        gas = self.levelset.phi > 0.0
        visited = np.zeros_like(gas, dtype=bool)
        count = 0
        nx, ny = gas.shape
        for i in range(nx):
            for j in range(ny):
                if gas[i, j] and not visited[i, j]:
                    count += 1
                    stack = [(i, j)]
                    visited[i, j] = True
                    while stack:
                        ci, cj = stack.pop()
                        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                            ni, nj = ci + di, cj + dj
                            if 0 <= ni < nx and 0 <= nj < ny and gas[ni, nj] and not visited[ni, nj]:
                                visited[ni, nj] = True
                                stack.append((ni, nj))
        return count
