"""Incompressible multiphase flow substrate (rising-bubble benchmark)."""
from .levelset import LevelSet, circle_level_set, interface_level_map
from .poisson import PoissonSolver
from .solver import BubbleConfig, BubbleSolver

__all__ = [
    "LevelSet",
    "circle_level_set",
    "interface_level_map",
    "PoissonSolver",
    "BubbleConfig",
    "BubbleSolver",
]
