"""Pressure-Poisson solver for the fractional-step projection method.

The Bubble solver's projection step requires a Poisson solve each time step.
In Flash-X this is done by Hypre; here a sparse direct factorisation of the
five-point Laplacian (homogeneous Neumann boundaries, nullspace pinned) is
pre-computed once and reused for every step — the projection step is never a
truncation target in the paper (only the advection and diffusion operators
are), so it runs at full precision and speed.
"""
from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..kernels.bubble import gradient_axis
from ..kernels.scratch import Workspace

__all__ = ["PoissonSolver"]


class PoissonSolver:
    """Five-point Laplacian solver on a uniform (nx, ny) cell-centred grid.

    Solves ``lap(p) = rhs`` with homogeneous Neumann boundary conditions on
    all four walls.  The operator has a nullspace (constant fields); it is
    removed by pinning the first cell and projecting the right-hand side to
    zero mean, which is the compatible choice for the projection method.
    """

    def __init__(self, nx: int, ny: int, dx: float, dy: float) -> None:
        self.nx = int(nx)
        self.ny = int(ny)
        self.dx = float(dx)
        self.dy = float(dy)
        self._lu = spla.splu(self._build_matrix().tocsc())

    # ------------------------------------------------------------------
    def _build_matrix(self) -> sp.spmatrix:
        """Banded (vectorised) assembly of the pinned Neumann Laplacian.

        Exactly equal — values and sparsity structure — to the reference
        per-cell loop (:meth:`_build_matrix_reference`, kept as the test
        oracle): the diagonal accumulates ``-w`` per in-bounds neighbour in
        the same (i-1, i+1, j-1, j+1) order, and the ``±1`` bands carry
        zeros at the row seams (j-coupling across i-rows), which
        ``eliminate_zeros`` then drops so the stored structure matches the
        loop-built matrix.
        """
        nx, ny = self.nx, self.ny
        n = nx * ny
        inv_dx2 = 1.0 / self.dx ** 2
        inv_dy2 = 1.0 / self.dy ** 2

        diag = np.zeros((nx, ny))
        diag[1:, :] -= inv_dx2
        diag[:-1, :] -= inv_dx2
        diag[:, 1:] -= inv_dy2
        diag[:, :-1] -= inv_dy2

        diagonals, offsets = [diag.ravel()], [0]
        if nx > 1:
            x_band = np.full(n - ny, inv_dx2)
            diagonals += [x_band, x_band]
            offsets += [-ny, ny]
        if ny > 1:
            y_band = np.full(n - 1, inv_dy2)
            y_band[ny - 1::ny] = 0.0  # no j-coupling across the i-row seam
            diagonals += [y_band, y_band]
            offsets += [-1, 1]

        mat = sp.diags(diagonals, offsets, shape=(n, n), format="csr")
        mat.eliminate_zeros()
        mat = mat.tolil()
        # pin the first cell to remove the constant nullspace
        mat[0, :] = 0.0
        mat[0, 0] = 1.0
        return mat

    def _build_matrix_reference(self) -> sp.spmatrix:
        """The original per-cell COO loop — quadratic-ish Python, kept as
        the exact-equality oracle for the banded assembly."""
        nx, ny = self.nx, self.ny
        idx = np.arange(nx * ny).reshape(nx, ny)
        inv_dx2 = 1.0 / self.dx ** 2
        inv_dy2 = 1.0 / self.dy ** 2

        rows, cols, vals = [], [], []

        def add(r, c, v):
            rows.append(r)
            cols.append(c)
            vals.append(v)

        for i in range(nx):
            for j in range(ny):
                r = idx[i, j]
                diag = 0.0
                for di, dj, w in ((-1, 0, inv_dx2), (1, 0, inv_dx2), (0, -1, inv_dy2), (0, 1, inv_dy2)):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < nx and 0 <= jj < ny:
                        add(r, idx[ii, jj], w)
                        diag -= w
                    # Neumann: missing neighbour contributes nothing (zero flux)
                add(r, r, diag)

        mat = sp.coo_matrix((vals, (rows, cols)), shape=(nx * ny, nx * ny)).tolil()
        # pin the first cell to remove the constant nullspace
        mat[0, :] = 0.0
        mat[0, 0] = 1.0
        return mat

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray, ws: Optional[Workspace] = None) -> np.ndarray:
        """Solve for p given the cell-centred right-hand side.

        With a workspace the right-hand-side staging lands in a reused
        scratch buffer; the factorisation's output (and thus the returned
        pressure) is a fresh array either way, and the bits are identical.
        """
        if rhs.shape != (self.nx, self.ny):
            raise ValueError(f"expected rhs shape {(self.nx, self.ny)}, got {rhs.shape}")
        if ws is not None:
            flat = ws.out(("poisson", "rhs"), (self.nx * self.ny,))
            b = flat.reshape(self.nx, self.ny)
            np.copyto(b, rhs)
        else:
            b = rhs.astype(np.float64)
            flat = b.reshape(-1)
        b -= b.mean()  # compatibility with the Neumann problem
        flat[0] = 0.0  # pinned cell
        p = self._lu.solve(flat)
        p = p.reshape(self.nx, self.ny)
        p -= p.mean()
        return p

    # ------------------------------------------------------------------
    def residual(self, p: np.ndarray, rhs: np.ndarray) -> float:
        """Max-norm residual of the (zero-mean) discrete Poisson equation."""
        lap = self.apply_laplacian(p)
        r = lap - (rhs - rhs.mean())
        return float(np.max(np.abs(r[1:-1, 1:-1])))

    def apply_laplacian(self, p: np.ndarray) -> np.ndarray:
        """Apply the Neumann five-point Laplacian to a field."""
        padded = np.pad(p, 1, mode="edge")
        lap = (
            (padded[2:, 1:-1] - 2 * p + padded[:-2, 1:-1]) / self.dx ** 2
            + (padded[1:-1, 2:] - 2 * p + padded[1:-1, :-2]) / self.dy ** 2
        )
        return lap

    def gradient(self, p: np.ndarray, ws: Optional[Workspace] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Cell-centred pressure gradient (one-sided at the walls)."""
        if ws is not None:
            gx = gradient_axis(p, self.dx, 0, ws=ws, key=("poisson", "gx"))
            gy = gradient_axis(p, self.dy, 1, ws=ws, key=("poisson", "gy"))
            return gx, gy
        gx = np.gradient(p, self.dx, axis=0)
        gy = np.gradient(p, self.dy, axis=1)
        return gx, gy
