"""Block-structured AMR substrate (PARAMESH / AmReX analogue for Flash-X)."""
from .block import Block, BlockKey
from .grid import AMRGrid, RegridSummary
from .refinement import block_error, gradient_error, lohner_error, prolong, restrict

__all__ = [
    "Block",
    "BlockKey",
    "AMRGrid",
    "RegridSummary",
    "lohner_error",
    "gradient_error",
    "block_error",
    "prolong",
    "restrict",
]
